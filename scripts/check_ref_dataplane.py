#!/usr/bin/env python3
"""CI gate for the pass-by-reference data plane bench (bench_ref_dataplane).

Validates the bench's machine-readable report (BENCH_ref_dataplane.json)
against the checked-in baseline (bench/ref_dataplane_baseline.json).  The
gates are structural invariants of the data plane rather than wall-clock
numbers, so they hold on noisy shared CI runners:

  * by-value mode must actually relay the DAG payloads through the manager
    (otherwise the A/B comparison is vacuous),
  * by-ref mode must keep manager-relayed result bytes below one payload —
    the tentpole property: DAG edges never transit the manager,
  * every producer result must come back as a ref, and
  * the by-ref run must not be slower than by-value beyond jitter headroom.

Usage: check_ref_dataplane.py <report.json> <baseline.json>
"""
import json
import sys


def load_report_entries(path):
    with open(path) as f:
        report = json.load(f)
    return {entry["metric"]: entry["measured"] for entry in report["entries"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    measured = load_report_entries(sys.argv[1])
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failures = []

    def gate(name, ok, detail):
        print(f"{'PASS' if ok else 'FAIL'}: {name} ({detail})")
        if not ok:
            failures.append(name)

    value_relayed = measured["value_manager_relayed_result_bytes"]
    ref_relayed = measured["ref_manager_relayed_result_bytes"]
    gate(
        "by-value relays DAG payloads through the manager",
        value_relayed >= baseline["min_value_relayed_bytes"],
        f"relayed {value_relayed:.0f} B, "
        f"need >= {baseline['min_value_relayed_bytes']} B",
    )
    gate(
        "by-ref keeps DAG payload bytes out of the manager",
        ref_relayed <= baseline["max_ref_relayed_bytes"],
        f"relayed {ref_relayed:.0f} B, "
        f"allowed <= {baseline['max_ref_relayed_bytes']} B",
    )
    gate(
        "every producer result returned as a ref",
        measured["ref_results"] >= baseline["min_ref_results"],
        f"{measured['ref_results']:.0f} refs, "
        f"need >= {baseline['min_ref_results']}",
    )
    speedup = measured["makespan_speedup"]
    gate(
        "by-ref makespan at least matches by-value",
        speedup >= baseline["min_makespan_speedup"],
        f"speedup {speedup:.2f}x, "
        f"need >= {baseline['min_makespan_speedup']}x",
    )

    if failures:
        sys.exit(f"{len(failures)} gate(s) failed: {', '.join(failures)}")
    print("all ref-dataplane gates passed")


if __name__ == "__main__":
    main()
