#!/usr/bin/env python3
"""Diff two BENCH_*.json reports and flag regressions.

Every bench report is stamped with the git SHA and build type it was built
from, and — when the bench calls JsonReport::SetConfig — a fingerprint of
its effective configuration.  This script compares a baseline report
against a candidate:

  * refuses to compare reports from different benches,
  * refuses to compare runs with different config fingerprints (the knobs
    that shape the run differ, so the numbers are not comparable) unless
    --allow-config-mismatch is given,
  * warns when the build types differ (Debug vs Release timings are not
    comparable either, but the structural metrics still are),
  * prints a per-metric table of baseline vs candidate, and
  * exits non-zero when any shared metric regressed by more than 10%
    (--threshold to override).

"Regressed" means the measured value grew: every stamped metric in this
repo (makespans, per-phase seconds, share deltas) is smaller-is-better.
Metrics present in only one report are listed but never gate.

Usage: compare_bench.py <baseline.json> <candidate.json>
                        [--threshold FRACTION] [--allow-config-mismatch]
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    entries = {e["metric"]: e["measured"] for e in report.get("entries", [])}
    return report, entries


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative growth that counts as a regression")
    parser.add_argument("--allow-config-mismatch", action="store_true",
                        help="compare despite differing config fingerprints")
    args = parser.parse_args()

    base_report, base = load(args.baseline)
    cand_report, cand = load(args.candidate)

    if base_report.get("bench") != cand_report.get("bench"):
        sys.exit(f"refusing to compare different benches: "
                 f"{base_report.get('bench')} vs {cand_report.get('bench')}")

    base_fp = base_report.get("config_fingerprint")
    cand_fp = cand_report.get("config_fingerprint")
    if base_fp != cand_fp:
        msg = (f"config fingerprints differ: {base_fp} "
               f"({base_report.get('config')}) vs {cand_fp} "
               f"({cand_report.get('config')})")
        if args.allow_config_mismatch:
            print(f"WARNING: {msg}")
        else:
            sys.exit(f"refusing to compare: {msg} "
                     "(pass --allow-config-mismatch to override)")
    if base_report.get("build_type") != cand_report.get("build_type"):
        print(f"WARNING: build types differ: {base_report.get('build_type')} "
              f"vs {cand_report.get('build_type')}")

    print(f"bench {base_report.get('bench')}: "
          f"{base_report.get('git_sha')} ({args.baseline}) vs "
          f"{cand_report.get('git_sha')} ({args.candidate})")

    regressions = []
    width = max((len(m) for m in set(base) | set(cand)), default=10)
    for metric in sorted(set(base) | set(cand)):
        if metric not in base:
            print(f"  {metric:<{width}}  (new)        {cand[metric]:>14.6g}")
            continue
        if metric not in cand:
            print(f"  {metric:<{width}}  {base[metric]:>14.6g}  (removed)")
            continue
        b, c = base[metric], cand[metric]
        if b != 0:
            change = (c - b) / abs(b)
            tag = f"{change:+8.1%}"
        else:
            change = 0.0 if c == 0 else float("inf")
            tag = "     new" if c != 0 else "        "
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSION"
            regressions.append((metric, b, c, change))
        print(f"  {metric:<{width}}  {b:>14.6g}  {c:>14.6g}  {tag}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}:")
        for metric, b, c, change in regressions:
            print(f"  - {metric}: {b:.6g} -> {c:.6g} ({change:+.1%})")
        sys.exit(1)
    print(f"\nOK: no metric regressed more than {args.threshold:.0%}")


if __name__ == "__main__":
    main()
