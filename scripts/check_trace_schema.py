#!/usr/bin/env python3
"""CI gate: validate a vinelet Chrome-trace export's causal schema.

Usage: check_trace_schema.py BENCH_<name>.trace.json

Checks, beyond "it parses":
  * only known event phases appear (M/X/B/E/s/t/f);
  * every X event has numeric ts and dur >= 0;
  * per (pid, tid) track, X timestamps are monotonically non-decreasing
    (the exporter sorts each track; a violation means clock misuse);
  * the trace is actually causal: X events carry args.trace_id/span_id,
    at least one multi-span trace exists, and every nonzero
    args.parent_span_id references a span_id recorded in the SAME trace
    (no orphan parents);
  * flow records pair up: every flow-start (ph "s") has a matching
    flow-end (ph "f") with the same id and vice versa, and each flow id
    is the span_id of an exported child span.
"""
import json
import sys


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: check_trace_schema.py <trace.json>")
    path = sys.argv[1]

    failures = []

    def gate(name, ok, detail):
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {name}: {detail}")
        if not ok:
            failures.append(name)

    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"cannot load {path}: {err}")

    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    gate("nonempty", len(events) > 0, f"{len(events)} events")

    known = {"M", "X", "B", "E", "s", "t", "f"}
    phases = {e.get("ph") for e in events}
    gate("known-phases", phases <= known, f"phases seen: {sorted(phases)}")

    spans = [e for e in events if e.get("ph") == "X"]
    gate("has-spans", len(spans) > 0, f"{len(spans)} X events")

    bad_time = [
        e for e in spans
        if not isinstance(e.get("ts"), (int, float))
        or not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0
    ]
    gate("span-timestamps", not bad_time,
         f"{len(bad_time)} spans with bad ts/dur")

    # Per-track monotonicity.
    last_ts = {}
    regressions = 0
    for e in spans:
        track = (e.get("pid"), e.get("tid"))
        if track in last_ts and e["ts"] < last_ts[track]:
            regressions += 1
        last_ts[track] = e["ts"]
    gate("monotonic-tracks", regressions == 0,
         f"{regressions} timestamp regressions across {len(last_ts)} tracks")

    # Causal linkage: span ids per trace, then orphan-parent scan.
    ids_by_trace = {}
    traced = 0
    for e in spans:
        args = e.get("args", {})
        trace_id = args.get("trace_id", 0)
        if trace_id:
            traced += 1
            ids_by_trace.setdefault(trace_id, set()).add(args.get("span_id"))
    gate("causal-trace-present", traced > 0 and ids_by_trace,
         f"{traced} traced spans in {len(ids_by_trace)} traces")
    multi = sum(1 for ids in ids_by_trace.values() if len(ids) > 1)
    gate("multi-span-traces", multi > 0,
         f"{multi} traces with more than one span")

    orphans = 0
    for e in spans:
        args = e.get("args", {})
        parent = args.get("parent_span_id", 0)
        trace_id = args.get("trace_id", 0)
        if parent and parent not in ids_by_trace.get(trace_id, set()):
            orphans += 1
    gate("no-orphan-parents", orphans == 0,
         f"{orphans} spans whose parent_span_id is not in their trace")

    # Flow pairing: s and f records reference each other by id, and each
    # flow id is the span_id of some exported span.
    flow_starts = {}
    flow_ends = []
    for e in events:
        if e.get("ph") == "s":
            flow_starts[e.get("id")] = flow_starts.get(e.get("id"), 0) + 1
        elif e.get("ph") == "f":
            flow_ends.append(e.get("id"))
    unmatched_ends = [fid for fid in flow_ends if fid not in flow_starts]
    gate("flows-paired",
         not unmatched_ends and len(flow_ends) == sum(flow_starts.values()),
         f"{sum(flow_starts.values())} starts / {len(flow_ends)} ends, "
         f"{len(unmatched_ends)} unmatched")
    span_ids = {e.get("args", {}).get("span_id") for e in spans}
    dangling = [fid for fid in flow_starts if fid not in span_ids]
    gate("flows-reference-spans", not dangling,
         f"{len(dangling)} flow ids with no exported span")

    if failures:
        sys.exit(f"trace schema check FAILED: {', '.join(failures)}")
    print(f"trace schema check passed: {path}")


if __name__ == "__main__":
    main()
