#!/usr/bin/env python3
"""CI gate for the pipelined-broadcast bench (bench_fig3_distribution).

Compares the bench's machine-readable report (BENCH_fig3_distribution.json)
against the checked-in baseline (bench/fig3_baseline.json) and fails when
the pipelined analytic or simulated makespan regresses, when the simulator
drifts away from the analytic model, or when pipelining stops clearing the
required speedup over whole-blob store-and-forward.

Usage: check_fig3_baseline.py <report.json> <baseline.json>
"""
import json
import sys

# Relative headroom over the baseline before a makespan counts as a
# regression.  The analytic value is a pure function of the plan; the
# simulated value is deterministic given the seed, so the slack only needs
# to absorb cross-platform floating-point drift.
ANALYTIC_TOLERANCE = 0.01
SIM_TOLERANCE = 0.10

# Hard acceptance gates, independent of the baseline.
MIN_SPEEDUP_VS_WHOLE_BLOB = 1.5
MAX_SIM_ANALYTIC_MISMATCH = 0.10


def load_report_entries(path):
    with open(path) as f:
        report = json.load(f)
    return {entry["metric"]: entry["measured"] for entry in report["entries"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    measured = load_report_entries(sys.argv[1])
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failures = []

    def gate(name, ok, detail):
        print(f"{'PASS' if ok else 'FAIL'}: {name} ({detail})")
        if not ok:
            failures.append(name)

    def regression(metric, tolerance):
        value = measured[metric]
        limit = baseline[metric] * (1.0 + tolerance)
        gate(
            f"{metric} within {tolerance:.0%} of baseline",
            value <= limit,
            f"measured {value:.6f} vs limit {limit:.6f}",
        )

    regression("pipelined_analytic_makespan_s", ANALYTIC_TOLERANCE)
    regression("pipelined_sim_makespan_s", SIM_TOLERANCE)

    speedup = measured["whole_over_pipelined"]
    gate(
        f"pipelined beats whole-blob by >= {MIN_SPEEDUP_VS_WHOLE_BLOB}x",
        speedup >= MIN_SPEEDUP_VS_WHOLE_BLOB,
        f"measured {speedup:.2f}x",
    )

    mismatch = abs(measured["sim_over_analytic"] - 1.0)
    gate(
        f"sim within {MAX_SIM_ANALYTIC_MISMATCH:.0%} of analytic",
        mismatch <= MAX_SIM_ANALYTIC_MISMATCH,
        f"measured ratio {measured['sim_over_analytic']:.4f}",
    )

    if failures:
        sys.exit(f"bench smoke gate failed: {', '.join(failures)}")
    print("bench smoke gate passed")


if __name__ == "__main__":
    main()
