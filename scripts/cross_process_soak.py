#!/usr/bin/env python3
"""Cross-process chaos soak: real daemons, real sockets, real faults.

Usage: cross_process_soak.py BUILD_DIR [--seeds N] [--invocations N]
                             [--timeout S]

Spawns one vinelet-managerd and three vinelet-workerd processes on a
loopback TCP port per seed, with socket-boundary fault injection wired
into the workers' transports (net::FaultInjector, applied the moment a
frame would be committed to the wire):

  * worker 1 delays 20% of its frames by 5-40 ms (reordering across the
    delay boundary);
  * worker 2 duplicates 10% of its frames (delivery is at-least-once);
  * worker 3 partitions itself from the hub mid-run (silence, not an
    error) and is then SIGKILLed, so the manager must notice the death
    via TCP teardown and requeue the victim's in-flight work.

Drop/corrupt probabilities stay 0 on purpose, mirroring the in-process
chaos soak: a dropped control frame below the manager's probe layer is
*designed* to surface as a hang, so sustained drops are not a passable
plan.  Partition-then-kill covers the loss case instead: everything the
victim would have sent is lost wholesale, and recovery must still drain.

The gate: vinelet-managerd runs with --min-workers 2 and must exit 0
(every invocation completed despite the attrition), the two surviving
workers must exit 0 on the manager's Shutdown broadcast, and nothing may
outlive the per-seed timeout.
"""
import argparse
import os
import signal
import subprocess
import sys
import time


def find_binary(build, name):
    for candidate in (os.path.join(build, name),
                      os.path.join(build, "src", "apps", name)):
        if os.access(candidate, os.X_OK):
            return candidate
    sys.exit(f"cannot find {name} under {build}")


def wait_for(proc, timeout_s, name, failures):
    try:
        code = proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        failures.append(f"{name}: still running after {timeout_s:.0f}s")
        return None
    return code


def run_seed(build, seed, invocations, timeout_s, failures):
    port = 17170 + (seed % 64)
    managerd = find_binary(build, "vinelet-managerd")
    workerd = find_binary(build, "vinelet-workerd")
    hub = f"127.0.0.1:{port}"

    manager = subprocess.Popen(
        [managerd, "--port", str(port), "--workers", "3",
         "--min-workers", "2", "--invocations", str(invocations),
         "--count", "96", "--timeout", str(timeout_s)])
    time.sleep(0.3)  # let the hub bind before the workers dial

    delay_worker = subprocess.Popen(
        [workerd, "--hub", hub, "--id", "1",
         "--fault-seed", str(1000 + seed), "--fault-delay-p", "0.2",
         "--fault-delay-min-ms", "5", "--fault-delay-max-ms", "40"])
    dup_worker = subprocess.Popen(
        [workerd, "--hub", hub, "--id", "2",
         "--fault-seed", str(2000 + seed), "--fault-dup-p", "0.1"])
    victim = subprocess.Popen(
        [workerd, "--hub", hub, "--id", "3",
         "--fault-seed", str(3000 + seed), "--partition-after", "1.0"])

    # Let the victim join and take work, then go silent (the partition
    # fires at t=1.0s inside the process, while the workload is still
    # draining — the default invocation count keeps the drain well past
    # that point); kill it shortly after so the manager sees the TCP
    # teardown and runs death recovery on its assignments.  The manager
    # *cannot* finish while the victim is alive-but-partitioned — its
    # results are swallowed at the socket boundary — so the kill is what
    # unblocks the run.
    time.sleep(2.5)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
    else:
        failures.append(f"seed {seed}: victim worker died before the kill "
                        f"(exit {victim.returncode})")
    victim.wait()

    code = wait_for(manager, timeout_s + 30, f"seed {seed}: managerd",
                    failures)
    if code is not None and code != 0:
        failures.append(f"seed {seed}: managerd exit {code}")

    # Manager Stop() broadcasts Shutdown; the survivors must exit clean.
    for name, proc in (("delay worker", delay_worker),
                       ("dup worker", dup_worker)):
        code = wait_for(proc, 30, f"seed {seed}: {name}", failures)
        if code is not None and code != 0:
            failures.append(f"seed {seed}: {name} exit {code}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build", help="build dir with the vinelet daemons")
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--invocations", type=int, default=1500)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    failures = []
    for seed in range(args.seeds):
        print(f"=== cross-process soak seed {seed} ===", flush=True)
        start = time.monotonic()
        run_seed(args.build, seed, args.invocations, args.timeout, failures)
        print(f"=== seed {seed} done in {time.monotonic() - start:.1f}s ===",
              flush=True)

    if failures:
        print("\ncross-process soak FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print(f"\ncross-process soak OK ({args.seeds} seed(s), "
          f"{args.invocations} invocation(s) each, 1 worker killed per seed)")


if __name__ == "__main__":
    main()
