#!/usr/bin/env python3
"""CI gate for the observability artifacts of a traced bench run.

Validates the critical-path blame report and the windowed time-series
JSONL that bench_fig8_invocation_runtime writes under VINELET_TRACE:

  blame report (BENCH_<name>.blame.json):
    * schema: {"blame": <BlameReportToJson>, "aggregate": {phase: seconds}},
    * every blame phase is one of the eight lifecycle phases or "idle",
    * phase shares are sane (each in [0, 1], summing to ~1),
    * the blame attribution reproduces the AggregatePhases totals embedded
      by the bench: per-phase *shares* (blame over its attributed non-idle
      seconds, aggregate over its eight-phase sum) agree within 5 points —
      the same tolerance bench_table5_breakdown enforces in-process,
    * the worst-trace list is ordered by makespan and its critical paths
      are non-empty chains of steps with non-negative self time.

  time-series JSONL (BENCH_<name>.timeseries.jsonl):
    * every line parses as JSON with the same top-level and per-metric key
      sets (the sim and the runtime sampler must emit one schema),
    * seq increases by one per line and windows tile: start_s of line N+1
      equals end_s of line N,
    * counter deltas are non-negative and rate * width == delta,
    * histogram percentiles are ordered (p50 <= p99 <= p999).

Usage: check_critical_path.py <blame.json> <timeseries.jsonl>
"""
import json
import sys

PHASES = [
    "submit",
    "dispatch",
    "transfer",
    "unpack",
    "context-setup",
    "deserialize",
    "exec",
    "result",
]
IDLE = "idle"
SHARE_TOLERANCE = 0.05


def check_blame(path, failures):
    with open(path) as f:
        doc = json.load(f)
    for key in ("blame", "aggregate"):
        if key not in doc:
            failures.append(f"blame report: missing top-level '{key}'")
            return
    blame = doc["blame"]
    for key in ("traces", "spans", "total_makespan_s", "phases", "worst"):
        if key not in blame:
            failures.append(f"blame report: missing blame key '{key}'")
            return

    allowed = set(PHASES) | {IDLE}
    unknown = set(blame["phases"]) - allowed
    if unknown:
        failures.append(f"blame report: unknown phases {sorted(unknown)}")

    shares = {name: p["share"] for name, p in blame["phases"].items()}
    for name, share in shares.items():
        if not 0.0 <= share <= 1.0 + 1e-9:
            failures.append(f"blame report: share of '{name}' out of range: "
                            f"{share}")
    total_share = sum(shares.values())
    if blame["phases"] and abs(total_share - 1.0) > 1e-6:
        failures.append(
            f"blame report: phase shares sum to {total_share:.6f}, not 1")

    # Blame vs aggregate: compare per-phase shares over the same eight
    # lifecycle phases.  Blame normalizes by attributed (non-idle) seconds,
    # the aggregate by its own phase sum.
    seconds = {name: p["seconds"] for name, p in blame["phases"].items()}
    blame_total = sum(s for name, s in seconds.items() if name != IDLE)
    agg = doc["aggregate"]
    agg_total = sum(agg.get(name, 0.0) for name in PHASES)
    if blame_total <= 0 or agg_total <= 0:
        failures.append("blame report: empty attribution "
                        f"(blame {blame_total}, aggregate {agg_total})")
    else:
        for name in PHASES:
            blame_share = seconds.get(name, 0.0) / blame_total
            agg_share = agg.get(name, 0.0) / agg_total
            delta = abs(blame_share - agg_share)
            if delta > SHARE_TOLERANCE:
                failures.append(
                    f"blame report: phase '{name}' blame share "
                    f"{blame_share:.4f} vs aggregate {agg_share:.4f} "
                    f"(delta {delta:.4f} > {SHARE_TOLERANCE})")

    worst = blame["worst"]
    makespans = [t["makespan_s"] for t in worst]
    if makespans != sorted(makespans, reverse=True):
        failures.append("blame report: worst traces not sorted by makespan")
    for trace in worst:
        steps = trace.get("critical_path", [])
        if not steps:
            failures.append(f"blame report: trace {trace.get('trace_id')} "
                            "has an empty critical path")
            continue
        for step in steps:
            if step["self_s"] < 0:
                failures.append("blame report: negative self time on the "
                                f"critical path of trace {trace['trace_id']}")
            if step["end_s"] < step["start_s"]:
                failures.append("blame report: inverted step interval on "
                                f"trace {trace['trace_id']}")
    print(f"[blame] {path}: {blame['traces']} traces, {blame['spans']} "
          f"spans, {len(worst)} worst, shares within "
          f"{SHARE_TOLERANCE} of aggregate")


def check_timeseries(path, failures):
    with open(path) as f:
        lines = [line.strip() for line in f if line.strip()]
    if not lines:
        failures.append(f"timeseries: {path} is empty")
        return
    windows = []
    for i, line in enumerate(lines):
        try:
            windows.append(json.loads(line))
        except json.JSONDecodeError as err:
            failures.append(f"timeseries: line {i} is not JSON: {err}")
            return

    top_keys = None
    metric_keys = {}
    for i, w in enumerate(windows):
        keys = tuple(sorted(w))
        if top_keys is None:
            top_keys = keys
        elif keys != top_keys:
            failures.append(f"timeseries: line {i} key set {keys} differs "
                            f"from line 0 {top_keys}")
        for kind in ("counters", "histograms"):
            for name, metric in w.get(kind, {}).items():
                mk = tuple(sorted(metric))
                if (kind, name) not in metric_keys:
                    metric_keys[(kind, name)] = mk
                elif metric_keys[(kind, name)] != mk:
                    failures.append(f"timeseries: line {i} {kind}[{name}] "
                                    "schema differs from first occurrence")

        if w["seq"] != i:
            failures.append(f"timeseries: line {i} has seq {w['seq']}")
        width = w["end_s"] - w["start_s"]
        if width <= 0:
            failures.append(f"timeseries: line {i} non-positive width")
        if i > 0 and abs(w["start_s"] - windows[i - 1]["end_s"]) > 1e-9:
            failures.append(f"timeseries: line {i} does not tile with the "
                            "previous window")
        for name, c in w.get("counters", {}).items():
            if c["delta"] < 0:
                failures.append(f"timeseries: line {i} counter {name} has "
                                "negative delta")
            if width > 0 and abs(c["rate"] * width - c["delta"]) > \
                    1e-6 * max(1.0, c["delta"]):
                failures.append(f"timeseries: line {i} counter {name} rate "
                                "inconsistent with delta")
        for name, h in w.get("histograms", {}).items():
            if not h["p50"] <= h["p99"] <= h["p999"]:
                failures.append(f"timeseries: line {i} histogram {name} "
                                "percentiles not ordered")
    print(f"[timeseries] {path}: {len(windows)} windows, schema consistent")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    failures = []
    check_blame(sys.argv[1], failures)
    check_timeseries(sys.argv[2], failures)
    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("OK: blame report and time-series pass all gates")


if __name__ == "__main__":
    main()
