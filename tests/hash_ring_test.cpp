// HashRing: ownership stability, walk semantics, and balance/reshuffle
// properties (parameterized over ring sizes).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hash/hash_ring.hpp"

namespace vinelet::hash {
namespace {

TEST(HashRingTest, EmptyRingHasNoOwner) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Owner(123u), std::nullopt);
  EXPECT_TRUE(ring.WalkFrom(1).empty());
}

TEST(HashRingTest, SingleMemberOwnsEverything) {
  HashRing ring;
  ring.Add(42);
  for (std::uint64_t key = 0; key < 100; ++key)
    EXPECT_EQ(ring.Owner(key), 42u);
}

TEST(HashRingTest, AddIsIdempotent) {
  HashRing ring;
  ring.Add(1);
  ring.Add(1);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(HashRingTest, RemoveUnknownIsNoOp) {
  HashRing ring;
  ring.Add(1);
  ring.Remove(99);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(HashRingTest, ContainsTracksMembership) {
  HashRing ring;
  ring.Add(7);
  EXPECT_TRUE(ring.Contains(7));
  ring.Remove(7);
  EXPECT_FALSE(ring.Contains(7));
  EXPECT_TRUE(ring.empty());
}

TEST(HashRingTest, OwnerIsStableAcrossUnrelatedChanges) {
  HashRing ring;
  for (std::uint64_t m = 1; m <= 10; ++m) ring.Add(m);
  const std::uint64_t key = 0xABCDEF;
  const auto owner = ring.Owner(key);
  ASSERT_TRUE(owner.has_value());
  // Removing a *different* member must not move this key.
  std::uint64_t other = (*owner == 1) ? 2 : 1;
  ring.Remove(other);
  EXPECT_EQ(ring.Owner(key), owner);
}

TEST(HashRingTest, WalkVisitsEveryMemberOnce) {
  HashRing ring;
  for (std::uint64_t m = 1; m <= 20; ++m) ring.Add(m);
  const auto walk = ring.WalkFrom(12345);
  EXPECT_EQ(walk.size(), 20u);
  std::set<std::uint64_t> seen(walk.begin(), walk.end());
  EXPECT_EQ(seen.size(), 20u);
}

TEST(HashRingTest, WalkStartsAtOwner) {
  HashRing ring;
  for (std::uint64_t m = 1; m <= 8; ++m) ring.Add(m);
  const auto walk = ring.WalkFrom(777);
  ASSERT_FALSE(walk.empty());
  EXPECT_EQ(walk.front(), ring.Owner(777u).value());
}

TEST(HashRingTest, StringKeysResolve) {
  HashRing ring;
  ring.Add(1);
  ring.Add(2);
  const auto owner = ring.Owner(std::string("lnni_infer"));
  ASSERT_TRUE(owner.has_value());
  // Deterministic: same key, same owner.
  EXPECT_EQ(ring.Owner(std::string("lnni_infer")), owner);
}

TEST(HashRingTest, MembersSorted) {
  HashRing ring;
  ring.Add(5);
  ring.Add(1);
  ring.Add(3);
  EXPECT_EQ(ring.Members(), (std::vector<std::uint64_t>{1, 3, 5}));
}

// ---------------------------------------------------------------------------
// Property sweep: balance and minimal reshuffling across ring sizes.
// ---------------------------------------------------------------------------

class HashRingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashRingProperty, LoadIsRoughlyBalanced) {
  const std::size_t members = GetParam();
  HashRing ring(64);
  for (std::size_t m = 1; m <= members; ++m) ring.Add(m);

  const std::size_t keys = 20000;
  std::map<std::uint64_t, std::size_t> load;
  for (std::size_t k = 0; k < keys; ++k) load[*ring.Owner(k * 2654435761u)]++;

  const double expected = static_cast<double>(keys) / static_cast<double>(members);
  for (const auto& [member, count] : load) {
    EXPECT_GT(static_cast<double>(count), expected * 0.4)
        << "member " << member << " underloaded";
    EXPECT_LT(static_cast<double>(count), expected * 1.9)
        << "member " << member << " overloaded";
  }
}

TEST_P(HashRingProperty, RemovalOnlyMovesVictimsKeys) {
  const std::size_t members = GetParam();
  if (members < 2) GTEST_SKIP();
  HashRing ring(64);
  for (std::size_t m = 1; m <= members; ++m) ring.Add(m);

  const std::size_t keys = 5000;
  std::map<std::uint64_t, std::uint64_t> before;
  for (std::size_t k = 0; k < keys; ++k)
    before[k] = *ring.Owner(k * 2654435761u);

  const std::uint64_t victim = members / 2;
  ring.Remove(victim);
  for (std::size_t k = 0; k < keys; ++k) {
    const std::uint64_t now = *ring.Owner(k * 2654435761u);
    if (before[k] != victim) {
      EXPECT_EQ(now, before[k]) << "non-victim key moved: " << k;
    } else {
      EXPECT_NE(now, victim);
    }
  }
}

TEST_P(HashRingProperty, WalkCoversAllAfterChurn) {
  const std::size_t members = GetParam();
  HashRing ring;
  for (std::size_t m = 1; m <= members; ++m) ring.Add(m);
  // Churn: remove every third member, add new high-numbered ones.
  for (std::size_t m = 3; m <= members; m += 3) ring.Remove(m);
  for (std::size_t m = 0; m < members / 4; ++m) ring.Add(1000 + m);

  const auto walk = ring.WalkFrom(42);
  std::set<std::uint64_t> seen(walk.begin(), walk.end());
  EXPECT_EQ(seen.size(), ring.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashRingProperty,
                         ::testing::Values(1, 2, 5, 16, 50, 150));

}  // namespace
}  // namespace vinelet::hash
