// VineSim: the cluster-scale simulated runtime.  Verifies the qualitative
// results the paper reports — L3 < L2 < L1 execution time, per-invocation
// run-time ordering, environment transfer counts, library dynamics, worker
// scaling, churn recovery — plus bit-level determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "storage/broadcast.hpp"

namespace vinelet::sim {
namespace {

SimConfig SmallConfig(core::ReuseLevel level, std::size_t workers = 10) {
  SimConfig config;
  config.level = level;
  config.cluster.num_workers = workers;
  config.seed = 42;
  return config;
}

TEST(VineSimTest, AllInvocationsComplete) {
  const WorkloadCosts costs = LnniCosts(16);
  VineSim sim(SmallConfig(core::ReuseLevel::kL3),
              BuildLnniWorkload(costs, 500));
  const SimResult result = sim.Run();
  EXPECT_EQ(result.invocations_completed, 500u);
  EXPECT_EQ(result.run_time.count(), 500u);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(VineSimTest, LevelsOrderedL3FastestL1Slowest) {
  // Enough invocations (and workers) that L3's one-time library rollout is
  // amortized, as in every paper experiment.
  const WorkloadCosts costs = LnniCosts(16);
  double makespans[3];
  for (int i = 0; i < 3; ++i) {
    const auto level = static_cast<core::ReuseLevel>(i + 1);
    VineSim sim(SmallConfig(level, 30), BuildLnniWorkload(costs, 5000));
    makespans[i] = sim.Run().makespan;
  }
  EXPECT_GT(makespans[0], makespans[1]) << "L1 must be slower than L2";
  EXPECT_GT(makespans[1], makespans[2]) << "L2 must be slower than L3";
  // Fig 6a shape: the L1/L3 gap is large.
  EXPECT_GT(makespans[0] / makespans[2], 4.0);
}

TEST(VineSimTest, RunTimeMeansOrderedAcrossLevels) {
  const WorkloadCosts costs = LnniCosts(16);
  double means[3];
  for (int i = 0; i < 3; ++i) {
    const auto level = static_cast<core::ReuseLevel>(i + 1);
    VineSim sim(SmallConfig(level, 30), BuildLnniWorkload(costs, 5000));
    means[i] = sim.Run().run_time.mean();
  }
  // Table 4 shape: L1 mean > L2 mean > L3 mean.
  EXPECT_GT(means[0], means[1]);
  EXPECT_GT(means[1], means[2]);
}

TEST(VineSimTest, DeterministicAcrossRuns) {
  const WorkloadCosts costs = LnniCosts(16);
  SimResult a = VineSim(SmallConfig(core::ReuseLevel::kL3),
                        BuildLnniWorkload(costs, 300))
                    .Run();
  SimResult b = VineSim(SmallConfig(core::ReuseLevel::kL3),
                        BuildLnniWorkload(costs, 300))
                    .Run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.run_times.size(), b.run_times.size());
  for (std::size_t i = 0; i < a.run_times.size(); ++i)
    EXPECT_DOUBLE_EQ(a.run_times[i], b.run_times[i]);
}

TEST(VineSimTest, DifferentSeedsDiffer) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config_a = SmallConfig(core::ReuseLevel::kL2);
  SimConfig config_b = config_a;
  config_b.seed = 43;
  SimResult a = VineSim(config_a, BuildLnniWorkload(costs, 300)).Run();
  SimResult b = VineSim(config_b, BuildLnniWorkload(costs, 300)).Run();
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(VineSimTest, L2FetchesEnvironmentOncePerWorker) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL2, 8);
  config.peer_transfers = false;
  VineSim sim(config, BuildLnniWorkload(costs, 400));
  const SimResult result = sim.Run();
  EXPECT_EQ(result.env_manager_transfers, 8u);  // exactly one per worker
  EXPECT_EQ(result.env_peer_transfers, 0u);
}

TEST(VineSimTest, PeerTransfersOffloadManagerLink) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL2, 12);
  config.peer_transfers = true;
  VineSim sim(config, BuildLnniWorkload(costs, 400));
  const SimResult result = sim.Run();
  // The first worker seeds from the manager; most of the rest go peer.
  EXPECT_GE(result.env_peer_transfers, 8u);
  EXPECT_LT(result.env_manager_transfers, 4u);
}

TEST(VineSimTest, L3DeploysOneLibraryPerSlot) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 5);
  config.track_series = true;
  // 32 cores / 2 cores-per-invocation = 16 slots per worker.
  VineSim sim(config, BuildLnniWorkload(costs, 2000));
  const SimResult result = sim.Run();
  EXPECT_EQ(result.libraries_deployed_total, 5u * 16u);  // Fig 10 peak shape
  EXPECT_EQ(result.libraries_peak_active, 5u * 16u);
  // Share value grows to invocations / libraries (Fig 11 shape).
  ASSERT_FALSE(result.avg_share_value.empty());
  const double final_share = result.avg_share_value.points().back().value;
  EXPECT_NEAR(final_share, 2000.0 / 80.0, 1.0);
  // Share value is non-decreasing once all libraries are deployed.
  const auto& points = result.avg_share_value.points();
  for (std::size_t i = points.size() / 2; i + 1 < points.size(); ++i)
    EXPECT_LE(points[i].value, points[i + 1].value + 1e-9);
}

TEST(VineSimTest, LibrarySlotStrategyControlsInstanceCount) {
  // §3.5.2's two strategies: k one-slot libraries vs one k-slot library.
  const WorkloadCosts costs = LnniCosts(16);
  auto deployed = [&](std::uint32_t k) {
    SimConfig config = SmallConfig(core::ReuseLevel::kL3, 5);
    config.library_slots = k;
    VineSim sim(config, BuildLnniWorkload(costs, 1000));
    return sim.Run().libraries_deployed_total;
  };
  EXPECT_EQ(deployed(1), 5u * 16u);  // one instance per slot (Fig 10)
  EXPECT_EQ(deployed(16), 5u);       // one whole-worker instance each
  EXPECT_EQ(deployed(4), 5u * 4u);
}

TEST(VineSimTest, WholeWorkerLibrariesStillCompleteEverything) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 4);
  config.library_slots = 16;
  VineSim sim(config, BuildLnniWorkload(costs, 800));
  const SimResult result = sim.Run();
  EXPECT_EQ(result.invocations_completed, 800u);
}

TEST(VineSimTest, MoreWorkersHelpL3OnlyUpToManagerBound) {
  // Fig 9 shape: L3 at 10 -> 25 workers improves a lot; 50 -> 150 barely.
  const WorkloadCosts costs = LnniCosts(16);
  auto run = [&](std::size_t workers) {
    VineSim sim(SmallConfig(core::ReuseLevel::kL3, workers),
                BuildLnniWorkload(costs, 10000));
    return sim.Run().makespan;
  };
  const double at10 = run(10);
  const double at25 = run(25);
  const double at50 = run(50);
  const double at150 = run(150);
  EXPECT_GT(at10 / at25, 1.8);   // compute-bound regime
  EXPECT_LT(at50 / at150, 1.7);  // manager-bound regime: little gain
}

TEST(VineSimTest, LongerInvocationsShrinkSpeedup) {
  // Fig 8 shape: the L1/L3 gap narrows as invocations run longer.
  const WorkloadCosts short_costs = LnniCosts(16);
  const WorkloadCosts long_costs = LnniCosts(1600);
  auto gap = [&](const WorkloadCosts& costs) {
    const double l1 =
        VineSim(SmallConfig(core::ReuseLevel::kL1, 40),
                BuildLnniWorkload(costs, 3000))
            .Run()
            .makespan;
    const double l3 =
        VineSim(SmallConfig(core::ReuseLevel::kL3, 40),
                BuildLnniWorkload(costs, 3000))
            .Run()
            .makespan;
    return l1 / l3;
  };
  EXPECT_GT(gap(short_costs), gap(long_costs) * 1.5);
}

TEST(VineSimTest, WorkerChurnStillCompletesEverything) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 6);
  config.worker_mean_lifetime_s = 60.0;
  config.worker_respawn_delay_s = 5.0;
  config.track_series = true;
  VineSim sim(config, BuildLnniWorkload(costs, 1500));
  const SimResult result = sim.Run();
  EXPECT_EQ(result.invocations_completed, 1500u);
  EXPECT_GT(result.worker_deaths, 0u);
  // Churn forces redeployments: cumulative > one per slot (Fig 10's
  // "deployed libraries keep growing").
  EXPECT_GT(result.libraries_deployed_total, 6u * 16u);
}

TEST(VineSimTest, ManagerUtilizationHighAtL1LowAtL3) {
  const WorkloadCosts costs = LnniCosts(16);
  const SimResult l1 = VineSim(SmallConfig(core::ReuseLevel::kL1, 30),
                               BuildLnniWorkload(costs, 5000))
                           .Run();
  const SimResult l3 = VineSim(SmallConfig(core::ReuseLevel::kL3, 30),
                               BuildLnniWorkload(costs, 5000))
                           .Run();
  // The paper's Q3 story: stateless dispatch saturates the manager.
  EXPECT_GT(l1.manager_utilization, 0.8);
  EXPECT_LT(l3.manager_utilization, 0.6);
  EXPECT_GT(l1.manager_utilization, l3.manager_utilization * 2.0);
}

TEST(VineSimTest, ExamolMixRunsAllClasses) {
  const WorkloadCosts simulate = ExamolSimulateCosts();
  const WorkloadCosts train = ExamolTrainCosts();
  const WorkloadCosts infer = ExamolInferCosts();
  Rng rng(7);
  auto workload = BuildExamolWorkload(simulate, train, infer, 300, rng);
  ASSERT_EQ(workload.size(), 300u);
  int classes[3] = {0, 0, 0};
  for (const auto& spec : workload) {
    if (spec.costs == &simulate) ++classes[0];
    if (spec.costs == &train) ++classes[1];
    if (spec.costs == &infer) ++classes[2];
  }
  EXPECT_GT(classes[0], classes[1]);  // simulations dominate
  EXPECT_GT(classes[1], 0);
  EXPECT_GT(classes[2], 0);

  SimConfig config = SmallConfig(core::ReuseLevel::kL2, 10);
  VineSim sim(config, workload);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.invocations_completed, 300u);
}

TEST(VineSimTest, ExamolL2BeatsL1) {
  const WorkloadCosts simulate = ExamolSimulateCosts();
  const WorkloadCosts train = ExamolTrainCosts();
  const WorkloadCosts infer = ExamolInferCosts();
  Rng rng_a(7), rng_b(7);
  auto wl_a = BuildExamolWorkload(simulate, train, infer, 400, rng_a);
  auto wl_b = BuildExamolWorkload(simulate, train, infer, 400, rng_b);
  const double l1 =
      VineSim(SmallConfig(core::ReuseLevel::kL1, 15), wl_a).Run().makespan;
  const double l2 =
      VineSim(SmallConfig(core::ReuseLevel::kL2, 15), wl_b).Run().makespan;
  // Fig 6b shape: L2 wins, but by a moderate factor (tasks are long).
  EXPECT_GT(l1, l2);
  EXPECT_LT(l1 / l2, 4.0);
}

TEST(VineSimTest, HistogramShiftsLeftWithReuse) {
  // Fig 7 shape: the run-time distribution moves left from L1 to L3.
  const WorkloadCosts costs = LnniCosts(16);
  auto percentile90 = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() * 9 / 10];
  };
  const auto l1 = VineSim(SmallConfig(core::ReuseLevel::kL1, 15),
                          BuildLnniWorkload(costs, 4000))
                      .Run();
  const auto l3 = VineSim(SmallConfig(core::ReuseLevel::kL3, 15),
                          BuildLnniWorkload(costs, 4000))
                      .Run();
  EXPECT_GT(percentile90(l1.run_times), percentile90(l3.run_times) * 1.5);
}

TEST(VineSimTest, TraceRecordsEveryInvocationConsistently) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL2, 5);
  config.track_trace = true;
  VineSim sim(config, BuildLnniWorkload(costs, 300));
  const SimResult result = sim.Run();
  ASSERT_EQ(result.trace.size(), 300u);
  std::set<std::size_t> seen;
  for (const auto& t : result.trace) {
    EXPECT_LE(t.dispatched, t.started);
    EXPECT_LT(t.started, t.finished);
    EXPECT_LT(t.worker, 5u);
    seen.insert(t.invocation);
  }
  EXPECT_EQ(seen.size(), 300u);  // every invocation traced exactly once
  // Trace run times agree with the aggregate statistics.
  double sum = 0;
  for (const auto& t : result.trace) sum += t.finished - t.started;
  EXPECT_NEAR(sum / 300.0, result.run_time.mean(), 1e-9);
}

TEST(VineSimTest, TraceCsvWellFormed) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 3);
  config.track_trace = true;
  VineSim sim(config, BuildLnniWorkload(costs, 50));
  const SimResult result = sim.Run();
  const std::string csv = TraceToCsv(result.trace);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 51);  // header + rows
  EXPECT_EQ(csv.rfind("invocation,worker,group", 0), 0u);
}

TEST(VineSimTest, TracePhaseColumnsFilled) {
  const WorkloadCosts costs = LnniCosts(16);
  for (auto level : {core::ReuseLevel::kL1, core::ReuseLevel::kL2,
                     core::ReuseLevel::kL3}) {
    SimConfig config = SmallConfig(level, 3);
    config.track_trace = true;
    VineSim sim(config, BuildLnniWorkload(costs, 50));
    const SimResult result = sim.Run();
    ASSERT_EQ(result.trace.size(), 50u);
    for (const auto& t : result.trace) {
      EXPECT_EQ(t.level, static_cast<int>(level));
      EXPECT_GE(t.transfer_s, 0.0);
      EXPECT_GE(t.unpack_s, 0.0);
      EXPECT_GE(t.setup_s, 0.0);
      // Every level executes the function body.
      EXPECT_GT(t.exec_s, 0.0);
      // The phases fit inside the invocation's worker-side window.
      EXPECT_LE(t.setup_s + t.exec_s, (t.finished - t.started) + 1e-9);
    }
  }
  // The CSV carries the new columns on the same (stable-prefix) header.
  SimConfig config = SmallConfig(core::ReuseLevel::kL2, 3);
  config.track_trace = true;
  VineSim sim(config, BuildLnniWorkload(costs, 10));
  const std::string csv = TraceToCsv(sim.Run().trace);
  EXPECT_EQ(csv.rfind("invocation,worker,group,dispatched,started,finished,"
                      "run_time,level,transfer_s,unpack_s,setup_s,exec_s\n",
                      0),
            0u);
}

TEST(VineSimTest, ChunkedEnvDistributionBeatsWholeBlobAndMatchesAnalytic) {
  // The Fig-3 pipelining claim, in simulation: same cluster, same workload,
  // the only difference is env_chunk_bytes.  Costs are stripped to the
  // transfer path (no noise, no stragglers, negligible dispatch) so the DES
  // distribution makespan is comparable to the analytic planner's.
  WorkloadCosts costs = LnniCosts(16);
  costs.manager_l2 = {1e-6, 1e-6};
  costs.exec_noise_sigma = 0.0;
  costs.straggler_prob = 0.0;
  costs.unpack_cpu_s = 0.1;  // excluded from the distribution makespan

  constexpr std::uint64_t kChunkBytes = 4ull << 20;
  SimConfig config;
  config.level = core::ReuseLevel::kL2;
  config.cluster.num_workers = 64;
  // Manager provisioned with fanout × worker bandwidth so each root edge of
  // the tree runs at full worker-link rate (the bench's Fig-3 setup).
  config.cluster.manager_link_Bps = 3 * config.cluster.worker_link_Bps;
  config.env_fanout = 3;

  config.env_chunk_bytes = 0;  // whole-blob store-and-forward
  const SimResult whole =
      VineSim(config, BuildLnniWorkload(costs, 256)).Run();
  config.env_chunk_bytes = kChunkBytes;  // pipelined cut-through
  const SimResult chunked =
      VineSim(config, BuildLnniWorkload(costs, 256)).Run();

  ASSERT_GT(whole.env_last_transfer_done_s, 0.0);
  ASSERT_GT(chunked.env_last_transfer_done_s, 0.0);
  // Acceptance gate: pipelining wins by at least 1.5× (expected ~3.9×: the
  // store-and-forward tree pays depth × blob_time, the pipeline pays
  // blob_time + depth × chunk_time).
  EXPECT_GE(whole.env_last_transfer_done_s / chunked.env_last_transfer_done_s,
            1.5);

  // Acceptance gate: DES and the pure planner agree within 10%.
  storage::BroadcastParams params;
  params.num_workers = config.cluster.num_workers;
  params.fanout_cap = config.env_fanout;
  const storage::ChunkParams chunk_params{
      static_cast<std::uint64_t>(costs.env_packed_bytes), kChunkBytes};
  auto plan = storage::PlanPipelinedBroadcast(params, chunk_params);
  ASSERT_TRUE(plan.ok());
  const double analytic = storage::EstimatePipelinedMakespan(
      *plan, chunk_params, config.cluster.worker_link_Bps,
      config.cluster.manager_link_Bps);
  EXPECT_NEAR(chunked.env_last_transfer_done_s / analytic, 1.0, 0.10);
  EXPECT_EQ(chunked.invocations_completed, 256u);
}

TEST(VineSimTest, EmptyWorkloadTerminates) {
  VineSim sim(SmallConfig(core::ReuseLevel::kL3), {});
  const SimResult result = sim.Run();
  EXPECT_EQ(result.invocations_completed, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

// ---------------------------------------------------------------------------
// Pass-by-reference data-plane mirror.
// ---------------------------------------------------------------------------

/// Fan-out DAG: `producers` invocations each emit `bytes`, then
/// `consumers_per` downstream invocations per producer consume that result
/// after the producers have finished (arrival-separated phases).
std::vector<InvocationSpec> FanOutWorkload(const WorkloadCosts& costs,
                                           std::size_t producers,
                                           std::size_t consumers_per,
                                           std::uint64_t bytes,
                                           double consumer_arrival_s) {
  std::vector<InvocationSpec> out;
  for (std::size_t p = 0; p < producers; ++p)
    out.push_back({&costs, 1.0, 0, 0.0, bytes, {}});
  for (std::size_t p = 0; p < producers; ++p)
    for (std::size_t c = 0; c < consumers_per; ++c)
      out.push_back({&costs, 1.0, 0, consumer_arrival_s, 0, {p}});
  return out;
}

TEST(VineSimTest, RefDataPlaneBypassesManagerRelay) {
  const WorkloadCosts costs = LnniCosts(16);
  const std::uint64_t kBytes = 64ull * 1024 * 1024;
  const std::size_t kProducers = 4, kConsumersPer = 4;
  const std::size_t kEdges = kProducers * kConsumersPer;

  SimConfig by_value = SmallConfig(core::ReuseLevel::kL3, 4);
  SimConfig by_ref = by_value;
  by_ref.ref_results = true;
  const auto workload =
      FanOutWorkload(costs, kProducers, kConsumersPer, kBytes, 200.0);

  const SimResult value_result = VineSim(by_value, workload).Run();
  const SimResult ref_result = VineSim(by_ref, workload).Run();

  ASSERT_EQ(value_result.invocations_completed, kProducers + kEdges);
  ASSERT_EQ(ref_result.invocations_completed, kProducers + kEdges);

  // By value every result crosses the manager twice per edge (retrieve +
  // consumer argument relay) and never moves peer-to-peer.
  EXPECT_EQ(value_result.manager_relayed_result_bytes,
            kBytes * (kProducers + kEdges));
  EXPECT_EQ(value_result.ref_p2p_fetches, 0u);
  EXPECT_EQ(value_result.ref_results, 0u);

  // By ref nothing transits the manager: results stay pinned on producers
  // and every edge is a co-located hit or a peer fetch.
  EXPECT_EQ(ref_result.manager_relayed_result_bytes, 0u);
  EXPECT_EQ(ref_result.ref_results, kProducers);
  EXPECT_EQ(ref_result.ref_p2p_fetches + ref_result.ref_local_hits, kEdges);
  EXPECT_EQ(ref_result.ref_manager_refetches, 0u);

  // Dropping the double relay cannot make the DAG slower.
  EXPECT_LE(ref_result.makespan, value_result.makespan + 1e-9);
}

TEST(VineSimTest, RefMirrorBitIdenticalWithoutDataEdges) {
  // The flag must be inert for workloads with no produces/consumes edges:
  // established experiments reproduce bit-identically under both settings.
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig by_value = SmallConfig(core::ReuseLevel::kL3, 10);
  SimConfig by_ref = by_value;
  by_ref.ref_results = true;

  const SimResult a = VineSim(by_value, BuildLnniWorkload(costs, 400)).Run();
  const SimResult b = VineSim(by_ref, BuildLnniWorkload(costs, 400)).Run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.run_times.size(), b.run_times.size());
  for (std::size_t i = 0; i < a.run_times.size(); ++i)
    EXPECT_DOUBLE_EQ(a.run_times[i], b.run_times[i]);
  EXPECT_EQ(b.manager_relayed_result_bytes, 0u);
  EXPECT_EQ(b.ref_p2p_fetches, 0u);
}

TEST(VineSimTest, RefReplicaLossFallsBackToManagerCopy) {
  // The producer's worker dies (and respawns with a new generation) before
  // the consumer fetches: with no live replica the consumer re-materializes
  // from the manager's cached copy instead of hanging.
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 2);
  config.ref_results = true;
  config.fault.kills.push_back({500.0, 1});  // endpoint 1 = sim worker 0
  config.fault.kills.push_back({500.0, 2});

  std::vector<InvocationSpec> workload;
  workload.push_back({&costs, 1.0, 0, 0.0, 1024 * 1024, {}});
  workload.push_back({&costs, 1.0, 0, 1000.0, 0, {0}});

  const SimResult result = VineSim(config, workload).Run();
  EXPECT_EQ(result.invocations_completed, 2u);
  EXPECT_EQ(result.injected_kills, 2u);
  EXPECT_EQ(result.ref_manager_refetches, 1u);
  EXPECT_EQ(result.ref_p2p_fetches, 0u);
  EXPECT_EQ(result.manager_relayed_result_bytes, 1024u * 1024u);
}

TEST(VineSimTest, RefDataPlaneDeterministic) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config = SmallConfig(core::ReuseLevel::kL3, 4);
  config.ref_results = true;
  const auto workload = FanOutWorkload(costs, 4, 4, 8ull << 20, 200.0);
  const SimResult a = VineSim(config, workload).Run();
  const SimResult b = VineSim(config, workload).Run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.ref_p2p_fetch_bytes, b.ref_p2p_fetch_bytes);
  EXPECT_EQ(a.ref_local_hits, b.ref_local_hits);
}

}  // namespace
}  // namespace vinelet::sim
