// TCP wire framing: header validation, incremental decode under arbitrary
// chunking, and round-trip identity for every protocol message type —
// including the zero-copy attachment path.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/protocol.hpp"
#include "net/framing.hpp"
#include "sample_messages.hpp"

namespace vinelet::net {
namespace {

using core::Message;

std::vector<std::uint8_t> EncodeOnWire(const WireHeader& header,
                                       const Blob& payload,
                                       const Blob& attachment) {
  std::array<std::uint8_t, kWireHeaderSize> raw{};
  WireHeader fixed = header;
  fixed.payload_len = static_cast<std::uint32_t>(payload.size());
  fixed.attach_len = static_cast<std::uint32_t>(attachment.size());
  EncodeWireHeader(fixed, raw);
  std::vector<std::uint8_t> bytes(kWireHeaderSize + payload.size() +
                                  attachment.size());
  std::memcpy(bytes.data(), raw.data(), kWireHeaderSize);
  if (!payload.empty())
    std::memcpy(bytes.data() + kWireHeaderSize, payload.data(),
                payload.size());
  if (!attachment.empty())
    std::memcpy(bytes.data() + kWireHeaderSize + payload.size(),
                attachment.data(), attachment.size());
  return bytes;
}

TEST(FramingTest, HeaderRoundTrip) {
  WireHeader header;
  header.kind = WireKind::kData;
  header.sender = 7;
  header.dest = 12;
  header.payload_len = 1234;
  header.attach_len = 99;
  std::array<std::uint8_t, kWireHeaderSize> raw{};
  EncodeWireHeader(header, raw);
  auto decoded = DecodeWireHeader(
      std::span<const std::uint8_t, kWireHeaderSize>(raw), FramingLimits{});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, WireKind::kData);
  EXPECT_EQ(decoded->sender, 7u);
  EXPECT_EQ(decoded->dest, 12u);
  EXPECT_EQ(decoded->payload_len, 1234u);
  EXPECT_EQ(decoded->attach_len, 99u);
}

TEST(FramingTest, HeaderRejectsGarbage) {
  WireHeader header;
  std::array<std::uint8_t, kWireHeaderSize> raw{};
  EncodeWireHeader(header, raw);
  const FramingLimits limits{};

  auto bad_magic = raw;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeWireHeader(
                std::span<const std::uint8_t, kWireHeaderSize>(bad_magic),
                limits)
                .status()
                .code(),
            ErrorCode::kDataLoss);

  auto bad_kind = raw;
  bad_kind[2] = 0;
  EXPECT_FALSE(
      DecodeWireHeader(std::span<const std::uint8_t, kWireHeaderSize>(bad_kind),
                       limits)
          .ok());
  bad_kind[2] = 200;
  EXPECT_FALSE(
      DecodeWireHeader(std::span<const std::uint8_t, kWireHeaderSize>(bad_kind),
                       limits)
          .ok());

  auto bad_reserved = raw;
  bad_reserved[3] = 1;
  EXPECT_FALSE(DecodeWireHeader(
                   std::span<const std::uint8_t, kWireHeaderSize>(bad_reserved),
                   limits)
                   .ok());
}

TEST(FramingTest, HeaderRejectsOversizedLengthsBeforeAllocation) {
  // A hostile header announcing a huge body must be rejected from the 28
  // header bytes alone — the decoder never allocates for it.
  WireHeader header;
  header.payload_len = 0xFFFFFFFFu;
  std::array<std::uint8_t, kWireHeaderSize> raw{};
  EncodeWireHeader(header, raw);
  FrameDecoder decoder;
  EXPECT_EQ(decoder.Feed(raw).code(), ErrorCode::kDataLoss);
  EXPECT_FALSE(decoder.status().ok());
  EXPECT_FALSE(decoder.Next().has_value());
  // Sticky: the stream is poisoned for good.
  EXPECT_FALSE(decoder.Feed(raw).ok());

  WireHeader attach_bomb;
  attach_bomb.attach_len = 0xFFFFFFFFu;
  EncodeWireHeader(attach_bomb, raw);
  FrameDecoder decoder2;
  EXPECT_EQ(decoder2.Feed(raw).code(), ErrorCode::kDataLoss);
}

TEST(FramingTest, ByteAtATimeDecode) {
  WireHeader header;
  header.sender = 3;
  header.dest = 4;
  const Blob payload = Blob::FromString("protocol header bytes");
  const Blob attachment = Blob::FromString("bulk attachment payload");
  const auto bytes = EncodeOnWire(header, payload, attachment);

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(decoder.Feed({&bytes[i], 1}).ok());
    ASSERT_FALSE(decoder.Next().has_value()) << "frame ready early at " << i;
  }
  ASSERT_TRUE(decoder.Feed({&bytes.back(), 1}).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.sender, 3u);
  EXPECT_EQ(frame->header.dest, 4u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->attachment, attachment);
  // Payload and attachment are slices of one refcounted body allocation.
  EXPECT_TRUE(frame->payload.SharesPayloadWith(frame->attachment));
}

TEST(FramingTest, CoalescedFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    WireHeader header;
    header.sender = static_cast<EndpointId>(i);
    header.dest = 0;
    const auto bytes =
        EncodeOnWire(header, Blob::FromString("m" + std::to_string(i)),
                     i % 2 == 0 ? Blob::FromString("attach") : Blob());
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(stream).ok());
  for (int i = 0; i < 5; ++i) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "missing frame " << i;
    EXPECT_EQ(frame->header.sender, static_cast<EndpointId>(i));
    EXPECT_EQ(frame->payload.ToString(), "m" + std::to_string(i));
  }
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, TruncatedStreamYieldsNoFrame) {
  WireHeader header;
  const auto bytes =
      EncodeOnWire(header, Blob::FromString("payload"), Blob::FromString("a"));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed({bytes.data(), cut}).ok()) << "cut=" << cut;
    EXPECT_FALSE(decoder.Next().has_value()) << "cut=" << cut;
  }
}

TEST(FramingTest, WirePrimitivesRoundTrip) {
  std::vector<std::uint8_t> buf;
  wire::AppendU32(buf, 0xDEADBEEFu);
  wire::AppendU64(buf, 0x0123456789ABCDEFull);
  wire::AppendString(buf, "hello world");
  std::span<const std::uint8_t> in(buf);
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::string text;
  ASSERT_TRUE(wire::TakeU32(in, u32));
  ASSERT_TRUE(wire::TakeU64(in, u64));
  ASSERT_TRUE(wire::TakeString(in, text));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(text, "hello world");
  EXPECT_TRUE(in.empty());

  // Underruns are reported, never overread.
  std::vector<std::uint8_t> short_buf = {1, 2, 3};
  std::span<const std::uint8_t> short_in(short_buf);
  EXPECT_FALSE(wire::TakeU32(short_in, u32));
  std::vector<std::uint8_t> lying_len;
  wire::AppendU32(lying_len, 1000);  // claims 1000 bytes, has none
  std::span<const std::uint8_t> lying_in(lying_len);
  EXPECT_FALSE(wire::TakeString(lying_in, text));
}

// ---------------------------------------------------------------------------
// Every protocol message through the framer.
// ---------------------------------------------------------------------------

// EncodeFrame -> wire bytes -> FrameDecoder -> DecodeFrame must be the
// identity for every message type, under every chunking of the stream.
TEST(FramingTest, EveryProtocolMessageSurvivesTheFramerByteAtATime) {
  const auto all = testing::AllSampleMessages();
  ASSERT_EQ(all.size(), std::variant_size_v<Message>);
  for (const Message& message : all) {
    const core::WireFrame encoded = core::EncodeFrame(message);
    WireHeader header;
    header.sender = 1;
    header.dest = 2;
    const auto bytes =
        EncodeOnWire(header, encoded.payload, encoded.attachment);

    FrameDecoder decoder;
    for (std::size_t i = 0; i < bytes.size(); ++i)
      ASSERT_TRUE(decoder.Feed({&bytes[i], 1}).ok());
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "type index " << message.index();

    auto decoded = core::DecodeFrame(
        net::Frame{frame->header.sender, frame->payload, frame->attachment});
    ASSERT_TRUE(decoded.ok())
        << "type index " << message.index() << ": "
        << decoded.status().ToString();
    EXPECT_EQ(decoded->index(), message.index());
    // Identity check: re-encoding the decoded message reproduces the
    // original serialization bit-for-bit.
    EXPECT_EQ(core::EncodeMessage(*decoded), core::EncodeMessage(message))
        << "type index " << message.index();
  }
}

TEST(FramingTest, EveryProtocolMessageSurvivesRandomizedChunkSplits) {
  const auto all = testing::AllSampleMessages();
  std::mt19937 rng(20240808u);
  for (int round = 0; round < 8; ++round) {
    // All messages coalesced into one TCP byte stream, split at random.
    std::vector<std::uint8_t> stream;
    for (const Message& message : all) {
      const core::WireFrame encoded = core::EncodeFrame(message);
      WireHeader header;
      header.sender = 1;
      header.dest = 2;
      const auto bytes =
          EncodeOnWire(header, encoded.payload, encoded.attachment);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    FrameDecoder decoder;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      std::uniform_int_distribution<std::size_t> dist(
          1, std::min<std::size_t>(stream.size() - pos, 257));
      const std::size_t take = dist(rng);
      ASSERT_TRUE(decoder.Feed({stream.data() + pos, take}).ok());
      pos += take;
    }
    for (const Message& message : all) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.has_value()) << "round " << round;
      auto decoded = core::DecodeFrame(
          net::Frame{frame->header.sender, frame->payload, frame->attachment});
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(core::EncodeMessage(*decoded), core::EncodeMessage(message));
    }
    EXPECT_FALSE(decoder.Next().has_value());
  }
}

TEST(FramingTest, AttachmentsDecodeZeroCopy) {
  // The chunk attachment decoded from the wire must be a slice of the
  // decoder's single body allocation — no per-attachment copy.
  core::PutChunkMsg chunk;
  chunk.decl = testing::SampleMsgDecl("zc");
  chunk.num_chunks = 1;
  chunk.chunk_bytes = 8;
  chunk.chunk = Blob::FromString("zerocopy");
  const core::WireFrame encoded = core::EncodeFrame(chunk);
  ASSERT_FALSE(encoded.attachment.empty());

  WireHeader header;
  const auto bytes = EncodeOnWire(header, encoded.payload, encoded.attachment);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  auto decoded = core::DecodeFrame(
      net::Frame{0, frame->payload, frame->attachment});
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<core::PutChunkMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->chunk, chunk.chunk);
  EXPECT_TRUE(out->chunk.SharesPayloadWith(frame->attachment));
}

}  // namespace
}  // namespace vinelet::net
