// CacheIndex: LRU ordering, pinning, eviction atomicity, and a
// parameterized random-workload property suite (capacity never exceeded,
// pinned entries never evicted).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "storage/cache_index.hpp"

namespace vinelet::storage {
namespace {

hash::ContentId Id(int n) {
  return hash::ContentId::OfText("entry-" + std::to_string(n));
}

TEST(CacheIndexTest, InsertAndTouch) {
  CacheIndex cache(100);
  ASSERT_TRUE(cache.Insert(Id(1), 40).ok());
  EXPECT_TRUE(cache.Contains(Id(1)));
  EXPECT_EQ(cache.SizeOf(Id(1)), 40u);
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_TRUE(cache.Touch(Id(1)));
  EXPECT_FALSE(cache.Touch(Id(2)));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheIndexTest, DuplicateInsertRejected) {
  CacheIndex cache(100);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  EXPECT_EQ(cache.Insert(Id(1), 10).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(CacheIndexTest, OversizedEntryRejected) {
  CacheIndex cache(100);
  EXPECT_EQ(cache.Insert(Id(1), 101).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(CacheIndexTest, UnboundedCacheNeverEvicts) {
  CacheIndex cache(0);
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(cache.Insert(Id(i), 1 << 20).ok());
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheIndexTest, LruEvictionOrder) {
  CacheIndex cache(30);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(2), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(3), 10).ok());
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Touch(Id(1)));
  auto evicted = cache.Insert(Id(4), 10);
  ASSERT_TRUE(evicted.ok());
  ASSERT_EQ(evicted->size(), 1u);
  EXPECT_EQ((*evicted)[0], Id(2));
  EXPECT_TRUE(cache.Contains(Id(1)));
  EXPECT_FALSE(cache.Contains(Id(2)));
}

TEST(CacheIndexTest, EvictionSkipsPinned) {
  CacheIndex cache(30);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(2), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(3), 10).ok());
  ASSERT_TRUE(cache.Pin(Id(1)).ok());  // oldest, but pinned
  auto evicted = cache.Insert(Id(4), 10);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ((*evicted)[0], Id(2));
  EXPECT_TRUE(cache.Contains(Id(1)));
}

TEST(CacheIndexTest, EvictionFailureIsAtomic) {
  CacheIndex cache(30);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(2), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(3), 10).ok());
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(cache.Pin(Id(i)).ok());
  // Nothing can be evicted: the insert fails and nothing is removed.
  EXPECT_EQ(cache.Insert(Id(4), 10).status().code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(cache.used_bytes(), 30u);
}

TEST(CacheIndexTest, MultiEntryEviction) {
  CacheIndex cache(30);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(2), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(3), 10).ok());
  auto evicted = cache.Insert(Id(4), 25);  // needs 25 free: evict 1, 2, 3
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted->size(), 3u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(CacheIndexTest, PinCounting) {
  CacheIndex cache(100);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Pin(Id(1)).ok());
  ASSERT_TRUE(cache.Pin(Id(1)).ok());
  EXPECT_EQ(cache.PinCount(Id(1)), 2);
  ASSERT_TRUE(cache.Unpin(Id(1)).ok());
  EXPECT_EQ(cache.PinCount(Id(1)), 1);
  ASSERT_TRUE(cache.Unpin(Id(1)).ok());
  EXPECT_EQ(cache.Unpin(Id(1)).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(cache.Pin(Id(9)).code(), ErrorCode::kNotFound);
}

TEST(CacheIndexTest, RemoveSemantics) {
  CacheIndex cache(100);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Pin(Id(1)).ok());
  EXPECT_EQ(cache.Remove(Id(1)).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(cache.Unpin(Id(1)).ok());
  ASSERT_TRUE(cache.Remove(Id(1)).ok());
  EXPECT_EQ(cache.Remove(Id(1)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(CacheIndexTest, StatsTrackBytes) {
  CacheIndex cache(20);
  ASSERT_TRUE(cache.Insert(Id(1), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(2), 10).ok());
  ASSERT_TRUE(cache.Insert(Id(3), 10).ok());  // evicts Id(1)
  EXPECT_EQ(cache.stats().inserted_bytes, 30u);
  EXPECT_EQ(cache.stats().evicted_bytes, 10u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// Property: random workloads over several capacities.
// ---------------------------------------------------------------------------

class CacheIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheIndexProperty, InvariantsUnderRandomWorkload) {
  const std::uint64_t capacity = GetParam();
  CacheIndex cache(capacity);
  Rng rng(capacity * 31 + 7);
  std::set<int> pinned;
  std::set<int> maybe_present;

  for (int step = 0; step < 3000; ++step) {
    const int key = static_cast<int>(rng.NextBelow(60));
    switch (rng.NextBelow(5)) {
      case 0: {  // insert
        const std::uint64_t size = 1 + rng.NextBelow(capacity / 4);
        auto evicted = cache.Insert(Id(key), size);
        if (evicted.ok()) {
          maybe_present.insert(key);
          for (const auto& victim : *evicted) {
            // No pinned entry is ever evicted.
            for (int p : pinned) EXPECT_NE(victim, Id(p));
          }
        }
        break;
      }
      case 1:  // touch
        (void)cache.Touch(Id(key));
        break;
      case 2:  // pin
        if (cache.Pin(Id(key)).ok()) pinned.insert(key);
        break;
      case 3:  // unpin
        if (pinned.contains(key)) {
          EXPECT_TRUE(cache.Unpin(Id(key)).ok());
          if (cache.PinCount(Id(key)) == 0) pinned.erase(key);
        }
        break;
      case 4:  // remove
        if (!pinned.contains(key) && cache.Remove(Id(key)).ok())
          maybe_present.erase(key);
        break;
    }
    // Core invariants, every step.
    ASSERT_LE(cache.used_bytes(), capacity);
    for (int p : pinned) ASSERT_TRUE(cache.Contains(Id(p)));
    // used_bytes equals the sum of entry sizes.
    std::uint64_t sum = 0;
    for (const auto& id : cache.Ids()) sum += cache.SizeOf(id).value();
    ASSERT_EQ(sum, cache.used_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheIndexProperty,
                         ::testing::Values(64, 256, 1024, 1 << 20));

}  // namespace
}  // namespace vinelet::storage
