// Flags: both argument forms, typed getters, unknown-flag rejection.
#include <gtest/gtest.h>

#include "common/flags.hpp"

namespace vinelet {
namespace {

Result<Flags> ParseArgs(std::vector<const char*> argv,
                        std::vector<std::string> allowed) {
  argv.insert(argv.begin(), "prog");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(FlagsTest, EqualsForm) {
  auto flags = ParseArgs({"--workers=150", "--level=3"}, {"workers", "level"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("workers", 0).value(), 150);
  EXPECT_EQ(flags->GetInt("level", 0).value(), 3);
}

TEST(FlagsTest, SpaceForm) {
  auto flags = ParseArgs({"--workers", "50"}, {"workers"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("workers", 0).value(), 50);
}

TEST(FlagsTest, BareFlagIsBoolean) {
  auto flags = ParseArgs({"--verbose", "--quick"}, {"verbose", "quick"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("verbose"));
  EXPECT_TRUE(flags->GetBool("quick"));
  EXPECT_FALSE(flags->GetBool("absent"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  auto flags = ParseArgs({"--workres=150"}, {"workers"});
  EXPECT_EQ(flags.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  auto flags = ParseArgs({"input.txt", "--n=3", "more"}, {"n"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto flags = ParseArgs({}, {"n", "ratio", "name"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7).value(), 7);
  EXPECT_DOUBLE_EQ(flags->GetDouble("ratio", 0.5).value(), 0.5);
  EXPECT_EQ(flags->GetString("name", "fallback"), "fallback");
  EXPECT_FALSE(flags->Has("n"));
}

TEST(FlagsTest, MalformedNumbersRejected) {
  auto flags = ParseArgs({"--n=abc", "--ratio=x.y"}, {"n", "ratio"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetInt("n", 0).ok());
  EXPECT_FALSE(flags->GetDouble("ratio", 0).ok());
}

TEST(FlagsTest, DoubleParsing) {
  auto flags = ParseArgs({"--ratio=2.75"}, {"ratio"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("ratio", 0).value(), 2.75);
}

}  // namespace
}  // namespace vinelet
