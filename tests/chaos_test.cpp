// Chaos harness: deterministic fault injection end-to-end.
//
// Three layers of coverage:
//  * injector mechanics — per-link / per-worker decision streams are
//    deterministic and independent of cross-link interleaving, corruption
//    never mutates the sender's blob, the Network honors drop / dup /
//    delay / block verdicts;
//  * seeded regression tests for the fault-path bugs the harness flushed
//    out (dispatch unwind, draining-gauge drift, lost transfer waiters,
//    setup-timing misattribution) — each drives the exact pre-fix code
//    path and asserts through Manager::CheckQuiescent();
//  * a chaos soak across fixed seeds: broadcast + task + library-call
//    waves under duplicates, delays, injected worker-side failures,
//    stragglers and worker churn, asserting that every future resolves
//    exactly once, every scheduler structure drains, gauges match their
//    true values, and every cached blob still hash-verifies.
//
// Soak plans deliberately keep drop_p = corrupt_p = 0: a dropped control
// frame has no ack/retransmit layer below the manager's probe paths, so a
// lost RunTask is *designed* to surface as a hang, not to self-heal.
// Drops, corruption and partitions get targeted tests instead.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "core/blob_ref.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "hash/content_id.hpp"
#include "net/fault.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace vinelet::core {
namespace {

using serde::ContextHandle;
using serde::FunctionContext;
using serde::InvocationEnv;
using serde::Value;

// ---------------------------------------------------------------------------
// Injector mechanics (no cluster needed).
// ---------------------------------------------------------------------------

net::FaultPlan NoisyPlan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.link.drop_p = 0.2;
  plan.link.dup_p = 0.2;
  plan.link.corrupt_p = 0.2;
  plan.link.delay_p = 0.2;
  plan.link.delay_min_s = 0.001;
  plan.link.delay_max_s = 0.01;
  return plan;
}

bool SameDecision(const net::SendDecision& a, const net::SendDecision& b) {
  return a.drop == b.drop && a.corrupt == b.corrupt && a.copies == b.copies &&
         a.delay_s == b.delay_s && a.corrupt_bit == b.corrupt_bit;
}

TEST(FaultInjectorTest, LinkStreamsIndependentOfInterleaving) {
  // The k-th message on link (0,1) must get the same verdict whether or
  // not unrelated links send in between — per-link streams, not one
  // global RNG.
  net::FaultInjector interleaved(NoisyPlan(7));
  net::FaultInjector solo(NoisyPlan(7));
  for (int i = 0; i < 64; ++i) {
    const net::SendDecision a = interleaved.OnSend(0, 1);
    // Noise on other links between every probe of the link under test.
    interleaved.OnSend(0, 2);
    interleaved.OnSend(3, 1);
    const net::SendDecision b = solo.OnSend(0, 1);
    EXPECT_TRUE(SameDecision(a, b)) << "diverged at message " << i;
  }
}

TEST(FaultInjectorTest, WorkerHookStreamsIndependentOfInterleaving) {
  net::FaultPlan plan;
  plan.seed = 11;
  plan.worker.setup_failure_p = 0.3;
  plan.worker.invocation_failure_p = 0.3;
  plan.worker.straggler_p = 0.3;
  plan.worker.straggler_delay_s = 1.0;
  net::FaultInjector interleaved(plan);
  net::FaultInjector solo(plan);
  for (int i = 0; i < 64; ++i) {
    const bool a = interleaved.InjectSetupFailure(2);
    // Different workers and different hooks draw from different streams.
    interleaved.InjectSetupFailure(1);
    interleaved.InjectInvocationFailure(2);
    interleaved.StragglerDelayS(2);
    EXPECT_EQ(a, solo.InjectSetupFailure(2)) << "diverged at draw " << i;
  }
}

TEST(FaultInjectorTest, CorruptCopyFlipsExactlyOneBitInACopy) {
  const Blob original = Blob::FromString(std::string(4096, 'x'));
  const Blob corrupted = net::FaultInjector::CorruptCopy(original, 12345);
  // The sender's blob is untouched...
  EXPECT_EQ(original, Blob::FromString(std::string(4096, 'x')));
  ASSERT_EQ(corrupted.size(), original.size());
  // ...and the copy differs in exactly one bit.
  int bits_changed = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original.data()[i] ^
                                                    corrupted.data()[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff = static_cast<unsigned char>(diff >> 1);
    }
  }
  EXPECT_EQ(bits_changed, 1);
  // Content addressing catches the flip.
  EXPECT_NE(hash::ContentId::Of(corrupted), hash::ContentId::Of(original));
}

TEST(FaultInjectorTest, NetworkDropsAreSilentToSender) {
  auto network = std::make_shared<net::Network>();
  net::FaultPlan plan;
  plan.seed = 3;
  plan.link.drop_p = 1.0;
  auto fault = std::make_shared<net::FaultInjector>(plan);
  network->SetFaultInjector(fault);
  auto inbox = network->Register(1);
  ASSERT_TRUE(inbox.ok());
  // The sender sees success; the frame never arrives.
  EXPECT_TRUE(network->Send(0, 1, Blob::FromString("doomed")).ok());
  EXPECT_FALSE(
      (*inbox)->RecvFor(std::chrono::milliseconds(100)).has_value());
  EXPECT_EQ(network->frames_delivered(), 0u);
  EXPECT_GE(fault->stats().dropped, 1u);
}

TEST(FaultInjectorTest, NetworkDuplicatesFrames) {
  auto network = std::make_shared<net::Network>();
  net::FaultPlan plan;
  plan.seed = 3;
  plan.link.dup_p = 1.0;
  auto fault = std::make_shared<net::FaultInjector>(plan);
  network->SetFaultInjector(fault);
  auto inbox = network->Register(1);
  ASSERT_TRUE(inbox.ok());
  ASSERT_TRUE(network->Send(0, 1, Blob::FromString("twice")).ok());
  auto first = (*inbox)->RecvFor(std::chrono::seconds(5));
  auto second = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload, second->payload);
  EXPECT_EQ(fault->stats().duplicated, 1u);
}

TEST(FaultInjectorTest, NetworkDelayHoldsFrameBack) {
  auto network = std::make_shared<net::Network>();
  net::FaultPlan plan;
  plan.seed = 3;
  plan.link.delay_p = 1.0;
  plan.link.delay_min_s = 0.05;
  plan.link.delay_max_s = 0.05;
  auto fault = std::make_shared<net::FaultInjector>(plan);
  network->SetFaultInjector(fault);
  auto inbox = network->Register(1);
  ASSERT_TRUE(inbox.ok());
  const auto sent_at = std::chrono::steady_clock::now();
  ASSERT_TRUE(network->Send(0, 1, Blob::FromString("late")).ok());
  // Not there immediately...
  EXPECT_FALSE((*inbox)->TryRecv().has_value());
  // ...but it arrives once the hold expires.
  auto frame = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sent_at)
          .count();
  EXPECT_GE(elapsed_s, 0.05);
  EXPECT_EQ(fault->stats().delayed, 1u);
}

TEST(FaultInjectorTest, BlockedLinkIsSilenceUntilHealed) {
  auto network = std::make_shared<net::Network>();
  auto fault = std::make_shared<net::FaultInjector>(net::FaultPlan{});
  network->SetFaultInjector(fault);
  auto inbox = network->Register(1);
  ASSERT_TRUE(inbox.ok());

  fault->BlockLink(0, 1, true);
  EXPECT_TRUE(fault->LinkBlocked(0, 1));
  EXPECT_FALSE(fault->LinkBlocked(1, 0));  // directional
  EXPECT_TRUE(network->Send(0, 1, Blob::FromString("void")).ok());
  EXPECT_FALSE(
      (*inbox)->RecvFor(std::chrono::milliseconds(100)).has_value());
  EXPECT_GE(fault->stats().blocked, 1u);

  fault->BlockLink(0, 1, false);
  ASSERT_TRUE(network->Send(0, 1, Blob::FromString("healed")).ok());
  auto frame = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, Blob::FromString("healed"));

  // Partition blocks both directions at once.
  fault->Partition(2, 3, true);
  EXPECT_TRUE(fault->LinkBlocked(2, 3));
  EXPECT_TRUE(fault->LinkBlocked(3, 2));
  fault->Partition(2, 3, false);
  EXPECT_FALSE(fault->LinkBlocked(2, 3));
}

TEST(FaultInjectorTest, TaskDoneTimingSurvivesWireRoundTrip) {
  // Regression for the deserialize_s split: all five breakdown fields must
  // travel through the frame codec, not just the original four.
  TaskDoneMsg done;
  done.id = 42;
  done.ok = true;
  done.timing.transfer_s = 1.0;
  done.timing.worker_s = 2.0;
  done.timing.deserialize_s = 3.0;
  done.timing.context_s = 4.0;
  done.timing.exec_s = 5.0;
  const WireFrame wire = EncodeFrame(done);
  auto decoded = DecodeFrame(net::Frame{7, wire.payload, wire.attachment});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto* round = std::get_if<TaskDoneMsg>(&*decoded);
  ASSERT_NE(round, nullptr);
  EXPECT_DOUBLE_EQ(round->timing.transfer_s, 1.0);
  EXPECT_DOUBLE_EQ(round->timing.worker_s, 2.0);
  EXPECT_DOUBLE_EQ(round->timing.deserialize_s, 3.0);
  EXPECT_DOUBLE_EQ(round->timing.context_s, 4.0);
  EXPECT_DOUBLE_EQ(round->timing.exec_s, 5.0);
  EXPECT_DOUBLE_EQ(round->timing.Total(), 15.0);
}

// ---------------------------------------------------------------------------
// Cluster harness.
// ---------------------------------------------------------------------------

/// Context retained by the test library (mirrors runtime_test).
class NumberContext final : public FunctionContext {
 public:
  explicit NumberContext(std::int64_t number) : number_(number) {}
  std::int64_t number() const noexcept { return number_; }
  std::uint64_t MemoryBytes() const override { return sizeof(*this); }

 private:
  std::int64_t number_;
};

class ChaosTest : public ::testing::Test {
 protected:
  void StartCluster(std::size_t workers, net::FaultPlan plan = {},
                    ManagerConfig manager_config = {},
                    Resources worker_resources = {32, 64 * 1024, 64 * 1024},
                    std::uint64_t ref_results_min_bytes = 0) {
    RegisterTestFunctions();
    network_ = std::make_shared<net::Network>();
    fault_ = std::make_shared<net::FaultInjector>(plan);
    network_->SetFaultInjector(fault_);
    manager_config.registry = registry_.get();
    manager_ = std::make_unique<Manager>(network_, manager_config);
    ASSERT_TRUE(manager_->Start().ok());
    // Injected faults land in the manager's always-on flight journal.
    fault_->SetFlightRecorder(&manager_->telemetry().flight);
    FactoryConfig factory_config;
    factory_config.initial_workers = workers;
    factory_config.worker_resources = worker_resources;
    factory_config.registry = registry_.get();
    factory_config.fault = fault_;
    factory_config.ref_results_min_bytes = ref_results_min_bytes;
    factory_ = std::make_unique<Factory>(network_, factory_config);
    ASSERT_TRUE(factory_->Start().ok());
    ASSERT_TRUE(manager_->WaitForWorkers(workers, 30.0).ok());
  }

  void TearDown() override {
    // Detach the journal before the manager (its owner) goes away.
    if (fault_) fault_->SetFlightRecorder(nullptr);
    if (manager_) manager_->Stop();
    if (factory_) factory_->Stop();
  }

  /// Polls CheckQuiescent until the cluster settles (transitional instance
  /// states count as violations) and returns the final report.
  QuiescenceReport WaitQuiescent(double timeout_s = 15.0) {
    QuiescenceReport report;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (true) {
      auto result = manager_->CheckQuiescent(5.0);
      if (result.ok()) {
        report = std::move(*result);
        if (report.quiescent) return report;
      }
      if (std::chrono::steady_clock::now() >= deadline) return report;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  /// Every blob every worker retained must still match its content hash —
  /// injected corruption/duplication must never reach a cache unverified.
  void VerifyWorkerStores() {
    for (WorkerId id : factory_->WorkerIds()) {
      Worker* worker = factory_->GetWorker(id);
      ASSERT_NE(worker, nullptr);
      for (const auto& entry : worker->store().List()) {
        auto blob = worker->store().Get(entry.id);
        ASSERT_TRUE(blob.ok())
            << "worker " << id << " lost a listed blob: "
            << blob.status().ToString();
        EXPECT_EQ(hash::ContentId::Of(*blob), entry.id)
            << "worker " << id << " retains a corrupted blob";
      }
    }
  }

  storage::FileDecl GhostDecl(bool cache) {
    storage::FileDecl ghost;
    ghost.name = "ghost";
    ghost.id = hash::ContentId::OfText("never stored anywhere");
    ghost.size = 10;
    ghost.cache = cache;
    return ghost;
  }

  void RegisterTestFunctions() {
    // A fresh registry per cluster: the soak starts one cluster per seed.
    registry_ = std::make_unique<serde::FunctionRegistry>();
    serde::FunctionDef add;
    add.name = "add";
    add.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      auto a = args.GetInt("a");
      if (!a.ok()) return a.status();
      auto b = args.GetInt("b");
      if (!b.ok()) return b.status();
      return Value(*a + *b);
    };
    ASSERT_TRUE(registry_->RegisterFunction(add).ok());

    serde::FunctionDef read_file;
    read_file.name = "read_file";
    read_file.fn = [](const Value& args,
                      const InvocationEnv& env) -> Result<Value> {
      auto name = args.GetString("name");
      if (!name.ok()) return name.status();
      if (!env.HasFile(*name)) return NotFoundError("missing: " + *name);
      return Value(static_cast<std::int64_t>(env.File(*name).size()));
    };
    ASSERT_TRUE(registry_->RegisterFunction(read_file).ok());

    serde::FunctionDef sleepy;
    sleepy.name = "sleepy";
    sleepy.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      auto ms = args.GetInt("ms");
      if (!ms.ok()) return ms.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
      return Value(true);
    };
    ASSERT_TRUE(registry_->RegisterFunction(sleepy).ok());

    serde::FunctionDef slow_ctx;
    slow_ctx.name = "slow_with_context";
    slow_ctx.setup_name = "number_setup";
    slow_ctx.fn = [](const Value& args,
                     const InvocationEnv& env) -> Result<Value> {
      auto ms = args.GetInt("ms");
      if (!ms.ok()) return ms.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
      const auto* ctx = dynamic_cast<const NumberContext*>(env.context);
      return Value(*ms + (ctx != nullptr ? ctx->number() : 0));
    };
    ASSERT_TRUE(registry_->RegisterFunction(slow_ctx).ok());

    serde::ContextSetupDef setup;
    setup.name = "number_setup";
    setup.fn = [](const Value& args,
                  const InvocationEnv&) -> Result<ContextHandle> {
      return ContextHandle(
          std::make_shared<NumberContext>(args.Get("number").AsInt()));
    };
    ASSERT_TRUE(registry_->RegisterSetup(setup).ok());

    serde::FunctionDef make_payload;
    make_payload.name = "make_payload";
    make_payload.setup_name = "number_setup";
    make_payload.fn = [](const Value& args,
                         const InvocationEnv&) -> Result<Value> {
      auto bytes = args.GetInt("bytes");
      if (!bytes.ok()) return bytes.status();
      auto fill = args.GetInt("fill");
      if (!fill.ok()) return fill.status();
      return Value(std::string(static_cast<std::size_t>(*bytes),
                               static_cast<char>('a' + *fill % 23)));
    };
    ASSERT_TRUE(registry_->RegisterFunction(make_payload).ok());

    // Consumer of a pass-by-reference result: positional args
    // [payload, sleep_ms], the shape the ref splice operates on.
    serde::FunctionDef probe_payload;
    probe_payload.name = "probe_payload";
    probe_payload.setup_name = "number_setup";
    probe_payload.fn = [](const Value& args,
                          const InvocationEnv&) -> Result<Value> {
      if (args.type() != Value::Type::kList || args.AsList().size() < 2)
        return InvalidArgumentError("probe_payload expects [payload, ms]");
      const Value& payload = args.AsList()[0];
      if (payload.type() != Value::Type::kString)
        return InvalidArgumentError("ref payload was not materialized");
      const std::int64_t ms = args.AsList()[1].AsInt();
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return Value(static_cast<std::int64_t>(payload.AsString().size()) +
                   payload.AsString()[0]);
    };
    ASSERT_TRUE(registry_->RegisterFunction(probe_payload).ok());

    serde::FunctionDef use_context;
    use_context.name = "use_context";
    use_context.setup_name = "number_setup";
    use_context.fn = [](const Value& args,
                        const InvocationEnv& env) -> Result<Value> {
      auto x = args.GetInt("x");
      if (!x.ok()) return x.status();
      const auto* ctx = dynamic_cast<const NumberContext*>(env.context);
      return Value(*x + (ctx != nullptr ? ctx->number() : 0));
    };
    ASSERT_TRUE(registry_->RegisterFunction(use_context).ok());
  }

  std::unique_ptr<serde::FunctionRegistry> registry_;
  std::shared_ptr<net::Network> network_;
  std::shared_ptr<net::FaultInjector> fault_;
  std::unique_ptr<Manager> manager_;
  std::unique_ptr<Factory> factory_;
};

// ---------------------------------------------------------------------------
// Regression tests for the fault-path fixes (seeded, deterministic).
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DispatchFailureUnwindsTask) {
  // An inline (cache=false) input whose payload was never stored makes
  // DispatchTask fail after the task was placed.  Pre-fix the task stayed
  // in running_tasks_ and the worker's set, so the later worker-death sweep
  // re-resolved the already-failed future and corrupted the claim ledger.
  StartCluster(1);
  auto future = manager_->SubmitTask(
      "read_file", Value::Dict({{"name", Value("ghost")}}),
      {GhostDecl(/*cache=*/false)}, Resources{1, 64, 64});
  auto outcome = future->Wait();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(future->resolutions(), 1u);

  // The unwind must leave the worker usable and the ledger consistent:
  // kill it (pre-fix: double-resolve fires here), replace it, run again.
  ASSERT_TRUE(factory_->KillWorker(factory_->WorkerIds()[0]).ok());
  ASSERT_TRUE(factory_->SpawnWorker().ok());
  auto ok_future = manager_->SubmitTask(
      "add", Value::Dict({{"a", Value(20)}, {"b", Value(22)}}), {},
      Resources{1, 64, 64});
  auto ok_outcome = ok_future->Wait();
  ASSERT_TRUE(ok_outcome.ok()) << ok_outcome.status().ToString();
  EXPECT_EQ(ok_outcome->value.AsInt(), 42);
  EXPECT_EQ(future->resolutions(), 1u);  // still exactly once

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
}

TEST_F(ChaosTest, MissingCachedInputFailsAllWaiters) {
  // A cached input whose payload the manager never stored: pre-fix,
  // StageFile registered a waiter on a transfer that could never start, so
  // every task waiting on it hung forever (WaitAll timed out).
  StartCluster(1);
  auto first = manager_->SubmitTask(
      "read_file", Value::Dict({{"name", Value("ghost")}}),
      {GhostDecl(/*cache=*/true)}, Resources{1, 64, 64});
  auto second = manager_->SubmitTask(
      "read_file", Value::Dict({{"name", Value("ghost")}}),
      {GhostDecl(/*cache=*/true)}, Resources{1, 64, 64});
  ASSERT_TRUE(manager_->WaitAll(30.0).ok()) << "waiters lost: WaitAll hung";
  EXPECT_FALSE(first->Wait().ok());
  EXPECT_FALSE(second->Wait().ok());
  EXPECT_EQ(first->resolutions(), 1u);
  EXPECT_EQ(second->resolutions(), 1u);

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
}

TEST_F(ChaosTest, DrainingLibraryGaugesSurviveWorkerDeath) {
  // Wedge an instance in kDraining by blocking the worker->manager link
  // (the LibraryRemovedMsg never arrives), then kill the worker.  Pre-fix
  // OnWorkerDead skipped draining instances when rolling back the
  // libraries_active / retained_context_bytes gauges, so they drifted up
  // forever — CheckQuiescent catches the mismatch.
  StartCluster(1);
  auto spec_a = manager_->CreateLibraryFromFunctions(
      "lib_a", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(1)}}));
  ASSERT_TRUE(spec_a.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec_a).ok());
  ASSERT_TRUE(manager_
                  ->SubmitCall("lib_a", "use_context",
                               Value::Dict({{"x", Value(0)}}))
                  ->Wait()
                  .ok());

  // Silence the worker's replies, then starve lib_a out: the eviction
  // starts (manager-side counter ticks) but can never complete.
  fault_->BlockLink(1, net::kManagerEndpoint, true);
  auto spec_b = manager_->CreateLibraryFromFunctions(
      "lib_b", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(2)}}));
  ASSERT_TRUE(spec_b.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec_b).ok());
  auto future = manager_->SubmitCall("lib_b", "use_context",
                                     Value::Dict({{"x", Value(40)}}));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (manager_->metrics().libraries_evicted < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(manager_->metrics().libraries_evicted, 1u)
      << "eviction never started";

  // Kill the worker while lib_a is wedged mid-drain.
  ASSERT_TRUE(factory_->KillWorker(1).ok());
  fault_->BlockLink(1, net::kManagerEndpoint, false);
  ASSERT_TRUE(factory_->SpawnWorker().ok());

  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 42);

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
  // Only lib_b's replacement instance survives; the draining instance's
  // share of both gauges was released with the dead worker.
  EXPECT_EQ(manager_->metrics().libraries_active, 1u);
  EXPECT_EQ(manager_->metrics().retained_context_bytes,
            sizeof(NumberContext));
}

TEST_F(ChaosTest, AffinityIndexForgetsDeadWorker) {
  // The affinity index must drop a dead worker's entries the moment the
  // death sweep runs: a stale (library -> dead worker) pair would keep
  // routing popular arrivals at a corpse, and the CheckQuiescent affinity
  // audit — which recomputes the table from the instance map — flags it.
  // Spread one whole-worker instance per worker with a slow call burst,
  // kill a worker the affinity set names, and require a clean settle.
  StartCluster(3);
  auto spec = manager_->CreateLibraryFromFunctions(
      "sticky", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(40)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  // Enough backlog that the autoscaler recruits every worker while the
  // first instance is still grinding through its queue.
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(manager_->SubmitCall(
        "sticky", "slow_with_context", Value::Dict({{"ms", Value(60)}})));
  }

  // Wait until the affinity set spans at least two workers, then kill one
  // of the workers it names.
  WorkerId victim = 0;
  bool spread = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!spread && std::chrono::steady_clock::now() < deadline) {
    auto status = manager_->QueryStatus();
    if (status.ok()) {
      for (const auto& set : status->scheduler.affinity_sets) {
        if (set.library == "sticky" && set.workers.size() >= 2) {
          victim = set.workers.back();
          spread = true;
          break;
        }
      }
    }
    if (!spread) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(spread) << "library never spread across workers";
  ASSERT_TRUE(factory_->KillWorker(victim).ok());
  ASSERT_TRUE(factory_->SpawnWorker().ok());

  ASSERT_TRUE(manager_->WaitAll(60.0).ok()) << "a future never resolved";
  for (const auto& future : futures) {
    ASSERT_TRUE(future->Ready());
    EXPECT_EQ(future->resolutions(), 1u);
    auto outcome = future->Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->value.AsInt(), 100);
  }

  // The audit recomputes the affinity table from the instance map; a
  // leftover entry for the dead worker shows up as a violation.
  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
  EXPECT_EQ(report.affinity_entries, report.affinity_warm_gauge);
  auto status = manager_->QueryStatus();
  ASSERT_TRUE(status.ok());
  for (const auto& set : status->scheduler.affinity_sets) {
    for (WorkerId worker : set.workers)
      EXPECT_NE(worker, victim) << "stale affinity entry for dead worker";
  }
}

TEST_F(ChaosTest, LibrarySetupSeparatesDeserializeFromContext) {
  // Pre-fix, LibraryRuntime::Setup charged function-blob deserialization
  // to context_s.  With an 8 MB function blob and a trivial context, the
  // deserialize share must dominate — and be reported in its own field.
  StartCluster(1);
  LibraryOptions options;
  options.function_code_size = 8 * 1024 * 1024;
  auto spec = manager_->CreateLibraryFromFunctions(
      "big", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  auto outcome =
      manager_->SubmitCall("big", "use_context", Value::Dict({{"x", Value(1)}}))
          ->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  const TimingBreakdown setup = manager_->metrics().last_library_setup;
  EXPECT_GT(setup.deserialize_s, 0.0);
  // Hashing 8 MB dwarfs constructing one NumberContext; pre-fix the hash
  // time landed in context_s and this inverts.
  EXPECT_LT(setup.context_s, setup.deserialize_s);
  EXPECT_GE(setup.worker_s, 0.0);
}

TEST_F(ChaosTest, LibrarySetupFailuresRetryUntilReady) {
  // Injected setup failures surface as install-then-removed; the manager
  // must release the instance and redeploy until the seeded stream lets
  // one through.
  net::FaultPlan plan;
  plan.seed = 17;
  plan.worker.setup_failure_p = 0.5;
  StartCluster(1, plan);
  auto spec = manager_->CreateLibraryFromFunctions(
      "flaky", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(5)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  auto outcome = manager_
                     ->SubmitCall("flaky", "use_context",
                                  Value::Dict({{"x", Value(2)}}))
                     ->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 7);

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
}

TEST_F(ChaosTest, DuplicatedFramesDoNotDoubleCount) {
  // Deliver every frame twice (dup_p = 1).  Pre-fix, the redelivered
  // LibraryReadyMsg found the instance already kReady and re-counted the
  // deployment, double-adding libraries_active and retained_context_bytes —
  // the drift the chaos soak flushed out at seed 2.
  net::FaultPlan plan;
  plan.seed = 5;
  plan.link.dup_p = 1.0;
  StartCluster(1, plan);
  auto spec = manager_->CreateLibraryFromFunctions(
      "dup", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(40)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  auto outcome = manager_
                     ->SubmitCall("dup", "use_context",
                                  Value::Dict({{"x", Value(2)}}))
                     ->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 42);
  EXPECT_EQ(manager_->metrics().libraries_deployed, 1u);

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
  EXPECT_EQ(manager_->metrics().libraries_active, 1u);
  EXPECT_EQ(manager_->metrics().retained_context_bytes,
            sizeof(NumberContext));
}

TEST_F(ChaosTest, DuplicatedBatchFramesResolveEachItemOnce) {
  // Deliver every frame twice (dup_p = 1): the batched dispatch arrives
  // twice at the worker and every per-item InvocationDoneMsg arrives twice
  // at the manager.  Each future must still resolve exactly once with its
  // own result — batching must not widen the duplicate-delivery surface.
  net::FaultPlan plan;
  plan.seed = 13;
  plan.link.dup_p = 1.0;
  StartCluster(1, plan);
  LibraryOptions options;
  options.slots = 4;
  options.exec_mode = ExecMode::kFork;
  options.resources = Resources{4, 1024, 1024};
  auto spec = manager_->CreateLibraryFromFunctions(
      "batched", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(100)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  // Burst before the instance readies so the queue drains in batches.
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(manager_->SubmitCall("batched", "use_context",
                                           Value::Dict({{"x", Value(i)}})));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok()) << "a future never resolved";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)]->Ready());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->resolutions(), 1u);
    auto outcome = futures[static_cast<std::size_t>(i)]->Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->value.AsInt(), 100 + i);
  }
  auto status = manager_->QueryStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status->scheduler.max_batch_size, 2u);

  const QuiescenceReport report = WaitQuiescent();
  EXPECT_TRUE(report.quiescent) << report.ToString();
}

// ---------------------------------------------------------------------------
// Pass-by-reference data plane under churn: seeded soak legs that kill the
// replica-owning worker while consumers are fetching.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RefDataPlaneSoakSurvivesReplicaOwnerKills) {
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    net::FaultPlan plan;
    plan.seed = seed;
    plan.link.dup_p = 0.02;
    plan.link.delay_p = 0.05;
    plan.link.delay_min_s = 0.0005;
    plan.link.delay_max_s = 0.005;
    StartCluster(3, plan, {}, Resources{32, 64 * 1024, 64 * 1024},
                 /*ref_results_min_bytes=*/64 * 1024);

    // Whole-worker instances: the autoscaler must recruit a second worker
    // to absorb the consumer backlog, which is what replicates the payload
    // off its producer via peer fetches.
    LibraryOptions options;
    options.slots = 2;
    options.resources = Resources{32, 1024, 1024};
    auto spec = manager_->CreateLibraryFromFunctions(
        "data", {"make_payload", "probe_payload"}, "number_setup",
        Value::Dict({{"number", Value(0)}}), nullptr, options);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

    // Producer: a 256 KB result over the 64 KB threshold must come back as
    // a content-addressed ref, not inline bytes.
    const std::int64_t kBytes = 256 * 1024;
    auto producer = manager_->SubmitCall(
        "data", "make_payload",
        Value::Dict({{"bytes", Value(kBytes)}, {"fill", Value(1)}}));
    auto produced = producer->Wait();
    ASSERT_TRUE(produced.ok()) << produced.status().ToString();
    const auto ref = TryUnwrapRef(produced->value);
    ASSERT_TRUE(ref.has_value()) << "large result did not ship by reference";
    EXPECT_GE(ref->size, static_cast<std::uint64_t>(kBytes));
    const WorkerId owner = ref->owner;
    EXPECT_NE(owner, 0u);
    const std::int64_t expected = kBytes + 'b';

    // Wave 1: a slow consumer backlog.  Some consumers land off the owner,
    // fetch the payload peer-to-peer, and become replicas themselves.
    std::vector<FuturePtr> wave1;
    for (int i = 0; i < 24; ++i) {
      wave1.push_back(manager_->SubmitCall(
          "data", "probe_payload",
          Value::List({produced->value, Value(60)})));
    }
    ASSERT_TRUE(manager_->WaitAll(120.0).ok()) << "wave-1 consumer stuck";
    for (const auto& future : wave1) {
      auto outcome = future->Wait();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->value.AsInt(), expected);
    }

    // The payload must now live on at least two workers (the FileReady
    // announcements land asynchronously, so poll).
    const auto holders = [&] {
      std::set<WorkerId> out;
      auto status = manager_->QueryStatus();
      if (status.ok()) {
        for (const auto& worker : status->workers)
          for (const auto& entry : worker.cache)
            if (entry.id == ref->id) out.insert(worker.id);
      }
      return out;
    };
    const auto spread_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (holders().size() < 2 &&
           std::chrono::steady_clock::now() < spread_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_GE(holders().size(), 2u) << "payload never replicated off owner";

    // Data-plane introspection counters saw the traffic.
    {
      auto status = manager_->QueryStatus();
      ASSERT_TRUE(status.ok());
      std::uint64_t fetched = 0, served = 0, held = 0;
      for (const auto& worker : status->workers) {
        fetched += worker.p2p_fetch_bytes;
        served += worker.p2p_serve_bytes;
        held += worker.refs_held;
      }
      EXPECT_GT(fetched, 0u);
      EXPECT_GT(served, 0u);
      EXPECT_GT(held, 0u);
    }

    // Wave 2: kill the producing owner while consumers are mid-fetch.  The
    // survivors must refetch from the next live replica — no stuck WaitAll,
    // every future resolves exactly once with the right answer.
    std::vector<FuturePtr> wave2;
    for (int i = 0; i < 8; ++i) {
      wave2.push_back(manager_->SubmitCall(
          "data", "probe_payload",
          Value::List({produced->value, Value(5)})));
    }
    ASSERT_TRUE(factory_->KillWorker(owner).ok());
    ASSERT_TRUE(factory_->SpawnWorker().ok());
    ASSERT_TRUE(manager_->WaitAll(120.0).ok())
        << "WaitAll stuck after replica-owner death";
    for (const auto& future : wave2) {
      ASSERT_TRUE(future->Ready());
      EXPECT_EQ(future->resolutions(), 1u);
      auto outcome = future->Wait();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->value.AsInt(), expected);
    }

    // Release the app's claim: the manager garbage-collects the replicas
    // and the quiescence audit (ref counts vs replica table) comes back
    // clean with nothing tracked.
    ASSERT_TRUE(manager_->ReleaseRef(*ref).ok());
    const QuiescenceReport report = WaitQuiescent(30.0);
    EXPECT_TRUE(report.quiescent) << report.ToString();
    EXPECT_EQ(report.refs_tracked, 0u);
    VerifyWorkerStores();

    fault_->SetFlightRecorder(nullptr);
    manager_->Stop();
    factory_->Stop();
    manager_.reset();
    factory_.reset();
    network_.reset();
    fault_.reset();
  }
}

// ---------------------------------------------------------------------------
// Chaos soak: fixed seeds, mixed workload, churn during broadcast and drain.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ChaosSoakDrainsCleanAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    net::FaultPlan plan;
    plan.seed = seed;
    plan.link.dup_p = 0.02;
    plan.link.delay_p = 0.05;
    plan.link.delay_min_s = 0.0005;
    plan.link.delay_max_s = 0.005;
    plan.worker.setup_failure_p = 0.05;
    plan.worker.invocation_failure_p = 0.02;
    plan.worker.task_failure_p = 0.02;
    plan.worker.straggler_p = 0.05;
    plan.worker.straggler_delay_s = 0.02;

    ManagerConfig config;
    config.max_attempts = 10;
    config.broadcast_probe_s = 0.1;
    StartCluster(3, plan, config, Resources{4, 8 * 1024, 8 * 1024});

    // Phase 1: churn during an active chunked broadcast.
    std::string text(1 << 20, '\0');
    for (std::size_t i = 0; i < text.size(); ++i)
      text[i] = static_cast<char>('a' + (i * 31 + seed) % 23);
    const Blob data = Blob::FromString(std::move(text));
    storage::FileDecl decl =
        manager_->DeclareBlob("model", data, storage::FileKind::kData, true);
    auto broadcast = manager_->BroadcastFile(decl, /*chunk_bytes=*/32 * 1024,
                                             /*fanout_cap=*/2);
    ASSERT_TRUE(factory_->KillWorker(factory_->WorkerIds()[0]).ok());
    ASSERT_TRUE(factory_->SpawnWorker().ok());
    ASSERT_TRUE(broadcast->Wait().ok());

    // Phase 2: mixed task + invocation waves with a kill per wave.
    auto spec = manager_->CreateLibraryFromFunctions(
        "numbers", {"use_context"}, "number_setup",
        Value::Dict({{"number", Value(100)}}));
    ASSERT_TRUE(spec.ok());
    spec->resources = Resources{2, 1024, 1024};
    spec->slots = 2;
    spec->exec_mode = ExecMode::kFork;
    ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

    std::vector<FuturePtr> futures;
    futures.push_back(std::move(broadcast));
    for (int wave = 0; wave < 2; ++wave) {
      for (int i = 0; i < 6; ++i) {
        futures.push_back(manager_->SubmitTask(
            "sleepy", Value::Dict({{"ms", Value(10)}}), {},
            Resources{1, 64, 64}));
        futures.push_back(manager_->SubmitCall(
            "numbers", "use_context", Value::Dict({{"x", Value(i)}})));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      const auto ids = factory_->WorkerIds();
      ASSERT_FALSE(ids.empty());
      ASSERT_TRUE(
          factory_
              ->KillWorker(ids[(seed + static_cast<std::uint64_t>(wave)) %
                               ids.size()])
              .ok());
      ASSERT_TRUE(factory_->SpawnWorker().ok());
    }

    // Phase 3: force an eviction drain, with the drain racing a kill.
    auto spec_b = manager_->CreateLibraryFromFunctions(
        "other", {"use_context"}, "number_setup",
        Value::Dict({{"number", Value(200)}}));
    ASSERT_TRUE(spec_b.ok());
    spec_b->resources = Resources{2, 1024, 1024};
    spec_b->slots = 2;
    spec_b->exec_mode = ExecMode::kFork;
    ASSERT_TRUE(manager_->InstallLibrary(*spec_b).ok());
    for (int i = 0; i < 6; ++i) {
      futures.push_back(manager_->SubmitCall(
          "other", "use_context", Value::Dict({{"x", Value(i)}})));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      const auto ids = factory_->WorkerIds();
      ASSERT_FALSE(ids.empty());
      ASSERT_TRUE(factory_->KillWorker(ids[seed % ids.size()]).ok());
      ASSERT_TRUE(factory_->SpawnWorker().ok());
    }

    ASSERT_TRUE(manager_->WaitAll(180.0).ok()) << "a future never resolved";

    // Invariant 1: every future resolved exactly once.
    int succeeded = 0;
    for (const auto& future : futures) {
      ASSERT_TRUE(future->Ready());
      EXPECT_EQ(future->resolutions(), 1u);
      if (future->Wait().ok()) ++succeeded;
    }
    // Injected task/invocation failures surface as clean errors; churn
    // retries the rest, so the workload must mostly succeed.
    EXPECT_GE(succeeded, static_cast<int>(futures.size() / 2));

    // Invariant 2: every scheduler structure drains, gauges match reality.
    const QuiescenceReport report = WaitQuiescent(30.0);
    EXPECT_TRUE(report.quiescent) << report.ToString();

    // Invariant 3: every retained blob still hash-verifies.
    VerifyWorkerStores();

    // The plan actually fired, and the flight journal shows it.
    EXPECT_GT(fault_->stats().TotalInjected(), 0u);
    bool saw_injection_event = false;
    for (const auto& event : manager_->telemetry().flight.Dump()) {
      if (std::strncmp(event.tag, "inj-", 4) == 0) {
        saw_injection_event = true;
        break;
      }
    }
    EXPECT_TRUE(saw_injection_event);

    // Tear down this seed's cluster before the next iteration.
    fault_->SetFlightRecorder(nullptr);
    manager_->Stop();
    factory_->Stop();
    manager_.reset();
    factory_.reset();
    network_.reset();
    fault_.reset();
  }
}

}  // namespace
}  // namespace vinelet::core

// ---------------------------------------------------------------------------
// DES mirror: the same FaultPlan replays identically in virtual time.
// ---------------------------------------------------------------------------

namespace vinelet::sim {
namespace {

SimConfig FaultyConfig(std::uint64_t seed) {
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 6;
  config.seed = 42;
  config.fault.seed = seed;
  config.fault.worker.setup_failure_p = 0.1;
  config.fault.worker.invocation_failure_p = 0.05;
  config.fault.worker.straggler_p = 0.1;
  config.fault.worker.straggler_delay_s = 2.0;
  config.fault.kills.push_back({5.0, 2});
  config.fault.kills.push_back({12.0, 4});
  return config;
}

TEST(ChaosSimTest, FaultPlanReplaysIdentically) {
  const WorkloadCosts costs = LnniCosts(16);
  const SimResult a =
      VineSim(FaultyConfig(9), BuildLnniWorkload(costs, 600)).Run();
  const SimResult b =
      VineSim(FaultyConfig(9), BuildLnniWorkload(costs, 600)).Run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.run_times.size(), b.run_times.size());
  for (std::size_t i = 0; i < a.run_times.size(); ++i)
    EXPECT_DOUBLE_EQ(a.run_times[i], b.run_times[i]);
  EXPECT_EQ(a.injected_kills, b.injected_kills);
  EXPECT_EQ(a.injected_setup_failures, b.injected_setup_failures);
  EXPECT_EQ(a.injected_invocation_failures, b.injected_invocation_failures);
  EXPECT_EQ(a.injected_stragglers, b.injected_stragglers);
}

TEST(ChaosSimTest, DifferentFaultSeedsDiverge) {
  const WorkloadCosts costs = LnniCosts(16);
  const SimResult a =
      VineSim(FaultyConfig(9), BuildLnniWorkload(costs, 600)).Run();
  const SimResult b =
      VineSim(FaultyConfig(10), BuildLnniWorkload(costs, 600)).Run();
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(ChaosSimTest, ScheduledKillsApplied) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 6;
  // Libraries take ~20 s to roll out (env transfer + unpack + setup); kill
  // after that so the deaths destroy *deployed* instances, not in-flight
  // setups, and the respawned workers must redeploy.
  config.fault.kills.push_back({40.0, 1});
  config.fault.kills.push_back({60.0, 3});
  const SimResult result =
      VineSim(config, BuildLnniWorkload(costs, 2000)).Run();
  EXPECT_EQ(result.injected_kills, 2u);
  EXPECT_GE(result.worker_deaths, 2u);
  // Deaths force library redeployments yet everything still completes.
  EXPECT_EQ(result.invocations_completed, 2000u);
  EXPECT_GT(result.libraries_deployed_total, 6u * 16u);
}

TEST(ChaosSimTest, InjectedFailuresRequeueAndComplete) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 6;
  config.fault.worker.invocation_failure_p = 0.05;
  const SimResult result =
      VineSim(config, BuildLnniWorkload(costs, 800)).Run();
  EXPECT_GT(result.injected_invocation_failures, 0u);
  EXPECT_GE(result.requeued_invocations, result.injected_invocation_failures);
  EXPECT_EQ(result.invocations_completed, 800u);
}

TEST(ChaosSimTest, SetupFailuresRetriedUntilDeployed) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 4;
  config.fault.worker.setup_failure_p = 0.3;
  const SimResult result =
      VineSim(config, BuildLnniWorkload(costs, 500)).Run();
  EXPECT_GT(result.injected_setup_failures, 0u);
  EXPECT_EQ(result.invocations_completed, 500u);
}

TEST(ChaosSimTest, StragglersExtendRunTimes) {
  const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 6;
  const SimResult base = VineSim(config, BuildLnniWorkload(costs, 500)).Run();
  config.fault.worker.straggler_p = 0.3;
  config.fault.worker.straggler_delay_s = 5.0;
  const SimResult slow = VineSim(config, BuildLnniWorkload(costs, 500)).Run();
  EXPECT_GT(slow.injected_stragglers, 0u);
  EXPECT_EQ(slow.invocations_completed, 500u);
  // The injected delay is externally indistinguishable from slow execution.
  EXPECT_GE(slow.run_time.max(), 5.0);
  EXPECT_GT(slow.run_time.mean(), base.run_time.mean());
}

}  // namespace
}  // namespace vinelet::sim
