// Unit tests for the common module: Status/Result, ByteBuffer/Blob,
// Channel, Rng, stats containers, string utilities, clocks.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/channel.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace vinelet {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("widget missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "widget missing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: widget missing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(DataLossError("").code(), ErrorCode::kDataLoss);
  EXPECT_EQ(CancelledError("").code(), ErrorCode::kCancelled);
  EXPECT_EQ(TimeoutError("").code(), ErrorCode::kTimeout);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("no"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

// ---------------------------------------------------------------------------
// ByteBuffer / Blob
// ---------------------------------------------------------------------------

TEST(BytesTest, BufferAppendAndEquality) {
  ByteBuffer a("abc");
  ByteBuffer b;
  b.AppendByte('a');
  b.AppendByte('b');
  b.AppendByte('c');
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "abc");
  a.Append(b);
  EXPECT_EQ(a.size(), 6u);
}

TEST(BytesTest, FilledBuffer) {
  ByteBuffer buffer = ByteBuffer::Filled(100, 0x7F);
  EXPECT_EQ(buffer.size(), 100u);
  for (auto byte : buffer.vec()) EXPECT_EQ(byte, 0x7F);
}

TEST(BytesTest, BlobSharesPayloadOnCopy) {
  Blob original = Blob::FromString("shared payload");
  Blob copy = original;  // shares the pointer
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.data(), original.data());  // same underlying storage
}

TEST(BytesTest, BlobContentEquality) {
  EXPECT_EQ(Blob::FromString("x"), Blob::FromString("x"));
  EXPECT_FALSE(Blob::FromString("x") == Blob::FromString("y"));
}

TEST(BytesTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(17), "17 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(572ull * 1024 * 1024), "572.0 MB");
  EXPECT_EQ(FormatBytes(3ull * 1024 * 1024 * 1024), "3.0 GB");
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(ChannelTest, FifoOrder) {
  Channel<int> channel;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(channel.Send(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(channel.Recv(), i);
}

TEST(ChannelTest, TryRecvOnEmpty) {
  Channel<int> channel;
  EXPECT_EQ(channel.TryRecv(), std::nullopt);
}

TEST(ChannelTest, BoundedTrySendRespectsCapacity) {
  Channel<int> channel(2);
  EXPECT_TRUE(channel.TrySend(1));
  EXPECT_TRUE(channel.TrySend(2));
  EXPECT_FALSE(channel.TrySend(3));  // full
  channel.Recv();
  EXPECT_TRUE(channel.TrySend(3));
}

TEST(ChannelTest, CloseDrainsQueuedValues) {
  Channel<int> channel;
  channel.Send(1);
  channel.Send(2);
  channel.Close();
  EXPECT_FALSE(channel.Send(3));  // closed
  EXPECT_EQ(channel.Recv(), 1);
  EXPECT_EQ(channel.Recv(), 2);
  EXPECT_EQ(channel.Recv(), std::nullopt);  // drained
}

TEST(ChannelTest, RecvForTimesOut) {
  Channel<int> channel;
  auto result = channel.RecvFor(std::chrono::milliseconds(5));
  EXPECT_EQ(result, std::nullopt);
}

TEST(ChannelTest, CrossThreadHandoff) {
  Channel<int> channel;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) channel.Send(i);
    channel.Close();
  });
  int count = 0;
  long long sum = 0;
  while (auto v = channel.Recv()) {
    ++count;
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sum, 999LL * 1000 / 2);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(4242);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(4243);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identical
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng forked = a.Fork();
  EXPECT_NE(a.Next(), forked.Next());
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(77);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(0, 1);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bin 0
  hist.Add(3.0);   // bin 1
  hist.Add(9.99);  // bin 4
  hist.Add(-5.0);  // clamps into bin 0
  hist.Add(50.0);  // clamps into bin 4
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 2u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
}

TEST(HistogramTest, RenderContainsEveryBin) {
  Histogram hist(0.0, 4.0, 4);
  hist.Add(1.0);
  const std::string rendered = hist.Render(10);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

TEST(TimeSeriesTest, DownsampleKeepsEndpoints) {
  TimeSeries series;
  for (int i = 0; i <= 100; ++i) series.Add(i, 2.0 * i);
  auto down = series.Downsample(11);
  ASSERT_EQ(down.size(), 11u);
  EXPECT_DOUBLE_EQ(down.front().t, 0.0);
  EXPECT_DOUBLE_EQ(down.back().t, 100.0);
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall) {
  TimeSeries series;
  series.Add(1, 1);
  series.Add(2, 2);
  EXPECT_EQ(series.Downsample(10).size(), 2u);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("long", 2), "long");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock;
  EXPECT_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_EQ(clock.Now(), 1.5);
  clock.Set(10.0);
  EXPECT_EQ(clock.Now(), 10.0);
}

TEST(ClockTest, StopwatchMeasuresManualTime) {
  ManualClock clock;
  Stopwatch watch(clock);
  clock.Advance(2.0);
  EXPECT_DOUBLE_EQ(watch.Elapsed(), 2.0);
  watch.Restart();
  EXPECT_DOUBLE_EQ(watch.Elapsed(), 0.0);
}

TEST(ClockTest, WallClockIsMonotonic) {
  WallClock clock;
  const double a = clock.Now();
  const double b = clock.Now();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LogTest, ParseLogLevelAcceptsAnyCaseAndRejectsJunk) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST(LogTest, SinkCapturesFormattedLines) {
  const LogLevel saved = Log::GetLevel();
  std::vector<std::string> lines;
  Log::SetSink([&lines](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  Log::SetLevel(LogLevel::kInfo);

  VLOG_INFO("test-tag") << "value=" << 42;
  VLOG_DEBUG("test-tag") << "suppressed";

  Log::SetSink(nullptr);
  Log::SetLevel(saved);

  ASSERT_EQ(lines.size(), 1u);
  // "[<monotonic>] [INFO ] [t<id>] test-tag: value=42"
  EXPECT_NE(lines[0].find("[INFO ]"), std::string::npos);
  EXPECT_NE(lines[0].find("[t"), std::string::npos);
  EXPECT_NE(lines[0].find("test-tag: value=42"), std::string::npos);
  EXPECT_EQ(lines[0].front(), '[');
}

TEST(LogTest, LevelGatesEmission) {
  const LogLevel saved = Log::GetLevel();
  int emitted = 0;
  Log::SetSink([&emitted](LogLevel, std::string_view) { ++emitted; });

  Log::SetLevel(LogLevel::kError);
  VLOG_WARN("gate") << "below threshold";
  EXPECT_EQ(emitted, 0);
  VLOG_ERROR("gate") << "at threshold";
  EXPECT_EQ(emitted, 1);

  Log::SetLevel(LogLevel::kOff);
  VLOG_ERROR("gate") << "all off";
  EXPECT_EQ(emitted, 1);

  Log::SetSink(nullptr);
  Log::SetLevel(saved);
}

TEST(LogTest, MonotonicNowAdvancesAndThreadIdsAreStable) {
  const double a = Log::MonotonicNow();
  const double b = Log::MonotonicNow();
  EXPECT_GE(b, a);
  const std::uint64_t id1 = Log::CurrentThreadId();
  const std::uint64_t id2 = Log::CurrentThreadId();
  EXPECT_EQ(id1, id2);
  std::uint64_t other = 0;
  std::thread t([&other] { other = Log::CurrentThreadId(); });
  t.join();
  EXPECT_NE(other, id1);
}

}  // namespace
}  // namespace vinelet
