// DagEngine over a mock executor and over the real runtime: dependency
// ordering, fan-in/fan-out, failure propagation, diamond DAGs.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "core/factory.hpp"
#include "core/manager.hpp"
#include "dag/dag_engine.hpp"

namespace vinelet::dag {
namespace {

using serde::Value;

/// Task-mode AppCall for a named function.
AppCall TaskCall(const std::string& function) {
  AppCall call;
  call.function = function;
  return call;
}

/// Executor that runs calls inline on a worker thread pool of one, recording
/// execution order.
class MockExecutor final : public Executor {
 public:
  core::FuturePtr Execute(const AppCall& call, const Value& args) override {
    auto future = std::make_shared<core::OutcomeFuture>();
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(call.function);
    if (call.function == "boom") {
      future->Resolve(InternalError("boom"));
      return future;
    }
    // "sum": adds all numeric arguments (arguments arrive as a list).
    double total = 0;
    for (const auto& arg : args.AsList()) {
      if (arg.type() == Value::Type::kInt ||
          arg.type() == Value::Type::kFloat) {
        total += arg.AsNumber();
      }
    }
    core::Outcome outcome;
    outcome.value = Value(total);
    future->Resolve(std::move(outcome));
    return future;
  }

  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> order_;
};

TEST(DagEngineTest, SingleNode) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto future = engine.Submit(TaskCall("sum"), {Arg(Value(1)), Arg(Value(2))});
  auto result = future->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->AsNumber(), 3.0);
  EXPECT_EQ(engine.nodes_completed(), 1u);
}

TEST(DagEngineTest, ChainPropagatesValues) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto a = engine.Submit(TaskCall("sum"), {Arg(Value(1))});
  auto b = engine.Submit(TaskCall("sum"), {Arg(a), Arg(Value(10))});
  auto c = engine.Submit(TaskCall("sum"), {Arg(b), Arg(Value(100))});
  auto result = c->Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->AsNumber(), 111.0);
}

TEST(DagEngineTest, DiamondJoinsBothBranches) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto root = engine.Submit(TaskCall("sum"), {Arg(Value(1))});
  auto left = engine.Submit(TaskCall("sum"), {Arg(root), Arg(Value(10))});
  auto right = engine.Submit(TaskCall("sum"), {Arg(root), Arg(Value(20))});
  auto join = engine.Submit(TaskCall("sum"), {Arg(left), Arg(right)});
  auto result = join->Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->AsNumber(), 32.0);  // (1+10) + (1+20)
}

TEST(DagEngineTest, WideFanOut) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto root = engine.Submit(TaskCall("sum"), {Arg(Value(5))});
  std::vector<AppFuturePtr> leaves;
  for (int i = 0; i < 50; ++i)
    leaves.push_back(engine.Submit(TaskCall("sum"), {Arg(root), Arg(Value(i))}));
  engine.WaitAll();
  for (int i = 0; i < 50; ++i) {
    auto result = leaves[static_cast<std::size_t>(i)]->Wait();
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->AsNumber(), 5.0 + i);
  }
  EXPECT_EQ(engine.nodes_submitted(), 51u);
}

TEST(DagEngineTest, DependencyOrderRespected) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto a = engine.Submit(TaskCall("first"), {});
  auto b = engine.Submit(TaskCall("second"), {Arg(a)});
  auto c = engine.Submit(TaskCall("third"), {Arg(b)});
  engine.WaitAll();
  (void)c;
  const auto order = executor.order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
  EXPECT_EQ(order[2], "third");
}

TEST(DagEngineTest, FailurePropagatesDownstream) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto bad = engine.Submit(TaskCall("boom"), {});
  auto dependent = engine.Submit(TaskCall("sum"), {Arg(bad), Arg(Value(1))});
  auto grandchild = engine.Submit(TaskCall("sum"), {Arg(dependent)});
  EXPECT_FALSE(bad->Wait().ok());
  EXPECT_EQ(dependent->Wait().status().code(), ErrorCode::kCancelled);
  EXPECT_EQ(grandchild->Wait().status().code(), ErrorCode::kCancelled);
  // The failed branch's functions never executed downstream.
  for (const auto& name : executor.order()) EXPECT_NE(name, "sum");
}

TEST(DagEngineTest, IndependentBranchSurvivesSiblingFailure) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto bad = engine.Submit(TaskCall("boom"), {});
  auto good = engine.Submit(TaskCall("sum"), {Arg(Value(7))});
  EXPECT_FALSE(bad->Wait().ok());
  auto result = good->Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->AsNumber(), 7.0);
}

TEST(DagEngineTest, ReadyDependencyShortCircuits) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto a = engine.Submit(TaskCall("sum"), {Arg(Value(1))});
  ASSERT_TRUE(a->Wait().ok());  // already resolved before b is submitted
  auto b = engine.Submit(TaskCall("sum"), {Arg(a), Arg(Value(2))});
  auto result = b->Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->AsNumber(), 3.0);
}

TEST(DagEngineTest, WaitForTimesOut) {
  MockExecutor executor;
  DagEngine engine(&executor);
  auto bad = engine.Submit(TaskCall("boom"), {});
  auto dependent = engine.Submit(TaskCall("sum"), {Arg(bad)});
  // Both resolve quickly (failure path), so WaitFor succeeds.
  EXPECT_TRUE(dependent->WaitFor(10.0).has_value());
}

// ---------------------------------------------------------------------------
// DAG over the real runtime (VineletExecutor end to end).
// ---------------------------------------------------------------------------

class DagRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serde::FunctionDef list_sum;
    list_sum.name = "list_sum";
    list_sum.fn = [](const Value& args,
                     const serde::InvocationEnv&) -> Result<Value> {
      double total = 0;
      for (const auto& arg : args.AsList()) {
        if (arg.type() == Value::Type::kInt ||
            arg.type() == Value::Type::kFloat)
          total += arg.AsNumber();
      }
      return Value(total);
    };
    ASSERT_TRUE(registry_.RegisterFunction(list_sum).ok());

    network_ = std::make_shared<net::Network>();
    core::ManagerConfig config;
    config.registry = &registry_;
    manager_ = std::make_unique<core::Manager>(network_, config);
    ASSERT_TRUE(manager_->Start().ok());
    core::FactoryConfig factory_config;
    factory_config.initial_workers = 2;
    factory_config.registry = &registry_;
    factory_ = std::make_unique<core::Factory>(network_, factory_config);
    ASSERT_TRUE(factory_->Start().ok());
    ASSERT_TRUE(manager_->WaitForWorkers(2, 30.0).ok());
  }

  void TearDown() override {
    manager_->Stop();
    factory_->Stop();
  }

  serde::FunctionRegistry registry_;
  std::shared_ptr<net::Network> network_;
  std::unique_ptr<core::Manager> manager_;
  std::unique_ptr<core::Factory> factory_;
};

TEST_F(DagRuntimeTest, TaskModeDagEndToEnd) {
  VineletExecutor executor(manager_.get());
  DagEngine engine(&executor);
  AppCall call = TaskCall("list_sum");
  call.task_resources = core::Resources{1, 64, 64};
  auto a = engine.Submit(call, {Arg(Value(3))});
  auto b = engine.Submit(call, {Arg(Value(4))});
  auto joined = engine.Submit(call, {Arg(a), Arg(b), Arg(Value(100))});
  auto result = joined->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->AsNumber(), 107.0);
}

TEST_F(DagRuntimeTest, InvocationModeDagEndToEnd) {
  auto spec = manager_->CreateLibraryFromFunctions("sums", {"list_sum"});
  ASSERT_TRUE(spec.ok());
  core::LibraryOptions options;
  spec->slots = 2;
  spec->resources = core::Resources{2, 1024, 1024};
  (void)options;
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  VineletExecutor executor(manager_.get());
  DagEngine engine(&executor);
  AppCall call = TaskCall("list_sum");
  call.library = "sums";
  std::vector<AppFuturePtr> layer;
  for (int i = 0; i < 8; ++i)
    layer.push_back(engine.Submit(call, {Arg(Value(i))}));
  std::vector<Arg> args;
  for (auto& f : layer) args.emplace_back(f);
  auto total = engine.Submit(call, args);
  auto result = total->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->AsNumber(), 28.0);  // 0+1+...+7
  EXPECT_GE(manager_->metrics().invocations_completed, 9u);
}

}  // namespace
}  // namespace vinelet::dag
