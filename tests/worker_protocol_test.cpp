// Worker protocol conformance: a fake manager endpoint drives a real Worker
// with crafted frames and asserts on the exact replies — including the
// corruption-detection (FileFailed) and malformed-frame paths that the
// integrated runtime tests cannot reach deterministically.
#include <gtest/gtest.h>

#include <chrono>

#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "poncho/packer.hpp"

namespace vinelet::core {
namespace {

using namespace std::chrono_literals;
using serde::InvocationEnv;
using serde::Value;

class WorkerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serde::FunctionDef echo;
    echo.name = "echo";
    echo.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      return args;
    };
    ASSERT_TRUE(registry_.RegisterFunction(echo).ok());

    serde::ContextSetupDef setup;
    setup.name = "noop_setup";
    setup.fn = [](const Value&, const InvocationEnv&)
        -> Result<serde::ContextHandle> { return serde::ContextHandle(); };
    ASSERT_TRUE(registry_.RegisterSetup(setup).ok());

    serde::FunctionDef fails;
    fails.name = "fails";
    fails.fn = [](const Value&, const InvocationEnv&) -> Result<Value> {
      return InternalError("nope");
    };
    ASSERT_TRUE(registry_.RegisterFunction(fails).ok());

    network_ = std::make_shared<net::Network>();
    auto inbox = network_->Register(net::kManagerEndpoint);
    ASSERT_TRUE(inbox.ok());
    manager_inbox_ = *inbox;

    WorkerConfig config;
    config.id = 1;
    config.registry = &registry_;
    worker_ = std::make_unique<Worker>(network_, config);
    ASSERT_TRUE(worker_->Start().ok());

    // Consume the Hello.
    auto hello = NextMessage();
    ASSERT_TRUE(std::holds_alternative<HelloMsg>(hello));
  }

  void TearDown() override {
    worker_->Stop();
    network_->Unregister(net::kManagerEndpoint);
  }

  void SendToWorker(const Message& message) {
    ASSERT_TRUE(
        network_->Send(net::kManagerEndpoint, 1, EncodeMessage(message)).ok());
  }

  /// Receives and decodes the next worker->manager message (10 s budget).
  Message NextMessage() {
    auto frame = manager_inbox_->RecvFor(10s);
    EXPECT_TRUE(frame.has_value()) << "no message from worker";
    if (!frame.has_value()) return Message(GoodbyeMsg{});
    auto message = DecodeMessage(frame->payload);
    EXPECT_TRUE(message.ok()) << message.status().ToString();
    return message.ok() ? *message : Message(GoodbyeMsg{});
  }

  storage::FileDecl Declare(const std::string& name, const Blob& payload,
                            bool unpack = false) {
    storage::FileDecl decl;
    decl.name = name;
    decl.id = hash::ContentId::Of(payload);
    decl.size = payload.size();
    decl.unpack = unpack;
    return decl;
  }

  serde::FunctionRegistry registry_;
  std::shared_ptr<net::Network> network_;
  std::shared_ptr<net::Inbox> manager_inbox_;
  std::unique_ptr<Worker> worker_;
};

TEST_F(WorkerProtocolTest, PutFileAcknowledgedWithFileReady) {
  const Blob payload = Blob::FromString("bytes");
  const auto decl = Declare("data", payload);
  SendToWorker(PutFileMsg{decl, payload});
  auto reply = NextMessage();
  auto* ready = std::get_if<FileReadyMsg>(&reply);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->content_id, decl.id);
  EXPECT_EQ(ready->size, payload.size());
  EXPECT_TRUE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, CorruptPutFileRejectedWithFileFailed) {
  const Blob good = Blob::FromString("original content");
  const auto decl = Declare("data", good);
  // Payload does not match the declared content id: must be rejected, never
  // cached — the silent-corruption hazard of §2.2.2.
  SendToWorker(PutFileMsg{decl, Blob::FromString("tampered content!")});
  auto reply = NextMessage();
  auto* failed = std::get_if<FileFailedMsg>(&reply);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->content_id, decl.id);
  EXPECT_FALSE(failed->error.empty());
  EXPECT_FALSE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, PushFileForwardsToPeer) {
  // Register a peer endpoint, stage a file on the worker, instruct a push.
  auto peer_inbox = network_->Register(2);
  ASSERT_TRUE(peer_inbox.ok());
  const Blob payload = Blob::FromString("replicate me");
  const auto decl = Declare("data", payload);
  SendToWorker(PutFileMsg{decl, payload});
  (void)NextMessage();  // FileReady

  SendToWorker(PushFileMsg{decl, 2});
  auto frame = (*peer_inbox)->RecvFor(10s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 1u);  // worker-to-worker, not via the manager
  auto message = DecodeMessage(frame->payload);
  ASSERT_TRUE(message.ok());
  auto* put = std::get_if<PutFileMsg>(&*message);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->payload, payload);
  network_->Unregister(2);
}

TEST_F(WorkerProtocolTest, PushOfUnknownFileReportsFailure) {
  storage::FileDecl decl;
  decl.name = "ghost";
  decl.id = hash::ContentId::OfText("never stored");
  SendToWorker(PushFileMsg{decl, 2});
  auto reply = NextMessage();
  EXPECT_NE(std::get_if<FileFailedMsg>(&reply), nullptr);
}

TEST_F(WorkerProtocolTest, ExecuteTaskReturnsResultAndTimings) {
  ExecuteTaskMsg msg;
  msg.task.id = 99;
  msg.task.function_name = "echo";
  msg.task.args = Value::Dict({{"k", Value(7)}}).ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 99u);
  ASSERT_TRUE(done->ok) << done->error;
  auto value = Value::FromBlob(done->result);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Get("k").AsInt(), 7);
  EXPECT_GE(done->timing.exec_s, 0.0);
}

TEST_F(WorkerProtocolTest, ExecuteTaskWithCorruptInlineFileFails) {
  const Blob good = Blob::FromString("expected");
  ExecuteTaskMsg msg;
  msg.task.id = 100;
  msg.task.function_name = "echo";
  msg.task.args = Value().ToBlob();
  msg.task.inline_files.emplace_back(Declare("input", good),
                                     Blob::FromString("not it"));
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
  EXPECT_NE(done->error.find("corrupt"), std::string::npos);
}

TEST_F(WorkerProtocolTest, ExecuteTaskMissingCachedInputFails) {
  ExecuteTaskMsg msg;
  msg.task.id = 101;
  msg.task.function_name = "echo";
  msg.task.args = Value().ToBlob();
  msg.task.inputs.push_back(Declare("absent", Blob::FromString("xyz")));
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
}

TEST_F(WorkerProtocolTest, FunctionErrorPropagatesThroughTaskDone) {
  ExecuteTaskMsg msg;
  msg.task.id = 102;
  msg.task.function_name = "fails";
  msg.task.args = Value().ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
  EXPECT_NE(done->error.find("nope"), std::string::npos);
}

TEST_F(WorkerProtocolTest, LibraryLifecycleOverRawProtocol) {
  // Stage the serialized function, install a library, run an invocation,
  // remove the library — all via raw frames.
  const Blob fn_blob = serde::SerializedFunction::Serialize("echo");
  auto fn_decl = Declare("fn:echo", fn_blob);
  fn_decl.kind = storage::FileKind::kSerializedFunction;
  SendToWorker(PutFileMsg{fn_decl, fn_blob});
  (void)NextMessage();  // FileReady

  InstallLibraryMsg install;
  install.instance_id = 5;
  install.spec.name = "lib";
  install.spec.function_names = {"echo"};
  install.spec.setup_name = "noop_setup";
  install.spec.setup_args = Value().ToBlob();
  install.spec.inputs = {fn_decl};
  SendToWorker(install);
  auto ready_reply = NextMessage();
  auto* ready = std::get_if<LibraryReadyMsg>(&ready_reply);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->instance_id, 5u);
  EXPECT_EQ(worker_->libraries_hosted(), 1u);

  SendToWorker(RunInvocationMsg{77, 5, "echo", Value(123).ToBlob()});
  auto done_reply = NextMessage();
  auto* done = std::get_if<InvocationDoneMsg>(&done_reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 77u);
  ASSERT_TRUE(done->ok) << done->error;
  EXPECT_EQ(Value::FromBlob(done->result)->AsInt(), 123);

  SendToWorker(RemoveLibraryMsg{5});
  auto removed_reply = NextMessage();
  EXPECT_NE(std::get_if<LibraryRemovedMsg>(&removed_reply), nullptr);
  EXPECT_EQ(worker_->libraries_hosted(), 0u);
}

TEST_F(WorkerProtocolTest, InstallWithMissingInputReportsRemoval) {
  InstallLibraryMsg install;
  install.instance_id = 6;
  install.spec.name = "broken";
  install.spec.function_names = {"echo"};
  install.spec.setup_args = Value().ToBlob();
  install.spec.inputs.push_back(Declare("never-staged",
                                        Blob::FromString("x")));
  SendToWorker(install);
  // Setup fails on the missing input; the worker reports the instance gone
  // so the manager can release resources and retry elsewhere.
  auto reply = NextMessage();
  auto* removed = std::get_if<LibraryRemovedMsg>(&reply);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->instance_id, 6u);
  EXPECT_EQ(worker_->libraries_hosted(), 0u);
}

TEST_F(WorkerProtocolTest, InvocationAgainstUnknownInstanceFails) {
  SendToWorker(RunInvocationMsg{88, 999, "echo", Value(1).ToBlob()});
  auto reply = NextMessage();
  auto* done = std::get_if<InvocationDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 88u);
  EXPECT_FALSE(done->ok);
}

TEST_F(WorkerProtocolTest, MalformedFrameIsDroppedNotFatal) {
  ASSERT_TRUE(
      network_->Send(net::kManagerEndpoint, 1, Blob::FromString("garbage"))
          .ok());
  // Worker must survive and keep serving.
  ExecuteTaskMsg msg;
  msg.task.id = 1;
  msg.task.function_name = "echo";
  msg.task.args = Value(5).ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_TRUE(done->ok);
}

TEST_F(WorkerProtocolTest, EnvironmentUnpackOncePerWorkerAcrossTasks) {
  const Blob tarball = poncho::Packer::PackFiles(
      {{"member.bin", Blob::FromString(std::string(100, 'm'))}});
  auto decl = Declare("env", tarball, /*unpack=*/true);
  decl.kind = storage::FileKind::kEnvironment;
  SendToWorker(PutFileMsg{decl, tarball});
  (void)NextMessage();  // FileReady

  serde::FunctionDef reads;
  reads.name = "reads_member";
  reads.fn = [](const Value&, const InvocationEnv& env) -> Result<Value> {
    return Value(static_cast<std::int64_t>(env.File("member.bin").size()));
  };
  ASSERT_TRUE(registry_.RegisterFunction(reads).ok());

  for (TaskId id = 1; id <= 3; ++id) {
    ExecuteTaskMsg msg;
    msg.task.id = id;
    msg.task.function_name = "reads_member";
    msg.task.args = Value().ToBlob();
    msg.task.inputs = {decl};
    SendToWorker(msg);
    auto reply = NextMessage();
    auto* done = std::get_if<TaskDoneMsg>(&reply);
    ASSERT_NE(done, nullptr);
    ASSERT_TRUE(done->ok) << done->error;
    EXPECT_EQ(Value::FromBlob(done->result)->AsInt(), 100);
  }
}

}  // namespace
}  // namespace vinelet::core
