// Worker protocol conformance: a fake manager endpoint drives a real Worker
// with crafted frames and asserts on the exact replies — including the
// corruption-detection (FileFailed) and malformed-frame paths that the
// integrated runtime tests cannot reach deterministically.
#include <gtest/gtest.h>

#include <chrono>

#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "poncho/packer.hpp"
#include "storage/broadcast.hpp"

namespace vinelet::core {
namespace {

using namespace std::chrono_literals;
using serde::InvocationEnv;
using serde::Value;

class WorkerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serde::FunctionDef echo;
    echo.name = "echo";
    echo.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      return args;
    };
    ASSERT_TRUE(registry_.RegisterFunction(echo).ok());

    serde::ContextSetupDef setup;
    setup.name = "noop_setup";
    setup.fn = [](const Value&, const InvocationEnv&)
        -> Result<serde::ContextHandle> { return serde::ContextHandle(); };
    ASSERT_TRUE(registry_.RegisterSetup(setup).ok());

    serde::FunctionDef fails;
    fails.name = "fails";
    fails.fn = [](const Value&, const InvocationEnv&) -> Result<Value> {
      return InternalError("nope");
    };
    ASSERT_TRUE(registry_.RegisterFunction(fails).ok());

    network_ = std::make_shared<net::Network>();
    auto inbox = network_->Register(net::kManagerEndpoint);
    ASSERT_TRUE(inbox.ok());
    manager_inbox_ = *inbox;

    WorkerConfig config;
    config.id = 1;
    config.registry = &registry_;
    worker_ = std::make_unique<Worker>(network_, config);
    ASSERT_TRUE(worker_->Start().ok());

    // Consume the Hello.
    auto hello = NextMessage();
    ASSERT_TRUE(std::holds_alternative<HelloMsg>(hello));
  }

  void TearDown() override {
    worker_->Stop();
    network_->Unregister(net::kManagerEndpoint);
  }

  void SendToWorker(const Message& message) {
    ASSERT_TRUE(
        network_->Send(net::kManagerEndpoint, 1, EncodeMessage(message)).ok());
  }

  /// Sends via the attachment-bearing frame form, like real peers do.
  void SendFrameToWorker(const Message& message) {
    WireFrame wire = EncodeFrame(message);
    ASSERT_TRUE(network_
                    ->Send(net::kManagerEndpoint, 1, std::move(wire.payload),
                           std::move(wire.attachment))
                    .ok());
  }

  /// Receives and decodes the next worker->manager message (10 s budget).
  Message NextMessage() {
    auto frame = manager_inbox_->RecvFor(10s);
    EXPECT_TRUE(frame.has_value()) << "no message from worker";
    if (!frame.has_value()) return Message(GoodbyeMsg{});
    auto message = DecodeFrame(*frame);
    EXPECT_TRUE(message.ok()) << message.status().ToString();
    return message.ok() ? *message : Message(GoodbyeMsg{});
  }

  storage::FileDecl Declare(const std::string& name, const Blob& payload,
                            bool unpack = false) {
    storage::FileDecl decl;
    decl.name = name;
    decl.id = hash::ContentId::Of(payload);
    decl.size = payload.size();
    decl.unpack = unpack;
    return decl;
  }

  serde::FunctionRegistry registry_;
  std::shared_ptr<net::Network> network_;
  std::shared_ptr<net::Inbox> manager_inbox_;
  std::unique_ptr<Worker> worker_;
};

TEST_F(WorkerProtocolTest, PutFileAcknowledgedWithFileReady) {
  const Blob payload = Blob::FromString("bytes");
  const auto decl = Declare("data", payload);
  SendToWorker(PutFileMsg{decl, payload, {}});
  auto reply = NextMessage();
  auto* ready = std::get_if<FileReadyMsg>(&reply);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->content_id, decl.id);
  EXPECT_EQ(ready->size, payload.size());
  EXPECT_TRUE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, CorruptPutFileRejectedWithFileFailed) {
  const Blob good = Blob::FromString("original content");
  const auto decl = Declare("data", good);
  // Payload does not match the declared content id: must be rejected, never
  // cached — the silent-corruption hazard of §2.2.2.
  SendToWorker(PutFileMsg{decl, Blob::FromString("tampered content!"), {}});
  auto reply = NextMessage();
  auto* failed = std::get_if<FileFailedMsg>(&reply);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->content_id, decl.id);
  EXPECT_FALSE(failed->error.empty());
  EXPECT_FALSE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, PushFileForwardsToPeer) {
  // Register a peer endpoint, stage a file on the worker, instruct a push.
  auto peer_inbox = network_->Register(2);
  ASSERT_TRUE(peer_inbox.ok());
  const Blob payload = Blob::FromString("replicate me");
  const auto decl = Declare("data", payload);
  SendToWorker(PutFileMsg{decl, payload, {}});
  (void)NextMessage();  // FileReady

  SendToWorker(PushFileMsg{decl, 2, {}});
  auto frame = (*peer_inbox)->RecvFor(10s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 1u);  // worker-to-worker, not via the manager
  auto message = DecodeFrame(*frame);
  ASSERT_TRUE(message.ok());
  auto* put = std::get_if<PutFileMsg>(&*message);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->payload, payload);
  // Zero-copy path: the forwarded payload must ride in the frame attachment
  // and share the worker's cached allocation — no byte copy on the relay.
  auto stored = worker_->store().Get(decl.id);
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(frame->attachment.SharesPayloadWith(*stored));
  EXPECT_TRUE(put->payload.SharesPayloadWith(*stored));
  network_->Unregister(2);
}

// ---------------------------------------------------------------------------
// Chunked pipelined distribution.
// ---------------------------------------------------------------------------

/// A deterministic payload whose chunks are all distinct.
Blob PatternBlob(std::size_t size) {
  std::string text(size, '\0');
  for (std::size_t i = 0; i < size; ++i)
    text[i] = static_cast<char>('a' + (i * 31 + i / 257) % 23);
  return Blob::FromString(std::move(text));
}

/// Splits `payload` into PutChunkMsg-shaped slices of `chunk_bytes`.
std::vector<PutChunkMsg> MakeChunks(const storage::FileDecl& decl,
                                    const Blob& payload,
                                    std::uint64_t chunk_bytes) {
  const auto n =
      storage::ChunkCount(storage::ChunkParams{payload.size(), chunk_bytes});
  std::vector<PutChunkMsg> chunks;
  for (std::uint64_t k = 0; k < n; ++k) {
    PutChunkMsg msg;
    msg.decl = decl;
    msg.chunk_index = k;
    msg.num_chunks = n;
    msg.chunk_bytes = chunk_bytes;
    msg.chunk = payload.Slice(static_cast<std::size_t>(k * chunk_bytes),
                              static_cast<std::size_t>(chunk_bytes));
    chunks.push_back(std::move(msg));
  }
  return chunks;
}

TEST_F(WorkerProtocolTest, ChunkedPutReassemblesOutOfOrderWithDuplicates) {
  const Blob payload = PatternBlob(1000);
  const auto decl = Declare("chunked", payload);
  auto chunks = MakeChunks(decl, payload, 300);  // 300,300,300,100
  ASSERT_EQ(chunks.size(), 4u);
  // Out of order, with a duplicate in the middle: reassembly must dedup and
  // only admit once every index is present.
  for (std::size_t k : {2u, 0u, 3u, 2u, 1u}) SendFrameToWorker(chunks[k]);
  auto reply = NextMessage();
  auto* ready = std::get_if<FileReadyMsg>(&reply);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->content_id, decl.id);
  auto stored = worker_->store().Get(decl.id);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, payload);
}

TEST_F(WorkerProtocolTest, ChunkRelayIsCutThroughAndZeroCopy) {
  auto peer_inbox = network_->Register(2);
  ASSERT_TRUE(peer_inbox.ok());
  const Blob payload = PatternBlob(512);
  const auto decl = Declare("relayed", payload);
  auto chunks = MakeChunks(decl, payload, 256);
  ASSERT_EQ(chunks.size(), 2u);
  ChunkRoute leaf;
  leaf.dest = 2;
  chunks[0].children = {leaf};

  // Chunk 0 alone must be forwarded to the peer immediately — before the
  // worker could possibly have assembled (or even seen) the full blob.
  SendFrameToWorker(chunks[0]);
  auto relayed = (*peer_inbox)->RecvFor(10s);
  ASSERT_TRUE(relayed.has_value());
  EXPECT_EQ(relayed->sender, 1u);
  auto message = DecodeFrame(*relayed);
  ASSERT_TRUE(message.ok()) << message.status().ToString();
  auto* put = std::get_if<PutChunkMsg>(&*message);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->chunk_index, 0u);
  EXPECT_EQ(put->num_chunks, 2u);
  EXPECT_TRUE(put->children.empty());  // leaf consumed its hop of the route
  // The relayed bytes are the original allocation, end to end: test blob ->
  // frame to worker -> decoded chunk -> re-encoded frame to peer.  No copy.
  EXPECT_TRUE(relayed->attachment.SharesPayloadWith(payload));
  EXPECT_TRUE(put->chunk.SharesPayloadWith(payload));

  // Completing the remaining chunk admits the file on the relay itself.
  SendFrameToWorker(chunks[1]);
  auto reply = NextMessage();
  ASSERT_NE(std::get_if<FileReadyMsg>(&reply), nullptr);
  EXPECT_TRUE(worker_->store().Contains(decl.id));
  network_->Unregister(2);
}

TEST_F(WorkerProtocolTest, CorruptChunkRejectedAtReassembly) {
  const Blob payload = PatternBlob(600);
  const auto decl = Declare("tampered", payload);
  auto chunks = MakeChunks(decl, payload, 200);
  ASSERT_EQ(chunks.size(), 3u);
  chunks[1].chunk = Blob::FromString(std::string(200, '!'));  // same size
  for (auto& chunk : chunks) SendFrameToWorker(chunk);
  auto reply = NextMessage();
  auto* failed = std::get_if<FileFailedMsg>(&reply);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->content_id, decl.id);
  EXPECT_FALSE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, ChunkRelayToDeadPeerStillAssemblesLocally) {
  const Blob payload = PatternBlob(400);
  const auto decl = Declare("undeliverable", payload);
  auto chunks = MakeChunks(decl, payload, 200);
  ChunkRoute ghost;
  ghost.dest = 99;  // never registered: every forward fails
  for (auto& chunk : chunks) {
    chunk.children = {ghost};
    SendFrameToWorker(chunk);
  }
  // Relay failures must not block local reassembly (the manager heals the
  // subtree separately).
  auto reply = NextMessage();
  ASSERT_NE(std::get_if<FileReadyMsg>(&reply), nullptr);
  EXPECT_TRUE(worker_->store().Contains(decl.id));
}

TEST_F(WorkerProtocolTest, DuplicateChunkAfterAdmissionReconfirms) {
  const Blob payload = PatternBlob(300);
  const auto decl = Declare("probe", payload);
  auto chunks = MakeChunks(decl, payload, 150);
  for (auto& chunk : chunks) SendFrameToWorker(chunk);
  auto first = NextMessage();
  ASSERT_NE(std::get_if<FileReadyMsg>(&first), nullptr);
  // The manager's liveness probe re-sends chunk 0 to unconfirmed workers; a
  // worker that already holds the file must answer FileReady again.
  SendFrameToWorker(chunks[0]);
  auto again = NextMessage();
  auto* ready = std::get_if<FileReadyMsg>(&again);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->content_id, decl.id);
}

TEST_F(WorkerProtocolTest, PushOfUnknownFileReportsFailure) {
  storage::FileDecl decl;
  decl.name = "ghost";
  decl.id = hash::ContentId::OfText("never stored");
  SendToWorker(PushFileMsg{decl, 2, {}});
  auto reply = NextMessage();
  EXPECT_NE(std::get_if<FileFailedMsg>(&reply), nullptr);
}

TEST_F(WorkerProtocolTest, ExecuteTaskReturnsResultAndTimings) {
  ExecuteTaskMsg msg;
  msg.task.id = 99;
  msg.task.function_name = "echo";
  msg.task.args = Value::Dict({{"k", Value(7)}}).ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 99u);
  ASSERT_TRUE(done->ok) << done->error;
  auto value = Value::FromBlob(done->result);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->Get("k").AsInt(), 7);
  EXPECT_GE(done->timing.exec_s, 0.0);
}

TEST_F(WorkerProtocolTest, ExecuteTaskWithCorruptInlineFileFails) {
  const Blob good = Blob::FromString("expected");
  ExecuteTaskMsg msg;
  msg.task.id = 100;
  msg.task.function_name = "echo";
  msg.task.args = Value().ToBlob();
  msg.task.inline_files.emplace_back(Declare("input", good),
                                     Blob::FromString("not it"));
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
  EXPECT_NE(done->error.find("corrupt"), std::string::npos);
}

TEST_F(WorkerProtocolTest, ExecuteTaskMissingCachedInputFails) {
  ExecuteTaskMsg msg;
  msg.task.id = 101;
  msg.task.function_name = "echo";
  msg.task.args = Value().ToBlob();
  msg.task.inputs.push_back(Declare("absent", Blob::FromString("xyz")));
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
}

TEST_F(WorkerProtocolTest, FunctionErrorPropagatesThroughTaskDone) {
  ExecuteTaskMsg msg;
  msg.task.id = 102;
  msg.task.function_name = "fails";
  msg.task.args = Value().ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(done->ok);
  EXPECT_NE(done->error.find("nope"), std::string::npos);
}

TEST_F(WorkerProtocolTest, LibraryLifecycleOverRawProtocol) {
  // Stage the serialized function, install a library, run an invocation,
  // remove the library — all via raw frames.
  const Blob fn_blob = serde::SerializedFunction::Serialize("echo");
  auto fn_decl = Declare("fn:echo", fn_blob);
  fn_decl.kind = storage::FileKind::kSerializedFunction;
  SendToWorker(PutFileMsg{fn_decl, fn_blob, {}});
  (void)NextMessage();  // FileReady

  InstallLibraryMsg install;
  install.instance_id = 5;
  install.spec.name = "lib";
  install.spec.function_names = {"echo"};
  install.spec.setup_name = "noop_setup";
  install.spec.setup_args = Value().ToBlob();
  install.spec.inputs = {fn_decl};
  SendToWorker(install);
  auto ready_reply = NextMessage();
  auto* ready = std::get_if<LibraryReadyMsg>(&ready_reply);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->instance_id, 5u);
  EXPECT_EQ(worker_->libraries_hosted(), 1u);

  SendToWorker(RunInvocationMsg{77, 5, "echo", Value(123).ToBlob(), {}, {}});
  auto done_reply = NextMessage();
  auto* done = std::get_if<InvocationDoneMsg>(&done_reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 77u);
  ASSERT_TRUE(done->ok) << done->error;
  EXPECT_EQ(Value::FromBlob(done->result)->AsInt(), 123);

  SendToWorker(RemoveLibraryMsg{5});
  auto removed_reply = NextMessage();
  EXPECT_NE(std::get_if<LibraryRemovedMsg>(&removed_reply), nullptr);
  EXPECT_EQ(worker_->libraries_hosted(), 0u);
}

TEST_F(WorkerProtocolTest, InstallWithMissingInputReportsRemoval) {
  InstallLibraryMsg install;
  install.instance_id = 6;
  install.spec.name = "broken";
  install.spec.function_names = {"echo"};
  install.spec.setup_args = Value().ToBlob();
  install.spec.inputs.push_back(Declare("never-staged",
                                        Blob::FromString("x")));
  SendToWorker(install);
  // Setup fails on the missing input; the worker reports the instance gone
  // so the manager can release resources and retry elsewhere.
  auto reply = NextMessage();
  auto* removed = std::get_if<LibraryRemovedMsg>(&reply);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->instance_id, 6u);
  EXPECT_EQ(worker_->libraries_hosted(), 0u);
}

TEST_F(WorkerProtocolTest, InvocationAgainstUnknownInstanceFails) {
  SendToWorker(RunInvocationMsg{88, 999, "echo", Value(1).ToBlob(), {}, {}});
  auto reply = NextMessage();
  auto* done = std::get_if<InvocationDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->id, 88u);
  EXPECT_FALSE(done->ok);
}

TEST_F(WorkerProtocolTest, MalformedFrameIsDroppedNotFatal) {
  ASSERT_TRUE(
      network_->Send(net::kManagerEndpoint, 1, Blob::FromString("garbage"))
          .ok());
  // Worker must survive and keep serving.
  ExecuteTaskMsg msg;
  msg.task.id = 1;
  msg.task.function_name = "echo";
  msg.task.args = Value(5).ToBlob();
  SendToWorker(msg);
  auto reply = NextMessage();
  auto* done = std::get_if<TaskDoneMsg>(&reply);
  ASSERT_NE(done, nullptr);
  EXPECT_TRUE(done->ok);
}

TEST_F(WorkerProtocolTest, EnvironmentUnpackOncePerWorkerAcrossTasks) {
  const Blob tarball = poncho::Packer::PackFiles(
      {{"member.bin", Blob::FromString(std::string(100, 'm'))}});
  auto decl = Declare("env", tarball, /*unpack=*/true);
  decl.kind = storage::FileKind::kEnvironment;
  SendToWorker(PutFileMsg{decl, tarball, {}});
  (void)NextMessage();  // FileReady

  serde::FunctionDef reads;
  reads.name = "reads_member";
  reads.fn = [](const Value&, const InvocationEnv& env) -> Result<Value> {
    return Value(static_cast<std::int64_t>(env.File("member.bin").size()));
  };
  ASSERT_TRUE(registry_.RegisterFunction(reads).ok());

  for (TaskId id = 1; id <= 3; ++id) {
    ExecuteTaskMsg msg;
    msg.task.id = id;
    msg.task.function_name = "reads_member";
    msg.task.args = Value().ToBlob();
    msg.task.inputs = {decl};
    SendToWorker(msg);
    auto reply = NextMessage();
    auto* done = std::get_if<TaskDoneMsg>(&reply);
    ASSERT_NE(done, nullptr);
    ASSERT_TRUE(done->ok) << done->error;
    EXPECT_EQ(Value::FromBlob(done->result)->AsInt(), 100);
  }
}

}  // namespace
}  // namespace vinelet::core
