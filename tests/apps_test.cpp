// Application kernels: numeric routines (Cholesky/ridge correctness), the
// LNNI model's determinism and context-vs-rebuild equivalence, and the
// ExaMol functions' end-to-end active-learning behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/examol.hpp"
#include "apps/lnni.hpp"
#include "apps/numeric.hpp"

namespace vinelet::apps {
namespace {

using serde::InvocationEnv;
using serde::Value;

// ---------------------------------------------------------------------------
// Numeric kernels
// ---------------------------------------------------------------------------

TEST(NumericTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(NumericTest, MatVec) {
  Mat m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const Vec y = MatVec(m, {1, 1, 1});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(NumericTest, SyntheticFeaturesDeterministicAndBounded) {
  const Vec a = SyntheticFeatures(42, 64);
  const Vec b = SyntheticFeatures(42, 64);
  const Vec c = SyntheticFeatures(43, 64);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (double v : a) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(NumericTest, CholeskySolvesKnownSystem) {
  // S = [[4,2],[2,3]], b = [10, 8] -> w = [1.75, 1.5]
  Mat s(2, 2);
  s.at(0, 0) = 4;
  s.at(0, 1) = 2;
  s.at(1, 0) = 2;
  s.at(1, 1) = 3;
  auto w = CholeskySolve(s, {10, 8});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_NEAR((*w)[0], 1.75, 1e-12);
  EXPECT_NEAR((*w)[1], 1.5, 1e-12);
}

TEST(NumericTest, CholeskyRejectsIndefinite) {
  Mat s(2, 2);
  s.at(0, 0) = 1;
  s.at(0, 1) = 5;
  s.at(1, 0) = 5;
  s.at(1, 1) = 1;  // indefinite
  EXPECT_EQ(CholeskySolve(s, {1, 1}).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(NumericTest, CholeskyRejectsShapeMismatch) {
  EXPECT_EQ(CholeskySolve(Mat(2, 3), {1, 1}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(NumericTest, RidgeRecoversLinearModel) {
  // y = X w* exactly; ridge with tiny lambda recovers w*.
  const std::size_t n = 200, d = 8;
  Mat x(n, d);
  Vec w_true(d);
  for (std::size_t j = 0; j < d; ++j) w_true[j] = 0.5 * static_cast<double>(j) - 1.0;
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec row = SyntheticFeatures(i + 1000, d);
    for (std::size_t j = 0; j < d; ++j) x.at(i, j) = row[j];
    y[i] = Dot(row, w_true);
  }
  auto w = RidgeSolve(x, y, 1e-9);
  ASSERT_TRUE(w.ok());
  for (std::size_t j = 0; j < d; ++j) EXPECT_NEAR((*w)[j], w_true[j], 1e-6);
}

// ---------------------------------------------------------------------------
// LNNI
// ---------------------------------------------------------------------------

class LnniTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.dim = 32;
    config_.layers = 2;
    config_.build_passes = 2;
    ASSERT_TRUE(RegisterLnniFunctions(registry_, config_).ok());
    weights_ = MakeLnniWeightsBlob(config_);
    files_["resnet50.weights"] = weights_;
  }

  LnniConfig config_;
  serde::FunctionRegistry registry_;
  Blob weights_;
  std::map<std::string, Blob> files_;
};

TEST_F(LnniTest, WeightsBlobDeterministic) {
  EXPECT_EQ(MakeLnniWeightsBlob(config_), weights_);
}

TEST_F(LnniTest, SetupBuildsModelFromFile) {
  auto setup = registry_.FindSetup("lnni_setup");
  ASSERT_TRUE(setup.ok());
  InvocationEnv env;
  env.files = &files_;
  auto context = setup->fn(Value(), env);
  ASSERT_TRUE(context.ok()) << context.status().ToString();
  const auto* model = dynamic_cast<const LnniModel*>(context->get());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->dim(), 32u);
  EXPECT_GT(model->MemoryBytes(), 0u);
}

TEST_F(LnniTest, SetupFailsWithoutWeights) {
  auto setup = registry_.FindSetup("lnni_setup");
  ASSERT_TRUE(setup.ok());
  std::map<std::string, Blob> empty;
  InvocationEnv env;
  env.files = &empty;
  EXPECT_FALSE(setup->fn(Value(), env).ok());
}

TEST_F(LnniTest, InferenceDeterministic) {
  auto setup = registry_.FindSetup("lnni_setup");
  ASSERT_TRUE(setup.ok());
  InvocationEnv env;
  env.files = &files_;
  auto context = setup->fn(Value(), env);
  ASSERT_TRUE(context.ok());
  const auto* model = dynamic_cast<const LnniModel*>(context->get());
  EXPECT_EQ(model->Infer(7), model->Infer(7));
  const std::int64_t cls = model->Infer(7);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 1000);
}

TEST_F(LnniTest, RebuiltPathMatchesRetainedContext) {
  // The invariant the whole paper rests on: running with the retained
  // context must produce the same results as rebuilding per invocation.
  auto fn = registry_.FindFunction("lnni_infer");
  ASSERT_TRUE(fn.ok());
  const Value args = Value::Dict({{"count", Value(5)}, {"seed", Value(123)}});

  InvocationEnv no_context;
  no_context.files = &files_;
  auto rebuilt = fn->fn(args, no_context);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(rebuilt->Get("rebuilt").AsBool());

  auto setup = registry_.FindSetup("lnni_setup");
  auto context = setup->fn(Value(), no_context);
  ASSERT_TRUE(context.ok());
  InvocationEnv with_context;
  with_context.files = &files_;
  with_context.context = context->get();
  auto retained = fn->fn(args, with_context);
  ASSERT_TRUE(retained.ok());
  EXPECT_FALSE(retained->Get("rebuilt").AsBool());

  EXPECT_EQ(rebuilt->Get("checksum"), retained->Get("checksum"));
  EXPECT_EQ(rebuilt->Get("classified"), retained->Get("classified"));
}

TEST_F(LnniTest, CorruptWeightsRejected) {
  auto fn = registry_.FindFunction("lnni_infer");
  ASSERT_TRUE(fn.ok());
  std::map<std::string, Blob> corrupt;
  corrupt["resnet50.weights"] = Blob::FromString("not weights");
  InvocationEnv env;
  env.files = &corrupt;
  auto result =
      fn->fn(Value::Dict({{"count", Value(1)}, {"seed", Value(1)}}), env);
  EXPECT_FALSE(result.ok());
}

TEST_F(LnniTest, RegistrationIdempotent) {
  EXPECT_TRUE(RegisterLnniFunctions(registry_, config_).ok());
}

// ---------------------------------------------------------------------------
// ExaMol
// ---------------------------------------------------------------------------

class ExamolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.feature_dim = 8;
    config_.basis_terms = 256;
    config_.optimize_steps = 30;
    ASSERT_TRUE(RegisterExamolFunctions(registry_, config_).ok());
    files_["basis_set.dat"] = MakeBasisSetBlob(config_);
    env_.files = &files_;
  }

  Result<Value> Call(const std::string& name, const Value& args) {
    auto fn = registry_.FindFunction(name);
    EXPECT_TRUE(fn.ok());
    return fn->fn(args, env_);
  }

  ExamolConfig config_;
  serde::FunctionRegistry registry_;
  std::map<std::string, Blob> files_;
  InvocationEnv env_;
};

TEST_F(ExamolTest, SimulateReturnsDeterministicEnergy) {
  auto a = Call("examol_simulate", Value::Dict({{"molecule", Value(17)}}));
  auto b = Call("examol_simulate", Value::Dict({{"molecule", Value(17)}}));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Get("energy"), b->Get("energy"));
  EXPECT_EQ(a->Get("molecule").AsInt(), 17);
}

TEST_F(ExamolTest, SimulateDiffersPerMolecule) {
  auto a = Call("examol_simulate", Value::Dict({{"molecule", Value(1)}}));
  auto b = Call("examol_simulate", Value::Dict({{"molecule", Value(2)}}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->Get("energy").AsFloat(), b->Get("energy").AsFloat());
}

TEST_F(ExamolTest, TrainRequiresEnoughSamples) {
  serde::ValueList tiny;
  tiny.push_back(Value::Dict({{"molecule", Value(1)}, {"energy", Value(0.5)}}));
  auto result =
      Call("examol_train", Value::Dict({{"results", Value(tiny)}}));
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(ExamolTest, TrainInferPipelineRanksCandidates) {
  // Simulate a batch, train the surrogate, score a pool: the returned
  // candidates must be the pool's lowest-predicted members.
  serde::ValueList results;
  for (int molecule = 0; molecule < 40; ++molecule) {
    auto sim = Call("examol_simulate",
                    Value::Dict({{"molecule", Value(molecule)}}));
    ASSERT_TRUE(sim.ok());
    results.push_back(std::move(*sim));
  }
  auto trained =
      Call("examol_train", Value::Dict({{"results", Value(results)}}));
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  const Value& weights = trained->Get("weights");
  ASSERT_EQ(weights.AsList().size(), config_.feature_dim);

  auto inferred = Call("examol_infer",
                       Value::Dict({{"weights", weights},
                                    {"pool_seed", Value(1000)},
                                    {"pool", Value(50)},
                                    {"top_k", Value(5)}}));
  ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
  const auto& candidates = inferred->Get("candidates").AsList();
  ASSERT_EQ(candidates.size(), 5u);

  // Verify the ranking against a direct recomputation.
  Vec w;
  for (const auto& v : weights.AsList()) w.push_back(v.AsNumber());
  std::vector<std::pair<double, std::int64_t>> scored;
  for (int i = 0; i < 50; ++i) {
    scored.emplace_back(
        Dot(w, SyntheticFeatures(static_cast<std::uint64_t>(1000 + i),
                                 config_.feature_dim)),
        1000 + i);
  }
  std::sort(scored.begin(), scored.end());
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(candidates[i].AsInt(), scored[i].second);
}

TEST_F(ExamolTest, SurrogateHasPredictivePower) {
  // Train on molecules 0..59, evaluate rank correlation on 60..99: the
  // learned linear surrogate must beat random guessing on the true
  // (simulated) energies.
  serde::ValueList results;
  for (int molecule = 0; molecule < 60; ++molecule) {
    auto sim = Call("examol_simulate",
                    Value::Dict({{"molecule", Value(molecule)}}));
    ASSERT_TRUE(sim.ok());
    results.push_back(std::move(*sim));
  }
  auto trained =
      Call("examol_train", Value::Dict({{"results", Value(results)}}));
  ASSERT_TRUE(trained.ok());
  Vec w;
  for (const auto& v : trained->Get("weights").AsList())
    w.push_back(v.AsNumber());

  double correct_pairs = 0, total_pairs = 0;
  std::vector<double> predicted, actual;
  for (int molecule = 60; molecule < 100; ++molecule) {
    predicted.push_back(Dot(
        w, SyntheticFeatures(static_cast<std::uint64_t>(molecule),
                             config_.feature_dim)));
    auto sim = Call("examol_simulate",
                    Value::Dict({{"molecule", Value(molecule)}}));
    ASSERT_TRUE(sim.ok());
    actual.push_back(sim->Get("energy").AsFloat());
  }
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    for (std::size_t j = i + 1; j < predicted.size(); ++j) {
      ++total_pairs;
      if ((predicted[i] < predicted[j]) == (actual[i] < actual[j]))
        ++correct_pairs;
    }
  }
  EXPECT_GT(correct_pairs / total_pairs, 0.6);  // clearly better than 0.5
}

TEST_F(ExamolTest, BasisContextAvoidsReparse) {
  auto setup = registry_.FindSetup("examol_setup");
  ASSERT_TRUE(setup.ok());
  auto context = setup->fn(Value(), env_);
  ASSERT_TRUE(context.ok());
  InvocationEnv with_ctx;
  with_ctx.files = &files_;
  with_ctx.context = context->get();
  auto fn = registry_.FindFunction("examol_simulate");
  ASSERT_TRUE(fn.ok());
  auto with = fn->fn(Value::Dict({{"molecule", Value(5)}}), with_ctx);
  auto without = fn->fn(Value::Dict({{"molecule", Value(5)}}), env_);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->Get("energy"), without->Get("energy"));
}

TEST_F(ExamolTest, InferValidatesArguments) {
  EXPECT_FALSE(Call("examol_infer", Value::Dict({})).ok());
  EXPECT_FALSE(
      Call("examol_infer", Value::Dict({{"weights", Value(1)}})).ok());
}

}  // namespace
}  // namespace vinelet::apps
