// Unit and integration tests for the telemetry layer: the sharded metrics
// registry under concurrency, span tracing + phase aggregation, the Chrome
// trace exporter/validator round trip, and the sim-vs-runtime span-taxonomy
// contract for an L3 scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "telemetry/telemetry.hpp"

namespace vinelet::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrementsNoneLost) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, HistogramConcurrentObservationsAllCounted) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i)
        histogram.Observe(1e-4 * (t + 1));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += kPerThread * 1e-4 * (t + 1);
  EXPECT_NEAR(snapshot.sum, expected_sum, expected_sum * 1e-9);
}

TEST(MetricsTest, SnapshotConsistentWhileWritersRun) {
  // The histogram's count is derived from its bucket sums, so any snapshot
  // taken mid-stream is internally consistent: cumulative bucket counts are
  // non-decreasing and end at `count`.
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.live");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&histogram, &stop] {
      double v = 1e-6;
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Observe(v);
        v = v > 1.0 ? 1e-6 : v * 1.7;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot snapshot = histogram.Snapshot();
    std::uint64_t previous = 0;
    for (const auto& [bound, cumulative] : snapshot.buckets) {
      EXPECT_GE(cumulative, previous);
      previous = cumulative;
    }
    if (!snapshot.buckets.empty()) {
      EXPECT_EQ(snapshot.buckets.back().second, snapshot.count);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("same.name");
  Counter& b = registry.GetCounter("same.name");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);

  Gauge& gauge = registry.GetGauge("g");
  gauge.Set(2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("same.name"), 3u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("g"), 1.5);
  EXPECT_EQ(snapshot.CounterValue("absent", 42u), 42u);
}

// ---------------------------------------------------------------------------
// Spans and aggregation
// ---------------------------------------------------------------------------

TEST(SpanTest, DisabledTracerRecordsNothing) {
  SpanTracer tracer;
  tracer.Emit(Phase::kExec, "task", "worker-1", 1, 0.0, 1.0);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.SetEnabled(true);
  tracer.Emit(Phase::kExec, "task", "worker-1", 1, 0.0, 1.0);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(SpanTest, AggregatePhasesSumsByNameAndHonorsFilter) {
  SpanTracer tracer;
  tracer.SetEnabled(true);
  tracer.Emit(Phase::kTransfer, "task", "worker-1", 1, 0.0, 1.5);
  tracer.Emit(Phase::kTransfer, "file", "worker-1", 2, 0.0, 4.0);
  tracer.Emit(Phase::kExec, "task", "worker-1", 1, 2.0, 5.0);
  tracer.Emit(Phase::kUnpack, "task", "worker-1", 1, 1.5, 2.0);
  const auto spans = tracer.Snapshot();

  const PhaseTotals all = AggregatePhases(spans);
  EXPECT_DOUBLE_EQ(all.transfer_s, 5.5);
  EXPECT_DOUBLE_EQ(all.exec_s, 3.0);
  EXPECT_DOUBLE_EQ(all.unpack_s, 0.5);
  EXPECT_EQ(all.spans, 4u);

  const PhaseTotals no_files = AggregatePhases(
      spans, [](const SpanRecord& s) { return s.category != "file"; });
  EXPECT_DOUBLE_EQ(no_files.transfer_s, 1.5);
  EXPECT_EQ(no_files.spans, 3u);

  EXPECT_DOUBLE_EQ(no_files.TransferColumn(), 1.5);
  EXPECT_DOUBLE_EQ(no_files.WorkerColumn(), 0.5);
  EXPECT_DOUBLE_EQ(no_files.ExecColumn(), 3.0);
}

TEST(SpanTest, ConcurrentEmitLosesNothing) {
  SpanTracer tracer;
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i)
        tracer.Emit(Phase::kExec, "task", "worker-" + std::to_string(t), i,
                    i * 1.0, i * 1.0 + 0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  const auto drained = tracer.Drain();
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(SpanTest, SnapshotConcurrentWithRecordingLosesNothing) {
  // Regression: the single-lock tracer could drop spans recorded while an
  // export held the storage lock.  The sharded tracer takes all shard locks
  // for a consistent cut, so every span emitted before the final join must
  // survive into the final snapshot.
  SpanTracer tracer;
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load()) {
      const auto cut = tracer.Snapshot();
      // A cut is never torn: sizes only grow between snapshots.
      EXPECT_LE(cut.size(),
                static_cast<std::size_t>(kThreads) * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i)
        tracer.Emit(Phase::kExec, "task", "worker-" + std::to_string(t), i,
                    i * 1.0, i * 1.0 + 0.5);
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  exporter.join();
  EXPECT_EQ(tracer.Snapshot().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(SpanTest, StartTraceAndEmitLinkedShareOneTraceId) {
  SpanTracer tracer;
  tracer.SetEnabled(true);
  TraceContext root = tracer.StartTrace(Phase::kSubmit, "invocation",
                                        "manager", 1, 0.0, 0.1);
  ASSERT_TRUE(root.valid());
  TraceContext a = tracer.EmitLinked(root, Phase::kDispatch, "invocation",
                                     "manager", 1, 0.1, 0.2);
  TraceContext b = tracer.EmitLinked(a, Phase::kExec, "invocation",
                                     "worker-1", 1, 0.2, 0.9);
  EXPECT_EQ(a.trace_id, root.trace_id);
  EXPECT_EQ(b.trace_id, root.trace_id);
  EXPECT_NE(a.parent_span_id, root.parent_span_id);
  EXPECT_NE(b.parent_span_id, a.parent_span_id);

  const auto spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, root.trace_id);
    EXPECT_NE(span.span_id, 0u);
  }
  // Parent chain: root <- dispatch <- exec.
  EXPECT_EQ(spans[0].parent_span_id, 0u);
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
  EXPECT_EQ(spans[2].parent_span_id, spans[1].span_id);
}

TEST(SpanTest, EmitLinkedDegradesWithoutTraceOrTracer) {
  SpanTracer tracer;
  // Disabled: nothing recorded, parent identity still flows through.
  const TraceContext parent{77, 99};
  EXPECT_EQ(tracer.EmitLinked(parent, Phase::kExec, "invocation", "worker-1",
                              1, 0.0, 1.0),
            parent);
  EXPECT_EQ(tracer.size(), 0u);

  // Enabled but untraced parent: the span is recorded without causal
  // identity (plain-Emit behavior), and the null context passes through.
  tracer.SetEnabled(true);
  EXPECT_EQ(tracer.EmitLinked(TraceContext{}, Phase::kExec, "invocation",
                              "worker-1", 1, 0.0, 1.0),
            TraceContext{});
  const auto spans = tracer.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0u);
  EXPECT_EQ(spans[0].span_id, 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace export + validation
// ---------------------------------------------------------------------------

TEST(ExportTest, ChromeTraceRoundTrip) {
  SpanTracer tracer;
  tracer.SetEnabled(true);
  tracer.Emit(Phase::kSubmit, "task", "manager", 1, 0.0, 0.001);
  tracer.Emit(Phase::kDispatch, "task", "manager", 1, 0.001, 0.002);
  tracer.Emit(Phase::kTransfer, "task", "worker-1", 1, 0.002, 0.5);
  tracer.Emit(Phase::kExec, "task", "worker-1", 1, 0.5, 1.5);
  tracer.Emit(Phase::kResult, "task", "manager", 1, 1.5, 1.6);

  const std::string json = ToChromeTrace(tracer.Snapshot(), "test-process");
  auto check = ValidateChromeTrace(json);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->events, 5u);
  EXPECT_EQ(check->tracks, 2u);  // manager + worker-1
  EXPECT_NE(json.find("\"exec\""), std::string::npos);
  EXPECT_NE(json.find("test-process"), std::string::npos);
}

TEST(ExportTest, FlowRecordsRenderParentChildLinks) {
  SpanTracer tracer;
  tracer.SetEnabled(true);
  // One causal chain crossing tracks (manager -> worker-1 -> worker-1) plus
  // one unlinked span: three spans in the trace, two parent->child edges.
  TraceContext ctx = tracer.StartTrace(Phase::kSubmit, "invocation",
                                       "manager", 9, 0.0, 0.1);
  ctx = tracer.EmitLinked(ctx, Phase::kTransfer, "invocation", "worker-1", 9,
                          0.1, 0.4);
  ctx = tracer.EmitLinked(ctx, Phase::kExec, "invocation", "worker-1", 9,
                          0.4, 0.9);
  tracer.Emit(Phase::kResult, "invocation", "manager", 10, 1.0, 1.1);

  const std::string json = ToChromeTrace(tracer.Snapshot());
  auto check = ValidateChromeTrace(json);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->events, 4u);
  EXPECT_EQ(check->flows, 4u);  // two edges x (flow-start + flow-end)
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

TEST(ExportTest, ValidatorRejectsMalformedTraces) {
  // Not JSON at all.
  EXPECT_FALSE(ValidateChromeTrace("this is not json").ok());
  // Root not an object.
  EXPECT_FALSE(ValidateChromeTrace("[1,2,3]").ok());
  // Missing traceEvents.
  EXPECT_FALSE(ValidateChromeTrace("{\"other\":[]}").ok());
  // "X" event with no dur (an unclosed span).
  EXPECT_FALSE(ValidateChromeTrace(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"pid\":1,"
                   "\"tid\":1,\"name\":\"a\"}]}")
                   .ok());
  // Negative dur.
  EXPECT_FALSE(ValidateChromeTrace(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"dur\":-5,"
                   "\"pid\":1,\"tid\":1}]}")
                   .ok());
  // B without a matching E.
  EXPECT_FALSE(ValidateChromeTrace(
                   "{\"traceEvents\":[{\"ph\":\"B\",\"ts\":0,\"pid\":1,"
                   "\"tid\":1}]}")
                   .ok());
  // Per-track timestamps going backwards.
  EXPECT_FALSE(ValidateChromeTrace(
                   "{\"traceEvents\":["
                   "{\"ph\":\"X\",\"ts\":10,\"dur\":1,\"pid\":1,\"tid\":1},"
                   "{\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":1,\"tid\":1}]}")
                   .ok());
  // Balanced B/E on one track is accepted.
  auto balanced = ValidateChromeTrace(
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1,\"name\":\"a\"},"
      "{\"ph\":\"E\",\"ts\":3,\"pid\":1,\"tid\":1}]}");
  ASSERT_TRUE(balanced.ok()) << balanced.status().ToString();
  EXPECT_EQ(balanced->events, 2u);
}

TEST(ExportTest, MetricsToJsonIsValidAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Add(7);
  registry.GetGauge("g.two").Set(1.25);
  registry.GetHistogram("h.three").Observe(0.5);
  const std::string json = MetricsToJson(registry.Snapshot());
  EXPECT_NE(json.find("\"c.one\": 7"), std::string::npos);
  EXPECT_NE(json.find("g.two"), std::string::npos);
  EXPECT_NE(json.find("h.three"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndDumpsValidJson) {
  FlightRecorder flight(8);
  flight.Record("worker-join", "", 0, 3);
  flight.Record("xfer-fail", "checksum mismatch", 42, 3, 1024);
  const auto events = flight.Dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].tag, "worker-join");
  EXPECT_STREQ(events[1].tag, "xfer-fail");
  EXPECT_EQ(events[1].trace_id, 42u);
  EXPECT_EQ(events[1].a, 3u);
  EXPECT_EQ(events[1].b, 1024u);

  const std::string json = flight.DumpJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"xfer-fail\""), std::string::npos);
  EXPECT_NE(json.find("checksum mismatch"), std::string::npos);
}

TEST(FlightRecorderTest, RingWrapsKeepingMostRecent) {
  FlightRecorder flight(4);
  for (int i = 0; i < 10; ++i)
    flight.Record("evt", std::to_string(i), 0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(flight.recorded(), 10u);
  const auto events = flight.Dump();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, 6 + i);
}

TEST(FlightRecorderTest, ConcurrentWritersWrapKeepingRecentTickets) {
  // Many writers share one small ring; every Record carries a globally
  // ordered ticket.  After the dust settles the ring must hold exactly
  // `capacity` events, all from the most recent tickets — wraparound under
  // contention may interleave but never resurrects old entries.
  constexpr std::size_t kCapacity = 32;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  FlightRecorder flight(kCapacity);
  std::atomic<std::uint64_t> ticket{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        flight.Record("tick", "", 0, ticket.fetch_add(1));
    });
  }
  for (auto& t : writers) t.join();

  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(flight.recorded(), total);
  const auto events = flight.Dump();
  ASSERT_EQ(events.size(), kCapacity);
  // A writer can stall between taking its ticket and recording it, so each
  // thread may displace one recent ticket with a slightly older one.
  const std::uint64_t oldest_allowed = total - kCapacity - kThreads;
  for (const auto& event : events) {
    EXPECT_GE(event.a, oldest_allowed);
    EXPECT_LT(event.a, total);
  }
}

TEST(FlightRecorderTest, ConcurrentRecordAndDumpNeverTears) {
  FlightRecorder flight(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load()) {
      const std::string json = flight.DumpJson();
      // Every dump must parse, even while writers race the ring.
      EXPECT_TRUE(ValidateJson(json).ok());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&flight, t] {
      for (int i = 0; i < kPerThread; ++i)
        flight.Record("spin", "detail", 0, static_cast<std::uint64_t>(t), i);
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  dumper.join();
  EXPECT_EQ(flight.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(flight.Dump().size(), 64u);
}

TEST(FlightRecorderTest, DumpOnEnvWritesJsonFile) {
  FlightRecorder flight(8);
  flight.Record("kill", "injected", 0, 7);

  // Unset: no file, empty path.
  ASSERT_EQ(unsetenv("VINELET_FLIGHT_DUMP"), 0);
  EXPECT_EQ(flight.DumpOnEnv("worker-7-kill"), "");

  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("VINELET_FLIGHT_DUMP", dir.c_str(), 1), 0);
  const std::string path = flight.DumpOnEnv("worker-7-kill");
  ASSERT_EQ(unsetenv("VINELET_FLIGHT_DUMP"), 0);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("flight-worker-7-kill.json"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(ValidateJson(content.str()).ok()) << content.str();
  EXPECT_NE(content.str().find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sim vs runtime: the span-taxonomy contract
// ---------------------------------------------------------------------------

std::set<std::string> SpanNames(const std::vector<SpanRecord>& spans) {
  std::set<std::string> names;
  for (const auto& s : spans) names.insert(s.name);
  return names;
}

/// Runs a small L3 scenario in the simulator with tracing on.
std::set<std::string> SimL3SpanNames() {
  Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);
  sim::SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 1;
  config.seed = 3;
  config.telemetry = &telemetry;
  sim::VineSim vinesim(config,
                       sim::BuildLnniWorkload(sim::LnniCosts(16), 4));
  (void)vinesim.Run();
  return SpanNames(telemetry.tracer.Drain());
}

/// Runs the equivalent L3 scenario on the real threaded runtime: a library
/// with a real (tiny) poncho environment, deployed to one worker, invoked
/// a few times.
std::set<std::string> RuntimeL3SpanNames() {
  serde::FunctionRegistry registry;
  serde::FunctionDef fn;
  fn.name = "echo";
  fn.fn = [](const serde::Value& args,
             const serde::InvocationEnv&) -> Result<serde::Value> {
    return args;
  };
  (void)registry.RegisterFunction(fn);
  serde::ContextSetupDef setup;
  setup.name = "echo_setup";
  setup.fn = [](const serde::Value&,
                const serde::InvocationEnv&) -> Result<serde::ContextHandle> {
    return serde::ContextHandle();
  };
  (void)registry.RegisterSetup(setup);

  Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.telemetry = &telemetry;
  core::Manager manager(network, manager_config);
  EXPECT_TRUE(manager.Start().ok());
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 1;
  factory_config.registry = &registry;
  factory_config.telemetry = &telemetry;
  core::Factory factory(network, factory_config);
  EXPECT_TRUE(factory.Start().ok());
  EXPECT_TRUE(manager.WaitForWorkers(1, 30.0).ok());

  // A real (tiny) environment input makes the install stage a file onto
  // the worker — the source of the "transfer" span in this scenario.
  poncho::Analyzer analyzer(
      poncho::PackageCatalog::SyntheticMlCatalog(1e-4));
  auto env = analyzer.AnalyzeImports({"python"}).value();
  auto env_decl =
      manager.DeclareBlob("env", env.tarball, storage::FileKind::kEnvironment,
                          true, true, /*unpack=*/true);
  auto spec = manager.CreateLibraryFromFunctions("echo-lib", {"echo"},
                                                 "echo_setup", serde::Value(),
                                                 nullptr);
  EXPECT_TRUE(spec.ok());
  manager.AddLibraryInput(*spec, env_decl);
  EXPECT_TRUE(manager.InstallLibrary(*spec).ok());
  for (int i = 0; i < 4; ++i) {
    auto outcome =
        manager.SubmitCall("echo-lib", "echo", serde::Value(i))->Wait();
    EXPECT_TRUE(outcome.ok());
  }
  manager.Stop();
  factory.Stop();
  return SpanNames(telemetry.tracer.Drain());
}

TEST(SpanContractTest, SimAndRuntimeEmitTheSameL3PhaseNames) {
  const std::set<std::string> sim_names = SimL3SpanNames();
  const std::set<std::string> runtime_names = RuntimeL3SpanNames();

  const std::set<std::string> expected = {
      "submit",      "dispatch",    "transfer", "unpack",
      "context-setup", "deserialize", "exec",     "result"};
  EXPECT_EQ(sim_names, expected);
  EXPECT_EQ(runtime_names, expected);
}

}  // namespace
}  // namespace vinelet::telemetry
