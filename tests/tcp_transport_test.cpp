// Real-socket transport: hub/node membership over loopback TCP, lazy peer
// dials, write coalescing + backpressure, fault injection at the socket
// boundary, and a full manager + worker runtime crossing real sockets
// inside one process (three TcpTransports, three event loops).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/manager.hpp"
#include "core/worker.hpp"
#include "net/fault.hpp"
#include "net/tcp_transport.hpp"
#include "serde/function_registry.hpp"
#include "serde/value.hpp"

namespace vinelet::net {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<TcpTransport> StartHub(TcpTransportConfig config = {}) {
  auto hub = std::make_shared<TcpTransport>(std::move(config));
  EXPECT_TRUE(hub->Start().ok());
  return hub;
}

std::shared_ptr<TcpTransport> StartNode(std::uint16_t hub_port,
                                        TcpTransportConfig config = {}) {
  config.hub_host = "127.0.0.1";
  config.hub_port = hub_port;
  auto node = std::make_shared<TcpTransport>(std::move(config));
  EXPECT_TRUE(node->Start().ok());
  return node;
}

TEST(TcpTransportTest, HubLocalDelivery) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok()) << inbox.status().ToString();
  ASSERT_TRUE(hub->Send(5, kManagerEndpoint, Blob::FromString("local")).ok());
  auto frame = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 5u);
  EXPECT_EQ(frame->payload.ToString(), "local");
}

TEST(TcpTransportTest, NodeToHubOverRealSocket) {
  auto hub = StartHub();
  auto manager_inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(manager_inbox.ok());

  auto node = StartNode(hub->listen_port());
  auto worker_inbox = node->Register(1);
  ASSERT_TRUE(worker_inbox.ok()) << worker_inbox.status().ToString();

  // Node -> hub, with an attachment that must survive the scatter/gather
  // send path intact.
  const Blob attachment = Blob::FromString("bulk attachment across tcp");
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("hello"),
                         attachment)
                  .ok());
  auto frame = (*manager_inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 1u);
  EXPECT_EQ(frame->payload.ToString(), "hello");
  EXPECT_EQ(frame->attachment, attachment);

  // Hub -> node reply crosses the same connection.
  ASSERT_TRUE(hub->Send(kManagerEndpoint, 1, Blob::FromString("ack")).ok());
  auto reply = (*worker_inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sender, kManagerEndpoint);
  EXPECT_EQ(reply->payload.ToString(), "ack");

  node->Shutdown();
  hub->Shutdown();
}

TEST(TcpTransportTest, WorkerToWorkerLazyDial) {
  auto hub = StartHub();
  ASSERT_TRUE(hub->Register(kManagerEndpoint).ok());
  auto node_a = StartNode(hub->listen_port());
  auto node_b = StartNode(hub->listen_port());
  ASSERT_TRUE(node_a->Register(1).ok());
  auto b_inbox = node_b->Register(2);
  ASSERT_TRUE(b_inbox.ok());

  // A learned B's address from the hub directory; the first send dials.
  Status status;
  for (int attempt = 0; attempt < 100; ++attempt) {
    status = node_a->Send(1, 2, Blob::FromString("peer"));
    if (status.ok()) break;
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto frame = (*b_inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 1u);
  EXPECT_EQ(frame->payload.ToString(), "peer");

  // The dial shows up in the connection snapshot with live counters.
  bool saw_peer_conn = false;
  for (const ConnectionStats& stats : node_a->ConnectionsSnapshot())
    saw_peer_conn |= stats.frames_sent > 0 || stats.bytes_sent > 0;
  EXPECT_TRUE(saw_peer_conn);
}

TEST(TcpTransportTest, SendToUnknownEndpointFails) {
  auto hub = StartHub();
  ASSERT_TRUE(hub->Register(kManagerEndpoint).ok());
  EXPECT_EQ(hub->Send(kManagerEndpoint, 99, Blob::FromString("x")).code(),
            ErrorCode::kNotFound);
}

TEST(TcpTransportTest, ManyFramesCoalesceAndArriveInOrder) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());
  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(1).ok());

  constexpr int kFrames = 500;
  const auto tag = [](int i) {
    std::string text = "m";
    text += std::to_string(i);
    return text;
  };
  for (int i = 0; i < kFrames; ++i)
    ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString(tag(i)),
                           Blob::FromString(std::string(i % 7, 'x')))
                    .ok());
  for (int i = 0; i < kFrames; ++i) {
    auto frame = (*inbox)->RecvFor(std::chrono::seconds(10));
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload.ToString(), tag(i));
    EXPECT_EQ(frame->attachment.size(), static_cast<std::size_t>(i % 7));
  }
}

TEST(TcpTransportTest, BackpressureStallsAreCountedAndRelease) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());

  TcpTransportConfig config;
  config.send_queue_limit_bytes = 64 * 1024;  // tiny cap to force stalls
  auto node = StartNode(hub->listen_port(), std::move(config));
  ASSERT_TRUE(node->Register(1).ok());

  // Push far more than the cap; the sender must block-and-release rather
  // than error or balloon, and everything must still arrive in order.
  const Blob big(std::vector<std::uint8_t>(16 * 1024, 0x5A));
  constexpr int kFrames = 64;  // 1 MiB total through a 64 KiB window
  std::thread sender([&] {
    for (int i = 0; i < kFrames; ++i)
      ASSERT_TRUE(node->Send(1, kManagerEndpoint,
                             Blob::FromString(std::to_string(i)), big)
                      .ok());
  });
  for (int i = 0; i < kFrames; ++i) {
    auto frame = (*inbox)->RecvFor(std::chrono::seconds(10));
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload.ToString(), std::to_string(i));
    EXPECT_EQ(frame->attachment.size(), big.size());
  }
  sender.join();

  std::uint64_t peak = 0;
  for (const ConnectionStats& stats : node->ConnectionsSnapshot())
    peak = std::max(peak, stats.peak_queue_bytes);
  EXPECT_GT(peak, 0u);
}

TEST(TcpTransportTest, DisconnectListenerFiresOnPeerShutdown) {
  auto hub = StartHub();
  ASSERT_TRUE(hub->Register(kManagerEndpoint).ok());
  std::atomic<int> disconnects{0};
  std::atomic<EndpointId> last{0};
  hub->SetDisconnectListener([&](EndpointId id) {
    last = id;
    ++disconnects;
  });

  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(7).ok());
  // Abrupt shutdown: the hub observes the TCP teardown and reports the
  // endpoint dead, which is how the manager learns of killed workers.
  node->Shutdown();
  for (int i = 0; i < 200 && disconnects.load() == 0; ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_GE(disconnects.load(), 1);
  EXPECT_EQ(last.load(), 7u);
  EXPECT_FALSE(hub->Connected(7));
}

TEST(TcpTransportTest, GracefulUnregisterNotifiesHub) {
  auto hub = StartHub();
  ASSERT_TRUE(hub->Register(kManagerEndpoint).ok());
  std::atomic<int> disconnects{0};
  hub->SetDisconnectListener([&](EndpointId) { ++disconnects; });
  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(3).ok());
  node->Unregister(3);
  for (int i = 0; i < 200 && disconnects.load() == 0; ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_GE(disconnects.load(), 1);
}

TEST(TcpTransportTest, FaultInjectionDropsAtTheSocketBoundary) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());
  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(1).ok());

  FaultPlan plan;
  plan.seed = 7;
  plan.link.drop_p = 1.0;  // every data frame dropped before the socket
  auto fault = std::make_shared<FaultInjector>(plan);
  node->SetFaultInjector(fault);

  // Drops look like success to the sender; nothing reaches the hub.
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("gone")).ok());
  EXPECT_FALSE((*inbox)->RecvFor(200ms).has_value());
  EXPECT_EQ(fault->stats().dropped, 10u);

  // Clearing the injector restores delivery on the same connection.
  node->SetFaultInjector(nullptr);
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("back")).ok());
  auto frame = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.ToString(), "back");
}

TEST(TcpTransportTest, FaultInjectionDelaysReorderFrames) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());
  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(1).ok());

  FaultPlan plan;
  plan.link.delay_p = 1.0;
  plan.link.delay_min_s = 0.05;
  plan.link.delay_max_s = 0.05;
  node->SetFaultInjector(std::make_shared<FaultInjector>(plan));
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("held")).ok());
  node->SetFaultInjector(nullptr);
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("fast")).ok());

  auto first = (*inbox)->RecvFor(std::chrono::seconds(5));
  auto second = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload.ToString(), "fast");
  EXPECT_EQ(second->payload.ToString(), "held");
}

TEST(TcpTransportTest, PartitionIsSilenceNotError) {
  auto hub = StartHub();
  auto inbox = hub->Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());
  auto node = StartNode(hub->listen_port());
  ASSERT_TRUE(node->Register(1).ok());

  auto fault = std::make_shared<FaultInjector>(FaultPlan{});
  node->SetFaultInjector(fault);
  fault->Partition(1, kManagerEndpoint, true);
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("void")).ok());
  EXPECT_FALSE((*inbox)->RecvFor(200ms).has_value());
  fault->Partition(1, kManagerEndpoint, false);
  ASSERT_TRUE(node->Send(1, kManagerEndpoint, Blob::FromString("healed")).ok());
  auto frame = (*inbox)->RecvFor(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.ToString(), "healed");
}

// ---------------------------------------------------------------------------
// Full runtime over real sockets: manager on the hub transport, two workers
// each on their own node transport — three event loops, every protocol
// frame crossing a loopback socket.
// ---------------------------------------------------------------------------

serde::FunctionRegistry& TcpTestRegistry() {
  static serde::FunctionRegistry* registry = [] {
    auto* r = new serde::FunctionRegistry();
    serde::FunctionDef add;
    add.name = "tcp_add";
    add.fn = [](const serde::Value& args,
                const serde::InvocationEnv&) -> Result<serde::Value> {
      auto a = args.GetInt("a");
      if (!a.ok()) return a.status();
      auto b = args.GetInt("b");
      if (!b.ok()) return b.status();
      return serde::Value(*a + *b);
    };
    EXPECT_TRUE(r->RegisterFunction(add).ok());
    return r;
  }();
  return *registry;
}

TEST(TcpTransportTest, ManagerAndWorkersAcrossRealSockets) {
  auto hub = StartHub();
  core::ManagerConfig manager_config;
  manager_config.registry = &TcpTestRegistry();
  core::Manager manager(hub, manager_config);
  ASSERT_TRUE(manager.Start().ok());

  auto node_a = StartNode(hub->listen_port());
  auto node_b = StartNode(hub->listen_port());
  core::WorkerConfig worker_config;
  worker_config.registry = &TcpTestRegistry();
  worker_config.id = 1;
  core::Worker worker_a(node_a, worker_config);
  worker_config.id = 2;
  core::Worker worker_b(node_b, worker_config);
  ASSERT_TRUE(worker_a.Start().ok());
  ASSERT_TRUE(worker_b.Start().ok());
  ASSERT_TRUE(manager.WaitForWorkers(2, 30.0).ok());

  // Tasks fan out over TCP and results come back over TCP.
  std::vector<core::FuturePtr> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(manager.SubmitTask(
        "tcp_add",
        serde::Value::Dict(
            {{"a", serde::Value(i)}, {"b", serde::Value(100)}}),
        {}, core::Resources{1, 64, 64}));
  for (int i = 0; i < 20; ++i) {
    auto outcome = futures[static_cast<std::size_t>(i)]->WaitFor(
        std::chrono::duration<double>(60.0));
    ASSERT_TRUE(outcome.has_value()) << "task " << i << " timed out";
    ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
    EXPECT_EQ((*outcome)->value.AsInt(), i + 100);
  }

  auto status = manager.QueryStatus(10.0);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->workers.size(), 2u);

  worker_a.Stop();
  worker_b.Stop();
  manager.Stop();
  node_a->Shutdown();
  node_b->Shutdown();
  hub->Shutdown();
}

TEST(TcpTransportTest, ManagerSurvivesAbruptWorkerDeathOverTcp) {
  auto hub = StartHub();
  core::ManagerConfig manager_config;
  manager_config.registry = &TcpTestRegistry();
  core::Manager manager(hub, manager_config);
  ASSERT_TRUE(manager.Start().ok());

  auto node_a = StartNode(hub->listen_port());
  auto node_b = StartNode(hub->listen_port());
  core::WorkerConfig worker_config;
  worker_config.registry = &TcpTestRegistry();
  worker_config.id = 1;
  auto worker_a = std::make_unique<core::Worker>(node_a, worker_config);
  worker_config.id = 2;
  core::Worker worker_b(node_b, worker_config);
  ASSERT_TRUE(worker_a->Start().ok());
  ASSERT_TRUE(worker_b.Start().ok());
  ASSERT_TRUE(manager.WaitForWorkers(2, 30.0).ok());

  // Kill node A's whole transport mid-flight — the TCP teardown at the hub
  // must surface as a worker death and pending work must retry on B.
  node_a->Shutdown();
  worker_a.reset();

  auto future = manager.SubmitTask(
      "tcp_add",
      serde::Value::Dict({{"a", serde::Value(1)}, {"b", serde::Value(2)}}),
      {}, core::Resources{1, 64, 64});
  auto outcome = future->WaitFor(std::chrono::duration<double>(60.0));
  ASSERT_TRUE(outcome.has_value()) << "task timed out after worker death";
  ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_EQ((*outcome)->value.AsInt(), 3);

  worker_b.Stop();
  manager.Stop();
}

}  // namespace
}  // namespace vinelet::net
