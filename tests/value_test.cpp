// serde::Value: construction, typed access, encode/decode round trips,
// and rejection of malformed payloads.
#include <gtest/gtest.h>

#include "serde/value.hpp"

namespace vinelet::serde {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsFloat(), 2.5);
  EXPECT_EQ(Value("text").AsString(), "text");
  EXPECT_EQ(Value(Blob::FromString("b")).AsBytes().ToString(), "b");
}

TEST(ValueTest, AsNumberCoercesInts) {
  EXPECT_DOUBLE_EQ(Value(7).AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).AsNumber(), 7.5);
}

TEST(ValueTest, DictGetMissingReturnsNull) {
  Value dict = Value::Dict({{"a", Value(1)}});
  EXPECT_TRUE(dict.Get("missing").is_null());
  EXPECT_EQ(dict.Get("a").AsInt(), 1);
  // Get on a non-dict is null, not a crash.
  EXPECT_TRUE(Value(5).Get("x").is_null());
}

TEST(ValueTest, TypedGettersValidate) {
  Value dict = Value::Dict({{"n", Value(3)}, {"s", Value("str")},
                            {"f", Value(1.5)}});
  EXPECT_EQ(dict.GetInt("n").value(), 3);
  EXPECT_EQ(dict.GetString("s").value(), "str");
  EXPECT_DOUBLE_EQ(dict.GetNumber("f").value(), 1.5);
  EXPECT_DOUBLE_EQ(dict.GetNumber("n").value(), 3.0);  // int ok as number
  EXPECT_FALSE(dict.GetInt("s").ok());
  EXPECT_FALSE(dict.GetString("missing").ok());
}

TEST(ValueTest, EqualityIsDeep) {
  Value a = Value::Dict({{"list", Value::List({Value(1), Value("x")})}});
  Value b = Value::Dict({{"list", Value::List({Value(1), Value("x")})}});
  Value c = Value::Dict({{"list", Value::List({Value(2), Value("x")})}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

Value DeepSample() {
  return Value::Dict({
      {"null", Value()},
      {"bool", Value(true)},
      {"int", Value(-123456789)},
      {"float", Value(0.125)},
      {"string", Value("hello world")},
      {"bytes", Value(Blob::FromString("\x00\x01\xFF payload"))},
      {"list", Value::List({Value(1), Value::List({Value("nested")}),
                            Value::Dict({{"k", Value(2)}})})},
  });
}

TEST(ValueTest, BlobRoundTripDeep) {
  const Value original = DeepSample();
  const Blob blob = original.ToBlob();
  auto decoded = Value::FromBlob(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, original);
}

TEST(ValueTest, RoundTripEmptyContainers) {
  const Value original =
      Value::Dict({{"el", Value::List()}, {"ed", Value::Dict()}});
  auto decoded = Value::FromBlob(original.ToBlob());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(ValueTest, TrailingBytesRejected) {
  ByteBuffer buffer(Value(1).ToBlob().ToString());
  buffer.AppendByte(0x00);
  auto decoded = Value::FromBlob(Blob(std::move(buffer)));
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ValueTest, UnknownTagRejected) {
  ByteBuffer buffer;
  buffer.AppendByte(0xEE);
  auto decoded = Value::FromBlob(Blob(std::move(buffer)));
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ValueTest, HostileListLengthRejected) {
  // Tag kList + absurd length with no elements must fail, not allocate.
  ByteBuffer buffer;
  buffer.AppendByte(6);  // kList
  for (int i = 0; i < 8; ++i) buffer.AppendByte(0xFF);
  auto decoded = Value::FromBlob(Blob(std::move(buffer)));
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ValueTest, EveryTruncationOfDeepValueFails) {
  const Blob blob = DeepSample().ToBlob();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::vector<std::uint8_t> prefix(blob.span().begin(),
                                     blob.span().begin() + static_cast<long>(cut));
    auto decoded = Value::FromBlob(Blob(std::move(prefix)));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(ValueTest, ToStringReadable) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value("s").ToString(), "\"s\"");
  EXPECT_EQ(Value::List({Value(1), Value(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::Dict({{"a", Value(1)}}).ToString(), "{\"a\": 1}");
  EXPECT_EQ(Value(Blob::FromString("abc")).ToString(), "<3 bytes>");
}

TEST(ValueTest, LargeListRoundTrip) {
  ValueList list;
  for (int i = 0; i < 10000; ++i) list.emplace_back(i);
  const Value original(std::move(list));
  auto decoded = Value::FromBlob(original.ToBlob());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->AsList().size(), 10000u);
  EXPECT_EQ(decoded->AsList()[9999].AsInt(), 9999);
}

TEST(ValueTest, HugeListCountRejectedBeforeAllocation) {
  // Hand-craft: list tag + count 2^64-1.  The decoder must clamp the count
  // against the remaining payload instead of calling reserve() on it.
  ArchiveWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(Value::Type::kList));
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);
  auto decoded = Value::FromBlob(std::move(writer).ToBlob());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ValueTest, HugeDictCountRejectedBeforeAllocation) {
  ArchiveWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(Value::Type::kDict));
  writer.WriteU64(0xFFFFFFFFFFFFFFF0ull);
  auto decoded = Value::FromBlob(std::move(writer).ToBlob());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ValueTest, HugeStringLengthRejectedBeforeAllocation) {
  ArchiveWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(Value::Type::kString));
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);
  auto decoded = Value::FromBlob(std::move(writer).ToBlob());
  ASSERT_FALSE(decoded.ok());
}

TEST(ValueTest, EveryTruncationOfNestedValueRejected) {
  const Value original = Value::Dict(
      {{"list", Value::List({Value(1), Value("two"),
                             Value::Dict({{"k", Value(3.5)}})})},
       {"bytes", Value(Blob::FromString("blob bytes"))},
       {"flag", Value(true)}});
  const Blob full = original.ToBlob();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = Value::FromBlob(full.Slice(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(ValueTest, TrailingBytesAfterValueRejected) {
  std::vector<std::uint8_t> bytes;
  const Blob encoded = Value(7).ToBlob();
  bytes.assign(encoded.span().begin(), encoded.span().end());
  bytes.push_back(0);
  auto decoded = Value::FromBlob(Blob(std::move(bytes)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace vinelet::serde
