// FunctionRegistry + SerializedFunction: registration semantics, import
// discovery, and the cloudpickle-analog serialization path.
#include <gtest/gtest.h>

#include "serde/function_registry.hpp"

namespace vinelet::serde {
namespace {

FunctionDef MakeEcho(const std::string& name) {
  FunctionDef def;
  def.name = name;
  def.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
    return args;
  };
  return def;
}

TEST(FunctionRegistryTest, RegisterAndFind) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterFunction(MakeEcho("echo")).ok());
  auto found = registry.FindFunction("echo");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->name, "echo");
  EXPECT_TRUE(registry.HasFunction("echo"));
  EXPECT_FALSE(registry.HasFunction("missing"));
}

TEST(FunctionRegistryTest, DuplicateRejected) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterFunction(MakeEcho("f")).ok());
  EXPECT_EQ(registry.RegisterFunction(MakeEcho("f")).code(),
            ErrorCode::kAlreadyExists);
}

TEST(FunctionRegistryTest, EmptyNameOrBodyRejected) {
  FunctionRegistry registry;
  EXPECT_EQ(registry.RegisterFunction(MakeEcho("")).code(),
            ErrorCode::kInvalidArgument);
  FunctionDef no_body;
  no_body.name = "x";
  EXPECT_EQ(registry.RegisterFunction(no_body).code(),
            ErrorCode::kInvalidArgument);
}

TEST(FunctionRegistryTest, FindMissingFails) {
  FunctionRegistry registry;
  EXPECT_EQ(registry.FindFunction("ghost").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(registry.FindSetup("ghost").status().code(), ErrorCode::kNotFound);
}

TEST(FunctionRegistryTest, SetupRegistration) {
  FunctionRegistry registry;
  ContextSetupDef setup;
  setup.name = "setup";
  setup.fn = [](const Value&, const InvocationEnv&) -> Result<ContextHandle> {
    return ContextHandle();
  };
  ASSERT_TRUE(registry.RegisterSetup(setup).ok());
  EXPECT_TRUE(registry.FindSetup("setup").ok());
  EXPECT_EQ(registry.RegisterSetup(setup).code(), ErrorCode::kAlreadyExists);
}

TEST(FunctionRegistryTest, FunctionNamesSorted) {
  FunctionRegistry registry;
  (void)registry.RegisterFunction(MakeEcho("zeta"));
  (void)registry.RegisterFunction(MakeEcho("alpha"));
  EXPECT_EQ(registry.FunctionNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(FunctionRegistryTest, ImportsUnionIncludesSetups) {
  FunctionRegistry registry;
  FunctionDef f = MakeEcho("f");
  f.imports = {"numpy", "pandas"};
  f.setup_name = "f_setup";
  (void)registry.RegisterFunction(f);
  FunctionDef g = MakeEcho("g");
  g.imports = {"numpy", "scipy"};
  (void)registry.RegisterFunction(g);
  ContextSetupDef setup;
  setup.name = "f_setup";
  setup.imports = {"tensorflow"};
  setup.fn = [](const Value&, const InvocationEnv&) -> Result<ContextHandle> {
    return ContextHandle();
  };
  (void)registry.RegisterSetup(setup);

  auto imports = registry.ImportsOf({"f", "g"});
  ASSERT_TRUE(imports.ok());
  EXPECT_EQ(*imports, (std::vector<std::string>{"numpy", "pandas", "scipy",
                                                "tensorflow"}));
}

TEST(FunctionRegistryTest, ImportsOfUnknownFunctionFails) {
  FunctionRegistry registry;
  EXPECT_EQ(registry.ImportsOf({"nope"}).status().code(), ErrorCode::kNotFound);
}

TEST(FunctionRegistryTest, ImportsOfMissingSetupFails) {
  FunctionRegistry registry;
  FunctionDef f = MakeEcho("f");
  f.setup_name = "never_registered";
  (void)registry.RegisterFunction(f);
  EXPECT_EQ(registry.ImportsOf({"f"}).status().code(), ErrorCode::kNotFound);
}

// ---------------------------------------------------------------------------
// InvocationEnv
// ---------------------------------------------------------------------------

TEST(InvocationEnvTest, FileLookup) {
  std::map<std::string, Blob> files{{"data", Blob::FromString("contents")}};
  InvocationEnv env;
  env.files = &files;
  EXPECT_TRUE(env.HasFile("data"));
  EXPECT_EQ(env.File("data").ToString(), "contents");
  EXPECT_FALSE(env.HasFile("other"));
  EXPECT_TRUE(env.File("other").empty());
}

TEST(InvocationEnvTest, NullFilesMapIsSafe) {
  InvocationEnv env;
  EXPECT_FALSE(env.HasFile("anything"));
  EXPECT_TRUE(env.File("anything").empty());
}

// ---------------------------------------------------------------------------
// SerializedFunction
// ---------------------------------------------------------------------------

TEST(SerializedFunctionTest, RoundTrip) {
  const Value closure = Value::Dict({{"captured", Value(99)}});
  const Blob blob = SerializedFunction::Serialize("my_fn", closure, 512);
  auto parsed = SerializedFunction::Deserialize(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name(), "my_fn");
  EXPECT_EQ(parsed->closure(), closure);
  EXPECT_EQ(parsed->code_size(), 512u);
}

TEST(SerializedFunctionTest, DeterministicBytes) {
  EXPECT_EQ(SerializedFunction::Serialize("f", Value(1), 256),
            SerializedFunction::Serialize("f", Value(1), 256));
  EXPECT_FALSE(SerializedFunction::Serialize("f", Value(1), 256) ==
               SerializedFunction::Serialize("g", Value(1), 256));
}

TEST(SerializedFunctionTest, CorruptionDetected) {
  Blob blob = SerializedFunction::Serialize("fn", Value(), 128);
  std::vector<std::uint8_t> bytes(blob.span().begin(), blob.span().end());
  bytes[bytes.size() / 2] ^= 0xFF;  // flip a code byte
  auto parsed = SerializedFunction::Deserialize(Blob(std::move(bytes)));
  EXPECT_EQ(parsed.status().code(), ErrorCode::kDataLoss);
}

TEST(SerializedFunctionTest, BadMagicRejected) {
  auto parsed = SerializedFunction::Deserialize(Blob::FromString("garbage"));
  EXPECT_FALSE(parsed.ok());
}

TEST(SerializedFunctionTest, TruncationRejected) {
  Blob blob = SerializedFunction::Serialize("fn", Value("closure"), 300);
  for (std::size_t cut : {0ul, 5ul, blob.size() / 2, blob.size() - 1}) {
    std::vector<std::uint8_t> prefix(blob.span().begin(),
                                     blob.span().begin() + static_cast<long>(cut));
    EXPECT_FALSE(SerializedFunction::Deserialize(Blob(std::move(prefix))).ok())
        << "cut=" << cut;
  }
}

TEST(SerializedFunctionTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&FunctionRegistry::Global(), &FunctionRegistry::Global());
}

}  // namespace
}  // namespace vinelet::serde
