// One sample per protocol Message alternative, shared by the framing and
// protocol test suites.  Keeping the table in one place means a new message
// type that is added to the variant but not here fails the
// variant_size static check in both suites, so malformed-frame sweeps and
// framer round trips can never silently skip a type.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace vinelet::testing {

inline storage::FileDecl SampleMsgDecl(const char* name) {
  storage::FileDecl decl;
  decl.name = name;
  const Blob payload = Blob::FromString(name);
  decl.id = hash::ContentId::Of(payload);
  decl.size = payload.size();
  decl.kind = storage::FileKind::kEnvironment;
  decl.cache = true;
  decl.peer_transfer = true;
  return decl;
}

// One sample per Message alternative, with attachments where the codec
// moves bulk bytes out of line (PutFile, PutChunk, InvocationDone,
// BlobData) so the zero-copy path is exercised.
inline std::vector<core::Message> AllSampleMessages() {
  std::vector<core::Message> all;
  all.push_back(core::PutFileMsg{SampleMsgDecl("put"),
                                 Blob::FromString("file payload bytes"),
                                 {1u, 2u}});
  all.push_back(core::PushFileMsg{SampleMsgDecl("push"), 42, {3u, 4u}});
  core::ExecuteTaskMsg task;
  task.task.id = 7;
  task.task.function_name = "f";
  task.task.args = Blob::FromString("args");
  task.task.inputs = {SampleMsgDecl("input")};
  task.task.inline_files.emplace_back(SampleMsgDecl("inline"),
                                      Blob::FromString("inline bytes"));
  all.push_back(task);
  core::InstallLibraryMsg install;
  install.instance_id = 9;
  install.spec.name = "lib";
  install.spec.function_names = {"g"};
  install.spec.inputs = {SampleMsgDecl("ctx")};
  all.push_back(install);
  all.push_back(core::RemoveLibraryMsg{9});
  all.push_back(core::RunInvocationMsg{
      11,
      9,
      "g",
      Blob::FromString("xyz"),
      {{0, core::BlobRef{hash::ContentId::OfText("ref"), 64, 3}, 3}},
      {5u, 6u}});
  all.push_back(core::ShutdownMsg{});
  all.push_back(core::HelloMsg{core::Resources{2, 1024, 1024}});
  all.push_back(core::FileReadyMsg{hash::ContentId::OfText("ready"), 512});
  all.push_back(core::FileFailedMsg{hash::ContentId::OfText("fail"), "boom"});
  core::TaskDoneMsg done;
  done.id = 7;
  done.ok = true;
  done.result = Blob::FromString("result");
  all.push_back(done);
  core::LibraryReadyMsg lib_ready;
  lib_ready.instance_id = 9;
  lib_ready.context_memory_bytes = 4096;
  all.push_back(lib_ready);
  all.push_back(core::LibraryRemovedMsg{9});
  core::InvocationDoneMsg inv_done;
  inv_done.id = 11;
  inv_done.ok = true;
  inv_done.result = Blob::FromString("big invocation result attachment");
  all.push_back(inv_done);
  all.push_back(core::GoodbyeMsg{});
  core::PutChunkMsg chunk;
  chunk.decl = SampleMsgDecl("chunked");
  chunk.chunk_index = 2;
  chunk.num_chunks = 8;
  chunk.chunk_bytes = 32;
  chunk.children = {core::ChunkRoute{5, {core::ChunkRoute{6, {}}}}};
  chunk.chunk = Blob::FromString("chunk payload riding as attachment");
  all.push_back(chunk);
  all.push_back(core::StatusRequestMsg{});
  core::StatusReplyMsg reply;
  reply.inbox_depth = 3;
  reply.tasks_executed = 17;
  reply.cache = {{hash::ContentId::OfText("cached"), 2048}};
  reply.libraries = {{9, "lib", 4, 1}};
  all.push_back(reply);
  core::RunInvocationBatchMsg batch;
  batch.instance_id = 9;
  batch.items.push_back({21, 9, "g", Blob::FromString("a"), {}, {7u, 8u}});
  batch.items.push_back({22, 9, "g", Blob::FromString("b"), {}, {9u, 10u}});
  all.push_back(batch);
  all.push_back(
      core::FetchBlobMsg{hash::ContentId::OfText("fetch"), 77, {11u, 12u}});
  core::BlobDataMsg blob_data;
  blob_data.id = hash::ContentId::OfText("fetch");
  blob_data.tag = 77;
  blob_data.ok = true;
  blob_data.payload = Blob::FromString("fetched blob payload attachment");
  all.push_back(blob_data);
  all.push_back(core::DropBlobMsg{hash::ContentId::OfText("drop")});
  all.push_back(core::CancelFetchMsg{hash::ContentId::OfText("cancel")});
  return all;
}

}  // namespace vinelet::testing
