// In-process Network transport: registration, delivery, departure
// semantics, and accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/network.hpp"

namespace vinelet::net {
namespace {

TEST(NetworkTest, RegisterAndSend) {
  Network network;
  auto inbox = network.Register(1);
  ASSERT_TRUE(inbox.ok());
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("hello")).ok());
  auto frame = (*inbox)->Recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sender, 0u);
  EXPECT_EQ(frame->payload.ToString(), "hello");
}

TEST(NetworkTest, DuplicateRegistrationRejected) {
  Network network;
  ASSERT_TRUE(network.Register(1).ok());
  EXPECT_EQ(network.Register(1).status().code(), ErrorCode::kAlreadyExists);
}

TEST(NetworkTest, SendToUnknownFails) {
  Network network;
  EXPECT_EQ(network.Send(0, 99, Blob()).code(), ErrorCode::kNotFound);
}

TEST(NetworkTest, UnregisterClosesInbox) {
  Network network;
  auto inbox = network.Register(1);
  ASSERT_TRUE(inbox.ok());
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("queued")).ok());
  network.Unregister(1);
  EXPECT_FALSE(network.Connected(1));
  // Queued frame still drains; then the closed inbox reports end.
  EXPECT_TRUE((*inbox)->Recv().has_value());
  EXPECT_FALSE((*inbox)->Recv().has_value());
  EXPECT_EQ(network.Send(0, 1, Blob()).code(), ErrorCode::kNotFound);
}

TEST(NetworkTest, UnregisterTwiceIsNoOp) {
  Network network;
  ASSERT_TRUE(network.Register(1).ok());
  network.Unregister(1);
  network.Unregister(1);
  EXPECT_FALSE(network.Connected(1));
}

TEST(NetworkTest, AccountingCountsFramesAndBytes) {
  Network network;
  auto inbox = network.Register(1);
  ASSERT_TRUE(inbox.ok());
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("12345")).ok());
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("678")).ok());
  EXPECT_EQ(network.frames_delivered(), 2u);
  EXPECT_EQ(network.bytes_delivered(), 8u);
}

TEST(NetworkTest, AttachmentBytesCountedAndDelivered) {
  Network network;
  auto inbox = network.Register(1);
  ASSERT_TRUE(inbox.ok());
  const Blob bulk = Blob::FromString("0123456789");
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("hdr"), bulk).ok());
  auto frame = (*inbox)->Recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.ToString(), "hdr");
  EXPECT_EQ(frame->attachment.ToString(), "0123456789");
  // The attachment is the same refcounted allocation, not a copy.
  EXPECT_TRUE(frame->attachment.SharesPayloadWith(bulk));
  EXPECT_EQ(network.frames_delivered(), 1u);
  EXPECT_EQ(network.bytes_delivered(), 13u);
}

TEST(NetworkTest, FailedSendNotCounted) {
  Network network;
  ASSERT_TRUE(network.Register(1).ok());
  EXPECT_FALSE(network.Send(0, 99, Blob::FromString("lost")).ok());
  EXPECT_EQ(network.frames_delivered(), 0u);
  EXPECT_EQ(network.bytes_delivered(), 0u);
}

TEST(NetworkTest, FullInboxDoesNotStallOtherEndpoints) {
  // Regression: a bounded (slow) inbox at capacity blocks its sender, but
  // must never hold a lock that serializes traffic to other endpoints.
  Network network;
  auto slow = network.Register(1, /*capacity=*/1);
  ASSERT_TRUE(slow.ok());
  auto fast = network.Register(2);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(network.Send(0, 1, Blob::FromString("fills")).ok());

  std::thread blocked([&network] {
    // Blocks until the test drains the slow inbox below.
    ASSERT_TRUE(network.Send(0, 1, Blob::FromString("waits")).ok());
  });
  // Give the blocked sender time to park inside Send.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Unrelated endpoint must still be reachable, promptly.
  ASSERT_TRUE(network.Send(0, 2, Blob::FromString("through")).ok());
  auto frame = (*fast)->RecvFor(std::chrono::seconds(10));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.ToString(), "through");

  EXPECT_TRUE((*slow)->Recv().has_value());  // unblocks the parked sender
  blocked.join();
  EXPECT_TRUE((*slow)->Recv().has_value());
  EXPECT_EQ(network.frames_delivered(), 3u);
}

TEST(NetworkTest, ManyToOneDelivery) {
  Network network;
  auto inbox = network.Register(kManagerEndpoint);
  ASSERT_TRUE(inbox.ok());
  constexpr int kSenders = 4;
  constexpr int kEach = 250;
  std::vector<std::thread> senders;
  for (int s = 1; s <= kSenders; ++s) {
    senders.emplace_back([&network, s] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(network
                        .Send(static_cast<EndpointId>(s), kManagerEndpoint,
                              Blob::FromString("m"))
                        .ok());
      }
    });
  }
  int received = 0;
  while (received < kSenders * kEach) {
    auto frame = (*inbox)->Recv();
    ASSERT_TRUE(frame.has_value());
    ++received;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(received, kSenders * kEach);
}

}  // namespace
}  // namespace vinelet::net
