// SHA-256 against the FIPS 180-4 / NIST CAVS reference vectors, plus the
// incremental-update and ContentId behaviours the storage layer relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "hash/content_id.hpp"
#include "hash/sha256.hpp"

namespace vinelet::hash {
namespace {

std::string HexOf(std::string_view text) {
  return Sha256::ToHex(Sha256::Hash(text));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  const std::string block(64, 'a');
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(block)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message =
      "the quick brown fox jumps over the lazy dog, repeatedly and with "
      "increasing determination, for one hundred and twenty-eight bytes!!";
  const auto oneshot = Sha256::Hash(message);
  // Feed in awkward chunk sizes that straddle block boundaries.
  for (std::size_t chunk : {1u, 3u, 7u, 63u, 64u, 65u, 100u}) {
    Sha256 hasher;
    for (std::size_t pos = 0; pos < message.size(); pos += chunk) {
      hasher.Update(std::string_view(message).substr(pos, chunk));
    }
    EXPECT_EQ(hasher.Finish(), oneshot) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, ResetReusesHasher) {
  Sha256 hasher;
  hasher.Update("first");
  (void)hasher.Finish();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, LengthExtensionOfPaddingBoundary) {
  // 55 and 56 bytes are the padding-layout edge cases.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(std::string(55, 'x'))).size(), 64u);
  EXPECT_NE(Sha256::Hash(std::string(55, 'x')),
            Sha256::Hash(std::string(56, 'x')));
}

// ---------------------------------------------------------------------------
// Backend parity: every vector must hold for both the scalar compression
// loop and the runtime-dispatched hardware backend (SHA-NI / ARMv8 crypto).
// On machines without the extension both parameterizations resolve to the
// scalar path and the tests still pin the known answers.
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random fill (LCG) so long-message inputs are
/// reproducible without any RNG seed plumbing.
std::string PseudoRandomMessage(std::size_t n) {
  std::string out(n, '\0');
  std::uint32_t s = 0x9e3779b9u;
  for (auto& c : out) {
    s = s * 1664525u + 1013904223u;
    c = static_cast<char>(s >> 24);
  }
  return out;
}

class Sha256BackendTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { Sha256::ForceScalarForTest(GetParam()); }
  void TearDown() override { Sha256::ForceScalarForTest(false); }
};

TEST_P(Sha256BackendTest, NistKnownAnswerVectors) {
  // FIPS 180-4 / CAVS known answers: one-block, two-block (448-bit),
  // four-block (896-bit), and the one-million-'a' long-message vector.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST_P(Sha256BackendTest, UpdateBoundarySplitsMatchOneShot) {
  // A multi-block message split at every alignment the Update bookkeeping
  // treats differently: mid-block, the 55/56-byte padding edge, exact block
  // multiples, and one-past-a-block.
  const std::string message = PseudoRandomMessage(1 << 16);
  const auto oneshot = Sha256::Hash(message);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{31}, std::size_t{32},
                            std::size_t{33}, std::size_t{55}, std::size_t{56},
                            std::size_t{57}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{127}, std::size_t{128},
                            std::size_t{129}, std::size_t{511},
                            std::size_t{4096}}) {
    Sha256 hasher;
    for (std::size_t pos = 0; pos < message.size(); pos += chunk)
      hasher.Update(std::string_view(message).substr(pos, chunk));
    EXPECT_EQ(hasher.Finish(), oneshot) << "chunk=" << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, Sha256BackendTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Scalar" : "Dispatched";
                         });

TEST(Sha256Test, AcceleratedMatchesScalarAcrossLengths) {
  // Differential check: for every length through the first four blocks plus
  // a spread of long messages, the dispatched backend must produce the
  // scalar digest bit for bit.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 257; ++n) lengths.push_back(n);
  for (std::size_t n : {std::size_t{1000}, std::size_t{4096},
                        std::size_t{65536}, std::size_t{(1 << 20) + 17}})
    lengths.push_back(n);
  const std::string buffer = PseudoRandomMessage(lengths.back());
  for (std::size_t n : lengths) {
    const std::string_view view = std::string_view(buffer).substr(0, n);
    Sha256::ForceScalarForTest(true);
    const auto scalar = Sha256::Hash(view);
    Sha256::ForceScalarForTest(false);
    const auto dispatched = Sha256::Hash(view);
    EXPECT_EQ(scalar, dispatched) << "length=" << n;
  }
  Sha256::ForceScalarForTest(false);
}

// ---------------------------------------------------------------------------
// ContentId
// ---------------------------------------------------------------------------

TEST(ContentIdTest, DefaultIsZero) {
  ContentId id;
  EXPECT_TRUE(id.IsZero());
}

TEST(ContentIdTest, SameContentSameId) {
  const Blob a = Blob::FromString("identical bytes");
  const Blob b = Blob::FromString("identical bytes");
  EXPECT_EQ(ContentId::Of(a), ContentId::Of(b));
}

TEST(ContentIdTest, DifferentContentDifferentId) {
  EXPECT_NE(ContentId::Of(Blob::FromString("a")),
            ContentId::Of(Blob::FromString("b")));
}

TEST(ContentIdTest, HexForms) {
  const ContentId id = ContentId::OfText("abc");
  EXPECT_EQ(id.ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(id.ShortHex(), "ba7816bf8f01");
}

TEST(ContentIdTest, Prefix64MatchesDigestPrefix) {
  const ContentId id = ContentId::OfText("abc");
  EXPECT_EQ(id.Prefix64(), 0xba7816bf8f01cfeaull);
}

TEST(ContentIdTest, FromDigestRoundTrip) {
  const ContentId original = ContentId::OfText("round trip");
  const ContentId rebuilt = ContentId::FromDigest(original.digest());
  EXPECT_EQ(original, rebuilt);
}

TEST(ContentIdTest, OrderingIsTotal) {
  const ContentId a = ContentId::OfText("a");
  const ContentId b = ContentId::OfText("b");
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(a == a);
}

TEST(ContentIdTest, StdHashUsable) {
  std::hash<ContentId> hasher;
  EXPECT_NE(hasher(ContentId::OfText("x")), hasher(ContentId::OfText("y")));
}

}  // namespace
}  // namespace vinelet::hash
