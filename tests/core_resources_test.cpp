// ResourceAllocator: allocation/release invariants, whole-worker
// semantics, and a random-workload conservation property.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/resources.hpp"
#include "core/types.hpp"

namespace vinelet::core {
namespace {

TEST(ResourcesTest, AllSentinel) {
  EXPECT_TRUE(Resources::All().IsAll());
  EXPECT_FALSE((Resources{1, 1, 1}).IsAll());
  EXPECT_EQ(Resources::All().ToString(), "{all}");
}

TEST(ResourcesTest, FitsWithinComponentwise) {
  const Resources avail{4, 100, 100};
  EXPECT_TRUE((Resources{4, 100, 100}).FitsWithin(avail));
  EXPECT_FALSE((Resources{5, 1, 1}).FitsWithin(avail));
  EXPECT_FALSE((Resources{1, 101, 1}).FitsWithin(avail));
  EXPECT_FALSE((Resources{1, 1, 101}).FitsWithin(avail));
}

TEST(AllocatorTest, AllocateAndRelease) {
  ResourceAllocator alloc(Resources{32, 1024, 1024});
  auto claimed = alloc.Allocate(Resources{2, 128, 64});
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ(alloc.free().cores, 30u);
  EXPECT_EQ(alloc.free().memory_mb, 896u);
  ASSERT_TRUE(alloc.Release(*claimed).ok());
  EXPECT_TRUE(alloc.FullyIdle());
}

TEST(AllocatorTest, RejectsOverAllocation) {
  ResourceAllocator alloc(Resources{2, 100, 100});
  EXPECT_TRUE(alloc.CanAllocate(Resources{2, 100, 100}));
  EXPECT_FALSE(alloc.CanAllocate(Resources{3, 1, 1}));
  EXPECT_EQ(alloc.Allocate(Resources{3, 1, 1}).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(AllocatorTest, WholeWorkerRequiresIdle) {
  ResourceAllocator alloc(Resources{8, 100, 100});
  auto small = alloc.Allocate(Resources{1, 1, 1});
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(alloc.CanAllocate(Resources::All()));
  EXPECT_FALSE(alloc.Allocate(Resources::All()).ok());
  ASSERT_TRUE(alloc.Release(*small).ok());
  auto whole = alloc.Allocate(Resources::All());
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->cores, 8u);  // resolved to the full worker
  EXPECT_FALSE(alloc.CanAllocate(Resources{1, 1, 1}));
  ASSERT_TRUE(alloc.Release(*whole).ok());
  EXPECT_TRUE(alloc.FullyIdle());
}

TEST(AllocatorTest, OverReleaseRejected) {
  ResourceAllocator alloc(Resources{4, 100, 100});
  EXPECT_EQ(alloc.Release(Resources{1, 1, 1}).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(AllocatorTest, SlotPackingMatchesPaperShapes) {
  // LNNI: 32-core worker, 2-core invocations -> 16 concurrent (§4.2).
  ResourceAllocator lnni(Resources{32, 64 * 1024, 64 * 1024});
  int fitted = 0;
  while (lnni.Allocate(Resources{2, 4 * 1024, 4 * 1024}).ok()) ++fitted;
  EXPECT_EQ(fitted, 16);
  // ExaMol: 4-core/8GB invocations -> 8 concurrent, memory-bound.
  ResourceAllocator examol(Resources{32, 64 * 1024, 64 * 1024});
  fitted = 0;
  while (examol.Allocate(Resources{4, 8 * 1024, 8 * 1024}).ok()) ++fitted;
  EXPECT_EQ(fitted, 8);
}

TEST(AllocatorTest, ConservationUnderRandomWorkload) {
  const Resources total{32, 4096, 4096};
  ResourceAllocator alloc(total);
  Rng rng(99);
  std::vector<Resources> held;
  for (int step = 0; step < 5000; ++step) {
    if (rng.NextBelow(2) == 0 || held.empty()) {
      Resources request{static_cast<std::uint32_t>(1 + rng.NextBelow(8)),
                        1 + rng.NextBelow(512), 1 + rng.NextBelow(512)};
      auto claimed = alloc.Allocate(request);
      if (claimed.ok()) held.push_back(*claimed);
    } else {
      const std::size_t pick = rng.NextBelow(held.size());
      ASSERT_TRUE(alloc.Release(held[pick]).ok());
      held.erase(held.begin() + static_cast<long>(pick));
    }
    // Conservation: free + held == total, componentwise.
    Resources sum = alloc.free();
    for (const auto& h : held) {
      sum.cores += h.cores;
      sum.memory_mb += h.memory_mb;
      sum.disk_mb += h.disk_mb;
    }
    ASSERT_EQ(sum, total);
  }
}

TEST(ReuseLevelTest, Names) {
  EXPECT_EQ(ReuseLevelName(ReuseLevel::kL1), "L1");
  EXPECT_EQ(ReuseLevelName(ReuseLevel::kL2), "L2");
  EXPECT_EQ(ReuseLevelName(ReuseLevel::kL3), "L3");
}

TEST(TimingBreakdownTest, TotalAndAccumulate) {
  TimingBreakdown a{1, 2, 3, 4};
  TimingBreakdown b{0.5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.Total(), 12.0);
  EXPECT_DOUBLE_EQ(a.transfer_s, 1.5);
}

}  // namespace
}  // namespace vinelet::core
