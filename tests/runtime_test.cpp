// End-to-end tests of the real runtime: manager + workers + libraries over
// the in-process network.  Covers all three context-reuse levels, library
// slot accounting, empty-library eviction, peer transfers, and fault
// injection (worker death with retry).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <variant>

#include "core/blob_ref.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "core/protocol.hpp"
#include "poncho/packer.hpp"

namespace vinelet::core {
namespace {

using serde::ContextHandle;
using serde::FunctionContext;
using serde::InvocationEnv;
using serde::Value;

/// Context retained by the test library: a number plus a liveness flag.
class NumberContext final : public FunctionContext {
 public:
  explicit NumberContext(std::int64_t number) : number_(number) {}
  std::int64_t number() const noexcept { return number_; }
  std::uint64_t MemoryBytes() const override { return sizeof(*this); }

 private:
  std::int64_t number_;
};

struct TestState {
  std::atomic<int> setup_runs{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak_concurrent{0};
};

/// Test harness: network + manager + factory + an isolated registry.
class RuntimeTest : public ::testing::Test {
 protected:
  void StartCluster(std::size_t workers, ManagerConfig manager_config = {},
                    Resources worker_resources = {32, 64 * 1024, 64 * 1024},
                    std::uint64_t ref_results_min_bytes = 0) {
    state_ = std::make_shared<TestState>();
    RegisterTestFunctions();
    network_ = std::make_shared<net::Network>();
    manager_config.registry = &registry_;
    manager_ = std::make_unique<Manager>(network_, manager_config);
    ASSERT_TRUE(manager_->Start().ok());
    FactoryConfig factory_config;
    factory_config.initial_workers = workers;
    factory_config.worker_resources = worker_resources;
    factory_config.ref_results_min_bytes = ref_results_min_bytes;
    factory_config.registry = &registry_;
    factory_ = std::make_unique<Factory>(network_, factory_config);
    ASSERT_TRUE(factory_->Start().ok());
    ASSERT_TRUE(manager_->WaitForWorkers(workers, 30.0).ok());
  }

  void TearDown() override {
    if (manager_) manager_->Stop();
    if (factory_) factory_->Stop();
  }

  void RegisterTestFunctions() {
    auto state = state_;

    serde::FunctionDef add;
    add.name = "add";
    add.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      auto a = args.GetInt("a");
      if (!a.ok()) return a.status();
      auto b = args.GetInt("b");
      if (!b.ok()) return b.status();
      return Value(*a + *b);
    };
    ASSERT_TRUE(registry_.RegisterFunction(add).ok());

    serde::FunctionDef fail;
    fail.name = "always_fails";
    fail.fn = [](const Value&, const InvocationEnv&) -> Result<Value> {
      return InternalError("deliberate failure");
    };
    ASSERT_TRUE(registry_.RegisterFunction(fail).ok());

    serde::FunctionDef closure_add;
    closure_add.name = "closure_add";
    closure_add.fn = [](const Value& args,
                        const InvocationEnv& env) -> Result<Value> {
      auto a = args.GetInt("a");
      if (!a.ok()) return a.status();
      const std::int64_t captured =
          env.closure != nullptr && !env.closure->is_null()
              ? env.closure->Get("offset").AsInt()
              : 0;
      return Value(*a + captured);
    };
    ASSERT_TRUE(registry_.RegisterFunction(closure_add).ok());

    serde::FunctionDef read_file;
    read_file.name = "read_file";
    read_file.fn = [](const Value& args,
                      const InvocationEnv& env) -> Result<Value> {
      auto name = args.GetString("name");
      if (!name.ok()) return name.status();
      if (!env.HasFile(*name)) return NotFoundError("missing: " + *name);
      return Value(static_cast<std::int64_t>(env.File(*name).size()));
    };
    ASSERT_TRUE(registry_.RegisterFunction(read_file).ok());

    serde::FunctionDef sleepy;
    sleepy.name = "sleepy";
    sleepy.fn = [state](const Value& args,
                        const InvocationEnv&) -> Result<Value> {
      const int now = state->concurrent.fetch_add(1) + 1;
      int peak = state->peak_concurrent.load();
      while (now > peak &&
             !state->peak_concurrent.compare_exchange_weak(peak, now)) {
      }
      auto ms = args.GetInt("ms");
      if (!ms.ok()) return ms.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
      state->concurrent.fetch_sub(1);
      return Value(true);
    };
    ASSERT_TRUE(registry_.RegisterFunction(sleepy).ok());

    serde::FunctionDef make_payload;
    make_payload.name = "make_payload";
    make_payload.fn = [](const Value& args,
                         const InvocationEnv&) -> Result<Value> {
      auto bytes = args.GetInt("bytes");
      if (!bytes.ok()) return bytes.status();
      auto fill = args.GetInt("fill");
      if (!fill.ok()) return fill.status();
      return Value(std::string(static_cast<std::size_t>(*bytes),
                               static_cast<char>('a' + *fill % 23)));
    };
    ASSERT_TRUE(registry_.RegisterFunction(make_payload).ok());

    // Positional consumer: args is [payload]; a ref arg must have been
    // spliced back into a concrete string before the function runs.
    serde::FunctionDef payload_probe;
    payload_probe.name = "payload_probe";
    payload_probe.fn = [](const Value& args,
                          const InvocationEnv&) -> Result<Value> {
      if (args.type() != Value::Type::kList || args.AsList().empty())
        return InvalidArgumentError("expected positional [payload]");
      const Value& payload = args.AsList()[0];
      if (payload.type() != Value::Type::kString)
        return InvalidArgumentError("ref payload was not spliced");
      const std::string& s = payload.AsString();
      return Value(static_cast<std::int64_t>(s.size()) +
                   static_cast<std::int64_t>(s[0]));
    };
    ASSERT_TRUE(registry_.RegisterFunction(payload_probe).ok());

    serde::ContextSetupDef setup;
    setup.name = "number_setup";
    setup.fn = [state](const Value& args,
                       const InvocationEnv&) -> Result<ContextHandle> {
      state->setup_runs.fetch_add(1);
      return ContextHandle(
          std::make_shared<NumberContext>(args.Get("number").AsInt()));
    };
    ASSERT_TRUE(registry_.RegisterSetup(setup).ok());

    serde::FunctionDef use_context;
    use_context.name = "use_context";
    use_context.setup_name = "number_setup";
    use_context.fn = [](const Value& args,
                        const InvocationEnv& env) -> Result<Value> {
      auto x = args.GetInt("x");
      if (!x.ok()) return x.status();
      const auto* ctx = dynamic_cast<const NumberContext*>(env.context);
      serde::ValueDict out;
      out["had_context"] = Value(ctx != nullptr);
      out["sum"] = Value(*x + (ctx != nullptr ? ctx->number() : 0));
      return Value(std::move(out));
    };
    ASSERT_TRUE(registry_.RegisterFunction(use_context).ok());

    serde::FunctionDef slow_ctx;
    slow_ctx.name = "slow_with_context";
    slow_ctx.setup_name = "number_setup";
    slow_ctx.fn = [state](const Value& args,
                          const InvocationEnv&) -> Result<Value> {
      const int now = state->concurrent.fetch_add(1) + 1;
      int peak = state->peak_concurrent.load();
      while (now > peak &&
             !state->peak_concurrent.compare_exchange_weak(peak, now)) {
      }
      auto ms = args.GetInt("ms");
      if (!ms.ok()) return ms.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
      state->concurrent.fetch_sub(1);
      return Value(true);
    };
    ASSERT_TRUE(registry_.RegisterFunction(slow_ctx).ok());

    serde::FunctionDef fail_if;
    fail_if.name = "fail_if";
    fail_if.setup_name = "number_setup";
    fail_if.fn = [](const Value& args,
                    const InvocationEnv& env) -> Result<Value> {
      if (args.Get("fail").AsBool()) return InternalError("poisoned item");
      auto x = args.GetInt("x");
      if (!x.ok()) return x.status();
      const auto* ctx = dynamic_cast<const NumberContext*>(env.context);
      return Value(*x + (ctx != nullptr ? ctx->number() : 0));
    };
    ASSERT_TRUE(registry_.RegisterFunction(fail_if).ok());
  }

  serde::FunctionRegistry registry_;
  std::shared_ptr<TestState> state_;
  std::shared_ptr<net::Network> network_;
  std::unique_ptr<Manager> manager_;
  std::unique_ptr<Factory> factory_;
};

// ---------------------------------------------------------------------------
// Stateless tasks (L1/L2 plumbing).
// ---------------------------------------------------------------------------

TEST_F(RuntimeTest, SingleTaskRoundTrip) {
  StartCluster(1);
  auto future = manager_->SubmitTask(
      "add", Value::Dict({{"a", Value(2)}, {"b", Value(40)}}), {},
      Resources{1, 64, 64});
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 42);
  EXPECT_GE(outcome->timing.exec_s, 0.0);
  EXPECT_EQ(manager_->metrics().tasks_completed, 1u);
}

TEST_F(RuntimeTest, TaskWithoutSerializedFunctionUsesNamedPath) {
  StartCluster(1);
  auto future = manager_->SubmitTask(
      "add", Value::Dict({{"a", Value(1)}, {"b", Value(1)}}), {},
      Resources{1, 64, 64}, /*ship_serialized_function=*/false);
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->value.AsInt(), 2);
}

TEST_F(RuntimeTest, TaskFailurePropagates) {
  StartCluster(1);
  auto future =
      manager_->SubmitTask("always_fails", Value(), {}, Resources{1, 64, 64});
  auto outcome = future->Wait();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), ErrorCode::kInternal);
}

TEST_F(RuntimeTest, UnknownFunctionFailsCleanly) {
  StartCluster(1);
  auto future = manager_->SubmitTask("no_such_function", Value(), {},
                                     Resources{1, 64, 64},
                                     /*ship_serialized_function=*/false);
  auto outcome = future->Wait();
  EXPECT_FALSE(outcome.ok());
}

TEST_F(RuntimeTest, InlineUncachedInputRidesWithTask) {
  StartCluster(1);
  const Blob data = Blob::FromString(std::string(2048, 'd'));
  storage::FileDecl decl = manager_->DeclareBlob(
      "dataset", data, storage::FileKind::kData, /*cache=*/false);
  auto future = manager_->SubmitTask(
      "read_file", Value::Dict({{"name", Value("dataset")}}), {decl},
      Resources{1, 64, 64});
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 2048);
  // Inline (L1) files are never staged into the worker cache.
  Worker* worker = factory_->GetWorker(factory_->WorkerIds()[0]);
  ASSERT_NE(worker, nullptr);
  EXPECT_FALSE(worker->store().Contains(decl.id));
}

TEST_F(RuntimeTest, CachedInputStagedOncePerWorker) {
  StartCluster(1);
  const Blob data = Blob::FromString(std::string(4096, 'c'));
  storage::FileDecl decl = manager_->DeclareBlob(
      "dataset", data, storage::FileKind::kData, /*cache=*/true);
  for (int i = 0; i < 5; ++i) {
    auto future = manager_->SubmitTask(
        "read_file", Value::Dict({{"name", Value("dataset")}}), {decl},
        Resources{1, 64, 64});
    auto outcome = future->Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->value.AsInt(), 4096);
  }
  // One transfer of the dataset; the serialized function file also caches,
  // so at most 2 manager transfers total despite 5 tasks.
  EXPECT_LE(manager_->metrics().manager_transfers, 2u);
  Worker* worker = factory_->GetWorker(factory_->WorkerIds()[0]);
  EXPECT_TRUE(worker->store().Contains(decl.id));
}

TEST_F(RuntimeTest, EnvironmentTarballUnpackedAndShared) {
  StartCluster(1);
  const Blob tarball = poncho::Packer::PackFiles(
      {{"package.lib", Blob::FromString(std::string(1000, 'p'))}});
  storage::FileDecl decl =
      manager_->DeclareBlob("env", tarball, storage::FileKind::kEnvironment,
                            /*cache=*/true, /*peer_transfer=*/true,
                            /*unpack=*/true);
  // The unpacked member file is visible to the function by its entry name.
  for (int i = 0; i < 3; ++i) {
    auto future = manager_->SubmitTask(
        "read_file", Value::Dict({{"name", Value("package.lib")}}), {decl},
        Resources{1, 64, 64});
    auto outcome = future->Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->value.AsInt(), 1000);
  }
}

TEST_F(RuntimeTest, SerializedClosureTravelsWithTask) {
  StartCluster(1);
  // Model a lambda with captures: serialize closure explicitly and declare
  // it as the function input file.
  const Blob fn_blob = serde::SerializedFunction::Serialize(
      "closure_add", Value::Dict({{"offset", Value(100)}}), 256);
  storage::FileDecl decl =
      manager_->DeclareBlob("fn:closure_add", fn_blob,
                            storage::FileKind::kSerializedFunction,
                            /*cache=*/true);
  auto future = manager_->SubmitTask("closure_add",
                                     Value::Dict({{"a", Value(1)}}), {decl},
                                     Resources{1, 64, 64},
                                     /*ship_serialized_function=*/false);
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.AsInt(), 101);
}

TEST_F(RuntimeTest, ManyTasksAcrossWorkers) {
  StartCluster(3);
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 60; ++i) {
    futures.push_back(manager_->SubmitTask(
        "add", Value::Dict({{"a", Value(i)}, {"b", Value(i)}}), {},
        Resources{1, 64, 64}));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  for (int i = 0; i < 60; ++i) {
    auto outcome = futures[static_cast<std::size_t>(i)]->Wait();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->value.AsInt(), 2 * i);
  }
  EXPECT_EQ(manager_->metrics().tasks_completed, 60u);
}

// ---------------------------------------------------------------------------
// Libraries and invocations (L3).
// ---------------------------------------------------------------------------

TEST_F(RuntimeTest, LibraryInvocationUsesRetainedContext) {
  StartCluster(1);
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(1000)}}));
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  auto future = manager_->SubmitCall("numbers", "use_context",
                                     Value::Dict({{"x", Value(7)}}));
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->value.Get("had_context").AsBool());
  EXPECT_EQ(outcome->value.Get("sum").AsInt(), 1007);
}

TEST_F(RuntimeTest, ContextSetupRunsOncePerInstance) {
  StartCluster(1);
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(5)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  std::vector<FuturePtr> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(manager_->SubmitCall("numbers", "use_context",
                                           Value::Dict({{"x", Value(i)}})));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  for (auto& future : futures) ASSERT_TRUE(future->Wait().ok());
  // One worker, whole-worker library: exactly one instance, one setup.
  EXPECT_EQ(state_->setup_runs.load(), 1);
  EXPECT_EQ(manager_->metrics().invocations_completed, 20u);
  EXPECT_EQ(manager_->metrics().libraries_deployed, 1u);
}

TEST_F(RuntimeTest, RetainedContextMemoryAccounted) {
  StartCluster(1);
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(5)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  ASSERT_TRUE(manager_
                  ->SubmitCall("numbers", "use_context",
                               Value::Dict({{"x", Value(1)}}))
                  ->Wait()
                  .ok());
  // The library reported its NumberContext's footprint at LibraryReady.
  EXPECT_EQ(manager_->metrics().retained_context_bytes,
            sizeof(NumberContext));

  // Evicting the library releases the accounted memory.
  auto spec_b = manager_->CreateLibraryFromFunctions(
      "other", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(6)}}));
  ASSERT_TRUE(spec_b.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec_b).ok());
  ASSERT_TRUE(manager_
                  ->SubmitCall("other", "use_context",
                               Value::Dict({{"x", Value(1)}}))
                  ->Wait()
                  .ok());
  // One worker: "numbers" was evicted for "other"; only one context remains.
  EXPECT_EQ(manager_->metrics().retained_context_bytes,
            sizeof(NumberContext));
}

TEST_F(RuntimeTest, ForkModeSlotsAllowConcurrency) {
  StartCluster(1);
  LibraryOptions options;
  options.slots = 4;
  options.exec_mode = ExecMode::kFork;
  auto spec = manager_->CreateLibraryFromFunctions(
      "sleepers", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  std::vector<FuturePtr> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(manager_->SubmitCall(
        "sleepers", "slow_with_context", Value::Dict({{"ms", Value(50)}})));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  for (auto& future : futures) ASSERT_TRUE(future->Wait().ok());
  EXPECT_GE(state_->peak_concurrent.load(), 2);  // genuinely parallel
  EXPECT_LE(state_->peak_concurrent.load(), 4);  // bounded by slots
}

TEST_F(RuntimeTest, DirectModeSerializesInvocations) {
  StartCluster(1);
  LibraryOptions options;
  options.slots = 1;
  options.exec_mode = ExecMode::kDirect;
  auto spec = manager_->CreateLibraryFromFunctions(
      "serial", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  for (int i = 0; i < 4; ++i) {
    manager_->SubmitCall("serial", "slow_with_context",
                         Value::Dict({{"ms", Value(20)}}));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  EXPECT_EQ(state_->peak_concurrent.load(), 1);
}

TEST_F(RuntimeTest, CallToUnknownLibraryFails) {
  StartCluster(1);
  auto outcome = manager_->SubmitCall("ghost", "f", Value())->Wait();
  EXPECT_EQ(outcome.status().code(), ErrorCode::kNotFound);
}

TEST_F(RuntimeTest, CallToUnknownFunctionInLibraryFails) {
  StartCluster(1);
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}));
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  auto outcome =
      manager_->SubmitCall("numbers", "not_in_library", Value())->Wait();
  EXPECT_FALSE(outcome.ok());
}

TEST_F(RuntimeTest, LibrarySpreadsAcrossWorkers) {
  StartCluster(3);
  LibraryOptions options;
  options.slots = 1;
  auto spec = manager_->CreateLibraryFromFunctions(
      "sleepers", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(manager_->SubmitCall(
        "sleepers", "slow_with_context", Value::Dict({{"ms", Value(60)}})));
  }
  ASSERT_TRUE(manager_->WaitAll(90.0).ok());
  // With 1-slot whole-worker libraries and 9 queued calls, the manager
  // must have deployed one instance per worker.
  EXPECT_EQ(manager_->metrics().libraries_deployed, 3u);
  EXPECT_GE(state_->peak_concurrent.load(), 2);
}

TEST_F(RuntimeTest, EmptyLibraryEvictedForStarvedFunction) {
  StartCluster(1);  // single worker: the two libraries must take turns
  auto spec_a = manager_->CreateLibraryFromFunctions(
      "lib_a", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(1)}}));
  ASSERT_TRUE(spec_a.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec_a).ok());
  ASSERT_TRUE(
      manager_->SubmitCall("lib_a", "use_context", Value::Dict({{"x", Value(0)}}))
          ->Wait()
          .ok());

  auto spec_b = manager_->CreateLibraryFromFunctions(
      "lib_b", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(2)}}));
  ASSERT_TRUE(spec_b.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec_b).ok());
  auto outcome = manager_->SubmitCall("lib_b", "use_context",
                                      Value::Dict({{"x", Value(0)}}))
                     ->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->value.Get("sum").AsInt(), 2);
  EXPECT_GE(manager_->metrics().libraries_evicted, 1u);
  EXPECT_EQ(manager_->metrics().libraries_deployed, 2u);
}

// ---------------------------------------------------------------------------
// Distribution.
// ---------------------------------------------------------------------------

TEST_F(RuntimeTest, PeerTransfersServeSecondWorker) {
  ManagerConfig config;
  config.peer_transfers = true;
  StartCluster(2, config, Resources{1, 64 * 1024, 64 * 1024});
  const Blob data = Blob::FromString(std::string(8192, 'p'));
  storage::FileDecl decl =
      manager_->DeclareBlob("dataset", data, storage::FileKind::kData, true);
  // Seed the first worker's cache (and the replica table) with one task...
  ASSERT_TRUE(manager_
                  ->SubmitTask("sleepy", Value::Dict({{"ms", Value(5)}}),
                               {decl}, Resources{1, 64, 64})
                  ->Wait()
                  .ok());
  // ...then saturate both single-core workers: the second worker's copy
  // must come from the first worker, not the manager.
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(manager_->SubmitTask(
        "sleepy", Value::Dict({{"ms", Value(30)}}), {decl},
        Resources{1, 64, 64}));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  for (auto& future : futures) ASSERT_TRUE(future->Wait().ok());
  const auto metrics = manager_->metrics();
  EXPECT_GE(metrics.peer_transfers, 1u);
}

TEST_F(RuntimeTest, PeerTransfersDisabledFallsBackToManager) {
  ManagerConfig config;
  config.peer_transfers = false;
  StartCluster(2, config, Resources{1, 64 * 1024, 64 * 1024});
  const Blob data = Blob::FromString(std::string(8192, 'q'));
  storage::FileDecl decl =
      manager_->DeclareBlob("dataset", data, storage::FileKind::kData, true);
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(manager_->SubmitTask(
        "sleepy", Value::Dict({{"ms", Value(30)}}), {decl},
        Resources{1, 64, 64}));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  EXPECT_EQ(manager_->metrics().peer_transfers, 0u);
}

TEST_F(RuntimeTest, BroadcastFileReachesEveryWorker) {
  StartCluster(5);
  std::string text(1 << 20, '\0');
  for (std::size_t i = 0; i < text.size(); ++i)
    text[i] = static_cast<char>('a' + (i * 31 + i / 257) % 23);
  const Blob data = Blob::FromString(std::move(text));
  storage::FileDecl decl =
      manager_->DeclareBlob("model", data, storage::FileKind::kData, true);
  auto outcome =
      manager_->BroadcastFile(decl, /*chunk_bytes=*/64 * 1024, /*fanout_cap=*/2)
          ->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->timing.transfer_s, 0.0);
  for (WorkerId id : factory_->WorkerIds()) {
    auto stored = factory_->GetWorker(id)->store().Get(decl.id);
    ASSERT_TRUE(stored.ok()) << "worker " << id << " missing broadcast blob";
    EXPECT_EQ(*stored, data);
  }
  // One pipelined tree, not one manager transfer per worker: the manager
  // sent the blob only to the fan-out roots.
  EXPECT_LE(manager_->metrics().manager_transfers, 2u);
}

TEST_F(RuntimeTest, BroadcastToZeroWorkersResolvesImmediately) {
  StartCluster(1);
  const Blob data = Blob::FromString(std::string(1024, 'z'));
  storage::FileDecl decl =
      manager_->DeclareBlob("tiny", data, storage::FileKind::kData, true);
  // An undeclared (never stored) blob must fail cleanly, not hang.
  storage::FileDecl ghost;
  ghost.name = "ghost";
  ghost.id = hash::ContentId::OfText("never stored");
  ghost.size = 10;
  EXPECT_FALSE(manager_->BroadcastFile(ghost)->Wait().ok());
  // A real blob on a 1-worker cluster completes trivially.
  EXPECT_TRUE(manager_->BroadcastFile(decl)->Wait().ok());
}

// ---------------------------------------------------------------------------
// Fault tolerance.
// ---------------------------------------------------------------------------

TEST_F(RuntimeTest, BroadcastSurvivesRelayDeathMidTransfer) {
  // Kill a worker while a many-chunk broadcast is in flight.  Whatever the
  // relay had not yet forwarded is lost to its subtree; the manager must
  // detect the death (probe or failed send) and re-feed the survivors.
  ManagerConfig config;
  config.broadcast_probe_s = 0.05;  // fast probe so the test stays quick
  StartCluster(8, config);
  std::string text(1 << 20, '\0');
  for (std::size_t i = 0; i < text.size(); ++i)
    text[i] = static_cast<char>(i * 131 + 17);
  const Blob data = Blob::FromString(std::move(text));
  storage::FileDecl decl =
      manager_->DeclareBlob("model", data, storage::FileKind::kData, true);

  auto future = manager_->BroadcastFile(decl, /*chunk_bytes=*/16 * 1024,
                                        /*fanout_cap=*/2);
  // Race the kill against the 64-chunk pipeline on purpose: depending on
  // timing the victim dies before its chunks, mid-relay, or after
  // confirming.  All three must converge.
  const WorkerId victim = factory_->WorkerIds()[1];
  ASSERT_TRUE(factory_->KillWorker(victim).ok());
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  for (WorkerId id : factory_->WorkerIds()) {
    auto stored = factory_->GetWorker(id)->store().Get(decl.id);
    ASSERT_TRUE(stored.ok()) << "survivor " << id << " missing broadcast blob";
    EXPECT_EQ(*stored, data);
  }
}

TEST_F(RuntimeTest, QueuedTasksScheduleInSubmissionOrder) {
  // Pins the scheduler's FIFO sweep: tasks that could not be placed keep
  // their relative order in the queue (the compaction pass must be stable).
  auto order = std::make_shared<std::vector<std::int64_t>>();
  auto order_mu = std::make_shared<std::mutex>();
  serde::FunctionDef rec;
  rec.name = "record_order";
  rec.fn = [order, order_mu](const Value& args,
                             const InvocationEnv&) -> Result<Value> {
    std::lock_guard<std::mutex> lock(*order_mu);
    order->push_back(args.Get("i").AsInt());
    return Value(true);
  };
  ASSERT_TRUE(registry_.RegisterFunction(rec).ok());
  StartCluster(1, {}, Resources{1, 64 * 1024, 64 * 1024});
  // Occupy the only core so the later submissions pile up in the queue,
  // then drain strictly one at a time.
  auto blocker = manager_->SubmitTask(
      "sleepy", Value::Dict({{"ms", Value(80)}}), {}, Resources{1, 64, 64});
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(manager_->SubmitTask(
        "record_order", Value::Dict({{"i", Value(i)}}), {},
        Resources{1, 64, 64}));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  ASSERT_TRUE(blocker->Wait().ok());
  for (auto& future : futures) ASSERT_TRUE(future->Wait().ok());
  EXPECT_EQ(*order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST_F(RuntimeTest, TaskRetriedAfterWorkerDeath) {
  StartCluster(2, {}, Resources{1, 64 * 1024, 64 * 1024});
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(manager_->SubmitTask(
        "sleepy", Value::Dict({{"ms", Value(100)}}), {}, Resources{1, 64, 64}));
  }
  // Kill one worker while tasks are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(factory_->KillWorker(factory_->WorkerIds()[0]).ok());
  ASSERT_TRUE(manager_->WaitAll(120.0).ok());
  int succeeded = 0;
  for (auto& future : futures)
    if (future->Wait().ok()) ++succeeded;
  // Every task eventually lands on the surviving worker.
  EXPECT_EQ(succeeded, 6);
}

TEST_F(RuntimeTest, InvocationsRequeuedAfterLibraryWorkerDeath) {
  StartCluster(2);
  LibraryOptions options;
  options.slots = 2;
  options.exec_mode = ExecMode::kFork;
  options.resources = Resources{2, 1024, 1024};
  auto spec = manager_->CreateLibraryFromFunctions(
      "sleepers", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  std::vector<FuturePtr> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(manager_->SubmitCall(
        "sleepers", "slow_with_context", Value::Dict({{"ms", Value(80)}})));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(factory_->KillWorker(factory_->WorkerIds()[0]).ok());
  ASSERT_TRUE(manager_->WaitAll(120.0).ok());
  int succeeded = 0;
  for (auto& future : futures)
    if (future->Wait().ok()) ++succeeded;
  EXPECT_EQ(succeeded, 6);
  EXPECT_GE(manager_->metrics().libraries_deployed, 2u);
}

TEST_F(RuntimeTest, PartialBatchFailureResolvesOnlyFailedFutures) {
  // Fold failing and succeeding invocations into the same dispatch batches:
  // each item must resolve from its own InvocationDoneMsg — a poisoned item
  // fails alone, its batch-mates succeed, and nothing resolves twice.
  StartCluster(1);
  LibraryOptions options;
  options.slots = 4;
  options.exec_mode = ExecMode::kFork;
  options.resources = Resources{4, 1024, 1024};
  auto spec = manager_->CreateLibraryFromFunctions(
      "mixed", {"fail_if"}, "number_setup",
      Value::Dict({{"number", Value(100)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  // Submit the burst before the instance is ready so the queue drains
  // through batched dispatches (slots=4 => batches up to 4).
  std::vector<FuturePtr> futures;
  for (int i = 0; i < 12; ++i) {
    const bool poisoned = i % 3 == 0;
    futures.push_back(manager_->SubmitCall(
        "mixed", "fail_if",
        Value::Dict({{"fail", Value(poisoned)}, {"x", Value(i)}})));
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)]->Ready());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->resolutions(), 1u);
    auto outcome = futures[static_cast<std::size_t>(i)]->Wait();
    if (i % 3 == 0) {
      EXPECT_FALSE(outcome.ok()) << "poisoned item " << i << " succeeded";
    } else {
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->value.AsInt(), 100 + i);
    }
  }
  // The burst really exercised the batch path, not 12 single dispatches.
  auto status = manager_->QueryStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status->scheduler.max_batch_size, 2u);
}

TEST_F(RuntimeTest, BatchSurvivesWorkerDeathMidFlight) {
  // Kill the worker while a dispatched batch is executing: every item of
  // the in-flight batch must requeue onto the replacement worker and
  // resolve exactly once.
  StartCluster(1);
  LibraryOptions options;
  options.slots = 4;
  options.exec_mode = ExecMode::kFork;
  options.resources = Resources{4, 1024, 1024};
  auto spec = manager_->CreateLibraryFromFunctions(
      "sleepers", {"slow_with_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}), nullptr, options);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  std::vector<FuturePtr> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(manager_->SubmitCall(
        "sleepers", "slow_with_context", Value::Dict({{"ms", Value(80)}})));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(factory_->KillWorker(factory_->WorkerIds()[0]).ok());
  ASSERT_TRUE(factory_->SpawnWorker().ok());
  ASSERT_TRUE(manager_->WaitAll(120.0).ok());

  for (auto& future : futures) {
    ASSERT_TRUE(future->Ready());
    EXPECT_EQ(future->resolutions(), 1u);
    EXPECT_TRUE(future->Wait().ok());
  }
  auto status = manager_->QueryStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status->scheduler.max_batch_size, 2u);
}

TEST_F(RuntimeTest, CacheAffinitySchedulesOntoWarmWorker) {
  // The manager walks the hash ring from the function's hash, so repeated
  // submissions of the same (cached-context) function land where the
  // context already is — as long as that worker has capacity.
  StartCluster(3);
  const Blob data = Blob::FromString(std::string(4096, 'a'));
  storage::FileDecl decl =
      manager_->DeclareBlob("dataset", data, storage::FileKind::kData, true);
  for (int i = 0; i < 6; ++i) {
    auto outcome = manager_
                       ->SubmitTask("read_file",
                                    Value::Dict({{"name", Value("dataset")}}),
                                    {decl}, Resources{1, 64, 64})
                       ->Wait();
    ASSERT_TRUE(outcome.ok());
  }
  // Sequential tasks with ample capacity: one worker runs them all, so the
  // context was transferred to exactly one worker (fn blob + dataset).
  EXPECT_LE(manager_->metrics().manager_transfers, 2u);
  int warm_workers = 0;
  for (WorkerId id : factory_->WorkerIds()) {
    if (factory_->GetWorker(id)->store().Contains(decl.id)) ++warm_workers;
  }
  EXPECT_EQ(warm_workers, 1);
}

TEST_F(RuntimeTest, ChaosMixedWorkloadSurvivesChurn) {
  // Sustained worker churn under a mixed task + invocation stream: every
  // future must resolve (success after retries, or a clean error after
  // max_attempts) — never hang.
  ManagerConfig config;
  config.max_attempts = 10;
  StartCluster(3, config, Resources{4, 8 * 1024, 8 * 1024});
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(100)}}));
  ASSERT_TRUE(spec.ok());
  spec->resources = Resources{2, 1024, 1024};
  spec->slots = 2;
  spec->exec_mode = ExecMode::kFork;
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  std::vector<FuturePtr> futures;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 8; ++i) {
      futures.push_back(manager_->SubmitTask(
          "sleepy", Value::Dict({{"ms", Value(15)}}), {},
          Resources{1, 64, 64}));
      futures.push_back(manager_->SubmitCall(
          "numbers", "use_context", Value::Dict({{"x", Value(i)}})));
    }
    // Kill one worker mid-wave and replace it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto ids = factory_->WorkerIds();
    ASSERT_FALSE(ids.empty());
    ASSERT_TRUE(factory_->KillWorker(ids[static_cast<std::size_t>(wave) %
                                         ids.size()])
                    .ok());
    ASSERT_TRUE(factory_->SpawnWorker().ok());
  }
  ASSERT_TRUE(manager_->WaitAll(180.0).ok());
  int resolved = 0, succeeded = 0;
  for (auto& future : futures) {
    ASSERT_TRUE(future->Ready());
    ++resolved;
    if (future->Wait().ok()) ++succeeded;
  }
  EXPECT_EQ(resolved, 64);
  // With 10 attempts and a replacement worker per kill, the vast majority
  // must succeed (a straggler caught by several consecutive kills may not).
  EXPECT_GE(succeeded, 56);
}

TEST_F(RuntimeTest, WorkerJoinsAfterSubmission) {
  // Submit first, then bring a worker up: work must drain once it joins.
  state_ = std::make_shared<TestState>();
  RegisterTestFunctions();
  network_ = std::make_shared<net::Network>();
  ManagerConfig config;
  config.registry = &registry_;
  manager_ = std::make_unique<Manager>(network_, config);
  ASSERT_TRUE(manager_->Start().ok());
  auto future = manager_->SubmitTask(
      "add", Value::Dict({{"a", Value(1)}, {"b", Value(2)}}), {},
      Resources{1, 64, 64});
  EXPECT_FALSE(future->Ready());

  FactoryConfig factory_config;
  factory_config.initial_workers = 1;
  factory_config.registry = &registry_;
  factory_ = std::make_unique<Factory>(network_, factory_config);
  ASSERT_TRUE(factory_->Start().ok());
  auto outcome = future->Wait();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->value.AsInt(), 3);
}

TEST_F(RuntimeTest, StopCancelsOutstandingWork) {
  StartCluster(1);
  // No worker can run a 64-core task; it stays queued until Stop.
  auto future = manager_->SubmitTask("add", Value::Dict({{"a", Value(1)},
                                                         {"b", Value(1)}}),
                                     {}, Resources{64, 64, 64});
  manager_->Stop();
  auto outcome = future->Wait();
  EXPECT_EQ(outcome.status().code(), ErrorCode::kCancelled);
}

TEST_F(RuntimeTest, WaitForWorkersTimesOut) {
  StartCluster(1);
  EXPECT_EQ(manager_->WaitForWorkers(5, 0.05).code(), ErrorCode::kTimeout);
}

TEST_F(RuntimeTest, InstallLibraryValidatesInputs) {
  StartCluster(1);
  auto spec = manager_->CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(0)}}));
  ASSERT_TRUE(spec.ok());
  storage::FileDecl uncached;
  uncached.name = "bad";
  uncached.cache = false;
  spec->inputs.push_back(uncached);
  EXPECT_EQ(manager_->InstallLibrary(*spec).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(RuntimeTest, CreateLibraryValidates) {
  StartCluster(1);
  EXPECT_FALSE(manager_->CreateLibraryFromFunctions("", {"use_context"}).ok());
  EXPECT_FALSE(manager_->CreateLibraryFromFunctions("lib", {}).ok());
  EXPECT_FALSE(manager_->CreateLibraryFromFunctions("lib", {"ghost_fn"}).ok());
  EXPECT_FALSE(
      manager_->CreateLibraryFromFunctions("lib", {"add"}, "ghost_setup").ok());
}

// ---------------------------------------------------------------------------
// Pass-by-reference data plane.
// ---------------------------------------------------------------------------

// Satellite audit pin: a result blob rides the wire as a borrowed refcounted
// view end to end.  Encode must attach the original payload (no copy) and
// decode must reattach the frame's attachment (no copy).
TEST_F(RuntimeTest, InvocationDoneResultSharesWirePayload) {
  InvocationDoneMsg done;
  done.id = 7;
  done.ok = true;
  done.result = Blob::FromString(std::string(4096, 'r'));

  WireFrame wire = EncodeFrame(done);
  EXPECT_TRUE(wire.attachment.SharesPayloadWith(done.result));

  net::Frame frame;
  frame.payload = wire.payload;
  frame.attachment = wire.attachment;
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* msg = std::get_if<InvocationDoneMsg>(&*decoded);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->id, 7u);
  EXPECT_TRUE(msg->result.SharesPayloadWith(done.result));
}

// Same pin for the peer serve path: a replica holder answering FetchBlob
// forwards its cached refcounted bytes without copying.
TEST_F(RuntimeTest, BlobDataPayloadSharesWirePayload) {
  BlobDataMsg data;
  data.tag = 12;
  data.ok = true;
  data.payload = Blob::FromString(std::string(1 << 20, 'p'));
  data.id = hash::ContentId::Of(data.payload);

  WireFrame wire = EncodeFrame(data);
  EXPECT_TRUE(wire.attachment.SharesPayloadWith(data.payload));

  net::Frame frame;
  frame.payload = wire.payload;
  frame.attachment = wire.attachment;
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* msg = std::get_if<BlobDataMsg>(&*decoded);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->tag, 12u);
  EXPECT_TRUE(msg->payload.SharesPayloadWith(data.payload));
}

TEST_F(RuntimeTest, RefResultRoundTripFetchAndRelease) {
  constexpr std::int64_t kBytes = 64 * 1024;
  StartCluster(1, {}, {32, 64 * 1024, 64 * 1024},
               /*ref_results_min_bytes=*/1024);
  auto spec = manager_->CreateLibraryFromFunctions(
      "data", {"make_payload", "payload_probe"});
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());

  // Producer: a large result comes back as a content-addressed ref, the
  // payload pinned on the producing worker instead of relayed inline.
  auto produced =
      manager_
          ->SubmitCall("data", "make_payload",
                       Value::Dict({{"bytes", Value(kBytes)},
                                    {"fill", Value(1)}}))
          ->Wait();
  ASSERT_TRUE(produced.ok()) << produced.status().ToString();
  auto ref = TryUnwrapRef(produced->value);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(ref->valid());
  EXPECT_GE(ref->size, static_cast<std::uint64_t>(kBytes));
  EXPECT_NE(ref->owner, 0u);
  EXPECT_EQ(manager_->metrics().ref_results, 1u);
  EXPECT_GE(manager_->metrics().ref_result_bytes,
            static_cast<std::uint64_t>(kBytes));

  Worker* worker = factory_->GetWorker(factory_->WorkerIds()[0]);
  ASSERT_NE(worker, nullptr);
  EXPECT_TRUE(worker->store().Contains(ref->id));

  // Per-worker data-plane introspection sees the held ref.
  auto status = manager_->QueryStatus();
  ASSERT_TRUE(status.ok());
  std::uint64_t held = 0;
  for (const auto& w : status->workers) held += w.refs_held;
  EXPECT_GE(held, 1u);

  // FetchRef materializes the payload at the application; the manager
  // caches it, so a second fetch returns the same refcounted bytes.
  auto blob1 = manager_->FetchRef(*ref);
  ASSERT_TRUE(blob1.ok()) << blob1.status().ToString();
  EXPECT_EQ(blob1->size(), ref->size);
  auto blob2 = manager_->FetchRef(*ref);
  ASSERT_TRUE(blob2.ok());
  EXPECT_TRUE(blob1->SharesPayloadWith(*blob2));
  auto decoded = serde::Value::FromBlob(*blob1);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->AsString(), std::string(kBytes, 'b'));

  // Consumer: passing the wrapped ref positionally splices the payload back
  // in place before the function runs (local hit — same worker holds it).
  auto probed = manager_
                    ->SubmitCall("data", "payload_probe",
                                 Value::List({produced->value}))
                    ->Wait();
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  EXPECT_EQ(probed->value.AsInt(), kBytes + 'b');

  // Release: once the dispatched consumer settled, GC broadcasts DropBlob
  // and the replica disappears from the worker store.
  ASSERT_TRUE(manager_->ReleaseRef(*ref).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (worker->store().Contains(ref->id) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(worker->store().Contains(ref->id));
  EXPECT_GE(manager_->metrics().refs_dropped, 1u);
}

TEST_F(RuntimeTest, SmallResultsStayInline) {
  StartCluster(1, {}, {32, 64 * 1024, 64 * 1024},
               /*ref_results_min_bytes=*/1 << 20);
  auto spec = manager_->CreateLibraryFromFunctions("data", {"make_payload"});
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  auto produced = manager_
                      ->SubmitCall("data", "make_payload",
                                   Value::Dict({{"bytes", Value(4096)},
                                                {"fill", Value(0)}}))
                      ->Wait();
  ASSERT_TRUE(produced.ok()) << produced.status().ToString();
  EXPECT_FALSE(TryUnwrapRef(produced->value).has_value());
  EXPECT_EQ(produced->value.AsString(), std::string(4096, 'a'));
  EXPECT_EQ(manager_->metrics().ref_results, 0u);
}

}  // namespace
}  // namespace vinelet::core
