// Continuous-observability unit tests: bucket-quantile interpolation, the
// windowed time-series store (real and manual clocks), critical-path blame
// attribution, and the sliding-window SLO monitor.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timeseries.hpp"

namespace vinelet::telemetry {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// InterpolateBucketQuantile: the table-driven contract
// ---------------------------------------------------------------------------

TEST(BucketQuantileTest, TableDrivenContract) {
  // A mid-grid bucket with known edges: bound B spans (B/2, B].
  const double b20 = Histogram::BucketBound(20);
  const double b21 = Histogram::BucketBound(21);
  ASSERT_DOUBLE_EQ(b21, 2 * b20);

  struct Case {
    const char* label;
    std::vector<std::pair<double, std::uint64_t>> cumulative;
    std::uint64_t total;
    double q;
    double min_value;
    double max_value;
    double want;
  };
  const Case cases[] = {
      {"empty histogram", {}, 0, 0.5, 0.0, 0.0, 0.0},
      // Single bucket: q interpolates across that bucket's true grid edges.
      {"single bucket q=0", {{b20, 10}}, 10, 0.0, 0.0, b20, b20 / 2},
      {"single bucket q=0.5", {{b20, 10}}, 10, 0.5, 0.0, b20, 0.75 * b20},
      {"single bucket q=1", {{b20, 10}}, 10, 1.0, 0.0, b20, b20},
      // First grid bucket spans 0 .. kFirstBound.
      {"first bucket q=0",
       {{Histogram::kFirstBound, 4}},
       4,
       0.0,
       0.0,
       Histogram::kFirstBound,
       0.0},
      {"first bucket q=0.5",
       {{Histogram::kFirstBound, 4}},
       4,
       0.5,
       0.0,
       Histogram::kFirstBound,
       Histogram::kFirstBound / 2},
      // A rank exactly on a bucket boundary returns that boundary: rank
      // q*total = 5 exhausts the first bucket precisely.
      {"boundary rank", {{b20, 5}, {b21, 10}}, 10, 0.5, 0.0, b21, b20},
      // Half way through the second bucket's two observations.
      {"interpolate second bucket",
       {{b20, 5}, {b21, 10}},
       10,
       0.75,
       0.0,
       b21,
       b20 + 0.5 * (b21 - b20)},
      // Overflow bucket: upper edge is the observed max.
      {"overflow q=1", {{b20, 5}, {kInf, 10}}, 10, 1.0, 0.0, 3.0, 3.0},
      // Clamped to the observed extremes.
      {"clamp to min", {{b20, 10}}, 10, 0.0, 0.6 * b20, b20, 0.6 * b20},
      {"clamp to max", {{b20, 10}}, 10, 1.0, 0.0, 0.9 * b20, 0.9 * b20},
  };
  for (const Case& c : cases) {
    EXPECT_NEAR(InterpolateBucketQuantile(c.cumulative, c.total, c.q,
                                          c.min_value, c.max_value),
                c.want, 1e-12 + 1e-9 * std::abs(c.want))
        << c.label;
  }
}

TEST(BucketQuantileTest, SnapshotQuantilesAreOrderedAndBounded) {
  Histogram hist;
  for (int i = 0; i < 999; ++i) hist.Observe(0.001);
  hist.Observe(10.0);
  const HistogramSnapshot snap = hist.Snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p99 = snap.Quantile(0.99);
  const double p999 = snap.Quantile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p999, snap.max);
  // The single 10s outlier only surfaces beyond the 99.9th percentile.
  EXPECT_LT(p99, 0.01);
  EXPECT_NEAR(snap.Quantile(1.0), 10.0, 1e-9);
}

// ---------------------------------------------------------------------------
// TimeSeriesStore
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, FirstSampleSeedsBaselineOnly) {
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  ops.Add(7);  // pre-existing counts must not leak into the first window
  TimeSeriesStore store(&registry);
  store.SampleAt(0.0);
  EXPECT_TRUE(store.Windows().empty());
  EXPECT_EQ(store.samples(), 0u);

  ops.Add(5);
  store.SampleAt(2.0);
  const auto windows = store.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].seq, 0u);
  EXPECT_DOUBLE_EQ(windows[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].end_s, 2.0);
  const CounterWindow& w = windows[0].counters.at("ops");
  EXPECT_EQ(w.total, 12u);
  EXPECT_EQ(w.delta, 5u);
  EXPECT_DOUBLE_EQ(w.rate, 2.5);
}

TEST(TimeSeriesTest, StoppedClockProducesNoWindow) {
  MetricsRegistry registry;
  registry.GetCounter("ops").Add(1);
  TimeSeriesStore store(&registry);
  store.SampleAt(1.0);
  store.SampleAt(1.0);  // same instant: ignored
  store.SampleAt(0.5);  // going backwards: ignored
  EXPECT_TRUE(store.Windows().empty());
  store.SampleAt(2.0);
  EXPECT_EQ(store.Windows().size(), 1u);
}

TEST(TimeSeriesTest, RingDropsOldestBeyondCapacity) {
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  TimeSeriesConfig config;
  config.capacity = 4;
  TimeSeriesStore store(&registry, config);
  store.SampleAt(0.0);
  for (int i = 1; i <= 10; ++i) {
    ops.Add(static_cast<std::uint64_t>(i));
    store.SampleAt(static_cast<double>(i));
  }
  EXPECT_EQ(store.samples(), 10u);
  const auto windows = store.Windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows.front().seq, 6u);
  EXPECT_EQ(windows.back().seq, 9u);
  EXPECT_EQ(windows.back().counters.at("ops").delta, 10u);
}

TEST(TimeSeriesTest, HistogramWindowsSeeOnlyTheirObservations) {
  MetricsRegistry registry;
  Histogram& latency = registry.GetHistogram("latency_s");
  TimeSeriesStore store(&registry);
  store.SampleAt(0.0);
  for (int i = 0; i < 100; ++i) latency.Observe(0.001);
  store.SampleAt(1.0);
  for (int i = 0; i < 100; ++i) latency.Observe(1.0);
  store.SampleAt(2.0);

  const auto windows = store.Windows();
  ASSERT_EQ(windows.size(), 2u);
  const HistogramWindow& first = windows[0].histograms.at("latency_s");
  const HistogramWindow& second = windows[1].histograms.at("latency_s");
  EXPECT_EQ(first.delta_count, 100u);
  EXPECT_EQ(second.delta_count, 100u);
  EXPECT_EQ(second.total_count, 200u);
  // The second window's percentiles reflect the 1.0s observations alone:
  // the cumulative p50 would sit between the two modes.
  EXPECT_LT(first.p50, 0.01);
  EXPECT_GT(second.p50, 0.5);
  EXPECT_LE(first.p50, first.p99);
  EXPECT_LE(first.p99, first.p999);
}

TEST(TimeSeriesTest, WindowQuantileDiffsCumulativeSnapshots) {
  Histogram hist;
  for (int i = 0; i < 50; ++i) hist.Observe(0.001);
  const HistogramSnapshot before = hist.Snapshot();
  for (int i = 0; i < 50; ++i) hist.Observe(1.0);
  const HistogramSnapshot after = hist.Snapshot();

  EXPECT_GT(WindowQuantile(after, before, 0.5), 0.5);    // window: all 1.0s
  EXPECT_LT(WindowQuantile(after, HistogramSnapshot{}, 0.25), 0.01);
  const double overall_p50 = WindowQuantile(after, HistogramSnapshot{}, 0.5);
  EXPECT_GT(overall_p50, 0.0);
  EXPECT_EQ(WindowQuantile(before, after, 0.5), 0.0);  // empty/negative diff
}

TEST(TimeSeriesTest, ExportsValidateLineByLine) {
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  registry.GetGauge("active").Set(3.0);
  Histogram& latency = registry.GetHistogram("latency_s");
  TimeSeriesStore store(&registry);
  store.SampleAt(0.0);
  for (int i = 1; i <= 3; ++i) {
    ops.Add(2);
    latency.Observe(0.01 * i);
    store.SampleAt(static_cast<double>(i));
  }

  const std::string jsonl = store.ToJsonLines();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(ValidateJson(line).ok()) << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"counters\":"), std::string::npos);
    EXPECT_NE(line.find("\"p999\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, store.Windows().size());

  const std::string chrome = store.ToChromeCounters("test");
  auto check = ValidateChromeTrace(chrome);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_GT(check->counters, 0u);
  EXPECT_EQ(check->events, 0u);  // counter samples only, no spans
}

TEST(TimeSeriesTest, BackgroundSamplerOnManualClock) {
  MetricsRegistry registry;
  Counter& ops = registry.GetCounter("ops");
  ManualClock clock;
  clock.Set(5.0);
  TimeSeriesConfig config;
  config.window_s = 3600.0;  // the thread sleeps; Start/Stop do the samples
  TimeSeriesStore store(&registry, config);
  {
    BackgroundSampler sampler(&store, &clock);
    sampler.Start();  // seeds the baseline at t=5
    ops.Add(42);
    clock.Set(7.0);
  }  // destructor Stop()s, taking the final sample at t=7
  const auto windows = store.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].start_s, 5.0);
  EXPECT_DOUBLE_EQ(windows[0].end_s, 7.0);
  EXPECT_EQ(windows[0].counters.at("ops").delta, 42u);
}

// ---------------------------------------------------------------------------
// CriticalPathAnalyzer
// ---------------------------------------------------------------------------

SpanRecord MakeSpan(std::uint64_t trace, std::uint64_t span,
                    std::uint64_t parent, const char* name, const char* track,
                    double start, double end) {
  SpanRecord record;
  record.name = name;
  record.category = "test";
  record.track = track;
  record.id = span;
  record.start_s = start;
  record.end_s = end;
  record.trace_id = trace;
  record.span_id = span;
  record.parent_span_id = parent;
  return record;
}

TEST(CriticalPathTest, DisjointChainMatchesAggregateAndRecoversPath) {
  const std::vector<SpanRecord> spans = {
      MakeSpan(1, 10, 0, "submit", "manager", 0.0, 1.0),
      MakeSpan(1, 11, 10, "dispatch", "manager", 1.0, 2.0),
      MakeSpan(1, 12, 11, "exec", "worker-0", 2.0, 5.0),
  };
  const TraceBlame blame = CriticalPathAnalyzer().AnalyzeTrace(spans);
  EXPECT_DOUBLE_EQ(blame.Makespan(), 5.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("submit"), 1.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("dispatch"), 1.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("exec"), 3.0);
  EXPECT_EQ(blame.phase_s.count(kIdlePhase), 0u);
  EXPECT_DOUBLE_EQ(blame.track_s.at("manager"), 2.0);
  EXPECT_DOUBLE_EQ(blame.track_s.at("worker-0"), 3.0);

  // Disjoint spans: blame equals the plain per-phase sum.
  const PhaseTotals agg = AggregatePhases(spans);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("exec"), agg.exec_s);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("submit"), agg.submit_s);

  ASSERT_EQ(blame.critical_path.size(), 3u);
  EXPECT_EQ(blame.critical_path[0].name, "submit");
  EXPECT_EQ(blame.critical_path[1].name, "dispatch");
  EXPECT_EQ(blame.critical_path[2].name, "exec");
  EXPECT_DOUBLE_EQ(blame.critical_path[2].self_s, 3.0);
}

TEST(CriticalPathTest, UncoveredGapsBecomeIdle) {
  const std::vector<SpanRecord> spans = {
      MakeSpan(1, 10, 0, "submit", "manager", 0.0, 1.0),
      MakeSpan(1, 11, 10, "exec", "worker-0", 3.0, 5.0),
  };
  const TraceBlame blame = CriticalPathAnalyzer().AnalyzeTrace(spans);
  EXPECT_DOUBLE_EQ(blame.Makespan(), 5.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at(kIdlePhase), 2.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("submit"), 1.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("exec"), 2.0);
  // Idle time lands on no track.
  double track_total = 0.0;
  for (const auto& [track, seconds] : blame.track_s) track_total += seconds;
  EXPECT_DOUBLE_EQ(track_total, 3.0);
}

TEST(CriticalPathTest, NestedSpansAttributeSelfTimeToTheChild) {
  // exec covers [0,10]; a nested deserialize covers [2,4].  The child is
  // later-started, so those two seconds are its self time, not the parent's.
  const std::vector<SpanRecord> spans = {
      MakeSpan(1, 10, 0, "exec", "worker-0", 0.0, 10.0),
      MakeSpan(1, 11, 10, "deserialize", "worker-0", 2.0, 4.0),
  };
  const TraceBlame blame = CriticalPathAnalyzer().AnalyzeTrace(spans);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("exec"), 8.0);
  EXPECT_DOUBLE_EQ(blame.phase_s.at("deserialize"), 2.0);
  // No double counting: attribution sums to the makespan.
  double total = 0.0;
  for (const auto& [phase, seconds] : blame.phase_s) total += seconds;
  EXPECT_DOUBLE_EQ(total, blame.Makespan());
}

TEST(CriticalPathTest, ReportAggregatesOrphansWorstAndShares) {
  std::vector<SpanRecord> spans = {
      MakeSpan(1, 10, 0, "exec", "worker-0", 0.0, 1.0),
      MakeSpan(2, 20, 0, "exec", "worker-1", 0.0, 3.0),
      MakeSpan(3, 30, 0, "exec", "worker-0", 0.0, 2.0),
      MakeSpan(0, 40, 0, "exec", "worker-9", 0.0, 50.0),  // orphan
  };
  CriticalPathAnalyzer::Options options;
  options.max_worst = 2;
  const BlameReport report = CriticalPathAnalyzer(options).Analyze(spans);
  EXPECT_EQ(report.traces, 3u);
  EXPECT_EQ(report.spans, 3u);
  EXPECT_EQ(report.orphan_spans, 1u);
  EXPECT_DOUBLE_EQ(report.total_makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(report.PhaseSeconds("exec"), 6.0);
  EXPECT_DOUBLE_EQ(report.PhaseShare("exec"), 1.0);
  ASSERT_EQ(report.worst.size(), 2u);
  EXPECT_EQ(report.worst[0].trace_id, 2u);
  EXPECT_DOUBLE_EQ(report.worst[0].Makespan(), 3.0);
  EXPECT_EQ(report.worst[1].trace_id, 3u);

  const std::string json = BlameReportToJson(report);
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"traces\":3"), std::string::npos);
  EXPECT_NE(json.find("\"orphan_spans\":1"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
}

TEST(CriticalPathTest, EmptyStreamYieldsEmptyReport) {
  const BlameReport report = CriticalPathAnalyzer().Analyze({});
  EXPECT_EQ(report.traces, 0u);
  EXPECT_DOUBLE_EQ(report.total_makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(report.PhaseShare("exec"), 0.0);
  EXPECT_TRUE(ValidateJson(BlameReportToJson(report)).ok());
}

// ---------------------------------------------------------------------------
// SloMonitor
// ---------------------------------------------------------------------------

SloConfig LnniSlo(double latency_s, double fraction, double goodput,
                  double window_s) {
  SloTarget target;
  target.library = "lnni";
  target.latency_target_s = latency_s;
  target.target_fraction = fraction;
  target.min_goodput_per_s = goodput;
  target.window_s = window_s;
  return SloConfig{{target}};
}

TEST(SloMonitorTest, ViolationFractionAndBurnRate) {
  SloMonitor monitor(LnniSlo(0.1, 0.95, 0.0, 10.0));
  for (int i = 0; i < 18; ++i) monitor.Record("lnni", 0.01, true, 1.0);
  for (int i = 0; i < 2; ++i) monitor.Record("lnni", 0.5, true, 1.0);
  const auto snapshots = monitor.Snapshot(2.0);
  ASSERT_EQ(snapshots.size(), 1u);
  const SloSnapshot& s = snapshots[0];
  EXPECT_EQ(s.library, "lnni");
  EXPECT_EQ(s.samples, 20u);
  EXPECT_EQ(s.violations, 2u);
  EXPECT_DOUBLE_EQ(s.violation_fraction, 0.1);
  // 10% violations against a 5% error budget: burning at 2x.
  EXPECT_NEAR(s.burn_rate, 2.0, 1e-9);
  EXPECT_TRUE(s.latency_breached);
  EXPECT_FALSE(s.goodput_breached);
  EXPECT_TRUE(s.Breached());
  EXPECT_NEAR(s.p50_s, 0.01, 0.05);
  EXPECT_DOUBLE_EQ(s.goodput_per_s, 2.0);  // 20 good completions / 10s
}

TEST(SloMonitorTest, WithinBudgetIsNotBreached) {
  SloMonitor monitor(LnniSlo(0.1, 0.95, 0.0, 10.0));
  for (int i = 0; i < 99; ++i) monitor.Record("lnni", 0.01, true, 1.0);
  monitor.Record("lnni", 0.5, true, 1.0);  // 1% violations < 5% budget
  const auto snapshots = monitor.Snapshot(2.0);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_LT(snapshots[0].burn_rate, 1.0);
  EXPECT_FALSE(snapshots[0].Breached());
}

TEST(SloMonitorTest, WindowEvictsOldSamples) {
  SloMonitor monitor(LnniSlo(0.1, 0.95, 0.0, 10.0));
  monitor.Record("lnni", 0.5, true, 0.0);   // violation, will age out
  monitor.Record("lnni", 0.01, true, 14.0);  // stays in the window at t=20
  const auto snapshots = monitor.Snapshot(20.0);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].samples, 1u);
  EXPECT_EQ(snapshots[0].violations, 0u);
  EXPECT_FALSE(snapshots[0].Breached());
}

TEST(SloMonitorTest, FailuresAlwaysViolate) {
  SloMonitor monitor(LnniSlo(0.0, 0.95, 0.0, 10.0));  // no latency objective
  monitor.Record("lnni", 0.001, false, 1.0);
  const auto snapshots = monitor.Snapshot(1.0);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].violations, 1u);
  // With no latency objective the failure never trips latency_breached.
  EXPECT_FALSE(snapshots[0].latency_breached);
}

TEST(SloMonitorTest, GoodputFloorBreachesAndSilentLibraryIsListed) {
  SloMonitor monitor(LnniSlo(0.0, 0.95, 5.0, 10.0));
  for (int i = 0; i < 10; ++i) monitor.Record("lnni", 0.01, true, 1.0);
  const auto snapshots = monitor.Snapshot(2.0);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshots[0].goodput_per_s, 1.0);  // 10 / 10s < 5/s
  EXPECT_TRUE(snapshots[0].goodput_breached);

  // A targeted library with no traffic at all still reports (goodput 0).
  SloMonitor idle(LnniSlo(0.0, 0.95, 5.0, 10.0));
  const auto idle_snapshots = idle.Snapshot(1.0);
  ASSERT_EQ(idle_snapshots.size(), 1u);
  EXPECT_EQ(idle_snapshots[0].samples, 0u);
  EXPECT_TRUE(idle_snapshots[0].goodput_breached);
}

TEST(SloMonitorTest, WildcardTargetCoversUnlistedLibraries) {
  SloTarget wildcard;
  wildcard.library = "*";
  wildcard.latency_target_s = 0.1;
  wildcard.target_fraction = 0.5;
  wildcard.window_s = 10.0;
  SloMonitor monitor(SloConfig{{wildcard}});
  monitor.Record("examol", 0.5, true, 1.0);
  const auto snapshots = monitor.Snapshot(1.0);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].library, "examol");
  EXPECT_EQ(snapshots[0].violations, 1u);
  EXPECT_TRUE(snapshots[0].latency_breached);
}

}  // namespace
}  // namespace vinelet::telemetry
