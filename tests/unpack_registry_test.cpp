// UnpackRegistry: unpack-once semantics, error paths, and concurrent
// callers racing on the same environment.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/unpack_registry.hpp"
#include "poncho/package.hpp"

namespace vinelet::core {
namespace {

Blob SampleTarball() {
  return poncho::Packer::PackFiles(
      {{"lib.so", Blob::FromString(std::string(500, 'l'))},
       {"data.bin", Blob::FromString(std::string(300, 'd'))}});
}

TEST(UnpackRegistryTest, UnpackOnce) {
  UnpackRegistry registry;
  const Blob tarball = SampleTarball();
  const auto id = hash::ContentId::Of(tarball);

  bool first_unpacked = false;
  auto first = registry.GetOrUnpack(id, tarball, &first_unpacked);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first_unpacked);
  EXPECT_EQ((*first)->files.size(), 2u);

  bool second_unpacked = true;
  auto second = registry.GetOrUnpack(id, tarball, &second_unpacked);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second_unpacked);        // cached, not re-expanded
  EXPECT_EQ(first->get(), second->get());  // literally the same directory
}

TEST(UnpackRegistryTest, PeekSemantics) {
  UnpackRegistry registry;
  const Blob tarball = SampleTarball();
  const auto id = hash::ContentId::Of(tarball);
  EXPECT_EQ(registry.Peek(id).status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(registry.Contains(id));
  ASSERT_TRUE(registry.GetOrUnpack(id, tarball, nullptr).ok());
  EXPECT_TRUE(registry.Contains(id));
  EXPECT_TRUE(registry.Peek(id).ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(UnpackRegistryTest, RemoveAllowsReUnpack) {
  UnpackRegistry registry;
  const Blob tarball = SampleTarball();
  const auto id = hash::ContentId::Of(tarball);
  ASSERT_TRUE(registry.GetOrUnpack(id, tarball, nullptr).ok());
  registry.Remove(id);
  EXPECT_FALSE(registry.Contains(id));
  bool unpacked = false;
  ASSERT_TRUE(registry.GetOrUnpack(id, tarball, &unpacked).ok());
  EXPECT_TRUE(unpacked);
}

TEST(UnpackRegistryTest, CorruptTarballFailsAndAllowsRetry) {
  UnpackRegistry registry;
  const Blob good = SampleTarball();
  const auto id = hash::ContentId::Of(good);
  auto failed = registry.GetOrUnpack(id, Blob::FromString("junk"), nullptr);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(registry.Contains(id));
  // A retry with the intact tarball succeeds.
  auto retried = registry.GetOrUnpack(id, good, nullptr);
  EXPECT_TRUE(retried.ok());
}

TEST(UnpackRegistryTest, ConcurrentCallersShareOneUnpack) {
  UnpackRegistry registry;
  const Blob tarball = SampleTarball();
  const auto id = hash::ContentId::Of(tarball);

  constexpr int kThreads = 8;
  std::atomic<int> unpack_count{0};
  std::atomic<int> success_count{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const poncho::UnpackedDir>> dirs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool unpacked = false;
      auto dir = registry.GetOrUnpack(id, tarball, &unpacked);
      if (unpacked) unpack_count.fetch_add(1);
      if (dir.ok()) {
        dirs[static_cast<std::size_t>(t)] = *dir;
        success_count.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(success_count.load(), kThreads);
  EXPECT_EQ(unpack_count.load(), 1);  // exactly one caller paid the cost
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(dirs[static_cast<std::size_t>(t)].get(), dirs[0].get());
}

TEST(UnpackRegistryTest, DistinctIdsAreIndependent) {
  UnpackRegistry registry;
  const Blob a = poncho::Packer::PackFiles({{"a", Blob::FromString("1")}});
  const Blob b = poncho::Packer::PackFiles({{"b", Blob::FromString("2")}});
  ASSERT_TRUE(registry.GetOrUnpack(hash::ContentId::Of(a), a, nullptr).ok());
  ASSERT_TRUE(registry.GetOrUnpack(hash::ContentId::Of(b), b, nullptr).ok());
  EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
}  // namespace vinelet::core
