// ReplicaTable: replica tracking, source selection under fan-out caps, and
// worker-departure cleanup.
#include <gtest/gtest.h>

#include <map>

#include "storage/replica_table.hpp"

namespace vinelet::storage {
namespace {

hash::ContentId Id(int n) {
  return hash::ContentId::OfText("file-" + std::to_string(n));
}

TEST(ReplicaTableTest, AddRemoveReplicas) {
  ReplicaTable table;
  table.AddReplica(Id(1), 10);
  table.AddReplica(Id(1), 11);
  EXPECT_TRUE(table.HasReplica(Id(1), 10));
  EXPECT_EQ(table.ReplicaCount(Id(1)), 2u);
  EXPECT_EQ(table.Holders(Id(1)), (std::vector<WorkerId>{10, 11}));
  table.RemoveReplica(Id(1), 10);
  EXPECT_FALSE(table.HasReplica(Id(1), 10));
  EXPECT_EQ(table.ReplicaCount(Id(1)), 1u);
}

TEST(ReplicaTableTest, AddIsIdempotent) {
  ReplicaTable table;
  table.AddReplica(Id(1), 10);
  table.AddReplica(Id(1), 10);
  EXPECT_EQ(table.ReplicaCount(Id(1)), 1u);
}

TEST(ReplicaTableTest, RemoveWorkerForgetsEverything) {
  ReplicaTable table;
  table.AddReplica(Id(1), 10);
  table.AddReplica(Id(2), 10);
  table.AddReplica(Id(2), 11);
  table.BeginTransfer(SourceChoice{false, 10});
  table.RemoveWorker(10);
  EXPECT_EQ(table.ReplicaCount(Id(1)), 0u);
  EXPECT_EQ(table.ReplicaCount(Id(2)), 1u);
  EXPECT_EQ(table.OutboundInFlight(10), 0u);
}

TEST(ReplicaTableTest, NoReplicaFallsBackToManager) {
  ReplicaTable table;
  auto source = table.PickSource(Id(1), 5, true);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source->from_manager);
}

TEST(ReplicaTableTest, PeerPreferredWhenAvailable) {
  ReplicaTable table;
  table.AddReplica(Id(1), 10);
  auto source = table.PickSource(Id(1), 5, true);
  ASSERT_TRUE(source.ok());
  EXPECT_FALSE(source->from_manager);
  EXPECT_EQ(source->peer, 10u);
}

TEST(ReplicaTableTest, RequesterNeverPicksItself) {
  ReplicaTable table;
  table.AddReplica(Id(1), 5);
  auto source = table.PickSource(Id(1), 5, true);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source->from_manager);  // only holder is the requester
}

TEST(ReplicaTableTest, PeerTransferDisabledUsesManager) {
  ReplicaTable table;
  table.AddReplica(Id(1), 10);
  auto source = table.PickSource(Id(1), 5, false);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source->from_manager);
}

TEST(ReplicaTableTest, LeastLoadedPeerChosen) {
  ReplicaTable table(/*worker_outbound_cap=*/3);
  table.AddReplica(Id(1), 10);
  table.AddReplica(Id(1), 11);
  table.BeginTransfer(SourceChoice{false, 10});
  table.BeginTransfer(SourceChoice{false, 10});
  auto source = table.PickSource(Id(1), 5, true);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->peer, 11u);
}

TEST(ReplicaTableTest, SaturatedPeersFallBackToManager) {
  ReplicaTable table(/*worker_outbound_cap=*/1);
  table.AddReplica(Id(1), 10);
  table.BeginTransfer(SourceChoice{false, 10});  // peer at cap
  auto source = table.PickSource(Id(1), 5, true);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source->from_manager);
}

TEST(ReplicaTableTest, ManagerCapSaturates) {
  ReplicaTable table(/*worker_outbound_cap=*/3, /*manager_outbound_cap=*/1);
  table.BeginTransfer(SourceChoice{true, 0});
  auto source = table.PickSource(Id(1), 5, true);
  EXPECT_EQ(source.status().code(), ErrorCode::kUnavailable);
  table.EndTransfer(SourceChoice{true, 0});
  EXPECT_TRUE(table.PickSource(Id(1), 5, true).ok());
}

TEST(ReplicaTableTest, TransferAccounting) {
  ReplicaTable table;
  const SourceChoice peer{false, 7};
  table.BeginTransfer(peer);
  table.BeginTransfer(peer);
  EXPECT_EQ(table.OutboundInFlight(7), 2u);
  table.EndTransfer(peer);
  EXPECT_EQ(table.OutboundInFlight(7), 1u);
  table.EndTransfer(peer);
  table.EndTransfer(peer);  // over-end is clamped, not underflowed
  EXPECT_EQ(table.OutboundInFlight(7), 0u);

  const SourceChoice manager{true, 0};
  table.BeginTransfer(manager);
  EXPECT_EQ(table.ManagerOutboundInFlight(), 1u);
  table.EndTransfer(manager);
  EXPECT_EQ(table.ManagerOutboundInFlight(), 0u);
}

TEST(ReplicaTableTest, FanoutCapSpreadsLoad) {
  // With cap N, picking sources for many requesters must rotate among
  // holders rather than hammering one.
  ReplicaTable table(/*worker_outbound_cap=*/2);
  table.AddReplica(Id(1), 1);
  table.AddReplica(Id(1), 2);
  int manager_picks = 0;
  std::map<WorkerId, int> peer_picks;
  for (WorkerId requester = 100; requester < 106; ++requester) {
    auto source = table.PickSource(Id(1), requester, true);
    ASSERT_TRUE(source.ok());
    if (source->from_manager) {
      ++manager_picks;
    } else {
      ++peer_picks[source->peer];
      table.BeginTransfer(*source);
    }
  }
  // 2 holders x cap 2 = 4 peer transfers, the remaining 2 from the manager.
  EXPECT_EQ(manager_picks, 2);
  EXPECT_EQ(peer_picks[1], 2);
  EXPECT_EQ(peer_picks[2], 2);
}

}  // namespace
}  // namespace vinelet::storage
