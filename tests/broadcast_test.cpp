// Broadcast planner: correctness of all three Fig-3 topologies, plus
// parameterized properties (every worker reached exactly once, sources
// always hold the data before sending, fan-out cap respected per round,
// tree beats sequential makespan).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "storage/broadcast.hpp"

namespace vinelet::storage {
namespace {

TEST(BroadcastTest, ModeNames) {
  EXPECT_EQ(BroadcastModeName(BroadcastMode::kSequential), "sequential");
  EXPECT_EQ(BroadcastModeName(BroadcastMode::kSpanningTree), "spanning-tree");
  EXPECT_EQ(BroadcastModeName(BroadcastMode::kClustered), "clustered");
}

TEST(BroadcastTest, ZeroFanoutRejected) {
  BroadcastParams params;
  params.fanout_cap = 0;
  EXPECT_EQ(PlanBroadcast(params).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(BroadcastTest, ZeroClustersRejected) {
  BroadcastParams params;
  params.mode = BroadcastMode::kClustered;
  params.num_workers = 4;
  params.num_clusters = 0;
  EXPECT_EQ(PlanBroadcast(params).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(BroadcastTest, EmptyClusterIsFine) {
  BroadcastParams params;
  params.mode = BroadcastMode::kClustered;
  params.num_workers = 2;
  params.num_clusters = 4;  // two clusters end up empty
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);
}

TEST(BroadcastTest, SequentialIsAllManagerSourced) {
  BroadcastParams params;
  params.mode = BroadcastMode::kSequential;
  params.num_workers = 5;
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 5u);
  for (std::size_t i = 0; i < plan->steps.size(); ++i) {
    EXPECT_EQ(plan->steps[i].source, TransferStep::kManagerSource);
    EXPECT_EQ(plan->steps[i].round, i);  // strictly one at a time
  }
  EXPECT_EQ(plan->rounds, 5u);
}

TEST(BroadcastTest, SpanningTreeGrowsGeometrically) {
  BroadcastParams params;
  params.mode = BroadcastMode::kSpanningTree;
  params.num_workers = 100;
  params.fanout_cap = 3;
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  // Holders: 1 -> 4 -> 16 -> 64 -> 256; rounds = 4 for 100 workers.
  EXPECT_LE(plan->rounds, 4u);
}

TEST(BroadcastTest, SequentialMakespanLinear) {
  BroadcastParams params;
  params.mode = BroadcastMode::kSequential;
  params.num_workers = 10;
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(EstimateMakespan(*plan, params, 2.0), 20.0);
}

TEST(BroadcastTest, TreeMakespanLogarithmic) {
  BroadcastParams params;
  params.mode = BroadcastMode::kSpanningTree;
  params.num_workers = 64;
  params.fanout_cap = 2;
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  const double makespan = EstimateMakespan(*plan, params, 1.0);
  // 64 workers, fanout 2: between log2-ish bounds, way under 64 sequential.
  EXPECT_LE(makespan, 12.0);
  EXPECT_GE(makespan, 4.0);
}

TEST(BroadcastTest, ClusteredChargesSlowLinkOnce) {
  BroadcastParams params;
  params.mode = BroadcastMode::kClustered;
  params.num_workers = 8;
  params.num_clusters = 2;
  params.fanout_cap = 2;
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  int manager_sends = 0;
  for (const auto& step : plan->steps)
    if (step.source == TransferStep::kManagerSource) ++manager_sends;
  EXPECT_EQ(manager_sends, 2);  // one seed per cluster

  // Intra-cluster edges never cross clusters.
  for (const auto& step : plan->steps) {
    if (step.source == TransferStep::kManagerSource) continue;
    EXPECT_EQ(static_cast<std::uint64_t>(step.source) % 2, step.dest % 2);
  }
}

// ---------------------------------------------------------------------------
// Properties over (mode, workers, fanout).
// ---------------------------------------------------------------------------

struct PlanCase {
  BroadcastMode mode;
  std::size_t workers;
  unsigned fanout;
  std::size_t clusters;
};

class BroadcastProperty : public ::testing::TestWithParam<PlanCase> {};

TEST_P(BroadcastProperty, EveryWorkerReachedExactlyOnce) {
  const PlanCase& c = GetParam();
  BroadcastParams params{c.mode, c.workers, c.fanout, c.clusters};
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  std::set<std::uint64_t> reached;
  for (const auto& step : plan->steps) {
    EXPECT_TRUE(reached.insert(step.dest).second)
        << "worker " << step.dest << " received twice";
  }
  EXPECT_EQ(reached.size(), c.workers);
  for (std::uint64_t w = 0; w < c.workers; ++w) EXPECT_TRUE(reached.contains(w));
}

TEST_P(BroadcastProperty, SourcesHoldDataBeforeSending) {
  const PlanCase& c = GetParam();
  BroadcastParams params{c.mode, c.workers, c.fanout, c.clusters};
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  std::map<std::int64_t, unsigned> received_round;
  for (const auto& step : plan->steps) {
    if (step.source != TransferStep::kManagerSource) {
      ASSERT_TRUE(received_round.contains(step.source))
          << "worker " << step.source << " sends before receiving";
      EXPECT_LT(received_round[step.source], step.round + 1)
          << "worker " << step.source << " sends in its own receive round";
    }
    received_round[static_cast<std::int64_t>(step.dest)] = step.round;
  }
}

TEST_P(BroadcastProperty, FanoutCapRespectedPerRound) {
  const PlanCase& c = GetParam();
  BroadcastParams params{c.mode, c.workers, c.fanout, c.clusters};
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  std::map<std::pair<std::int64_t, unsigned>, unsigned> sends;
  const unsigned cap =
      c.mode == BroadcastMode::kSequential ? 1 : c.fanout;
  for (const auto& step : plan->steps) {
    unsigned& count = sends[{step.source, step.round}];
    ++count;
    EXPECT_LE(count, cap) << "source " << step.source << " exceeds cap in round "
                          << step.round;
  }
}

TEST_P(BroadcastProperty, MakespanPositiveAndTreeNotWorseThanSequential) {
  const PlanCase& c = GetParam();
  BroadcastParams params{c.mode, c.workers, c.fanout, c.clusters};
  auto plan = PlanBroadcast(params);
  ASSERT_TRUE(plan.ok());
  const double makespan = EstimateMakespan(*plan, params, 1.0);
  if (c.workers > 0) {
    EXPECT_GT(makespan, 0.0);
  }
  if (c.mode == BroadcastMode::kSpanningTree) {
    BroadcastParams seq = params;
    seq.mode = BroadcastMode::kSequential;
    auto seq_plan = PlanBroadcast(seq);
    ASSERT_TRUE(seq_plan.ok());
    EXPECT_LE(makespan, EstimateMakespan(*seq_plan, seq, 1.0) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BroadcastProperty,
    ::testing::Values(
        PlanCase{BroadcastMode::kSequential, 1, 3, 2},
        PlanCase{BroadcastMode::kSequential, 17, 3, 2},
        PlanCase{BroadcastMode::kSpanningTree, 1, 1, 2},
        PlanCase{BroadcastMode::kSpanningTree, 16, 2, 2},
        PlanCase{BroadcastMode::kSpanningTree, 150, 3, 2},
        PlanCase{BroadcastMode::kSpanningTree, 97, 5, 2},
        PlanCase{BroadcastMode::kClustered, 10, 2, 2},
        PlanCase{BroadcastMode::kClustered, 150, 3, 3},
        PlanCase{BroadcastMode::kClustered, 7, 2, 5}));

// ---------------------------------------------------------------------------
// Pipelined (chunked, cut-through) planning.
// ---------------------------------------------------------------------------

TEST(ChunkCountTest, RoundsUpAndClampsToOne) {
  EXPECT_EQ(ChunkCount({0, 100}), 1u);       // empty blob is one empty chunk
  EXPECT_EQ(ChunkCount({1, 100}), 1u);
  EXPECT_EQ(ChunkCount({100, 100}), 1u);
  EXPECT_EQ(ChunkCount({101, 100}), 2u);
  EXPECT_EQ(ChunkCount({1000, 100}), 10u);
  EXPECT_EQ(ChunkCount({1000, 0}), 1u);      // degenerate chunk size
}

TEST(PipelinePlanTest, TreeShapeRespectsFanoutCap) {
  BroadcastParams params;
  params.num_workers = 64;
  params.fanout_cap = 3;
  auto plan = PlanPipelinedBroadcast(params, {572ull << 20, 4ull << 20});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->parent.size(), 64u);
  EXPECT_EQ(plan->children.size(), 64u);
  EXPECT_LE(plan->roots.size(), 3u);
  std::size_t reached = plan->roots.size();
  for (const auto& kids : plan->children) {
    EXPECT_LE(kids.size(), 3u);
    reached += kids.size();
  }
  EXPECT_EQ(reached, 64u);  // every worker has exactly one inbound edge
  // Geometric growth 3 + 9 + 27 covers 39 workers in 3 hops; 64 needs 4.
  EXPECT_EQ(plan->depth, 4u);
  // Parent indices agree with the children lists.
  for (std::size_t v = 0; v < 64; ++v) {
    if (plan->parent[v] == TransferStep::kManagerSource) continue;
    const auto& kids =
        plan->children[static_cast<std::size_t>(plan->parent[v])];
    EXPECT_NE(std::find(kids.begin(), kids.end(), v), kids.end());
  }
}

TEST(PipelinePlanTest, ZeroFanoutRejected) {
  BroadcastParams params;
  params.num_workers = 4;
  params.fanout_cap = 0;
  EXPECT_FALSE(PlanPipelinedBroadcast(params, {1000, 100}).ok());
}

TEST(PipelinedMakespanTest, ApproachesBlobTimePlusDepthChunks) {
  // 64 workers, fan-out 3, 572 MB blob in 4 MB chunks, 10 Gb/s worker links,
  // manager provisioned with fanout × worker bandwidth (each root edge runs
  // at full rate) — the Fig-3 pipelined configuration.
  constexpr double kLinkBps = 1.25e9;
  BroadcastParams params;
  params.num_workers = 64;
  params.fanout_cap = 3;
  const ChunkParams chunks{572ull << 20, 4ull << 20};
  auto plan = PlanPipelinedBroadcast(params, chunks);
  ASSERT_TRUE(plan.ok());
  const double makespan =
      EstimatePipelinedMakespan(*plan, chunks, kLinkBps, 3 * kLinkBps);
  const double blob_s = static_cast<double>(chunks.blob_bytes) / kLinkBps;
  const double chunk_s = static_cast<double>(chunks.chunk_bytes) / kLinkBps;
  // Cut-through recurrence: last chunk lands at blob_time plus one
  // chunk_time per additional hop (depth 4 → 3 extra hops).
  EXPECT_NEAR(makespan, blob_s + 3 * chunk_s, 1e-9);
}

TEST(PipelinedMakespanTest, BeatsWholeBlobTreeByRequiredMargin) {
  // Acceptance gate: ≥1.5× over the store-and-forward spanning tree at the
  // paper's Fig-3 scale (it is ~3.7× analytically).
  constexpr double kLinkBps = 1.25e9;
  BroadcastParams params;
  params.num_workers = 64;
  params.fanout_cap = 3;
  const ChunkParams chunks{572ull << 20, 4ull << 20};
  const double blob_s = static_cast<double>(chunks.blob_bytes) / kLinkBps;

  auto tree = PlanBroadcast(params);
  ASSERT_TRUE(tree.ok());
  const double whole_blob = EstimateMakespan(*tree, params, blob_s);

  auto pipeline = PlanPipelinedBroadcast(params, chunks);
  ASSERT_TRUE(pipeline.ok());
  const double pipelined =
      EstimatePipelinedMakespan(*pipeline, chunks, kLinkBps, 3 * kLinkBps);
  EXPECT_GE(whole_blob / pipelined, 1.5);
}

TEST(PipelinedMakespanTest, SingleChunkDegeneratesToStoreAndForward) {
  // chunk_bytes ≥ blob_bytes means one chunk: no pipelining is possible and
  // the estimate must reduce to depth × blob_time along the critical path.
  constexpr double kLinkBps = 1e9;
  BroadcastParams params;
  params.num_workers = 13;  // 3 + 9 + 1: depth 3 at fan-out 3
  params.fanout_cap = 3;
  const ChunkParams chunks{100ull << 20, 1ull << 30};
  auto plan = PlanPipelinedBroadcast(params, chunks);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_chunks, 1u);
  EXPECT_EQ(plan->depth, 3u);
  const double blob_s = static_cast<double>(chunks.blob_bytes) / kLinkBps;
  const double makespan =
      EstimatePipelinedMakespan(*plan, chunks, kLinkBps, 3 * kLinkBps);
  EXPECT_NEAR(makespan, 3 * blob_s, 1e-9);
}

TEST(PipelinedMakespanTest, SmallerChunksNeverSlower) {
  // Monotonicity across the Fig-3 chunk-size sweep: with zero per-chunk
  // overhead modeled, finer chunking can only shorten the pipeline.
  constexpr double kLinkBps = 1.25e9;
  BroadcastParams params;
  params.num_workers = 100;
  params.fanout_cap = 3;
  double previous = 0;
  for (const std::uint64_t mb : {256ull, 64ull, 16ull, 4ull, 1ull}) {
    const ChunkParams chunks{572ull << 20, mb << 20};
    auto plan = PlanPipelinedBroadcast(params, chunks);
    ASSERT_TRUE(plan.ok());
    const double makespan =
        EstimatePipelinedMakespan(*plan, chunks, kLinkBps, 3 * kLinkBps);
    if (previous > 0) {
      EXPECT_LE(makespan, previous + 1e-9);
    }
    previous = makespan;
  }
}

}  // namespace
}  // namespace vinelet::storage
