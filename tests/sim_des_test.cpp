// DES kernel and contended-resource models: ordering, determinism,
// fair-share math, IOPS queueing, serial-server backlog, cluster sampling.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "sim/cluster.hpp"
#include "sim/des.hpp"
#include "sim/resources.hpp"

namespace vinelet::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(3.0, [&] { order.push_back(3); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, EqualTimesFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.At(1.0, [&order, i] { order.push_back(i); });
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.After(1.0, chain);
  };
  sim.After(0.0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
}

TEST(SimulationTest, PastTimesClampToNow) {
  Simulation sim;
  double fired_at = -1;
  sim.At(5.0, [&] {
    sim.At(1.0, [&] { fired_at = sim.Now(); });  // in the past: clamps
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulationTest, RunUntilLeavesLaterEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// FairShareResource
// ---------------------------------------------------------------------------

TEST(FairShareTest, SingleFlowAtFullRate) {
  Simulation sim;
  FairShareResource link(&sim, 100.0);  // 100 B/s
  double done_at = -1;
  link.Transfer(500.0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(FairShareTest, TwoEqualFlowsShareBandwidth) {
  Simulation sim;
  FairShareResource link(&sim, 100.0);
  double a = -1, b = -1;
  link.Transfer(500.0, [&] { a = sim.Now(); });
  link.Transfer(500.0, [&] { b = sim.Now(); });
  sim.Run();
  // Both at 50 B/s: each takes 10 s.
  EXPECT_NEAR(a, 10.0, 1e-9);
  EXPECT_NEAR(b, 10.0, 1e-9);
}

TEST(FairShareTest, LateArrivalSlowsFirstFlow) {
  Simulation sim;
  FairShareResource link(&sim, 100.0);
  double first = -1, second = -1;
  link.Transfer(1000.0, [&] { first = sim.Now(); });
  sim.At(5.0, [&] { link.Transfer(250.0, [&] { second = sim.Now(); }); });
  sim.Run();
  // First does 500 B by t=5, then shares: second (250 B at 50 B/s) ends at
  // t=10; first's remaining 500 B: 250 B by t=10, then full rate: t=12.5.
  EXPECT_NEAR(second, 10.0, 1e-6);
  EXPECT_NEAR(first, 12.5, 1e-6);
}

TEST(FairShareTest, PerStreamCapLimitsLoneFlow) {
  Simulation sim;
  FairShareResource fs(&sim, 1000.0, /*per_stream_cap=*/100.0);
  double done = -1;
  fs.Transfer(500.0, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done, 5.0, 1e-9);  // capped at 100 B/s despite 1000 capacity
}

TEST(FairShareTest, ZeroByteTransferCompletesImmediately) {
  Simulation sim;
  FairShareResource link(&sim, 100.0);
  bool done = false;
  link.Transfer(0.0, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

TEST(FairShareTest, ManyFlowsConserveBytes) {
  Simulation sim;
  FairShareResource link(&sim, 1000.0);
  int completed = 0;
  for (int i = 1; i <= 20; ++i) {
    sim.At(0.1 * i, [&link, &completed, i] {
      link.Transfer(100.0 * i, [&completed] { ++completed; });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(link.total_bytes_served(), 100.0 * (20 * 21) / 2, 1.0);
  EXPECT_EQ(link.active_flows(), 0u);
}

// ---------------------------------------------------------------------------
// IopsBucket
// ---------------------------------------------------------------------------

TEST(IopsBucketTest, BatchesQueueFifo) {
  Simulation sim;
  IopsBucket bucket(&sim, 100.0);  // 100 ops/s
  double a = -1, b = -1;
  bucket.Acquire(50, [&] { a = sim.Now(); });   // 0.5 s
  bucket.Acquire(100, [&] { b = sim.Now(); });  // queued behind: +1.0 s
  sim.Run();
  EXPECT_NEAR(a, 0.5, 1e-9);
  EXPECT_NEAR(b, 1.5, 1e-9);
}

TEST(IopsBucketTest, IdleBucketHasNoBacklog) {
  Simulation sim;
  IopsBucket bucket(&sim, 100.0);
  EXPECT_DOUBLE_EQ(bucket.backlog_seconds(0.0), 0.0);
  bucket.Acquire(200, [] {});
  EXPECT_NEAR(bucket.backlog_seconds(0.0), 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// SerialServer
// ---------------------------------------------------------------------------

TEST(SerialServerTest, JobsSerialize) {
  Simulation sim;
  SerialServer server(&sim);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i)
    server.Enqueue(2.0, [&] { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 2.0, 1e-9);
  EXPECT_NEAR(completions[1], 4.0, 1e-9);
  EXPECT_NEAR(completions[2], 6.0, 1e-9);
}

TEST(SerialServerTest, UtilizationTracksBusyTime) {
  Simulation sim;
  SerialServer server(&sim);
  server.Enqueue(3.0, [] {});
  sim.Run();
  sim.RunUntil(10.0);
  EXPECT_NEAR(server.utilization(10.0), 0.3, 1e-9);
}

TEST(SerialServerTest, LateArrivalStartsImmediately) {
  Simulation sim;
  SerialServer server(&sim);
  double done = -1;
  sim.At(5.0, [&] { server.Enqueue(1.0, [&] { done = sim.Now(); }); });
  sim.Run();
  EXPECT_NEAR(done, 6.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Cluster sampling
// ---------------------------------------------------------------------------

TEST(ClusterTest, PaperGroupsMatchTable3) {
  const auto groups = PaperMachineGroups();
  ASSERT_EQ(groups.size(), 5u);
  std::size_t total = 0;
  for (const auto& group : groups) total += group.machines;
  EXPECT_EQ(total, 58u + 117 + 14 + 7 + 5);
  EXPECT_DOUBLE_EQ(groups[1].gflops, 5.4);
}

TEST(ClusterTest, SampleProportionsFollowTable3) {
  ClusterConfig config;
  config.num_workers = 150;
  Rng rng(1);
  const auto workers = SampleCluster(config, rng);
  ASSERT_EQ(workers.size(), 150u);
  std::map<std::size_t, int> by_group;
  for (const auto& worker : workers) by_group[worker.group]++;
  // Group 2 (index 1) holds 117/201 of machines: about 87 of 150.
  EXPECT_NEAR(by_group[1], 87, 2);
  EXPECT_NEAR(by_group[0], 43, 2);
}

TEST(ClusterTest, SpeedRelativeToBaseline) {
  ClusterConfig config;
  config.num_workers = 201;
  Rng rng(2);
  const auto workers = SampleCluster(config, rng);
  for (const auto& worker : workers) {
    if (worker.group == 0) {
      EXPECT_DOUBLE_EQ(worker.speed, 1.0);
    } else if (worker.group == 1) {
      EXPECT_NEAR(worker.speed, 5.4 / 4.4, 1e-12);
    } else {
      EXPECT_NEAR(worker.speed, 1.9 / 4.4, 1e-12);
    }
  }
}

TEST(ClusterTest, GroupFractionOverride) {
  ClusterConfig config;
  config.num_workers = 100;
  config.group_fractions = {0.11, 0.89};  // the paper's skewed Q2 run
  Rng rng(3);
  const auto workers = SampleCluster(config, rng);
  std::map<std::size_t, int> by_group;
  for (const auto& worker : workers) by_group[worker.group]++;
  EXPECT_EQ(by_group[1], 89);
  EXPECT_EQ(by_group[0], 11);
}

TEST(ClusterTest, SamplingDeterministicPerSeed) {
  ClusterConfig config;
  config.num_workers = 50;
  Rng rng_a(7), rng_b(7);
  const auto a = SampleCluster(config, rng_a);
  const auto b = SampleCluster(config, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].group, b[i].group);
}

}  // namespace
}  // namespace vinelet::sim
