// ContentStore: verified puts, deduplication, eviction of payloads, and
// thread safety under concurrent access.
#include <gtest/gtest.h>

#include <thread>

#include "storage/content_store.hpp"

namespace vinelet::storage {
namespace {

TEST(ContentStoreTest, PutGetRoundTrip) {
  ContentStore store;
  const Blob blob = Blob::FromString("payload");
  const auto id = hash::ContentId::Of(blob);
  ASSERT_TRUE(store.Put(id, blob).ok());
  auto fetched = store.Get(id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, blob);
  EXPECT_EQ(store.used_bytes(), blob.size());
}

TEST(ContentStoreTest, HashMismatchRejected) {
  ContentStore store;
  const Blob blob = Blob::FromString("payload");
  const auto wrong_id = hash::ContentId::OfText("something else");
  EXPECT_EQ(store.Put(wrong_id, blob).code(), ErrorCode::kDataLoss);
  EXPECT_FALSE(store.Contains(wrong_id));
}

TEST(ContentStoreTest, PutIsIdempotentForSameContent) {
  ContentStore store;
  const Blob blob = Blob::FromString("dup");
  const auto id = hash::ContentId::Of(blob);
  ASSERT_TRUE(store.Put(id, blob).ok());
  ASSERT_TRUE(store.Put(id, blob).ok());  // dedupe, not an error
  EXPECT_EQ(store.used_bytes(), blob.size());
}

TEST(ContentStoreTest, GetMissingFails) {
  ContentStore store;
  EXPECT_EQ(store.Get(hash::ContentId::OfText("ghost")).status().code(),
            ErrorCode::kNotFound);
}

TEST(ContentStoreTest, EvictionDropsPayload) {
  ContentStore store(20);
  const Blob a = Blob::FromString("aaaaaaaaaa");  // 10 bytes
  const Blob b = Blob::FromString("bbbbbbbbbb");
  const Blob c = Blob::FromString("cccccccccc");
  ASSERT_TRUE(store.Put(hash::ContentId::Of(a), a).ok());
  ASSERT_TRUE(store.Put(hash::ContentId::Of(b), b).ok());
  ASSERT_TRUE(store.Put(hash::ContentId::Of(c), c).ok());  // evicts a
  EXPECT_FALSE(store.Contains(hash::ContentId::Of(a)));
  EXPECT_TRUE(store.Contains(hash::ContentId::Of(c)));
  EXPECT_LE(store.used_bytes(), 20u);
}

TEST(ContentStoreTest, PinBlocksEviction) {
  ContentStore store(20);
  const Blob a = Blob::FromString("aaaaaaaaaa");
  const Blob b = Blob::FromString("bbbbbbbbbb");
  const Blob c = Blob::FromString("cccccccccc");
  ASSERT_TRUE(store.Put(hash::ContentId::Of(a), a).ok());
  ASSERT_TRUE(store.Pin(hash::ContentId::Of(a)).ok());
  ASSERT_TRUE(store.Put(hash::ContentId::Of(b), b).ok());
  ASSERT_TRUE(store.Put(hash::ContentId::Of(c), c).ok());  // must evict b
  EXPECT_TRUE(store.Contains(hash::ContentId::Of(a)));
  EXPECT_FALSE(store.Contains(hash::ContentId::Of(b)));
}

TEST(ContentStoreTest, RemoveReleasesBytes) {
  ContentStore store;
  const Blob blob = Blob::FromString("bye");
  const auto id = hash::ContentId::Of(blob);
  ASSERT_TRUE(store.Put(id, blob).ok());
  ASSERT_TRUE(store.Remove(id).ok());
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_FALSE(store.Get(id).ok());
}

TEST(ContentStoreTest, ConcurrentPutsAndGets) {
  ContentStore store;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string text = "t";
        text += std::to_string(t);
        text += "i";
        text += std::to_string(i);
        const Blob blob = Blob::FromString(std::move(text));
        const auto id = hash::ContentId::Of(blob);
        ASSERT_TRUE(store.Put(id, blob).ok());
        auto fetched = store.Get(id);
        ASSERT_TRUE(fetched.ok());
        ASSERT_EQ(*fetched, blob);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.stats().hits, kThreads * kPerThread);
}

}  // namespace
}  // namespace vinelet::storage
