// Context-affinity scheduling policy: the pure decision components shared
// by the live Manager and the DES (AffinityIndex, PickLeastLoaded,
// DecideAutoscale), plus a runtime-vs-simulator mirror check — the same
// demand trajectory must produce the same deploy decisions in both
// backends, because both call the same pure functions.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace vinelet::core {
namespace {

TEST(AffinityIndexTest, AddRemoveCounts) {
  AffinityIndex index;
  EXPECT_EQ(index.Get("lib"), nullptr);
  EXPECT_EQ(index.CountFor("lib"), 0u);

  index.Add("lib", 1);
  index.Add("lib", 2);
  index.Add("lib", 2);  // two instances on worker 2
  ASSERT_NE(index.Get("lib"), nullptr);
  EXPECT_EQ(index.Get("lib")->size(), 2u);
  EXPECT_EQ(index.CountFor("lib"), 3u);
  EXPECT_TRUE(index.Contains("lib", 1));
  EXPECT_TRUE(index.Contains("lib", 2));
  EXPECT_FALSE(index.Contains("lib", 3));

  // Counts, not booleans: the entry survives until the last instance
  // drains.
  index.Remove("lib", 2);
  EXPECT_TRUE(index.Contains("lib", 2));
  EXPECT_EQ(index.CountFor("lib"), 2u);
  index.Remove("lib", 2);
  EXPECT_FALSE(index.Contains("lib", 2));
  EXPECT_EQ(index.CountFor("lib"), 1u);

  // Removing the last entry erases the library's set entirely.
  index.Remove("lib", 1);
  EXPECT_EQ(index.Get("lib"), nullptr);
}

TEST(AffinityIndexTest, RemoveIsIdempotent) {
  AffinityIndex index;
  index.Remove("ghost", 5);  // absent library: no-op
  index.Add("lib", 1);
  index.Remove("lib", 9);  // absent worker: no-op
  EXPECT_EQ(index.CountFor("lib"), 1u);
}

TEST(AffinityIndexTest, RemoveWorkerSweepsEveryLibrary) {
  AffinityIndex index;
  index.Add("a", 1);
  index.Add("a", 2);
  index.Add("b", 2);
  index.Add("c", 3);
  index.RemoveWorker(2);
  EXPECT_TRUE(index.Contains("a", 1));
  EXPECT_FALSE(index.Contains("a", 2));
  EXPECT_EQ(index.Get("b"), nullptr);  // b's only worker died
  EXPECT_TRUE(index.Contains("c", 3));
  EXPECT_EQ(index.table().size(), 2u);
}

TEST(PickLeastLoadedTest, MostFreeSlotsWins) {
  const DispatchCandidate candidates[] = {{10, 1}, {11, 3}, {12, 2}};
  EXPECT_EQ(PickLeastLoaded(candidates, 3), 1u);
}

TEST(PickLeastLoadedTest, TiesBreakTowardLowestInstanceId) {
  // Deterministic tie-break keeps runtime and simulator choices identical
  // regardless of candidate order.
  const DispatchCandidate candidates[] = {{20, 2}, {7, 2}, {15, 2}};
  EXPECT_EQ(PickLeastLoaded(candidates, 3), 1u);  // id 7
}

TEST(PickLeastLoadedTest, NoFreeSlotsIsNoCandidate) {
  const DispatchCandidate full[] = {{1, 0}, {2, 0}};
  EXPECT_EQ(PickLeastLoaded(full, 2), kNoCandidate);
  EXPECT_EQ(PickLeastLoaded(nullptr, 0), kNoCandidate);
}

TEST(DecideAutoscaleTest, IdleLibraryBelowShareFloorIsEvictionVictim) {
  SchedulerConfig config;  // share_floor = 4.0
  AutoscaleSignal signal;
  signal.queue_depth = 0;
  signal.ready_instances = 2;
  signal.share_value = 1.5;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kEvict);

  // A library that amortized its deploys is retained...
  signal.share_value = 8.0;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kHold);
  // ...and one with nothing deployed has nothing to evict.
  signal.ready_instances = 0;
  signal.share_value = 0.0;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kHold);
}

TEST(DecideAutoscaleTest, BacklogWithinUpcomingCapacityHolds) {
  SchedulerConfig config;
  AutoscaleSignal signal;
  signal.queue_depth = 5;
  signal.ready_instances = 1;
  signal.free_slots = 2;
  signal.pending_instances = 1;
  signal.pending_slots = 3;  // 2 free + 3 pending >= 5 queued
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kHold);
}

TEST(DecideAutoscaleTest, SpareRoomExpandsWithoutDisplacement) {
  // Uncommitted capacity somewhere in the cluster: expanding there evicts
  // nobody, so the only gate is the backlog outrunning capacity in flight.
  SchedulerConfig config;
  AutoscaleSignal signal;
  signal.queue_depth = 3;
  signal.ready_instances = 1;
  signal.free_slots = 0;
  signal.pending_slots = 0;
  signal.workers_with_room = 1;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kDeploy);
}

TEST(DecideAutoscaleTest, DisplacingDeployGatedByStealThreshold) {
  // Fully committed cluster: a deploy must displace another library's warm
  // instance, so it waits until the backlog exceeds steal_threshold per
  // instance (warm or already deploying).
  SchedulerConfig config;  // steal_threshold = 4
  AutoscaleSignal signal;
  signal.queue_depth = 8;
  signal.ready_instances = 1;
  signal.pending_instances = 1;
  signal.workers_with_room = 0;
  // tolerated = (1 + 1) * 4 = 8 >= queue: drain through the warm set.
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kHold);
  signal.queue_depth = 9;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kDeploy);
}

TEST(DecideAutoscaleTest, QueueHighKeepsOneDeployInFlight) {
  // Sustained starvation (queue >= autoscale_queue_high) always gets
  // capacity on the way — but never stacks a second deploy on a pending
  // one.
  SchedulerConfig config;
  config.steal_threshold = 100;  // tolerated backlog far above the queue
  AutoscaleSignal signal;
  signal.queue_depth = config.autoscale_queue_high;
  signal.ready_instances = 1;
  signal.pending_instances = 0;
  signal.workers_with_room = 0;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kDeploy);
  signal.pending_instances = 1;
  EXPECT_EQ(DecideAutoscale(config, signal), AutoscaleAction::kHold);
}

TEST(SchedulerConfigTest, PolicyNames) {
  EXPECT_EQ(SchedulerPolicyName(SchedulerPolicy::kAffinity), "affinity");
  EXPECT_EQ(SchedulerPolicyName(SchedulerPolicy::kFirstFit), "first_fit");
}

// ---------------------------------------------------------------------------
// Runtime-vs-DES mirror: the same demand trajectory drives the same deploy
// decisions in both backends.
// ---------------------------------------------------------------------------

TEST(SchedulerMirrorTest, SimDeploysMirrorRuntimeSpread) {
  // Mirror of runtime_test's LibrarySpreadsAcrossWorkers: 3 workers, one
  // whole-worker single-slot instance each, 9 queued invocations of one
  // library.  The runtime deploys exactly 3 instances (deploy while
  // pending * steal_threshold < queue, then hold); the simulator feeds the
  // same AutoscaleSignal trajectory through the same DecideAutoscale, so
  // it must land on exactly 3 as well.
  sim::SimConfig config;
  config.level = ReuseLevel::kL3;
  config.cluster.num_workers = 3;
  config.scheduler.policy = SchedulerPolicy::kAffinity;

  static const sim::WorkloadCosts costs = sim::LnniCosts(16);
  // One slot per worker: cores_per_worker == cores_per_invocation.
  config.cluster.cores_per_worker = costs.cores_per_invocation;
  std::vector<sim::InvocationSpec> workload;
  for (int i = 0; i < 9; ++i) workload.push_back({&costs, 1.0, 0, 0.0, 0, {}});

  const sim::SimResult result = sim::VineSim(config, workload).Run();
  EXPECT_EQ(result.invocations_completed, 9u);
  EXPECT_EQ(result.libraries_deployed_total, 3u);
  EXPECT_EQ(result.autoscale_deploys, 3u);
  // All nine invocations found (or created) warm capacity; none stole a
  // non-affine worker's slot, because every deploy expanded into room.
  EXPECT_EQ(result.steals, 0u);
}

TEST(SchedulerMirrorTest, SimHoldsAtStealThresholdLikeRuntime) {
  // Same cluster, but a backlog the warm set tolerates: with
  // steal_threshold = 4 a queue of 4 against one deploying instance never
  // recruits a second worker once the cluster is committed.  Here the
  // cluster has room, so the expansion rule still deploys — raising the
  // threshold must not change that (it gates displacement only).
  sim::SimConfig config;
  config.level = ReuseLevel::kL3;
  config.cluster.num_workers = 3;
  config.scheduler.policy = SchedulerPolicy::kAffinity;
  config.scheduler.steal_threshold = 100;

  static const sim::WorkloadCosts costs = sim::LnniCosts(16);
  config.cluster.cores_per_worker = costs.cores_per_invocation;
  std::vector<sim::InvocationSpec> workload;
  for (int i = 0; i < 9; ++i) workload.push_back({&costs, 1.0, 0, 0.0, 0, {}});

  const sim::SimResult result = sim::VineSim(config, workload).Run();
  EXPECT_EQ(result.invocations_completed, 9u);
  EXPECT_EQ(result.libraries_deployed_total, 3u);
}

}  // namespace
}  // namespace vinelet::core
