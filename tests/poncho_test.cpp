// Poncho: catalog resolution (transitive closure, cycles, determinism),
// the synthetic ML catalog's calibration, packing/unpacking, and the
// end-to-end analyzer.
#include <gtest/gtest.h>

#include "hash/content_id.hpp"
#include "poncho/analyzer.hpp"
#include "poncho/package.hpp"
#include "poncho/packer.hpp"

namespace vinelet::poncho {
namespace {

PackageCatalog SmallCatalog() {
  PackageCatalog catalog;
  EXPECT_TRUE(catalog.Add({"base", "1.0", 100, 10, {}}).ok());
  EXPECT_TRUE(catalog.Add({"mid", "2.0", 200, 20, {"base"}}).ok());
  EXPECT_TRUE(catalog.Add({"top", "3.0", 300, 30, {"mid", "base"}}).ok());
  EXPECT_TRUE(catalog.Add({"other", "1.1", 50, 5, {"base"}}).ok());
  return catalog;
}

TEST(PackageCatalogTest, AddAndFind) {
  PackageCatalog catalog = SmallCatalog();
  EXPECT_EQ(catalog.size(), 4u);
  auto pkg = catalog.Find("mid");
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->version, "2.0");
  EXPECT_FALSE(catalog.Find("nope").ok());
  EXPECT_TRUE(catalog.Contains("top"));
}

TEST(PackageCatalogTest, DuplicateAddRejected) {
  PackageCatalog catalog = SmallCatalog();
  EXPECT_EQ(catalog.Add({"base", "9.9", 0, 0, {}}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(PackageCatalogTest, EmptyNameRejected) {
  PackageCatalog catalog;
  EXPECT_EQ(catalog.Add({"", "1", 0, 0, {}}).code(),
            ErrorCode::kInvalidArgument);
}

TEST(PackageCatalogTest, ResolveTransitiveClosure) {
  PackageCatalog catalog = SmallCatalog();
  auto resolved = catalog.Resolve({"top"});
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 3u);  // top, mid, base — not "other"
  EXPECT_EQ((*resolved)[0].name, "base");  // sorted
  EXPECT_EQ((*resolved)[2].name, "top");
}

TEST(PackageCatalogTest, ResolveDeduplicatesSharedDeps) {
  PackageCatalog catalog = SmallCatalog();
  auto resolved = catalog.Resolve({"top", "other"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->size(), 4u);  // base appears once
}

TEST(PackageCatalogTest, ResolveMissingFails) {
  PackageCatalog catalog = SmallCatalog();
  EXPECT_EQ(catalog.Resolve({"phantom"}).status().code(),
            ErrorCode::kNotFound);
  // A missing transitive dep also fails.
  (void)catalog.Add({"broken", "1", 0, 0, {"missing-dep"}});
  EXPECT_EQ(catalog.Resolve({"broken"}).status().code(), ErrorCode::kNotFound);
}

TEST(PackageCatalogTest, CycleDetected) {
  PackageCatalog catalog;
  (void)catalog.Add({"a", "1", 0, 0, {"b"}});
  (void)catalog.Add({"b", "1", 0, 0, {"c"}});
  (void)catalog.Add({"c", "1", 0, 0, {"a"}});
  EXPECT_EQ(catalog.Resolve({"a"}).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(PackageCatalogTest, SelfCycleDetected) {
  PackageCatalog catalog;
  (void)catalog.Add({"selfish", "1", 0, 0, {"selfish"}});
  EXPECT_EQ(catalog.Resolve({"selfish"}).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(PackageCatalogTest, ResolvePinnedMatchingVersion) {
  PackageCatalog catalog = SmallCatalog();
  auto resolved = catalog.ResolvePinned({{"top", "3.0"}, {"other", ""}});
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->size(), 4u);
}

TEST(PackageCatalogTest, ResolvePinnedVersionConflict) {
  PackageCatalog catalog = SmallCatalog();
  auto resolved = catalog.ResolvePinned({{"top", "9.9"}});
  EXPECT_EQ(resolved.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(PackageCatalogTest, ResolvePinnedUnknownPackage) {
  PackageCatalog catalog = SmallCatalog();
  EXPECT_EQ(catalog.ResolvePinned({{"phantom", "1.0"}}).status().code(),
            ErrorCode::kNotFound);
}

TEST(PackageCatalogTest, ResolveIsDeterministic) {
  PackageCatalog catalog = SmallCatalog();
  auto a = catalog.Resolve({"top", "other"});
  auto b = catalog.Resolve({"other", "top"});  // different root order
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i)
    EXPECT_EQ((*a)[i].name, (*b)[i].name);
}

// ---------------------------------------------------------------------------
// Synthetic ML catalog: must match the paper's environment shape.
// ---------------------------------------------------------------------------

TEST(SyntheticCatalogTest, MlInferenceMatchesPaperNumbers) {
  PackageCatalog catalog = PackageCatalog::SyntheticMlCatalog(1.0);
  auto resolved = catalog.Resolve({"ml-inference"});
  ASSERT_TRUE(resolved.ok());
  EnvironmentSpec spec{*resolved};

  // Paper §4.7: 144 packages, 3.1 GB unpacked, 572 MB packed.
  // (the ml-inference meta-package itself is the +1)
  EXPECT_EQ(spec.packages.size(), 145u);
  EXPECT_NEAR(static_cast<double>(spec.TotalUnpackedBytes()),
              3.1 * 1024 * 1024 * 1024, 0.15 * 1024 * 1024 * 1024);
  EXPECT_NEAR(static_cast<double>(spec.TotalPackedBytes()),
              572.0 * 1024 * 1024, 40.0 * 1024 * 1024);
}

TEST(SyntheticCatalogTest, ScaleShrinksBytesNotCounts) {
  PackageCatalog small = PackageCatalog::SyntheticMlCatalog(0.001);
  auto resolved = small.Resolve({"ml-inference"});
  ASSERT_TRUE(resolved.ok());
  EnvironmentSpec spec{*resolved};
  EXPECT_EQ(spec.packages.size(), 145u);
  EXPECT_LT(spec.TotalUnpackedBytes(), 10ull * 1024 * 1024);
}

TEST(SyntheticCatalogTest, ChemStackResolves) {
  PackageCatalog catalog = PackageCatalog::SyntheticMlCatalog(0.01);
  auto resolved = catalog.Resolve({"chem-design"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_GT(resolved->size(), 5u);
}

TEST(EnvironmentSpecTest, PinnedSpecStringStable) {
  PackageCatalog catalog = SmallCatalog();
  EnvironmentSpec spec{catalog.Resolve({"top"}).value()};
  EXPECT_EQ(spec.PinnedSpecString(), "base=1.0;mid=2.0;top=3.0;");
}

// ---------------------------------------------------------------------------
// Packer
// ---------------------------------------------------------------------------

TEST(PackerTest, EnvironmentPackUnpackRoundTrip) {
  PackageCatalog catalog = SmallCatalog();
  EnvironmentSpec spec{catalog.Resolve({"top"}).value()};
  const Blob tarball = Packer::PackEnvironment(spec);
  EXPECT_GT(tarball.size(), spec.TotalPackedBytes());  // payload + index

  auto dir = Packer::Unpack(tarball);
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  EXPECT_EQ(dir->files.size(), 3u);
  EXPECT_EQ(dir->total_bytes, spec.TotalUnpackedBytes());
  EXPECT_TRUE(dir->files.contains("base-1.0"));
  EXPECT_EQ(dir->files.at("base-1.0").size(), 100u);
}

TEST(PackerTest, PackIsDeterministicAndContentAddressable) {
  PackageCatalog catalog = SmallCatalog();
  EnvironmentSpec spec{catalog.Resolve({"top"}).value()};
  const Blob a = Packer::PackEnvironment(spec);
  const Blob b = Packer::PackEnvironment(spec);
  EXPECT_EQ(hash::ContentId::Of(a), hash::ContentId::Of(b));
}

TEST(PackerTest, StoredFilesPreserveContent) {
  const Blob archive = Packer::PackFiles(
      {{"notes.txt", Blob::FromString("hello")},
       {"weights.bin", Blob::FromString(std::string(1000, 'w'))}});
  auto dir = Packer::Unpack(archive);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->files.at("notes.txt").ToString(), "hello");
  EXPECT_EQ(dir->files.at("weights.bin").size(), 1000u);
  EXPECT_EQ(dir->total_bytes, 1005u);
}

TEST(PackerTest, EmptyArchive) {
  const Blob archive = Packer::PackFiles({});
  auto dir = Packer::Unpack(archive);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->files.empty());
  EXPECT_EQ(Packer::CountEntries(archive).value(), 0u);
}

TEST(PackerTest, CountEntriesWithoutUnpack) {
  PackageCatalog catalog = SmallCatalog();
  EnvironmentSpec spec{catalog.Resolve({"top", "other"}).value()};
  const Blob tarball = Packer::PackEnvironment(spec);
  EXPECT_EQ(Packer::CountEntries(tarball).value(), 4u);
}

TEST(PackerTest, BadMagicRejected) {
  EXPECT_EQ(Packer::Unpack(Blob::FromString("not an archive")).status().code(),
            ErrorCode::kDataLoss);
}

TEST(PackerTest, TruncationRejected) {
  const Blob archive =
      Packer::PackFiles({{"f", Blob::FromString("0123456789")}});
  std::vector<std::uint8_t> prefix(archive.span().begin(),
                                   archive.span().end() - 3);
  EXPECT_FALSE(Packer::Unpack(Blob(std::move(prefix))).ok());
}

TEST(PackerTest, DeterministicBytesAreStable) {
  const Blob a = Packer::DeterministicBytes("seed", 1000);
  const Blob b = Packer::DeterministicBytes("seed", 1000);
  const Blob c = Packer::DeterministicBytes("other", 1000);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(Packer::DeterministicBytes("seed", 0).size(), 0u);
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, AnalyzeImportsEndToEnd) {
  Analyzer analyzer(PackageCatalog::SyntheticMlCatalog(0.001));
  auto env = analyzer.AnalyzeImports({"numpy", "pillow"});
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  EXPECT_GE(env->spec.packages.size(), 5u);
  EXPECT_FALSE(env->tarball.empty());
  EXPECT_EQ(env->tarball_id, hash::ContentId::Of(env->tarball));

  auto dir = Packer::Unpack(env->tarball);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->files.size(), env->spec.packages.size());
}

TEST(AnalyzerTest, AnalyzeFunctionsUsesRegistryImports) {
  serde::FunctionRegistry registry;
  serde::FunctionDef def;
  def.name = "uses_numpy";
  def.imports = {"numpy"};
  def.fn = [](const serde::Value& v, const serde::InvocationEnv&)
      -> Result<serde::Value> { return v; };
  ASSERT_TRUE(registry.RegisterFunction(def).ok());

  Analyzer analyzer(PackageCatalog::SyntheticMlCatalog(0.001));
  auto env = analyzer.AnalyzeFunctions(registry, {"uses_numpy"});
  ASSERT_TRUE(env.ok());
  bool has_numpy = false;
  for (const auto& pkg : env->spec.packages)
    if (pkg.name == "numpy") has_numpy = true;
  EXPECT_TRUE(has_numpy);
}

TEST(AnalyzerTest, UnknownImportFails) {
  Analyzer analyzer(PackageCatalog::SyntheticMlCatalog(0.001));
  EXPECT_EQ(analyzer.AnalyzeImports({"left-pad"}).status().code(),
            ErrorCode::kNotFound);
}

TEST(AnalyzerTest, IdenticalEnvironmentsDeduplicateByContent) {
  Analyzer analyzer(PackageCatalog::SyntheticMlCatalog(0.001));
  auto a = analyzer.AnalyzeImports({"numpy"});
  auto b = analyzer.AnalyzeImports({"numpy"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tarball_id, b->tarball_id);
}

}  // namespace
}  // namespace vinelet::poncho
