// End-to-end observability tests against a live in-process cluster:
// causal trace linkage from Manager::Submit to the worker and back,
// Manager::QueryStatus introspection, the flight-recorder post-mortem
// dump after an injected worker crash, and the ClusterStatus renderers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/factory.hpp"
#include "core/introspect.hpp"
#include "core/manager.hpp"
#include "telemetry/export.hpp"

namespace vinelet::core {
namespace {

using serde::ContextHandle;
using serde::FunctionContext;
using serde::InvocationEnv;
using serde::Value;

class SevenContext final : public FunctionContext {
 public:
  std::uint64_t MemoryBytes() const override { return sizeof(*this); }
};

/// Harness: network + manager + factory sharing ONE telemetry sink, so
/// manager spans and worker spans land in the same tracer (the real
/// deployment shape for end-to-end traces).
class IntrospectTest : public ::testing::Test {
 protected:
  void StartCluster(std::size_t workers, ManagerConfig manager_config = {}) {
    RegisterTestFunctions();
    network_ = std::make_shared<net::Network>();
    manager_config.registry = &registry_;
    manager_ = std::make_unique<Manager>(network_, manager_config);
    ASSERT_TRUE(manager_->Start().ok());
    FactoryConfig factory_config;
    factory_config.initial_workers = workers;
    factory_config.worker_resources = {32, 64 * 1024, 64 * 1024};
    factory_config.registry = &registry_;
    factory_config.telemetry = &manager_->telemetry();
    factory_ = std::make_unique<Factory>(network_, factory_config);
    ASSERT_TRUE(factory_->Start().ok());
    ASSERT_TRUE(manager_->WaitForWorkers(workers, 30.0).ok());
  }

  void TearDown() override {
    if (manager_) manager_->Stop();
    if (factory_) factory_->Stop();
  }

  void RegisterTestFunctions() {
    serde::FunctionDef add;
    add.name = "add";
    add.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
      return Value(args.Get("a").AsInt() + args.Get("b").AsInt());
    };
    ASSERT_TRUE(registry_.RegisterFunction(add).ok());

    serde::ContextSetupDef setup;
    setup.name = "seven_setup";
    setup.fn = [](const Value&, const InvocationEnv&) -> Result<ContextHandle> {
      return ContextHandle(std::make_shared<SevenContext>());
    };
    ASSERT_TRUE(registry_.RegisterSetup(setup).ok());

    serde::FunctionDef with_ctx;
    with_ctx.name = "with_ctx";
    with_ctx.setup_name = "seven_setup";
    with_ctx.fn = [](const Value& args,
                     const InvocationEnv& env) -> Result<Value> {
      return Value(args.Get("x").AsInt() + (env.context != nullptr ? 7 : 0));
    };
    ASSERT_TRUE(registry_.RegisterFunction(with_ctx).ok());
  }

  serde::FunctionRegistry registry_;
  std::shared_ptr<net::Network> network_;
  std::unique_ptr<Manager> manager_;
  std::unique_ptr<Factory> factory_;
};

// ---------------------------------------------------------------------------
// Tentpole: one trace_id from Manager::Submit through worker execution and
// back to result resolution, across a 2-worker cluster.
// ---------------------------------------------------------------------------

TEST_F(IntrospectTest, SubmitToResultSpansShareOneCausalTrace) {
  StartCluster(2);
  manager_->telemetry().tracer.SetEnabled(true);

  auto spec = manager_->CreateLibraryFromFunctions(
      "sevens", {"with_ctx"}, "seven_setup", Value(), nullptr,
      LibraryOptions{Resources{4, 1024, 1024}, 2, ExecMode::kDirect, 512});
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  constexpr int kCalls = 4;
  for (int i = 0; i < kCalls; ++i) {
    (void)manager_->SubmitCall("sevens", "with_ctx",
                               Value::Dict({{"x", Value(i)}}));
  }
  (void)manager_->SubmitTask("add",
                             Value::Dict({{"a", Value(1)}, {"b", Value(2)}}),
                             {}, Resources{1, 64, 64});
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  manager_->telemetry().tracer.SetEnabled(false);

  const auto spans = manager_->telemetry().tracer.Drain();
  std::map<std::uint64_t, std::set<std::uint64_t>> ids_by_trace;
  for (const auto& span : spans) {
    if (span.trace_id != 0) ids_by_trace[span.trace_id].insert(span.span_id);
  }

  // Every invocation span is causally linked: no orphan parents.
  std::map<std::uint64_t, std::set<std::string>> names_by_trace;
  std::map<std::uint64_t, std::set<std::string>> tracks_by_trace;
  for (const auto& span : spans) {
    if (span.trace_id == 0) continue;
    if (span.parent_span_id != 0) {
      EXPECT_TRUE(ids_by_trace[span.trace_id].count(span.parent_span_id))
          << span.name << " on " << span.track << " has orphan parent "
          << span.parent_span_id;
    }
    names_by_trace[span.trace_id].insert(span.name);
    tracks_by_trace[span.trace_id].insert(span.track);
  }

  // One root trace per submission, and each completed trace runs the full
  // submit -> ... -> exec -> result chain spanning manager AND a worker
  // track (so the context crossed the wire, not just one process).
  EXPECT_EQ(names_by_trace.size(), static_cast<std::size_t>(kCalls + 1));
  for (const auto& [trace_id, names] : names_by_trace) {
    EXPECT_TRUE(names.count("submit")) << "trace " << trace_id;
    EXPECT_TRUE(names.count("exec")) << "trace " << trace_id;
    EXPECT_TRUE(names.count("result")) << "trace " << trace_id;
    EXPECT_GE(tracks_by_trace[trace_id].size(), 2u) << "trace " << trace_id;
  }

  // The call traces also cover deserialize, and at least one paid the
  // context-setup span on a worker.
  std::size_t setup_traces = 0;
  for (const auto& [trace_id, names] : names_by_trace) {
    if (names.count("context-setup")) ++setup_traces;
  }
  EXPECT_GE(setup_traces, 1u);
}

// ---------------------------------------------------------------------------
// Tentpole: live introspection over the status wire protocol.
// ---------------------------------------------------------------------------

TEST_F(IntrospectTest, QueryStatusReportsQueuesCachesAndLibrarySlots) {
  StartCluster(2);

  const Blob weights = Blob::FromString(std::string(2048, 'w'));
  const auto decl =
      manager_->DeclareBlob("weights", weights, storage::FileKind::kData);
  ASSERT_TRUE(manager_->BroadcastFile(decl)->Wait().ok());

  auto spec = manager_->CreateLibraryFromFunctions(
      "sevens", {"with_ctx"}, "seven_setup", Value(), nullptr,
      LibraryOptions{Resources{4, 1024, 1024}, 2, ExecMode::kDirect, 512});
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(manager_->InstallLibrary(*spec).ok());
  constexpr std::uint64_t kCalls = 8;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    (void)manager_->SubmitCall("sevens", "with_ctx",
                               Value::Dict({{"x", Value(1)}}));
  }

  // Mid-flight the query must succeed (values are racy, shape is not).
  auto midflight = manager_->QueryStatus();
  ASSERT_TRUE(midflight.ok()) << midflight.status().ToString();
  EXPECT_EQ(midflight->workers.size(), 2u);

  ASSERT_TRUE(manager_->WaitAll(60.0).ok());
  auto drained = manager_->QueryStatus();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();

  EXPECT_GT(drained->collected_s, 0.0);
  EXPECT_EQ(drained->task_queue_depth, 0u);
  ASSERT_EQ(drained->workers.size(), 2u);
  std::uint64_t served = 0;
  std::uint64_t samples = 0;
  for (const auto& worker : drained->workers) {
    // The broadcast blob is admitted (and hash-verified) on every worker.
    bool has_weights = false;
    for (const auto& entry : worker.cache) {
      if (entry.id == decl.id) {
        has_weights = true;
        EXPECT_EQ(entry.bytes, weights.size());
      }
    }
    EXPECT_TRUE(has_weights) << "worker " << worker.id;
    EXPECT_TRUE(worker.assemblies.empty()) << "worker " << worker.id;
    for (const auto& slot : worker.libraries) {
      EXPECT_EQ(slot.library, "sevens");
      EXPECT_EQ(slot.queued, 0u);
      served += slot.invocations_served;
    }
    samples += worker.latency_samples;
  }
  EXPECT_EQ(served, kCalls);
  EXPECT_GE(samples, kCalls);
  for (const auto& queue : drained->library_queues) {
    EXPECT_EQ(queue.queued, 0u);
  }
}

// ---------------------------------------------------------------------------
// Tentpole: flight-recorder post-mortem after an injected crash.
// ---------------------------------------------------------------------------

TEST_F(IntrospectTest, KilledWorkerDumpsFlightJournalAsValidJson) {
  const std::string dir = ::testing::TempDir();
  ::setenv("VINELET_FLIGHT_DUMP", dir.c_str(), 1);
  StartCluster(2);
  for (int i = 0; i < 3; ++i) {
    (void)manager_->SubmitTask("add",
                               Value::Dict({{"a", Value(i)}, {"b", Value(1)}}),
                               {}, Resources{1, 64, 64});
  }
  ASSERT_TRUE(manager_->WaitAll(60.0).ok());

  const auto ids = factory_->WorkerIds();
  ASSERT_FALSE(ids.empty());
  const WorkerId victim = ids.front();
  ASSERT_TRUE(factory_->KillWorker(victim).ok());
  ::unsetenv("VINELET_FLIGHT_DUMP");

  const std::string path =
      dir + (dir.back() == '/' ? "" : "/") + "flight-worker-" +
      std::to_string(victim) + "-kill.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing dump: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_TRUE(telemetry::ValidateJson(dump).ok()) << dump;
  EXPECT_NE(dump.find("\"kill\""), std::string::npos);
  EXPECT_NE(dump.find("\"events\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Renderers: the status report carries everything the CLI prints.
// ---------------------------------------------------------------------------

ClusterStatus SampleStatus() {
  ClusterStatus status;
  status.collected_s = 1.5;
  status.task_queue_depth = 3;
  status.library_queues = {{"lnni", 4}};
  status.broadcasts = {
      {"weights", hash::ContentId::OfText("weights"), 6, {2, 3}}};
  WorkerStatus fast;
  fast.id = 1;
  fast.inbox_depth = 1;
  fast.tasks_executed = 10;
  fast.cache = {{hash::ContentId::OfText("weights"), 2048}};
  fast.assemblies = {{hash::ContentId::OfText("env"), 2, 6}};
  fast.libraries = {{5, "lnni", 12, 2}};
  fast.p95_latency_s = 0.010;
  fast.latency_samples = 10;
  WorkerStatus slow = fast;
  slow.id = 2;
  slow.p95_latency_s = 0.500;
  slow.straggler = true;
  status.workers = {fast, slow};
  status.cluster_median_p95_s = 0.010;
  telemetry::SloSnapshot slo;
  slo.library = "lnni";
  slo.latency_target_s = 0.1;
  slo.target_fraction = 0.95;
  slo.window_s = 10.0;
  slo.samples = 20;
  slo.violations = 2;
  slo.violation_fraction = 0.1;
  slo.p50_s = 0.010;
  slo.p99_s = 0.500;
  slo.goodput_per_s = 2.0;
  slo.burn_rate = 2.0;
  slo.latency_breached = true;
  status.slo = {slo};
  return status;
}

TEST(ClusterStatusRenderTest, FormatMentionsEveryReportedFact) {
  const std::string text = FormatClusterStatus(SampleStatus());
  EXPECT_NE(text.find("task queue: 3"), std::string::npos);
  EXPECT_NE(text.find("library queue lnni: 4"), std::string::npos);
  EXPECT_NE(text.find("broadcast weights"), std::string::npos);
  EXPECT_NE(text.find("2 subtree(s) pending"), std::string::npos);
  EXPECT_NE(text.find("library lnni#5: served 12, queued 2"),
            std::string::npos);
  EXPECT_NE(text.find("assembling"), std::string::npos);
  EXPECT_NE(text.find("** STRAGGLER **"), std::string::npos);
  // Only the slow worker is flagged.
  EXPECT_EQ(text.find("** STRAGGLER **"), text.rfind("** STRAGGLER **"));
}

TEST(ClusterStatusRenderTest, JsonIsValidAndFlagsTheStraggler) {
  const std::string json = ClusterStatusToJson(SampleStatus());
  ASSERT_TRUE(telemetry::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"straggler\":true"), std::string::npos);
  EXPECT_NE(json.find("\"straggler\":false"), std::string::npos);
  EXPECT_NE(json.find("\"task_queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"queued\":4"), std::string::npos);
}

TEST(ClusterStatusRenderTest, FormatRendersSloAndBreachFlag) {
  const std::string text = FormatClusterStatus(SampleStatus());
  EXPECT_NE(text.find("slo lnni: 20 sample(s), viol 0.100 (2)"),
            std::string::npos);
  EXPECT_NE(text.find("p50 0.010s, p99 0.500s, goodput 2.000/s, burn 2.000"),
            std::string::npos);
  EXPECT_NE(text.find("** SLO BREACH latency **"), std::string::npos);
  // The breach flag disappears when the SLO is healthy.
  ClusterStatus healthy = SampleStatus();
  healthy.slo[0].latency_breached = false;
  EXPECT_EQ(FormatClusterStatus(healthy).find("SLO BREACH"),
            std::string::npos);
}

TEST(ClusterStatusRenderTest, JsonCarriesTheSloArrayRoundTrip) {
  const std::string json = ClusterStatusToJson(SampleStatus());
  ASSERT_TRUE(telemetry::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"slo\": ["), std::string::npos);
  EXPECT_NE(json.find("\"library\":\"lnni\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_fraction\":0.100"), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"latency_breached\":true"), std::string::npos);
  EXPECT_NE(json.find("\"goodput_breached\":false"), std::string::npos);
  // An empty SLO list still renders a valid (empty) array.
  ClusterStatus quiet = SampleStatus();
  quiet.slo.clear();
  ASSERT_TRUE(telemetry::ValidateJson(ClusterStatusToJson(quiet)).ok());
}

TEST(ClusterStatusRenderTest, HealthPredicatesDriveTheCliExitCode) {
  ClusterStatus status = SampleStatus();
  EXPECT_TRUE(AnyStraggler(status));
  EXPECT_TRUE(AnySloBreach(status));
  status.workers[1].straggler = false;
  status.slo[0].latency_breached = false;
  EXPECT_FALSE(AnyStraggler(status));
  EXPECT_FALSE(AnySloBreach(status));
  status.slo[0].goodput_breached = true;
  EXPECT_TRUE(AnySloBreach(status));
  EXPECT_FALSE(AnySloBreach(ClusterStatus{}));
}

}  // namespace
}  // namespace vinelet::core
