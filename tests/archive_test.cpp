// ArchiveWriter/ArchiveReader: round trips, bounds checking, and
// truncation robustness (every prefix of a valid payload must fail cleanly).
#include <gtest/gtest.h>

#include <limits>

#include "serde/archive.hpp"

namespace vinelet::serde {
namespace {

TEST(ArchiveTest, ScalarRoundTrip) {
  ArchiveWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI64(-42);
  writer.WriteF64(3.14159);
  writer.WriteBool(true);
  writer.WriteBool(false);

  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), 3.14159);
  EXPECT_TRUE(reader.ReadBool().value());
  EXPECT_FALSE(reader.ReadBool().value());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ArchiveTest, StringRoundTrip) {
  ArchiveWriter writer;
  writer.WriteString("");
  writer.WriteString("hello");
  writer.WriteString(std::string(10000, 'x'));

  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadString().value().size(), 10000u);
}

TEST(ArchiveTest, BytesRoundTrip) {
  ArchiveWriter writer;
  std::vector<std::uint8_t> payload = {0, 1, 2, 255, 254};
  writer.WriteBytes(payload);
  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.ReadBytes().value(), payload);
}

TEST(ArchiveTest, EdgeValues) {
  ArchiveWriter writer;
  writer.WriteI64(std::numeric_limits<std::int64_t>::min());
  writer.WriteI64(std::numeric_limits<std::int64_t>::max());
  writer.WriteF64(std::numeric_limits<double>::infinity());
  writer.WriteF64(-0.0);
  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.ReadI64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(reader.ReadI64().value(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(reader.ReadF64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(reader.ReadF64().value(), 0.0);
}

TEST(ArchiveTest, ReadPastEndFails) {
  ArchiveReader reader(std::span<const std::uint8_t>{});
  EXPECT_EQ(reader.ReadU8().status().code(), ErrorCode::kDataLoss);
  EXPECT_EQ(reader.ReadU64().status().code(), ErrorCode::kDataLoss);
  EXPECT_EQ(reader.ReadString().status().code(), ErrorCode::kDataLoss);
}

TEST(ArchiveTest, StringWithLyingLengthFails) {
  ArchiveWriter writer;
  writer.WriteU64(1000);  // claims 1000 bytes follow; nothing does
  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.ReadString().status().code(), ErrorCode::kDataLoss);
}

TEST(ArchiveTest, EveryTruncationFailsCleanly) {
  ArchiveWriter writer;
  writer.WriteString("header");
  writer.WriteU64(7);
  writer.WriteBytes(std::vector<std::uint8_t>{9, 8, 7});
  const auto& full = writer.buffer();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ArchiveReader reader(full.span().subspan(0, cut));
    auto header = reader.ReadString();
    if (!header.ok()) continue;
    auto number = reader.ReadU64();
    if (!number.ok()) continue;
    auto bytes = reader.ReadBytes();
    // Since the payload was cut, at least one read must have failed.
    EXPECT_FALSE(bytes.ok()) << "cut=" << cut;
  }
}

TEST(ArchiveTest, RemainingCountsDown) {
  ArchiveWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ArchiveReader reader(writer.buffer().span());
  EXPECT_EQ(reader.remaining(), 8u);
  (void)reader.ReadU32();
  EXPECT_EQ(reader.remaining(), 4u);
  (void)reader.ReadU32();
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ArchiveTest, HugeLengthPrefixRejectedWithoutOverflow) {
  // A length prefix near SIZE_MAX used to wrap the `pos_ + bytes` bounds
  // check and pass Need(), overreading the buffer.  It must fail cleanly.
  ArchiveWriter writer;
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);
  ArchiveReader reader(writer.buffer().span());
  auto text = reader.ReadString();
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), ErrorCode::kDataLoss);

  ArchiveReader bytes_reader(writer.buffer().span());
  EXPECT_FALSE(bytes_reader.ReadBytes().ok());
  ArchiveReader blob_reader(writer.buffer().span());
  EXPECT_FALSE(blob_reader.ReadBlob().ok());
}

TEST(ArchiveTest, NearMaxLengthPrefixesRejected) {
  // Sweep lengths around the overflow boundary: every claimed length larger
  // than the remaining payload must be rejected, none may allocate first.
  const std::uint64_t claims[] = {9, std::uint64_t{1} << 32,
                                  std::uint64_t{1} << 48,
                                  0xFFFFFFFFFFFFFFF0ull,
                                  0xFFFFFFFFFFFFFFFFull};
  for (std::uint64_t claimed : claims) {
    ArchiveWriter writer;
    writer.WriteU64(claimed);
    writer.WriteU64(0);  // 8 bytes of actual payload after the prefix
    ArchiveReader reader(writer.buffer().span());
    auto text = reader.ReadString();
    EXPECT_FALSE(text.ok()) << "claimed=" << claimed;
  }
}

TEST(ArchiveTest, ToBlobMovesBuffer) {
  ArchiveWriter writer;
  writer.WriteString("payload");
  const std::size_t size = writer.size();
  Blob blob = std::move(writer).ToBlob();
  EXPECT_EQ(blob.size(), size);
}

}  // namespace
}  // namespace vinelet::serde
