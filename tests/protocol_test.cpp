// Wire protocol: encode/decode round trip of every message type, plus
// malformed-frame rejection (truncation sweep over a representative frame).
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "sample_messages.hpp"

namespace vinelet::core {
namespace {

storage::FileDecl SampleDecl() {
  storage::FileDecl decl;
  decl.name = "env:lnni";
  const Blob payload = Blob::FromString("tarball bytes");
  decl.id = hash::ContentId::Of(payload);
  decl.size = payload.size();
  decl.kind = storage::FileKind::kEnvironment;
  decl.cache = true;
  decl.peer_transfer = true;
  decl.unpack = true;
  return decl;
}

template <typename T>
T RoundTrip(const Message& message) {
  const Blob blob = EncodeMessage(message);
  auto decoded = DecodeMessage(blob);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  T* typed = std::get_if<T>(&*decoded);
  EXPECT_NE(typed, nullptr);
  return std::move(*typed);
}

TEST(ProtocolTest, PutFileRoundTrip) {
  PutFileMsg msg{SampleDecl(), Blob::FromString("payload"), {0xABCu, 0xDEFu}};
  auto out = RoundTrip<PutFileMsg>(msg);
  EXPECT_EQ(out.decl.name, "env:lnni");
  EXPECT_EQ(out.decl.id, msg.decl.id);
  EXPECT_EQ(out.decl.kind, storage::FileKind::kEnvironment);
  EXPECT_TRUE(out.decl.unpack);
  EXPECT_EQ(out.payload, msg.payload);
  EXPECT_EQ(out.trace, msg.trace);
}

TEST(ProtocolTest, PushFileRoundTrip) {
  PushFileMsg msg{SampleDecl(), 42, {7u, 9u}};
  auto out = RoundTrip<PushFileMsg>(msg);
  EXPECT_EQ(out.dest, 42u);
  EXPECT_EQ(out.decl.id, msg.decl.id);
  EXPECT_EQ(out.trace, msg.trace);
}

TEST(ProtocolTest, ExecuteTaskRoundTrip) {
  ExecuteTaskMsg msg;
  msg.task.id = 77;
  msg.task.function_name = "lnni_infer";
  msg.task.args = Blob::FromString("args");
  msg.task.inputs = {SampleDecl()};
  storage::FileDecl inline_decl = SampleDecl();
  inline_decl.name = "inline";
  inline_decl.cache = false;
  msg.task.inline_files.emplace_back(inline_decl, Blob::FromString("data"));
  msg.task.resources = Resources{2, 4096, 4096};

  auto out = RoundTrip<ExecuteTaskMsg>(msg);
  EXPECT_EQ(out.task.id, 77u);
  EXPECT_EQ(out.task.function_name, "lnni_infer");
  ASSERT_EQ(out.task.inputs.size(), 1u);
  ASSERT_EQ(out.task.inline_files.size(), 1u);
  EXPECT_EQ(out.task.inline_files[0].first.name, "inline");
  EXPECT_FALSE(out.task.inline_files[0].first.cache);
  EXPECT_EQ(out.task.inline_files[0].second.ToString(), "data");
  EXPECT_EQ(out.task.resources, (Resources{2, 4096, 4096}));
}

TEST(ProtocolTest, InstallLibraryRoundTrip) {
  InstallLibraryMsg msg;
  msg.instance_id = 5;
  msg.spec.name = "lib";
  msg.spec.function_names = {"f", "g"};
  msg.spec.setup_name = "setup";
  msg.spec.setup_args = Blob::FromString("setup-args");
  msg.spec.inputs = {SampleDecl()};
  msg.spec.resources = Resources::All();
  msg.spec.slots = 16;
  msg.spec.exec_mode = ExecMode::kFork;

  auto out = RoundTrip<InstallLibraryMsg>(msg);
  EXPECT_EQ(out.instance_id, 5u);
  EXPECT_EQ(out.spec.name, "lib");
  EXPECT_EQ(out.spec.function_names, (std::vector<std::string>{"f", "g"}));
  EXPECT_EQ(out.spec.setup_name, "setup");
  EXPECT_EQ(out.spec.slots, 16u);
  EXPECT_EQ(out.spec.exec_mode, ExecMode::kFork);
  EXPECT_TRUE(out.spec.resources.IsAll());
}

TEST(ProtocolTest, RemoveLibraryRoundTrip) {
  auto out = RoundTrip<RemoveLibraryMsg>(RemoveLibraryMsg{9});
  EXPECT_EQ(out.instance_id, 9u);
}

TEST(ProtocolTest, RunInvocationRoundTrip) {
  RunInvocationMsg msg{101, 3, "f", Blob::FromString("xyz"), {}, {11u, 22u}};
  auto out = RoundTrip<RunInvocationMsg>(msg);
  EXPECT_EQ(out.id, 101u);
  EXPECT_EQ(out.instance_id, 3u);
  EXPECT_EQ(out.function_name, "f");
  EXPECT_EQ(out.args.ToString(), "xyz");
  EXPECT_TRUE(out.ref_args.empty());
  EXPECT_EQ(out.trace, msg.trace);
}

TEST(ProtocolTest, RunInvocationRefArgsRoundTrip) {
  RunInvocationMsg msg;
  msg.id = 55;
  msg.instance_id = 3;
  msg.function_name = "consume";
  msg.args = Blob::FromString("placeholder-args");
  msg.ref_args.push_back(
      {1, BlobRef{hash::ContentId::OfText("payload-a"), 4096, 7}, 7});
  msg.ref_args.push_back(
      {4, BlobRef{hash::ContentId::OfText("payload-b"), 123, 9}, 0});
  auto out = RoundTrip<RunInvocationMsg>(msg);
  ASSERT_EQ(out.ref_args.size(), 2u);
  EXPECT_EQ(out.ref_args[0].arg_index, 1u);
  EXPECT_EQ(out.ref_args[0].ref, msg.ref_args[0].ref);
  EXPECT_EQ(out.ref_args[0].source, 7u);
  EXPECT_EQ(out.ref_args[1].arg_index, 4u);
  EXPECT_EQ(out.ref_args[1].ref, msg.ref_args[1].ref);
  EXPECT_EQ(out.ref_args[1].source, 0u);
}

TEST(ProtocolTest, RunInvocationBatchRoundTrip) {
  RunInvocationBatchMsg msg;
  msg.instance_id = 3;
  msg.items.push_back({101, 3, "f", Blob::FromString("xyz"), {}, {11u, 22u}});
  msg.items.push_back({102, 3, "g", Blob::FromString(""), {}, {33u, 44u}});
  msg.items.push_back(
      {103,
       3,
       "f",
       Blob::FromString("pq"),
       {{0, BlobRef{hash::ContentId::OfText("edge"), 77, 2}, 2}},
       {55u, 66u}});
  auto out = RoundTrip<RunInvocationBatchMsg>(msg);
  EXPECT_EQ(out.instance_id, 3u);
  ASSERT_EQ(out.items.size(), 3u);
  // Every item keeps its own id, args and TraceContext through the wire.
  EXPECT_EQ(out.items[0].id, 101u);
  EXPECT_EQ(out.items[0].function_name, "f");
  EXPECT_EQ(out.items[0].args.ToString(), "xyz");
  EXPECT_EQ(out.items[0].trace, msg.items[0].trace);
  EXPECT_EQ(out.items[1].id, 102u);
  EXPECT_EQ(out.items[1].args.size(), 0u);
  EXPECT_EQ(out.items[1].trace, msg.items[1].trace);
  EXPECT_EQ(out.items[2].id, 103u);
  EXPECT_EQ(out.items[2].trace, msg.items[2].trace);
  ASSERT_EQ(out.items[2].ref_args.size(), 1u);
  EXPECT_EQ(out.items[2].ref_args[0].ref, msg.items[2].ref_args[0].ref);
}

TEST(ProtocolTest, RunInvocationBatchEveryTruncationRejected) {
  // The batch decoder reads a count then N items; a truncated frame must
  // fail cleanly at every cut point instead of fabricating short batches.
  RunInvocationBatchMsg msg;
  msg.instance_id = 7;
  msg.items.push_back({1, 7, "f", Blob::FromString("abc"), {}, {1u, 2u}});
  msg.items.push_back(
      {2,
       7,
       "g",
       Blob::FromString("de"),
       {{0, BlobRef{hash::ContentId::OfText("r"), 9, 3}, 3}},
       {3u, 4u}});
  const Blob full = EncodeMessage(msg);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> prefix(
        full.span().begin(), full.span().begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeMessage(Blob(std::move(prefix))).ok()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, ControlMessagesRoundTrip) {
  (void)RoundTrip<ShutdownMsg>(ShutdownMsg{});
  (void)RoundTrip<GoodbyeMsg>(GoodbyeMsg{});
  auto hello = RoundTrip<HelloMsg>(HelloMsg{Resources{32, 65536, 65536}});
  EXPECT_EQ(hello.resources.cores, 32u);
}

TEST(ProtocolTest, FileStatusRoundTrip) {
  const auto id = hash::ContentId::OfText("f");
  auto ready = RoundTrip<FileReadyMsg>(FileReadyMsg{id, 100});
  EXPECT_EQ(ready.content_id, id);
  EXPECT_EQ(ready.size, 100u);
  auto failed = RoundTrip<FileFailedMsg>(FileFailedMsg{id, "checksum"});
  EXPECT_EQ(failed.error, "checksum");
}

TEST(ProtocolTest, TaskDoneRoundTrip) {
  TaskDoneMsg msg;
  msg.id = 8;
  msg.ok = true;
  msg.result = Blob::FromString("result");
  msg.timing = {0.1, 0.2, 0.3, 0.4, 0.5};
  auto out = RoundTrip<TaskDoneMsg>(msg);
  EXPECT_TRUE(out.ok);
  EXPECT_DOUBLE_EQ(out.timing.transfer_s, 0.1);
  EXPECT_DOUBLE_EQ(out.timing.deserialize_s, 0.3);
  EXPECT_DOUBLE_EQ(out.timing.exec_s, 0.5);
  EXPECT_DOUBLE_EQ(out.timing.Total(), 1.5);
}

TEST(ProtocolTest, InvocationDoneErrorRoundTrip) {
  InvocationDoneMsg msg;
  msg.id = 12;
  msg.ok = false;
  msg.error = "function not in library";
  auto out = RoundTrip<InvocationDoneMsg>(msg);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "function not in library");
}

TEST(ProtocolTest, InvocationDoneRefRoundTrip) {
  InvocationDoneMsg msg;
  msg.id = 31;
  msg.ok = true;
  msg.ref = BlobRef{hash::ContentId::OfText("big-result"), 1 << 20, 6};
  msg.timing = {0.0, 0.0, 0.1, 0.2, 0.3};
  auto out = RoundTrip<InvocationDoneMsg>(msg);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.result.size(), 0u);
  EXPECT_TRUE(out.ref.valid());
  EXPECT_EQ(out.ref, msg.ref);

  // The framed form also leaves the (empty) result as the attachment path
  // and still carries the ref in the header.
  WireFrame wire = EncodeFrame(msg);
  auto decoded = DecodeFrame(net::Frame{0, wire.payload, wire.attachment});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* framed = std::get_if<InvocationDoneMsg>(&*decoded);
  ASSERT_NE(framed, nullptr);
  EXPECT_EQ(framed->ref, msg.ref);
}

TEST(ProtocolTest, InvocationDoneResultRidesAsAttachment) {
  // By-value results cross the wire as the frame attachment: the manager's
  // inbox borrows the producer's bytes instead of re-copying them.
  InvocationDoneMsg msg;
  msg.id = 32;
  msg.ok = true;
  msg.result = Blob::FromString("inline result bytes");
  WireFrame wire = EncodeFrame(msg);
  EXPECT_EQ(wire.attachment, msg.result);
  auto decoded = DecodeFrame(net::Frame{0, wire.payload, wire.attachment});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* out = std::get_if<InvocationDoneMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->result.SharesPayloadWith(wire.attachment));
  EXPECT_FALSE(out->ref.valid());
}

TEST(ProtocolTest, FetchBlobRoundTrip) {
  FetchBlobMsg msg{hash::ContentId::OfText("wanted"), 0xFEEDu, {5u, 6u}};
  auto out = RoundTrip<FetchBlobMsg>(msg);
  EXPECT_EQ(out.id, msg.id);
  EXPECT_EQ(out.tag, 0xFEEDu);
  EXPECT_EQ(out.trace, msg.trace);
}

TEST(ProtocolTest, BlobDataRoundTrip) {
  BlobDataMsg msg;
  msg.id = hash::ContentId::OfText("served");
  msg.tag = 9;
  msg.ok = true;
  msg.payload = Blob::FromString("the payload bytes");
  msg.trace = {1u, 2u};
  auto out = RoundTrip<BlobDataMsg>(msg);
  EXPECT_EQ(out.id, msg.id);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.payload, msg.payload);

  // Framed, the payload rides as the attachment zero-copy (the serving
  // worker forwards its cached refcounted bytes, same as the chunk relay).
  WireFrame wire = EncodeFrame(msg);
  EXPECT_EQ(wire.attachment, msg.payload);
  auto decoded = DecodeFrame(net::Frame{0, wire.payload, wire.attachment});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* framed = std::get_if<BlobDataMsg>(&*decoded);
  ASSERT_NE(framed, nullptr);
  EXPECT_TRUE(framed->payload.SharesPayloadWith(wire.attachment));

  BlobDataMsg miss;
  miss.id = msg.id;
  miss.tag = 10;
  miss.ok = false;
  miss.error = "not in store";
  auto miss_out = RoundTrip<BlobDataMsg>(miss);
  EXPECT_FALSE(miss_out.ok);
  EXPECT_EQ(miss_out.error, "not in store");
}

TEST(ProtocolTest, DropAndCancelRoundTrip) {
  auto drop = RoundTrip<DropBlobMsg>(DropBlobMsg{hash::ContentId::OfText("d")});
  EXPECT_EQ(drop.id, hash::ContentId::OfText("d"));
  auto cancel =
      RoundTrip<CancelFetchMsg>(CancelFetchMsg{hash::ContentId::OfText("c")});
  EXPECT_EQ(cancel.id, hash::ContentId::OfText("c"));
}

TEST(ProtocolTest, LibraryLifecycleRoundTrip) {
  auto ready =
      RoundTrip<LibraryReadyMsg>(LibraryReadyMsg{4, {1.0, 15.4, 2.7, 0.0}});
  EXPECT_EQ(ready.instance_id, 4u);
  EXPECT_DOUBLE_EQ(ready.timing.worker_s, 15.4);
  auto removed = RoundTrip<LibraryRemovedMsg>(LibraryRemovedMsg{4});
  EXPECT_EQ(removed.instance_id, 4u);
}

TEST(ProtocolTest, StatusMessagesRoundTrip) {
  (void)RoundTrip<StatusRequestMsg>(StatusRequestMsg{});

  StatusReplyMsg msg;
  msg.inbox_depth = 4;
  msg.tasks_executed = 17;
  msg.cache = {{hash::ContentId::OfText("a"), 100},
               {hash::ContentId::OfText("b"), 200}};
  msg.assemblies = {{hash::ContentId::OfText("c"), 3, 8}};
  msg.libraries = {{5, "lnni", 12, 2}};
  msg.refs_held = 3;
  msg.p2p_fetch_bytes = 4096;
  msg.p2p_serve_bytes = 8192;
  msg.relayed_result_bytes = 16;
  msg.arena_hwm_bytes = 1 << 16;
  auto out = RoundTrip<StatusReplyMsg>(msg);
  EXPECT_EQ(out.inbox_depth, 4u);
  EXPECT_EQ(out.tasks_executed, 17u);
  ASSERT_EQ(out.cache.size(), 2u);
  EXPECT_EQ(out.cache[0].id, msg.cache[0].id);
  EXPECT_EQ(out.cache[1].bytes, 200u);
  ASSERT_EQ(out.assemblies.size(), 1u);
  EXPECT_EQ(out.assemblies[0].id, msg.assemblies[0].id);
  EXPECT_EQ(out.assemblies[0].received, 3u);
  EXPECT_EQ(out.assemblies[0].total, 8u);
  ASSERT_EQ(out.libraries.size(), 1u);
  EXPECT_EQ(out.libraries[0].instance_id, 5u);
  EXPECT_EQ(out.libraries[0].library, "lnni");
  EXPECT_EQ(out.libraries[0].invocations_served, 12u);
  EXPECT_EQ(out.libraries[0].queued, 2u);
  EXPECT_EQ(out.refs_held, 3u);
  EXPECT_EQ(out.p2p_fetch_bytes, 4096u);
  EXPECT_EQ(out.p2p_serve_bytes, 8192u);
  EXPECT_EQ(out.relayed_result_bytes, 16u);
  EXPECT_EQ(out.arena_hwm_bytes, 1u << 16);
}

TEST(ProtocolTest, TraceSurvivesFrameWithZeroCopyAttachment) {
  PutChunkMsg msg;
  msg.decl = SampleDecl();
  msg.chunk_index = 2;
  msg.num_chunks = 4;
  msg.chunk_bytes = 8;
  msg.children = {{7, {{9, {}}}}};
  msg.chunk = Blob::FromString("chunkdata");
  msg.trace = {0x1122u, 0x3344u};

  // The bulk bytes ride as the frame attachment (zero-copy relay path); the
  // trace lives in the header payload and must survive reattachment.
  WireFrame wire = EncodeFrame(msg);
  EXPECT_EQ(wire.attachment, msg.chunk);
  auto decoded = DecodeFrame(net::Frame{0, wire.payload, wire.attachment});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto* out = std::get_if<PutChunkMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->trace, msg.trace);
  EXPECT_EQ(out->chunk, msg.chunk);
  ASSERT_EQ(out->children.size(), 1u);
  EXPECT_EQ(out->children[0].dest, 7u);
  ASSERT_EQ(out->children[0].children.size(), 1u);
  EXPECT_EQ(out->children[0].children[0].dest, 9u);

  // The self-contained (inline) encoding carries the same trace.
  auto inline_out = RoundTrip<PutChunkMsg>(msg);
  EXPECT_EQ(inline_out.trace, msg.trace);

  // PutFile's payload also rides as the attachment; same invariant.
  PutFileMsg put{SampleDecl(), Blob::FromString("tarball bytes"), {21u, 43u}};
  WireFrame put_wire = EncodeFrame(put);
  EXPECT_EQ(put_wire.attachment, put.payload);
  auto put_decoded =
      DecodeFrame(net::Frame{0, put_wire.payload, put_wire.attachment});
  ASSERT_TRUE(put_decoded.ok()) << put_decoded.status().ToString();
  auto* put_out = std::get_if<PutFileMsg>(&*put_decoded);
  ASSERT_NE(put_out, nullptr);
  EXPECT_EQ(put_out->trace, put.trace);
  EXPECT_EQ(put_out->payload, put.payload);
}

TEST(ProtocolTest, EmptyFrameRejected) {
  EXPECT_FALSE(DecodeMessage(Blob()).ok());
}

TEST(ProtocolTest, UnknownTagRejected) {
  ByteBuffer buffer;
  buffer.AppendByte(0xEF);
  EXPECT_EQ(DecodeMessage(Blob(std::move(buffer))).status().code(),
            ErrorCode::kDataLoss);
}

TEST(ProtocolTest, EveryTruncationRejected) {
  ExecuteTaskMsg msg;
  msg.task.id = 1;
  msg.task.function_name = "f";
  msg.task.args = Blob::FromString("abc");
  msg.task.inputs = {SampleDecl()};
  msg.task.inline_files.emplace_back(SampleDecl(), Blob::FromString("d"));
  const Blob full = EncodeMessage(msg);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> prefix(full.span().begin(),
                                     full.span().begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeMessage(Blob(std::move(prefix))).ok()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, BadEnumValuesRejected) {
  // Corrupt the file-kind byte of a PutFile frame.
  PutFileMsg msg{SampleDecl(), Blob::FromString("x"), {}};
  Blob blob = EncodeMessage(msg);
  std::vector<std::uint8_t> bytes(blob.span().begin(), blob.span().end());
  // Layout: tag(1) + name(8+8) + id(8+32) + size(8) + kind(1)...
  const std::size_t kind_offset = 1 + 8 + 8 + 8 + 32 + 8;
  bytes[kind_offset] = 0x99;
  EXPECT_FALSE(DecodeMessage(Blob(std::move(bytes))).ok());
}

// ---------------------------------------------------------------------------
// Table-driven malformed-frame sweep: every message type in the protocol,
// via the shared sample table (which the variant-size check keeps complete).
// ---------------------------------------------------------------------------

TEST(ProtocolTest, SampleTableCoversEveryMessageType) {
  ASSERT_EQ(testing::AllSampleMessages().size(), std::variant_size_v<Message>);
}

TEST(ProtocolTest, EveryMessageTypeRejectsEveryTruncation) {
  for (const Message& message : testing::AllSampleMessages()) {
    const Blob full = EncodeMessage(message);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      auto decoded = DecodeMessage(full.Slice(0, cut));
      EXPECT_FALSE(decoded.ok())
          << "message index " << message.index() << " cut=" << cut;
      if (decoded.ok()) break;
    }
  }
}

TEST(ProtocolTest, EveryMessageTypeRejectsTrailingGarbage) {
  for (const Message& message : testing::AllSampleMessages()) {
    const Blob full = EncodeMessage(message);
    std::vector<std::uint8_t> extended(full.span().begin(), full.span().end());
    extended.push_back(0x5A);
    auto decoded = DecodeMessage(Blob(std::move(extended)));
    EXPECT_FALSE(decoded.ok()) << "message index " << message.index();
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
    }
  }
}

TEST(ProtocolTest, EveryMessageSurvivesSingleByteCorruption) {
  // Flipping any one byte must never crash or overread; the decoder either
  // rejects the frame or produces some (different) well-formed message.
  for (const Message& message : testing::AllSampleMessages()) {
    const Blob full = EncodeMessage(message);
    for (std::size_t i = 0; i < full.size(); ++i) {
      std::vector<std::uint8_t> bytes(full.span().begin(), full.span().end());
      bytes[i] ^= 0xFF;
      (void)DecodeMessage(Blob(std::move(bytes)));  // must not UB
    }
  }
}

TEST(ProtocolTest, HugeBatchCountRejectedBeforeAllocation) {
  RunInvocationBatchMsg batch;
  batch.instance_id = 9;
  batch.items.push_back({21, 9, "g", Blob::FromString("a"), {}, {1u, 2u}});
  const Blob full = EncodeMessage(batch);
  std::vector<std::uint8_t> bytes(full.span().begin(), full.span().end());
  // Layout: tag(1) + instance_id(8) + item count(8).  A count of 2^64-1
  // must be rejected by the remaining-bytes clamp, not fed to reserve().
  for (std::size_t i = 0; i < 8; ++i) bytes[1 + 8 + i] = 0xFF;
  auto decoded = DecodeMessage(Blob(std::move(bytes)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

TEST(ProtocolTest, HugeDeclCountRejectedBeforeAllocation) {
  PushFileMsg msg{SampleDecl(), 42, {7u, 9u}};
  ExecuteTaskMsg task;
  task.task.id = 1;
  task.task.function_name = "f";
  task.task.args = Blob::FromString("a");
  const Blob full = EncodeMessage(task);
  std::vector<std::uint8_t> bytes(full.span().begin(), full.span().end());
  // Layout: tag(1) + id(8) + function_name(8 + 1) + args(8 + 1) +
  // decl count(8).  Poison the count.
  const std::size_t count_offset = 1 + 8 + 8 + 1 + 8 + 1;
  for (std::size_t i = 0; i < 8; ++i) bytes[count_offset + i] = 0xFF;
  auto decoded = DecodeMessage(Blob(std::move(bytes)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace vinelet::core
