// Quickstart: the paper's Figure 5 code sample, in vinelet.
//
// A user splits a computation into a context-setup function and an
// invocation function, creates a library for it, attaches a shared input
// file, installs the library, and submits FunctionCalls that only carry
// their arguments.
//
//   $ ./quickstart
#include <cstdio>

#include "common/log.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"

using namespace vinelet;
using serde::Value;

namespace {

/// The reusable context: a lookup table parsed once from an input file.
class TableContext final : public serde::FunctionContext {
 public:
  explicit TableContext(std::vector<std::int64_t> table)
      : table_(std::move(table)) {}
  std::uint64_t MemoryBytes() const override {
    return table_.size() * sizeof(std::int64_t);
  }
  const std::vector<std::int64_t>& table() const noexcept { return table_; }

 private:
  std::vector<std::int64_t> table_;
};

void RegisterFunctions(serde::FunctionRegistry& registry) {
  // def context_setup(...):  parse the dataset file into memory, once.
  serde::ContextSetupDef setup;
  setup.name = "table_setup";
  setup.fn = [](const Value&, const serde::InvocationEnv& env)
      -> Result<serde::ContextHandle> {
    const Blob& file = env.File("dataset.txt");
    std::vector<std::int64_t> table;
    std::int64_t current = 0;
    bool in_number = false;
    for (std::uint8_t byte : file.span()) {
      if (byte >= '0' && byte <= '9') {
        current = current * 10 + (byte - '0');
        in_number = true;
      } else if (in_number) {
        table.push_back(current);
        current = 0;
        in_number = false;
      }
    }
    if (in_number) table.push_back(current);
    std::printf("[worker] context setup: parsed %zu entries\n", table.size());
    return serde::ContextHandle(std::make_shared<TableContext>(table));
  };
  (void)registry.RegisterSetup(std::move(setup));

  // def f(i):  look up entry i in the retained table.
  serde::FunctionDef lookup;
  lookup.name = "lookup";
  lookup.setup_name = "table_setup";
  lookup.fn = [](const Value& args,
                 const serde::InvocationEnv& env) -> Result<Value> {
    const auto* ctx = dynamic_cast<const TableContext*>(env.context);
    if (ctx == nullptr)
      return FailedPreconditionError("no retained context (not running L3?)");
    const auto index = static_cast<std::size_t>(args.Get("i").AsInt());
    if (index >= ctx->table().size())
      return InvalidArgumentError("index out of range");
    return Value(ctx->table()[index]);
  };
  (void)registry.RegisterFunction(std::move(lookup));
}

}  // namespace

int main() {
  Log::SetLevel(LogLevel::kInfo);
  serde::FunctionRegistry registry;
  RegisterFunctions(registry);

  // manager = vine.Manager(...)
  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  core::Manager manager(network, manager_config);
  if (Status status = manager.Start(); !status.ok()) {
    std::printf("manager start failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Spawn two local workers (a tiny cluster).
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 2;
  factory_config.registry = &registry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(2, 30.0);

  // dataset_file = vine.File('dataset.txt', cache=True, peer_transfer=True)
  std::string dataset;
  for (int i = 0; i < 100; ++i) dataset += std::to_string(i * i) + "\n";
  storage::FileDecl dataset_decl = manager.DeclareBlob(
      "dataset.txt", Blob::FromString(dataset), storage::FileKind::kData,
      /*cache=*/true, /*peer_transfer=*/true);

  // library = manager.create_library_from_functions('lib', f, context=...)
  auto library = manager.CreateLibraryFromFunctions(
      "lib", {"lookup"}, "table_setup", Value());
  if (!library.ok()) {
    std::printf("create library failed: %s\n",
                library.status().ToString().c_str());
    return 1;
  }
  // library.add_input(dataset_file)
  manager.AddLibraryInput(*library, dataset_decl);
  // manager.install_library(library)
  (void)manager.InstallLibrary(*library);

  // for i in range(10): manager.submit(vine.FunctionCall('lib', 'f', i))
  std::vector<core::FuturePtr> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        manager.SubmitCall("lib", "lookup", Value::Dict({{"i", Value(i * 7)}})));
  }

  std::printf("results:");
  for (auto& future : futures) {
    auto outcome = future->Wait();
    if (!outcome.ok()) {
      std::printf("\ninvocation failed: %s\n",
                  outcome.status().ToString().c_str());
      return 1;
    }
    std::printf(" %lld", static_cast<long long>(outcome->value.AsInt()));
  }
  std::printf("\n");

  const auto metrics = manager.metrics();
  std::printf("invocations=%llu, libraries deployed=%llu, avg share=%.1f\n",
              static_cast<unsigned long long>(metrics.invocations_completed),
              static_cast<unsigned long long>(metrics.libraries_deployed),
              metrics.AvgShareValue());
  manager.Stop();
  factory.Stop();
  return 0;
}
