// LNNI example: the paper's large-scale neural-network-inference
// application at laptop scale, executed at all three context-reuse levels
// on the real threaded runtime, with measured wall-clock comparison.
//
//   L1 — every task re-ships the environment + weights and rebuilds the
//        model in memory;
//   L2 — environment + weights cached on the worker's disk, model still
//        rebuilt per invocation;
//   L3 — a library retains the built model; invocations carry arguments.
//
//   $ ./lnni_inference [invocations]
#include <cstdio>
#include <cstdlib>

#include "apps/lnni.hpp"
#include "common/clock.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"

using namespace vinelet;
using serde::Value;

namespace {

struct Cluster {
  std::shared_ptr<net::Network> network;
  std::unique_ptr<core::Manager> manager;
  std::unique_ptr<core::Factory> factory;
};

Cluster StartCluster(serde::FunctionRegistry& registry, std::size_t workers) {
  Cluster cluster;
  cluster.network = std::make_shared<net::Network>();
  core::ManagerConfig config;
  config.registry = &registry;
  cluster.manager = std::make_unique<core::Manager>(cluster.network, config);
  (void)cluster.manager->Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = workers;
  factory_config.registry = &registry;
  cluster.factory =
      std::make_unique<core::Factory>(cluster.network, factory_config);
  (void)cluster.factory->Start();
  (void)cluster.manager->WaitForWorkers(workers, 30.0);
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  const int invocations = argc > 1 ? std::atoi(argv[1]) : 60;
  const int inferences_per_invocation = 16;

  serde::FunctionRegistry registry;
  apps::LnniConfig lnni;
  lnni.dim = 64;
  lnni.layers = 3;
  lnni.build_passes = 24;  // the expensive deterministic "model build"
  if (Status status = apps::RegisterLnniFunctions(registry, lnni);
      !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const Blob weights = apps::MakeLnniWeightsBlob(lnni);
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.005));

  std::printf("LNNI at laptop scale: %d invocations x %d inferences, "
              "2 workers, ResNet50 stand-in (%zu-wide, %zu layers)\n",
              invocations, inferences_per_invocation, lnni.dim, lnni.layers);

  WallClock clock;
  double elapsed[3] = {0, 0, 0};
  double checksum[3] = {0, 0, 0};

  for (int level = 1; level <= 3; ++level) {
    Cluster cluster = StartCluster(registry, 2);
    core::Manager& manager = *cluster.manager;

    const bool cached = level >= 2;  // L1: inline every time
    auto env = analyzer.AnalyzeImports({"ml-inference"}).value();
    auto env_decl =
        manager.DeclareBlob("env", env.tarball,
                            storage::FileKind::kEnvironment, cached, true,
                            /*unpack=*/true);
    auto weights_decl = manager.DeclareBlob(
        lnni.weights_file, weights, storage::FileKind::kData, cached);

    if (level == 3) {
      auto spec = manager.CreateLibraryFromFunctions(
          "lnni", {"lnni_infer"}, "lnni_setup", Value());
      manager.AddLibraryInput(*spec, env_decl);
      manager.AddLibraryInput(*spec, weights_decl);
      spec->resources = core::Resources{16, 32 * 1024, 32 * 1024};
      spec->slots = 8;
      spec->exec_mode = core::ExecMode::kFork;
      (void)manager.InstallLibrary(*spec);
    }

    Stopwatch watch(clock);
    std::vector<core::FuturePtr> futures;
    for (int i = 0; i < invocations; ++i) {
      const Value args = Value::Dict(
          {{"count", Value(inferences_per_invocation)}, {"seed", Value(i)}});
      if (level == 3) {
        futures.push_back(manager.SubmitCall("lnni", "lnni_infer", args));
      } else {
        futures.push_back(manager.SubmitTask("lnni_infer", args,
                                             {env_decl, weights_decl},
                                             core::Resources{2, 4096, 4096}));
      }
    }
    (void)manager.WaitAll(600.0);
    elapsed[level - 1] = watch.Elapsed();
    for (auto& future : futures) {
      auto outcome = future->Wait();
      if (outcome.ok())
        checksum[level - 1] += outcome->value.Get("checksum").AsFloat();
    }
    const auto metrics = manager.metrics();
    std::printf(
        "  L%d: %.2f s  (tasks=%llu, invocations=%llu, mgr transfers=%llu, "
        "peer transfers=%llu)\n",
        level, elapsed[level - 1],
        static_cast<unsigned long long>(metrics.tasks_completed),
        static_cast<unsigned long long>(metrics.invocations_completed),
        static_cast<unsigned long long>(metrics.manager_transfers),
        static_cast<unsigned long long>(metrics.peer_transfers));
    manager.Stop();
    cluster.factory->Stop();
  }

  if (checksum[0] != checksum[1] || checksum[1] != checksum[2]) {
    std::printf("ERROR: results differ across levels!\n");
    return 1;
  }
  std::printf("\nAll levels computed identical results (checksum %.0f).\n",
              checksum[0]);
  std::printf("Execution-time reduction vs L1: L2 %.1f%%, L3 %.1f%% "
              "(paper at cluster scale: 55.1%% and 94.5%%).\n",
              100.0 * (1.0 - elapsed[1] / elapsed[0]),
              100.0 * (1.0 - elapsed[2] / elapsed[0]));
  return 0;
}
