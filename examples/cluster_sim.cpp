// Cluster-simulation example: run what-if experiments on the calibrated
// simulator — the tool that regenerates the paper's evaluation at scale.
//
// Sweeps the reuse level and worker count for an LNNI-style workload and
// prints a compact comparison, in seconds of virtual time (runs in
// milliseconds of real time).  Optionally dumps a per-invocation trace CSV
// for offline analysis.
//
//   $ ./cluster_sim [--invocations=5000] [--inferences=16] [--seed=1]
//                   [--churn-lifetime=0] [--trace-csv=/tmp/trace.csv]
#include <cstdio>
#include <fstream>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

using namespace vinelet;
using namespace vinelet::sim;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv, {"invocations", "inferences", "seed",
                                         "churn-lifetime", "trace-csv"});
  if (!flags.ok()) {
    std::printf("%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const auto invocations =
      static_cast<std::size_t>(flags->GetInt("invocations", 5000).value_or(5000));
  const int inferences =
      static_cast<int>(flags->GetInt("inferences", 16).value_or(16));
  const auto seed =
      static_cast<std::uint64_t>(flags->GetInt("seed", 1).value_or(1));
  const double churn_lifetime =
      flags->GetDouble("churn-lifetime", 0.0).value_or(0.0);

  const WorkloadCosts costs = LnniCosts(inferences);
  std::printf("Simulated LNNI: %zu invocations, %d inferences each\n",
              invocations, inferences);
  std::printf("%8s %12s %12s %12s\n", "workers", "L1 (s)", "L2 (s)",
              "L3 (s)");
  for (std::size_t workers : {25, 50, 100, 150}) {
    double makespans[3];
    for (int level = 1; level <= 3; ++level) {
      SimConfig config;
      config.level = static_cast<core::ReuseLevel>(level);
      config.cluster.num_workers = workers;
      config.seed = seed;
      config.worker_mean_lifetime_s = churn_lifetime;
      VineSim sim(config, BuildLnniWorkload(costs, invocations));
      makespans[level - 1] = sim.Run().makespan;
    }
    std::printf("%8zu %12.1f %12.1f %12.1f\n", workers, makespans[0],
                makespans[1], makespans[2]);
  }

  // A traced L3 run at 50 workers for closer inspection.
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 50;
  config.seed = seed;
  config.worker_mean_lifetime_s = churn_lifetime;
  config.track_series = true;
  config.track_trace = flags->Has("trace-csv");
  VineSim sim(config, BuildLnniWorkload(costs, invocations));
  const SimResult result = sim.Run();
  std::printf("\nL3 @ 50 workers: completed %llu/%zu, makespan %.1f s, "
              "worker deaths %llu, libraries deployed %llu (peak active "
              "%llu)\n",
              static_cast<unsigned long long>(result.invocations_completed),
              invocations, result.makespan,
              static_cast<unsigned long long>(result.worker_deaths),
              static_cast<unsigned long long>(result.libraries_deployed_total),
              static_cast<unsigned long long>(result.libraries_peak_active));

  if (flags->Has("trace-csv")) {
    const std::string path = flags->GetString("trace-csv");
    std::ofstream out(path);
    if (!out) {
      std::printf("cannot open %s\n", path.c_str());
      return 1;
    }
    out << TraceToCsv(result.trace);
    std::printf("wrote %zu trace rows to %s\n", result.trace.size(),
                path.c_str());
  }
  return 0;
}
