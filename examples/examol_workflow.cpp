// ExaMol example: the paper's molecular-design application at laptop scale.
//
// An active-learning loop over the function-call API: each round simulates
// a batch of candidate molecules (PM7 stand-in), retrains the surrogate on
// everything simulated so far, scores a large candidate pool, and picks the
// next batch from the surrogate's favorites.  Function contexts (the
// basis-set table) are retained by one library hosting all three function
// classes.  (See dag_pipeline.cpp for the mini-Parsl DAG layer.)
//
//   $ ./examol_workflow [rounds]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "apps/examol.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"

using namespace vinelet;
using serde::Value;
using serde::ValueList;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 4;
  const int batch_size = 16;
  const int pool_size = 400;

  serde::FunctionRegistry registry;
  apps::ExamolConfig chem;
  chem.feature_dim = 12;
  chem.optimize_steps = 120;
  if (Status status = apps::RegisterExamolFunctions(registry, chem);
      !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  core::Manager manager(network, manager_config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 2;
  factory_config.registry = &registry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(2, 30.0);

  // Discover + distribute + retain the chemistry context: one library
  // hosting all three functions, with the basis set as shared input data.
  auto basis_decl =
      manager.DeclareBlob(chem.basis_file, apps::MakeBasisSetBlob(chem),
                          storage::FileKind::kData, true, true);
  auto spec = manager.CreateLibraryFromFunctions(
      "examol", {"examol_simulate", "examol_train", "examol_infer"},
      "examol_setup", Value());
  if (!spec.ok()) {
    std::printf("library failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  manager.AddLibraryInput(*spec, basis_decl);
  spec->slots = 8;
  spec->exec_mode = core::ExecMode::kFork;
  (void)manager.InstallLibrary(*spec);

  std::set<std::int64_t> simulated;
  ValueList all_results;
  std::vector<std::int64_t> batch;
  for (int i = 0; i < batch_size; ++i) batch.push_back(i);
  double best_energy = 1e300;
  std::int64_t best_molecule = -1;

  for (int round = 0; round < rounds; ++round) {
    // 1. Simulate the current batch concurrently (function calls against
    //    the retained chemistry context).
    std::vector<core::FuturePtr> sims;
    for (std::int64_t molecule : batch) {
      if (simulated.contains(molecule)) continue;
      simulated.insert(molecule);
      sims.push_back(manager.SubmitCall(
          "examol", "examol_simulate",
          Value::Dict({{"molecule", Value(molecule)}})));
    }
    for (auto& future : sims) {
      auto outcome = future->Wait();
      if (!outcome.ok()) {
        std::printf("simulate failed: %s\n",
                    outcome.status().ToString().c_str());
        return 1;
      }
      const double energy = outcome->value.Get("energy").AsFloat();
      if (energy < best_energy) {
        best_energy = energy;
        best_molecule = outcome->value.Get("molecule").AsInt();
      }
      all_results.push_back(outcome->value);
    }

    // 2. Retrain the surrogate on everything so far.
    auto trained = manager
                       .SubmitCall("examol", "examol_train",
                                   Value::Dict({{"results",
                                                 Value(all_results)}}))
                       ->Wait();
    if (!trained.ok()) {
      std::printf("train failed: %s\n", trained.status().ToString().c_str());
      return 1;
    }

    // 3. Score the candidate pool; the surrogate's favorites become the
    //    next batch (the acquisition step).
    auto scored = manager
                      .SubmitCall("examol", "examol_infer",
                                  Value::Dict(
                                      {{"weights",
                                        trained->value.Get("weights")},
                                       {"pool_seed", Value(0)},
                                       {"pool", Value(pool_size)},
                                       {"top_k", Value(batch_size * 3)}}))
                      ->Wait();
    if (!scored.ok()) {
      std::printf("infer failed: %s\n", scored.status().ToString().c_str());
      return 1;
    }
    batch.clear();
    for (const auto& candidate : scored->value.Get("candidates").AsList()) {
      if (batch.size() >= static_cast<std::size_t>(batch_size)) break;
      if (!simulated.contains(candidate.AsInt()))
        batch.push_back(candidate.AsInt());
    }
    std::printf("round %d: %3zu molecules evaluated, best energy %.4f "
                "(molecule %lld)\n",
                round + 1, simulated.size(), best_energy,
                static_cast<long long>(best_molecule));
    if (batch.empty()) break;
  }

  const auto metrics = manager.metrics();
  std::printf("\ninvocations=%llu  libraries deployed=%llu  avg share "
              "value=%.1f\n",
              static_cast<unsigned long long>(metrics.invocations_completed),
              static_cast<unsigned long long>(metrics.libraries_deployed),
              metrics.AvgShareValue());
  manager.Stop();
  factory.Stop();
  return 0;
}
