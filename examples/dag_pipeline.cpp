// DAG pipeline example: the mini-Parsl layer over the Vinelet executor
// (the Parsl-TaskVineExecutor integration, paper §3.6).
//
// Builds a map-reduce-style DAG — a fan-out of "square" tasks feeding a
// tree of "sum" reducers — and lets the engine dispatch each node the
// moment its dependencies resolve.  Run in task mode (stateless) or, with
// a library installed, in invocation mode.
//
//   $ ./dag_pipeline [leaves]
#include <cstdio>
#include <cstdlib>

#include "core/factory.hpp"
#include "core/manager.hpp"
#include "dag/dag_engine.hpp"

using namespace vinelet;
using serde::Value;

namespace {

void RegisterFunctions(serde::FunctionRegistry& registry) {
  // DAG functions receive their materialized arguments as a Value::List.
  serde::FunctionDef square;
  square.name = "square";
  square.fn = [](const Value& args,
                 const serde::InvocationEnv&) -> Result<Value> {
    const double x = args.AsList().at(0).AsNumber();
    return Value(x * x);
  };
  (void)registry.RegisterFunction(std::move(square));

  serde::FunctionDef sum;
  sum.name = "sum";
  sum.fn = [](const Value& args,
              const serde::InvocationEnv&) -> Result<Value> {
    double total = 0;
    for (const auto& item : args.AsList()) total += item.AsNumber();
    return Value(total);
  };
  (void)registry.RegisterFunction(std::move(sum));
}

}  // namespace

int main(int argc, char** argv) {
  const int leaves = argc > 1 ? std::atoi(argv[1]) : 32;

  serde::FunctionRegistry registry;
  RegisterFunctions(registry);

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  core::Manager manager(network, manager_config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 2;
  factory_config.registry = &registry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(2, 30.0);

  // Invocation mode: a library retains the (trivial) context so every DAG
  // node runs as a FunctionCall instead of a full task.
  auto spec = manager.CreateLibraryFromFunctions("math", {"square", "sum"});
  spec->slots = 8;
  spec->exec_mode = core::ExecMode::kFork;
  spec->resources = core::Resources{16, 32 * 1024, 32 * 1024};
  (void)manager.InstallLibrary(*spec);

  dag::VineletExecutor executor(&manager);
  dag::DagEngine engine(&executor);
  dag::AppCall square_call;
  square_call.library = "math";
  square_call.function = "square";
  dag::AppCall sum_call;
  sum_call.library = "math";
  sum_call.function = "sum";

  // Fan out the squares...
  std::vector<dag::AppFuturePtr> layer;
  for (int i = 1; i <= leaves; ++i)
    layer.push_back(engine.Submit(square_call, {dag::Arg(Value(i))}));

  // ...and reduce pairwise until one node remains.
  while (layer.size() > 1) {
    std::vector<dag::AppFuturePtr> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(engine.Submit(
          sum_call, {dag::Arg(layer[i]), dag::Arg(layer[i + 1])}));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }

  auto result = layer.front()->Wait();
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const long long n = leaves;
  const long long expected = n * (n + 1) * (2 * n + 1) / 6;  // sum of squares
  std::printf("sum of squares 1..%d = %.0f (expected %lld)\n", leaves,
              result->AsNumber(), expected);
  std::printf("DAG nodes: %llu submitted, %llu completed; invocations "
              "executed remotely: %llu\n",
              static_cast<unsigned long long>(engine.nodes_submitted()),
              static_cast<unsigned long long>(engine.nodes_completed()),
              static_cast<unsigned long long>(
                  manager.metrics().invocations_completed));
  manager.Stop();
  factory.Stop();
  return result->AsNumber() == static_cast<double>(expected) ? 0 : 1;
}
