// Table 2: overhead of executing 1,000 simple functions under three modes —
// local invocation, remote task (context reloaded every execution), remote
// invocation (context retained by a library).
//
// Two reproductions are printed:
//  (a) the real threaded runtime at laptop scale (real wall-clock: the same
//      three modes, small payloads, one worker);
//  (b) the calibrated simulator at paper scale (virtual time, Table 2's
//      measured per-invocation constants).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace vinelet {
namespace {

using bench::Section;
using bench::Table;
using serde::InvocationEnv;
using serde::Value;

constexpr int kInvocations = 1000;

void RegisterAddFunction(serde::FunctionRegistry& registry) {
  serde::FunctionDef add;
  add.name = "tiny_add";
  add.imports = {"python"};
  add.fn = [](const Value& args, const InvocationEnv&) -> Result<Value> {
    return Value(args.Get("a").AsInt() + args.Get("b").AsInt());
  };
  (void)registry.RegisterFunction(add);
  serde::ContextSetupDef setup;
  setup.name = "tiny_setup";
  setup.fn = [](const Value&, const InvocationEnv&)
      -> Result<serde::ContextHandle> { return serde::ContextHandle(); };
  (void)registry.RegisterSetup(setup);
}

double RunLocal(serde::FunctionRegistry& registry) {
  WallClock clock;
  auto def = registry.FindFunction("tiny_add").value();
  InvocationEnv env;
  Stopwatch watch(clock);
  std::int64_t sink = 0;
  for (int i = 0; i < kInvocations; ++i) {
    auto result =
        def.fn(Value::Dict({{"a", Value(i)}, {"b", Value(1)}}), env);
    sink += result->AsInt();
  }
  std::printf("  (local checksum: %lld)\n", static_cast<long long>(sink));
  return watch.Elapsed();
}

struct RemoteResult {
  double total_s = 0;
  double startup_s = 0;
  double per_invocation_s = 0;
  std::uint64_t completed = 0;   // manager counter delta over the timed loop
  double mean_roundtrip_s = 0;   // roundtrip-histogram delta / completed
};

/// Reads (count, sum) of a roundtrip histogram so modes can difference
/// their own window out of the shared registry.
std::pair<std::uint64_t, double> HistogramTotals(
    telemetry::Telemetry& telemetry, const std::string& name) {
  const auto snapshot = telemetry.metrics.Snapshot();
  const auto* h = snapshot.HistogramFor(name);
  return h == nullptr ? std::pair<std::uint64_t, double>{0, 0.0}
                      : std::pair<std::uint64_t, double>{h->count, h->sum};
}

/// Remote task mode: every execution ships and reloads context (a small
/// poncho environment tarball rides inline with every task).
RemoteResult RunRemoteTasks(serde::FunctionRegistry& registry,
                            telemetry::Telemetry& telemetry) {
  auto network = std::make_shared<net::Network>();
  core::ManagerConfig config;
  config.registry = &registry;
  config.telemetry = &telemetry;
  core::Manager manager(network, config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 1;
  factory_config.registry = &registry;
  factory_config.telemetry = &telemetry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();

  WallClock clock;
  Stopwatch startup(clock);
  (void)manager.WaitForWorkers(1, 30.0);
  // A small environment that every L1 task re-ships and re-unpacks.
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(1e-4));
  auto env = analyzer.AnalyzeImports({"python"}).value();
  storage::FileDecl env_decl;
  {
    // Uncached (inline) environment: the L1 behaviour.
    env_decl = manager.DeclareBlob("env", env.tarball,
                                   storage::FileKind::kEnvironment,
                                   /*cache=*/false, true, /*unpack=*/true);
  }
  RemoteResult result;
  result.startup_s = startup.Elapsed();

  const auto [count_before, sum_before] =
      HistogramTotals(telemetry, "manager.task_roundtrip_s");
  Stopwatch watch(clock);
  std::vector<core::FuturePtr> futures;
  futures.reserve(kInvocations);
  for (int i = 0; i < kInvocations; ++i) {
    futures.push_back(manager.SubmitTask(
        "tiny_add", Value::Dict({{"a", Value(i)}, {"b", Value(1)}}),
        {env_decl}, core::Resources{1, 64, 64}));
  }
  (void)manager.WaitAll(600.0);
  result.total_s = watch.Elapsed() + result.startup_s;
  result.per_invocation_s = watch.Elapsed() / kInvocations;
  const auto [count_after, sum_after] =
      HistogramTotals(telemetry, "manager.task_roundtrip_s");
  result.completed = count_after - count_before;
  if (result.completed > 0)
    result.mean_roundtrip_s =
        (sum_after - sum_before) / static_cast<double>(result.completed);
  manager.Stop();
  factory.Stop();
  return result;
}

/// Remote invocation mode: context set up once in a library, invocations
/// carry only arguments.
RemoteResult RunRemoteInvocations(serde::FunctionRegistry& registry,
                                  telemetry::Telemetry& telemetry) {
  auto network = std::make_shared<net::Network>();
  core::ManagerConfig config;
  config.registry = &registry;
  config.telemetry = &telemetry;
  core::Manager manager(network, config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 1;
  factory_config.registry = &registry;
  factory_config.telemetry = &telemetry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();

  WallClock clock;
  Stopwatch startup(clock);
  (void)manager.WaitForWorkers(1, 30.0);
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(1e-4));
  auto spec = manager.CreateLibraryFromFunctions("tiny", {"tiny_add"},
                                                 "tiny_setup", Value(),
                                                 &analyzer);
  (void)manager.InstallLibrary(*spec);
  // First call forces library deployment; include it in startup.
  (void)manager.SubmitCall("tiny", "tiny_add",
                           Value::Dict({{"a", Value(0)}, {"b", Value(0)}}))
      ->Wait();
  RemoteResult result;
  result.startup_s = startup.Elapsed();

  const auto [count_before, sum_before] =
      HistogramTotals(telemetry, "manager.invocation_roundtrip_s");
  Stopwatch watch(clock);
  for (int i = 0; i < kInvocations; ++i) {
    manager.SubmitCall("tiny", "tiny_add",
                       Value::Dict({{"a", Value(i)}, {"b", Value(1)}}));
  }
  (void)manager.WaitAll(600.0);
  result.total_s = watch.Elapsed() + result.startup_s;
  result.per_invocation_s = watch.Elapsed() / kInvocations;
  const auto [count_after, sum_after] =
      HistogramTotals(telemetry, "manager.invocation_roundtrip_s");
  result.completed = count_after - count_before;
  if (result.completed > 0)
    result.mean_roundtrip_s =
        (sum_after - sum_before) / static_cast<double>(result.completed);
  manager.Stop();
  factory.Stop();
  return result;
}

/// Paper-scale reproduction on the calibrated simulator.  Returns
/// {total, per_invocation} with the one-time worker/context setup (the
/// paper's separate "Overhead per Worker" column, ~20 s) factored out by
/// differencing against a single-invocation run.
std::pair<double, double> RunSim(core::ReuseLevel level,
                                 const sim::WorkloadCosts& costs,
                                 telemetry::Telemetry* telemetry) {
  auto run = [&](std::size_t n) {
    sim::SimConfig config;
    config.level = level;
    config.cluster.num_workers = 1;
    config.seed = 7;
    config.telemetry = telemetry;
    sim::VineSim vinesim(config, sim::BuildLnniWorkload(costs, n));
    return vinesim.Run().makespan;
  };
  const double total = run(kInvocations);
  const double startup = run(1);
  return {total, (total - startup) / (kInvocations - 1)};
}

}  // namespace
}  // namespace vinelet

int main() {
  using namespace vinelet;
  std::printf("Reproduction of Table 2: overhead of executing 1,000 simple "
              "functions\n");

  serde::FunctionRegistry registry;
  RegisterAddFunction(registry);

  // One telemetry handle across the whole bench: the runtime modes share
  // its metrics registry, the simulator shares its tracer; VINELET_TRACE=1
  // exports BENCH_table2_overhead.trace.json / .metrics.json on exit.
  bench::TraceSession session("table2_overhead");
  bench::JsonReport report("table2_overhead");

  Section("(a) Real threaded runtime, laptop scale (wall clock)");
  const double local_s = RunLocal(registry);
  const RemoteResult task = RunRemoteTasks(registry, *session.telemetry());
  const RemoteResult invocation =
      RunRemoteInvocations(registry, *session.telemetry());
  {
    bench::Table table({"Mode", "Total (s)", "Startup (s)", "Per-invoc (s)",
                        "Completed", "Mean roundtrip (s)"});
    table.AddRow({"Local Invocation", FormatDouble(local_s, 6), "0",
                  FormatDouble(local_s / kInvocations, 9),
                  std::to_string(kInvocations), "-"});
    table.AddRow({"Remote Task", FormatDouble(task.total_s, 3),
                  FormatDouble(task.startup_s, 3),
                  FormatDouble(task.per_invocation_s, 6),
                  std::to_string(task.completed),
                  FormatDouble(task.mean_roundtrip_s, 6)});
    table.AddRow({"Remote Invocation", FormatDouble(invocation.total_s, 3),
                  FormatDouble(invocation.startup_s, 3),
                  FormatDouble(invocation.per_invocation_s, 6),
                  std::to_string(invocation.completed),
                  FormatDouble(invocation.mean_roundtrip_s, 6)});
    table.Print();
    std::printf("Completed and roundtrip columns come from the manager's "
                "telemetry counters/histograms; roundtrip includes queue "
                "wait behind the single worker.\n");
    std::printf("Shape check: remote-invocation per-invocation overhead is "
                "%.1fx lower than remote-task.\n",
                task.per_invocation_s / invocation.per_invocation_s);
    report.AddMeasured("local_per_invocation_s", local_s / kInvocations);
    report.Add("remote_task_per_invocation_s", 0.19, task.per_invocation_s);
    report.Add("remote_invocation_per_invocation_s", 0.00252,
               invocation.per_invocation_s);
    report.AddMeasured("remote_task_mean_roundtrip_s", task.mean_roundtrip_s);
    report.AddMeasured("remote_invocation_mean_roundtrip_s",
                       invocation.mean_roundtrip_s);
  }

  Section("(b) Calibrated simulator, paper scale (virtual time)");
  const sim::WorkloadCosts costs = sim::TrivialFunctionCosts();
  const auto [task_total, task_per] =
      RunSim(core::ReuseLevel::kL1, costs, session.telemetry());
  const auto [invoc_total, invoc_per] =
      RunSim(core::ReuseLevel::kL3, costs, session.telemetry());
  {
    bench::Table table({"Mode", "Paper total (s)", "Sim total (s)",
                        "Paper per-invoc (s)", "Sim per-invoc (s)"});
    table.AddRow({"Local Invocation", "8.89e-5", FormatDouble(local_s, 5),
                  "8.9e-8", FormatDouble(local_s / kInvocations, 9)});
    table.AddRow({"Remote Task", "211.06", FormatDouble(task_total, 2),
                  "0.19", FormatDouble(task_per, 4)});
    table.AddRow({"Remote Invocation", "22.46", FormatDouble(invoc_total, 2),
                  "0.00252", FormatDouble(invoc_per, 5)});
    table.Print();
    report.Add("sim_remote_task_total_s", 211.06, task_total);
    report.Add("sim_remote_invocation_total_s", 22.46, invoc_total);
  }
  report.Write();
  return 0;
}
