// Figure 3 ablation: the three context-distribution topologies.
// Sweeps worker count and per-worker fan-out cap N, reporting the broadcast
// makespan of a 572 MB context over 10 GbE (0.46 s per hop) under
// (a) manager-sequential, (b) peer spanning tree, (c) clustered (slow
// inter-cluster link).  This is the design-choice study behind §2.2.2/§3.3.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "storage/broadcast.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::storage;
  std::printf("Ablation of Figure 3: context-distribution topologies "
              "(572 MB context, 10 GbE => 0.46 s per transfer)\n");

  const double transfer_s = 572.0 * 1024 * 1024 / 1.25e9;

  bench::Section("Makespan vs worker count (fan-out N = 3)");
  {
    bench::Table table({"Workers", "(a) Sequential (s)",
                        "(b) Spanning tree (s)",
                        "(c) Clustered x2 (s)", "Tree speedup"});
    for (std::size_t workers : {10, 25, 50, 100, 150, 300}) {
      BroadcastParams seq{BroadcastMode::kSequential, workers, 3, 2};
      BroadcastParams tree{BroadcastMode::kSpanningTree, workers, 3, 2};
      BroadcastParams clustered{BroadcastMode::kClustered, workers, 3, 2};
      const double t_seq =
          EstimateMakespan(*PlanBroadcast(seq), seq, transfer_s);
      const double t_tree =
          EstimateMakespan(*PlanBroadcast(tree), tree, transfer_s);
      const double t_clustered =
          EstimateMakespan(*PlanBroadcast(clustered), clustered, transfer_s);
      table.AddRow({std::to_string(workers), FormatDouble(t_seq, 1),
                    FormatDouble(t_tree, 2), FormatDouble(t_clustered, 2),
                    FormatDouble(t_seq / t_tree, 1) + "x"});
    }
    table.Print();
  }

  bench::Section("Makespan vs fan-out cap N (150 workers, spanning tree)");
  {
    bench::Table table({"Fan-out N", "Rounds", "Makespan (s)"});
    for (unsigned fanout : {1, 2, 3, 4, 8, 16}) {
      BroadcastParams params{BroadcastMode::kSpanningTree, 150, fanout, 2};
      auto plan = PlanBroadcast(params);
      table.AddRow({std::to_string(fanout), std::to_string(plan->rounds),
                    FormatDouble(EstimateMakespan(*plan, params, transfer_s),
                                 2)});
    }
    table.Print();
    std::printf("Design note (§3.3): the cap exists to avoid creating a "
                "sink; N=3-4 already gets within a round of the optimum "
                "while bounding per-worker upload load.\n");
  }

  bench::Section("Clustered mode vs inter-cluster slowdown (150 workers)");
  {
    bench::Table table({"Inter-cluster slowdown", "Clustered (s)",
                        "Flat tree (s)"});
    BroadcastParams clustered{BroadcastMode::kClustered, 150, 3, 2};
    BroadcastParams tree{BroadcastMode::kSpanningTree, 150, 3, 2};
    auto clustered_plan = PlanBroadcast(clustered);
    // A cluster-oblivious tree evaluated on the same clustered network:
    // reuse the flat tree's schedule but charge its cross-cluster edges.
    auto oblivious_plan = PlanBroadcast(tree);
    oblivious_plan->mode = BroadcastMode::kClustered;
    for (double slowdown : {1.0, 2.0, 4.0, 8.0}) {
      table.AddRow(
          {FormatDouble(slowdown, 0) + "x",
           FormatDouble(EstimateMakespan(*clustered_plan, clustered,
                                         transfer_s, slowdown),
                        2),
           FormatDouble(EstimateMakespan(*oblivious_plan, clustered,
                                         transfer_s, slowdown),
                        2)});
    }
    table.Print();
    std::printf("Shape check: with a slow inter-cluster link, seeding each "
                "cluster once and broadcasting internally beats a flat "
                "tree's many cross-cluster hops.\n");
  }
  return 0;
}
