// Figure 3 ablation: the three context-distribution topologies, plus the
// chunk-level pipelined (cut-through) refinement of the spanning tree.
//
// Part 1 sweeps worker count and per-worker fan-out cap N, reporting the
// broadcast makespan of a 572 MB context over 10 GbE (0.46 s per hop) under
// (a) manager-sequential, (b) peer spanning tree, (c) clustered (slow
// inter-cluster link).  This is the design-choice study behind §2.2.2/§3.3.
//
// Part 2 sweeps the pipelined broadcast's chunk size and fan-out cap,
// cross-checking the pure planner's analytic makespan against the DES
// simulator's distribution makespan (SimResult::env_last_transfer_done_s),
// and replays a scaled-down broadcast on the real in-process runtime to
// confirm the cut-through ordering (deep workers receive chunks while
// shallow workers are still assembling).
//
// `--smoke` shrinks the real-runtime replay for CI; the analytic and
// simulated numbers are identical in both modes and are gated against
// bench/fig3_baseline.json by scripts/check_fig3_baseline.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "storage/broadcast.hpp"

namespace {

using namespace vinelet;

constexpr double kBlobBytes = 572.0 * 1024 * 1024;
constexpr double kWorkerLinkBps = 1.25e9;  // 10 GbE
constexpr std::size_t kSweepWorkers = 64;
constexpr unsigned kSweepFanout = 3;

std::string HumanBytes(std::uint64_t bytes) {
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
    return std::to_string(bytes >> 20) + " MB";
  if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
    return std::to_string(bytes >> 10) + " KB";
  return std::to_string(bytes) + " B";
}

/// Analytic makespan of the pipelined plan for the standard sweep cluster.
double AnalyticPipelinedS(std::size_t workers, unsigned fanout,
                          std::uint64_t chunk_bytes) {
  storage::BroadcastParams params{storage::BroadcastMode::kSpanningTree,
                                  workers, fanout, 2};
  storage::ChunkParams chunks{static_cast<std::uint64_t>(kBlobBytes),
                              chunk_bytes};
  auto plan = storage::PlanPipelinedBroadcast(params, chunks);
  return storage::EstimatePipelinedMakespan(*plan, chunks, kWorkerLinkBps,
                                            3 * kWorkerLinkBps);
}

/// Runs the DES simulator with the distribution-focused LNNI configuration
/// (negligible manager costs, no exec noise) and returns the virtual time
/// when the last environment transfer completed.  `chunk_bytes` 0 = whole
/// blob store-and-forward.
double SimDistributionS(std::size_t workers, unsigned fanout,
                        std::uint64_t chunk_bytes) {
  sim::WorkloadCosts costs = sim::LnniCosts(16);
  costs.manager_l2 = {1e-6, 1e-6};
  costs.exec_noise_sigma = 0.0;
  costs.straggler_prob = 0.0;
  costs.unpack_cpu_s = 0.1;
  sim::SimConfig config;
  config.level = core::ReuseLevel::kL2;
  config.cluster.num_workers = workers;
  config.cluster.manager_link_Bps = 3 * config.cluster.worker_link_Bps;
  config.env_fanout = fanout;
  config.env_chunk_bytes = chunk_bytes;
  std::vector<sim::InvocationSpec> specs(4 * workers,
                                         sim::InvocationSpec{&costs, 1.0, 0, 0.0, 0, {}});
  return sim::VineSim(config, std::move(specs)).Run().env_last_transfer_done_s;
}

/// One real-runtime broadcast: manager + factory over the in-process
/// network, chunked at `chunk_bytes` (pass the blob size for whole-blob
/// store-and-forward).  Reports wall time, transfer accounting, and the
/// cut-through signature extracted from the per-chunk telemetry spans: how
/// many workers finished assembling inside the deepest worker's own receive
/// window (strictly 0 for store-and-forward, most of the tree when chunks
/// flow cut-through).
struct RealRun {
  bool ok = false;
  double wall_ms = 0;
  std::uint64_t manager_transfers = 0;
  std::uint64_t chunks_relayed = 0;
  std::size_t overlapped_workers = 0;
};

RealRun RunRealBroadcast(std::size_t workers, std::size_t blob_bytes,
                         std::uint64_t chunk_bytes, unsigned fanout) {
  RealRun out;
  telemetry::Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.telemetry = &telemetry;
  core::Manager manager(network, manager_config);
  if (!manager.Start().ok()) return out;
  core::FactoryConfig factory_config;
  factory_config.initial_workers = workers;
  factory_config.telemetry = &telemetry;
  core::Factory factory(network, factory_config);
  if (!factory.Start().ok() || !manager.WaitForWorkers(workers, 30.0).ok()) {
    manager.Stop();
    factory.Stop();
    return out;
  }

  std::string text(blob_bytes, '\0');
  for (std::size_t i = 0; i < text.size(); ++i)
    text[i] = static_cast<char>('A' + (i * 37 + i / 409) % 53);
  const Blob data = Blob::FromString(std::move(text));
  const storage::FileDecl decl =
      manager.DeclareBlob("env-tarball", data, storage::FileKind::kData, true);

  const auto t0 = std::chrono::steady_clock::now();
  auto outcome = manager.BroadcastFile(decl, chunk_bytes, fanout)->Wait();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.ok = outcome.ok();
  out.manager_transfers = manager.metrics().manager_transfers;
  out.chunks_relayed =
      telemetry.metrics.GetCounter("worker.chunks_relayed").Value();

  // Per-worker chunk receive windows from the telemetry spans.
  std::map<std::string, std::pair<double, double>> windows;  // {first, last}
  for (const telemetry::SpanRecord& span : telemetry.tracer.Drain()) {
    if (span.category != "chunk") continue;
    auto [it, fresh] =
        windows.emplace(span.track, std::make_pair(span.start_s, span.end_s));
    if (!fresh) {
      it->second.first = std::min(it->second.first, span.start_s);
      it->second.second = std::max(it->second.second, span.end_s);
    }
  }
  double deep_first = 0, deep_last = 0;
  for (const auto& [track, window] : windows) {
    if (window.second > deep_last) {
      deep_first = window.first;
      deep_last = window.second;
    }
  }
  for (const auto& [track, window] : windows) {
    if (window.second >= deep_last) continue;  // the deepest worker itself
    if (window.second > deep_first) ++out.overlapped_workers;
  }

  manager.Stop();
  factory.Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vinelet;
  using namespace vinelet::storage;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("Ablation of Figure 3: context-distribution topologies "
              "(572 MB context, 10 GbE => 0.46 s per transfer)%s\n",
              smoke ? " [smoke]" : "");

  const double transfer_s = kBlobBytes / kWorkerLinkBps;
  bench::JsonReport report("fig3_distribution");

  bench::Section("Makespan vs worker count (fan-out N = 3)");
  {
    bench::Table table({"Workers", "(a) Sequential (s)",
                        "(b) Spanning tree (s)",
                        "(c) Clustered x2 (s)", "Tree speedup"});
    for (std::size_t workers : {10, 25, 50, 100, 150, 300}) {
      BroadcastParams seq{BroadcastMode::kSequential, workers, 3, 2};
      BroadcastParams tree{BroadcastMode::kSpanningTree, workers, 3, 2};
      BroadcastParams clustered{BroadcastMode::kClustered, workers, 3, 2};
      const double t_seq =
          EstimateMakespan(*PlanBroadcast(seq), seq, transfer_s);
      const double t_tree =
          EstimateMakespan(*PlanBroadcast(tree), tree, transfer_s);
      const double t_clustered =
          EstimateMakespan(*PlanBroadcast(clustered), clustered, transfer_s);
      table.AddRow({std::to_string(workers), FormatDouble(t_seq, 1),
                    FormatDouble(t_tree, 2), FormatDouble(t_clustered, 2),
                    FormatDouble(t_seq / t_tree, 1) + "x"});
    }
    table.Print();
  }

  bench::Section("Makespan vs fan-out cap N (150 workers, spanning tree)");
  {
    bench::Table table({"Fan-out N", "Rounds", "Makespan (s)"});
    for (unsigned fanout : {1, 2, 3, 4, 8, 16}) {
      BroadcastParams params{BroadcastMode::kSpanningTree, 150, fanout, 2};
      auto plan = PlanBroadcast(params);
      table.AddRow({std::to_string(fanout), std::to_string(plan->rounds),
                    FormatDouble(EstimateMakespan(*plan, params, transfer_s),
                                 2)});
    }
    table.Print();
    std::printf("Design note (§3.3): the cap exists to avoid creating a "
                "sink; N=3-4 already gets within a round of the optimum "
                "while bounding per-worker upload load.\n");
  }

  bench::Section("Clustered mode vs inter-cluster slowdown (150 workers)");
  {
    bench::Table table({"Inter-cluster slowdown", "Clustered (s)",
                        "Flat tree (s)"});
    BroadcastParams clustered{BroadcastMode::kClustered, 150, 3, 2};
    BroadcastParams tree{BroadcastMode::kSpanningTree, 150, 3, 2};
    auto clustered_plan = PlanBroadcast(clustered);
    // A cluster-oblivious tree evaluated on the same clustered network:
    // reuse the flat tree's schedule but charge its cross-cluster edges.
    auto oblivious_plan = PlanBroadcast(tree);
    oblivious_plan->mode = BroadcastMode::kClustered;
    for (double slowdown : {1.0, 2.0, 4.0, 8.0}) {
      table.AddRow(
          {FormatDouble(slowdown, 0) + "x",
           FormatDouble(EstimateMakespan(*clustered_plan, clustered,
                                         transfer_s, slowdown),
                        2),
           FormatDouble(EstimateMakespan(*oblivious_plan, clustered,
                                         transfer_s, slowdown),
                        2)});
    }
    table.Print();
    std::printf("Shape check: with a slow inter-cluster link, seeding each "
                "cluster once and broadcasting internally beats a flat "
                "tree's many cross-cluster hops.\n");
  }

  // -------------------------------------------------------------------------
  // Pipelined (cut-through) chunked broadcast: planner vs DES simulator.
  // Store-and-forward costs depth x blob_time; cut-through approaches
  // blob_time + depth x chunk_time.  The whole-blob sim baseline uses the
  // same cluster (manager on a 3x link, so each of the 3 roots is fed at
  // full worker line rate, matching the analytic model's root edges).
  // -------------------------------------------------------------------------
  const double whole_sim_s = SimDistributionS(kSweepWorkers, kSweepFanout, 0);

  bench::Section("Pipelined chunk-size sweep (64 workers, fan-out 3, "
                 "572 MB; sim vs analytic)");
  {
    bench::Table table({"Chunk", "Chunks", "Analytic (s)", "Sim (s)",
                        "Sim/Analytic", "Speedup vs whole-blob (sim)"});
    table.AddRow({"whole blob", "1", "-", FormatDouble(whole_sim_s, 2), "-",
                  "1.0x"});
    for (std::uint64_t chunk : {64ull << 20, 16ull << 20, 4ull << 20,
                                1ull << 20}) {
      const ChunkParams chunks{static_cast<std::uint64_t>(kBlobBytes), chunk};
      const double analytic_s =
          AnalyticPipelinedS(kSweepWorkers, kSweepFanout, chunk);
      const double sim_s = SimDistributionS(kSweepWorkers, kSweepFanout, chunk);
      table.AddRow({HumanBytes(chunk), std::to_string(ChunkCount(chunks)),
                    FormatDouble(analytic_s, 2), FormatDouble(sim_s, 2),
                    FormatDouble(sim_s / analytic_s, 3),
                    FormatDouble(whole_sim_s / sim_s, 2) + "x"});
      if (chunk == kDefaultChunkBytes) {
        report.AddMeasured("pipelined_analytic_makespan_s", analytic_s);
        report.AddMeasured("pipelined_sim_makespan_s", sim_s);
        report.AddMeasured("whole_blob_sim_makespan_s", whole_sim_s);
        report.AddMeasured("sim_over_analytic", sim_s / analytic_s);
        report.AddMeasured("whole_over_pipelined", whole_sim_s / sim_s);
      }
    }
    table.Print();
    std::printf("The default 4 MB chunk already sits on the flat part of "
                "the curve: makespan ~= blob_time + depth x chunk_time, so "
                "shrinking chunks further buys microseconds while "
                "multiplying per-chunk message overhead.\n");
  }

  bench::Section("Pipelined fan-out sweep (64 workers, 4 MB chunks)");
  {
    bench::Table table({"Fan-out N", "Tree depth", "Analytic (s)", "Sim (s)",
                        "Sim/Analytic"});
    for (unsigned fanout : {1u, 2u, 3u, 4u, 8u}) {
      BroadcastParams params{BroadcastMode::kSpanningTree, kSweepWorkers,
                             fanout, 2};
      const ChunkParams chunks{static_cast<std::uint64_t>(kBlobBytes),
                               kDefaultChunkBytes};
      auto plan = PlanPipelinedBroadcast(params, chunks);
      const double analytic_s =
          AnalyticPipelinedS(kSweepWorkers, fanout, kDefaultChunkBytes);
      const double sim_s =
          SimDistributionS(kSweepWorkers, fanout, kDefaultChunkBytes);
      table.AddRow({std::to_string(fanout), std::to_string(plan->depth),
                    FormatDouble(analytic_s, 2), FormatDouble(sim_s, 2),
                    FormatDouble(sim_s / analytic_s, 3)});
    }
    table.Print();
    std::printf("With cut-through relay the depth term costs chunks, not "
                "blobs, so even deep low-fan-out trees stay close to "
                "blob_time — the fan-out cap can stay small (bounded upload "
                "load) at almost no makespan cost.\n");
  }

  // -------------------------------------------------------------------------
  // Real runtime replay, scaled down: the in-process network has no
  // bandwidth model, so wall time is not the point — the ordering is.
  // Cut-through means deep workers receive chunks while shallow workers are
  // still assembling; store-and-forward never overlaps.
  // -------------------------------------------------------------------------
  bench::Section(smoke ? "Real runtime replay (8 workers, 2 MB blob)"
                       : "Real runtime replay (12 workers, 8 MB blob)");
  {
    const std::size_t workers = smoke ? 8 : 12;
    const std::size_t blob_bytes = smoke ? (2u << 20) : (8u << 20);
    const std::uint64_t chunk_bytes = smoke ? (64u << 10) : (128u << 10);
    const RealRun whole =
        RunRealBroadcast(workers, blob_bytes, blob_bytes, /*fanout=*/2);
    const RealRun pipelined =
        RunRealBroadcast(workers, blob_bytes, chunk_bytes, /*fanout=*/2);
    bench::Table table({"Mode", "Wall (ms)", "Manager sends",
                        "Peer chunk relays", "Workers overlapping deepest"});
    table.AddRow({"whole blob (store-and-forward)",
                  FormatDouble(whole.wall_ms, 1),
                  std::to_string(whole.manager_transfers),
                  std::to_string(whole.chunks_relayed),
                  std::to_string(whole.overlapped_workers)});
    table.AddRow({"pipelined " + HumanBytes(chunk_bytes) + " chunks",
                  FormatDouble(pipelined.wall_ms, 1),
                  std::to_string(pipelined.manager_transfers),
                  std::to_string(pipelined.chunks_relayed),
                  std::to_string(pipelined.overlapped_workers)});
    table.Print();
    if (!whole.ok || !pipelined.ok) {
      std::printf("ERROR: real-runtime broadcast failed\n");
      return 1;
    }
    std::printf("Ordering check: %zu of %zu workers completed inside the "
                "deepest worker's receive window under pipelining "
                "(store-and-forward: %zu) — the runtime exhibits the "
                "cut-through schedule, not sequential hops.  Both modes fed "
                "only the fan-out roots from the manager.\n",
                pipelined.overlapped_workers, workers - 1,
                whole.overlapped_workers);
    report.AddMeasured("real_pipelined_overlapped_workers",
                       static_cast<double>(pipelined.overlapped_workers));
    report.AddMeasured("real_whole_blob_overlapped_workers",
                       static_cast<double>(whole.overlapped_workers));
  }

  report.Write();
  return 0;
}
