// Figure 10: number of deployed libraries with respect to completed
// invocations (LNNI 100k, 150 workers, L3).  The paper's LNNI deployment
// gives every library one invocation slot, so 150 x 16 = 2,400 instances
// ramp up quickly; HTCondor-style worker churn then keeps cumulative
// deployments growing while the active count hovers near (but below) peak.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Figure 10: deployed libraries vs completed "
              "invocations (LNNI 100k, 150 workers, L3)\n");

  bench::TraceSession session("fig10_library_count");
  static const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 150;
  config.seed = 2024;
  config.track_series = true;
  config.telemetry = session.telemetry();
  // The paper's pool is HTCondor-managed: workers are preempted and
  // replaced throughout the run.
  config.worker_mean_lifetime_s = 600.0;
  config.worker_respawn_delay_s = 10.0;
  VineSim sim(config, BuildLnniWorkload(costs, 100000));
  const SimResult result = sim.Run();

  bench::Section("Active libraries vs invocations completed");
  for (const auto& point : result.active_libraries.Downsample(24)) {
    const int bar = static_cast<int>(point.value / 40.0);
    std::printf("%8.0f invocations | %5.0f libraries |", point.t, point.value);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  bench::Section("Summary");
  bench::Table table({"Metric", "Paper", "Measured"});
  table.AddRow({"Peak active libraries", "~2400 (150 x 16 slots)",
                std::to_string(result.libraries_peak_active)});
  table.AddRow({"Settled active libraries", "~2000",
                FormatDouble(result.active_libraries.points().back().value, 0)});
  table.AddRow({"Cumulative deployments", "grows over run",
                std::to_string(result.libraries_deployed_total)});
  table.AddRow({"Worker deaths (churn)", "(HTCondor preemption)",
                std::to_string(result.worker_deaths)});
  table.Print();
  std::printf("Shape check: quick ramp to ~2,400, then cumulative "
              "deployments keep growing under churn while active count "
              "settles lower.\n");
  return 0;
}
