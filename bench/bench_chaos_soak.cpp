// Chaos soak harness: fixed-seed fault schedules against both backends.
//
// For every seed the same FaultPlan drives (a) the real threaded runtime —
// a chunked broadcast, mixed task + library-call waves and an eviction
// drain, all under duplicate/delayed frames, injected worker-side failures,
// stragglers and abrupt worker kills — and (b) the DES backend, which
// replays the plan's worker-side faults in virtual time (twice, to prove
// bit-identical replay).  After each runtime soak the harness asserts the
// end-state invariants through Manager::CheckQuiescent(): every future
// resolved exactly once, every scheduler structure drained, gauges equal to
// their true values, and every retained blob still hash-verifies.
//
// Drop/corrupt probabilities stay 0 in soak plans: a dropped control frame
// below the manager's probe layer is *designed* to surface as a hang, and
// tests/chaos_test.cpp covers those paths with targeted cases instead.
//
// Usage: bench_chaos_soak [--smoke] [--seeds N]
//   --smoke    3 seeds, smaller waves (the CI chaos-smoke configuration)
//   --seeds N  run seeds 1..N (default 8)
// Exit status is non-zero when any seed fails an invariant — the CI gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "hash/content_id.hpp"
#include "net/fault.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace {

using namespace vinelet;
using bench::Section;
using bench::Table;
using serde::Value;

/// Minimal retained context for the soak library.
class NumberContext final : public serde::FunctionContext {
 public:
  explicit NumberContext(std::int64_t number) : number_(number) {}
  std::int64_t number() const noexcept { return number_; }
  std::uint64_t MemoryBytes() const override { return sizeof(*this); }

 private:
  std::int64_t number_;
};

void RegisterSoakFunctions(serde::FunctionRegistry& registry) {
  serde::FunctionDef sleepy;
  sleepy.name = "sleepy";
  sleepy.fn = [](const Value& args,
                 const serde::InvocationEnv&) -> Result<Value> {
    auto ms = args.GetInt("ms");
    if (!ms.ok()) return ms.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
    return Value(true);
  };
  (void)registry.RegisterFunction(sleepy);

  serde::ContextSetupDef setup;
  setup.name = "number_setup";
  setup.fn = [](const Value& args,
                const serde::InvocationEnv&) -> Result<serde::ContextHandle> {
    return serde::ContextHandle(
        std::make_shared<NumberContext>(args.Get("number").AsInt()));
  };
  (void)registry.RegisterSetup(setup);

  serde::FunctionDef use_context;
  use_context.name = "use_context";
  use_context.setup_name = "number_setup";
  use_context.fn = [](const Value& args,
                      const serde::InvocationEnv& env) -> Result<Value> {
    auto x = args.GetInt("x");
    if (!x.ok()) return x.status();
    const auto* ctx = dynamic_cast<const NumberContext*>(env.context);
    return Value(*x + (ctx != nullptr ? ctx->number() : 0));
  };
  (void)registry.RegisterFunction(use_context);
}

net::FaultPlan SoakPlan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.link.dup_p = 0.02;
  plan.link.delay_p = 0.05;
  plan.link.delay_min_s = 0.0005;
  plan.link.delay_max_s = 0.005;
  plan.worker.setup_failure_p = 0.05;
  plan.worker.invocation_failure_p = 0.02;
  plan.worker.task_failure_p = 0.02;
  plan.worker.straggler_p = 0.05;
  plan.worker.straggler_delay_s = 0.02;
  return plan;
}

struct RuntimeOutcome {
  std::size_t futures = 0;
  std::size_t succeeded = 0;
  bool resolved_once = true;   // every future resolved exactly once
  bool quiescent = false;      // CheckQuiescent settled clean
  bool stores_verified = true; // every cached blob hash-verifies
  std::uint64_t injected = 0;  // total faults the plan fired
  /// Affinity audit at quiescence: (library, worker) pairs left in the
  /// index and the warm-instance gauge (pairs <= instances when one worker
  /// hosts several instances of a library).  CheckQuiescent recomputes the
  /// table from the instance map, so reaching quiescent already proves no
  /// stale entry survived the kills; the counts go on the record here.
  std::size_t affinity_entries = 0;
  std::uint64_t affinity_warm = 0;
  std::string first_violation;
  double wall_s = 0;

  bool Pass() const {
    return resolved_once && quiescent && stores_verified && injected > 0;
  }
};

RuntimeOutcome RunRuntimeSoak(std::uint64_t seed, bool smoke) {
  const auto t0 = std::chrono::steady_clock::now();
  RuntimeOutcome out;

  serde::FunctionRegistry registry;
  RegisterSoakFunctions(registry);
  auto network = std::make_shared<net::Network>();
  auto fault = std::make_shared<net::FaultInjector>(SoakPlan(seed));
  network->SetFaultInjector(fault);

  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.max_attempts = 10;
  manager_config.broadcast_probe_s = 0.1;
  core::Manager manager(network, manager_config);
  if (!manager.Start().ok()) return out;
  fault->SetFlightRecorder(&manager.telemetry().flight);

  core::FactoryConfig factory_config;
  factory_config.initial_workers = 3;
  factory_config.worker_resources = core::Resources{4, 8 * 1024, 8 * 1024};
  factory_config.registry = &registry;
  factory_config.fault = fault;
  core::Factory factory(network, factory_config);
  if (!factory.Start().ok() || !manager.WaitForWorkers(3, 30.0).ok()) {
    fault->SetFlightRecorder(nullptr);
    manager.Stop();
    factory.Stop();
    return out;
  }

  std::vector<core::FuturePtr> futures;

  // Phase 1: worker churn during an active chunked broadcast.
  std::string text(smoke ? (256 << 10) : (1 << 20), '\0');
  for (std::size_t i = 0; i < text.size(); ++i)
    text[i] = static_cast<char>('a' + (i * 31 + seed) % 23);
  const storage::FileDecl decl =
      manager.DeclareBlob("model", Blob::FromString(std::move(text)),
                          storage::FileKind::kData, true);
  futures.push_back(
      manager.BroadcastFile(decl, /*chunk_bytes=*/32 * 1024, /*fanout_cap=*/2));
  (void)factory.KillWorker(factory.WorkerIds()[0]);
  (void)factory.SpawnWorker();

  // Phase 2: mixed task + invocation waves with one kill per wave.
  auto spec = manager.CreateLibraryFromFunctions(
      "numbers", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(100)}}));
  if (spec.ok()) {
    spec->resources = core::Resources{2, 1024, 1024};
    spec->slots = 2;
    spec->exec_mode = core::ExecMode::kFork;
    (void)manager.InstallLibrary(*spec);
  }
  const int waves = smoke ? 2 : 3;
  const int per_wave = smoke ? 4 : 8;
  for (int wave = 0; wave < waves; ++wave) {
    for (int i = 0; i < per_wave; ++i) {
      futures.push_back(manager.SubmitTask("sleepy",
                                           Value::Dict({{"ms", Value(10)}}),
                                           {}, core::Resources{1, 64, 64}));
      futures.push_back(manager.SubmitCall("numbers", "use_context",
                                           Value::Dict({{"x", Value(i)}})));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    const auto ids = factory.WorkerIds();
    if (!ids.empty()) {
      (void)factory.KillWorker(
          ids[(seed + static_cast<std::uint64_t>(wave)) % ids.size()]);
      (void)factory.SpawnWorker();
    }
  }

  // Phase 3: an eviction drain racing one more kill.
  auto spec_b = manager.CreateLibraryFromFunctions(
      "other", {"use_context"}, "number_setup",
      Value::Dict({{"number", Value(200)}}));
  if (spec_b.ok()) {
    spec_b->resources = core::Resources{2, 1024, 1024};
    spec_b->slots = 2;
    spec_b->exec_mode = core::ExecMode::kFork;
    (void)manager.InstallLibrary(*spec_b);
  }
  for (int i = 0; i < per_wave; ++i) {
    futures.push_back(manager.SubmitCall("other", "use_context",
                                         Value::Dict({{"x", Value(i)}})));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    const auto ids = factory.WorkerIds();
    if (!ids.empty()) {
      (void)factory.KillWorker(ids[seed % ids.size()]);
      (void)factory.SpawnWorker();
    }
  }

  const bool drained = manager.WaitAll(180.0).ok();
  out.futures = futures.size();
  for (const auto& future : futures) {
    if (!future->Ready() || future->resolutions() != 1) {
      out.resolved_once = false;
      continue;
    }
    if (future->Wait().ok()) ++out.succeeded;
  }
  if (!drained) out.resolved_once = false;

  // Poll the invariant audit until the cluster settles.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    auto report = manager.CheckQuiescent(5.0);
    if (report.ok()) {
      if (report->quiescent) {
        out.quiescent = true;
        out.affinity_entries = report->affinity_entries;
        out.affinity_warm = report->affinity_warm_gauge;
        break;
      }
      out.first_violation =
          report->violations.empty() ? "" : report->violations.front();
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Every blob every worker retained must still match its content hash.
  for (core::WorkerId id : factory.WorkerIds()) {
    core::Worker* worker = factory.GetWorker(id);
    if (worker == nullptr) continue;
    for (const auto& entry : worker->store().List()) {
      auto blob = worker->store().Get(entry.id);
      if (!blob.ok() || hash::ContentId::Of(*blob) != entry.id)
        out.stores_verified = false;
    }
  }

  out.injected = fault->stats().TotalInjected();
  fault->SetFlightRecorder(nullptr);
  manager.Stop();
  factory.Stop();
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  return out;
}

struct SimOutcome {
  double makespan = 0;
  bool deterministic = false;
  bool completed = false;
  std::uint64_t injected = 0;
  std::uint64_t deaths = 0;
  // Affinity leg: a skewed multi-library mix through the context-affinity
  // scheduler under the same worker-side plan, kills landing mid-run.
  double affinity_makespan = 0;
  std::uint64_t affinity_hits = 0;
  std::uint64_t affinity_steals = 0;
  std::uint64_t affinity_evicts = 0;
  bool affinity_deterministic = false;
  bool affinity_completed = false;

  bool Pass() const {
    return deterministic && completed && affinity_deterministic &&
           affinity_completed;
  }
};

SimOutcome RunSimSoak(std::uint64_t seed, bool smoke) {
  SimOutcome out;
  sim::SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 6;
  config.seed = 42;
  // Same plan shape as the runtime soak; link faults have no fluid-model
  // analogue, and the kill schedule replays at virtual-time stamps.
  config.fault = SoakPlan(seed);
  config.fault.kills.push_back({40.0, (seed % 6) + 1});
  config.fault.kills.push_back({60.0, (seed % 6) + 4});

  const std::size_t invocations = smoke ? 600 : 2000;
  const sim::WorkloadCosts costs = sim::LnniCosts(16);
  const sim::SimResult a =
      sim::VineSim(config, sim::BuildLnniWorkload(costs, invocations)).Run();
  const sim::SimResult b =
      sim::VineSim(config, sim::BuildLnniWorkload(costs, invocations)).Run();

  out.makespan = a.makespan;
  out.completed = a.invocations_completed == invocations &&
                  b.invocations_completed == invocations;
  out.deterministic =
      a.makespan == b.makespan && a.run_times == b.run_times &&
      a.injected_kills == b.injected_kills &&
      a.injected_setup_failures == b.injected_setup_failures &&
      a.injected_invocation_failures == b.injected_invocation_failures &&
      a.injected_stragglers == b.injected_stragglers;
  out.injected = a.injected_kills + a.injected_setup_failures +
                 a.injected_invocation_failures + a.injected_task_failures +
                 a.injected_stragglers;
  out.deaths = a.worker_deaths;

  // Affinity leg: the Zipf mix exercises the per-library queues, the
  // affinity index, threshold-gated stealing and the autoscaler — the kill
  // stamps land while warm instances still hold entries, so replay also
  // proves the index mutations themselves are deterministic.
  sim::SimConfig affinity_config;
  affinity_config.level = core::ReuseLevel::kL3;
  affinity_config.cluster.num_workers = 6;
  affinity_config.seed = 42;
  affinity_config.scheduler.policy = core::SchedulerPolicy::kAffinity;
  affinity_config.fault = SoakPlan(seed);
  affinity_config.fault.kills.push_back({10.0, (seed % 6) + 1});
  affinity_config.fault.kills.push_back({18.0, (seed % 6) + 4});

  const std::size_t zipf_invocations = smoke ? 400 : 1200;
  auto zipf = [&] {
    Rng rng(seed);
    return sim::BuildZipfWorkload(costs, zipf_invocations, /*num_libraries=*/12,
                                  /*s=*/1.1, /*exec_sigma=*/0.2,
                                  /*arrival_rate=*/0.0, rng);
  };
  const sim::SimResult c = sim::VineSim(affinity_config, zipf()).Run();
  const sim::SimResult d = sim::VineSim(affinity_config, zipf()).Run();

  out.affinity_makespan = c.makespan;
  out.affinity_hits = c.affinity_hits;
  out.affinity_steals = c.steals;
  out.affinity_evicts = c.autoscale_evicts;
  out.affinity_completed = c.invocations_completed == zipf_invocations &&
                           d.invocations_completed == zipf_invocations;
  out.affinity_deterministic =
      c.makespan == d.makespan && c.run_times == d.run_times &&
      c.affinity_hits == d.affinity_hits &&
      c.affinity_misses == d.affinity_misses && c.steals == d.steals &&
      c.autoscale_deploys == d.autoscale_deploys &&
      c.autoscale_evicts == d.autoscale_evicts &&
      c.injected_kills == d.injected_kills &&
      c.worker_deaths == d.worker_deaths;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seeds = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      seeds = 3;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  std::printf("Chaos soak: %llu seed(s), %s configuration\n",
              static_cast<unsigned long long>(seeds),
              smoke ? "smoke" : "full");
  bench::JsonReport report("chaos_soak");
  int failures = 0;

  Section("Real runtime: churn + injected faults, invariants via "
          "CheckQuiescent");
  Table runtime_table({"Seed", "Futures", "Succeeded", "Injected", "Once",
                       "Quiescent", "Affinity", "Stores", "Wall"});
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const RuntimeOutcome out = RunRuntimeSoak(seed, smoke);
    runtime_table.AddRow(
        {std::to_string(seed), std::to_string(out.futures),
         std::to_string(out.succeeded), std::to_string(out.injected),
         out.resolved_once ? "yes" : "NO", out.quiescent ? "yes" : "NO",
         std::to_string(out.affinity_entries) + "/" +
             std::to_string(out.affinity_warm),
         out.stores_verified ? "ok" : "CORRUPT",
         FormatDouble(out.wall_s, 2) + " s"});
    report.AddMeasured("runtime seed " + std::to_string(seed) + " pass",
                       out.Pass() ? 1.0 : 0.0);
    report.AddMeasured("runtime seed " + std::to_string(seed) + " injected",
                       static_cast<double>(out.injected));
    if (!out.Pass()) {
      ++failures;
      std::printf("  seed %llu FAILED%s%s\n",
                  static_cast<unsigned long long>(seed),
                  out.first_violation.empty() ? "" : ": ",
                  out.first_violation.c_str());
    }
  }
  runtime_table.Print();

  Section("DES mirror: same plan, virtual time, bit-identical replay "
          "(LNNI batch + Zipf affinity legs)");
  Table sim_table({"Seed", "Makespan", "Injected", "Deaths", "Deterministic",
                   "Complete", "Zipf makespan", "Hits", "Steals", "Evicts",
                   "Zipf det."});
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const SimOutcome out = RunSimSoak(seed, smoke);
    sim_table.AddRow({std::to_string(seed), FormatDouble(out.makespan, 1),
                      std::to_string(out.injected), std::to_string(out.deaths),
                      out.deterministic ? "yes" : "NO",
                      out.completed ? "yes" : "NO",
                      FormatDouble(out.affinity_makespan, 1),
                      std::to_string(out.affinity_hits),
                      std::to_string(out.affinity_steals),
                      std::to_string(out.affinity_evicts),
                      out.affinity_deterministic ? "yes" : "NO"});
    report.AddMeasured("sim seed " + std::to_string(seed) + " pass",
                       out.Pass() ? 1.0 : 0.0);
    if (!out.Pass()) ++failures;
  }
  sim_table.Print();

  report.Write();
  if (failures > 0) {
    std::printf("\nCHAOS SOAK FAILED: %d seed(s) violated invariants\n",
                failures);
    return 1;
  }
  std::printf("\nAll %llu seed(s) drained clean in both backends.\n",
              static_cast<unsigned long long>(seeds));
  return 0;
}
