// Shared helpers for the reproduction benches: table rendering and
// paper-vs-measured comparison rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace vinelet::bench {

/// Prints a boxed section header.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %s |", PadRight(cell, widths[c]).c_str());
      }
      std::printf("\n");
    };
    auto print_rule = [&] {
      std::printf("+");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "paper vs measured" convenience cell pair.
inline std::string Seconds(double s, int precision = 1) {
  return FormatDouble(s, precision) + " s";
}

inline std::string Percent(double fraction, int precision = 1) {
  return FormatDouble(fraction * 100.0, precision) + "%";
}

inline std::string Ratio(double paper, double measured) {
  if (paper <= 0) return "-";
  return FormatDouble(measured / paper, 2) + "x";
}

}  // namespace vinelet::bench
