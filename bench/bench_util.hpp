// Shared helpers for the reproduction benches: table rendering,
// paper-vs-measured comparison rows, machine-readable JSON reports, and an
// opt-in telemetry trace session (VINELET_TRACE=1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace vinelet::bench {

/// Prints a boxed section header.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %s |", PadRight(cell, widths[c]).c_str());
      }
      std::printf("\n");
    };
    auto print_rule = [&] {
      std::printf("+");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "paper vs measured" convenience cell pair.
inline std::string Seconds(double s, int precision = 1) {
  return FormatDouble(s, precision) + " s";
}

inline std::string Percent(double fraction, int precision = 1) {
  return FormatDouble(fraction * 100.0, precision) + "%";
}

inline std::string Ratio(double paper, double measured) {
  if (paper <= 0) return "-";
  return FormatDouble(measured / paper, 2) + "x";
}

/// Build-provenance stamps compiled into every bench binary (see the root
/// CMakeLists): the short git SHA of the checkout and the CMake build type.
inline constexpr const char* kGitSha =
#ifdef VINELET_GIT_SHA
    VINELET_GIT_SHA;
#else
    "unknown";
#endif
inline constexpr const char* kBuildType =
#ifdef VINELET_BUILD_TYPE
    VINELET_BUILD_TYPE;
#else
    "unknown";
#endif

/// FNV-1a 64-bit over an arbitrary config description; benches fingerprint
/// their effective knobs so scripts/compare_bench.py refuses to diff runs
/// of different shapes.
inline std::uint64_t FingerprintConfig(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Machine-readable companion to the printed tables: accumulates
/// paper-vs-measured entries and writes them as `BENCH_<name>.json` next to
/// the binary's working directory.  Every report is stamped with the git
/// SHA, build type, and (when SetConfig was called) a fingerprint of the
/// bench's effective configuration.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Describes the effective configuration (any stable serialization of the
  /// knobs that shape the run, e.g. "workers=20 invocations=500 smoke=1").
  /// The description and its FNV-1a fingerprint are stamped top-level.
  void SetConfig(std::string description) {
    config_ = std::move(description);
  }

  /// A paper-vs-measured comparison row; ratio is derived.
  void Add(const std::string& metric, double paper, double measured) {
    entries_.push_back({metric, paper, measured, /*has_paper=*/true});
  }

  /// A measured-only row (no paper reference value).
  void AddMeasured(const std::string& metric, double measured) {
    entries_.push_back({metric, 0.0, measured, /*has_paper=*/false});
  }

  /// Writes BENCH_<name>.json; prints the path (or the error) to stdout.
  void Write() const {
    std::string json = "{\"bench\":\"" + telemetry::JsonEscape(name_) +
                       "\",\"git_sha\":\"" + telemetry::JsonEscape(kGitSha) +
                       "\",\"build_type\":\"" +
                       telemetry::JsonEscape(kBuildType) + "\"";
    if (!config_.empty()) {
      json += ",\"config\":\"" + telemetry::JsonEscape(config_) +
              "\",\"config_fingerprint\":\"" +
              ToHex(FingerprintConfig(config_)) + "\"";
    }
    json += ",\"entries\":[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (i > 0) json += ",";
      json += "{\"metric\":\"" + telemetry::JsonEscape(e.metric) + "\"";
      if (e.has_paper) {
        json += ",\"paper\":" + FormatDouble(e.paper, 9);
        if (e.paper > 0)
          json += ",\"ratio\":" + FormatDouble(e.measured / e.paper, 6);
      }
      json += ",\"measured\":" + FormatDouble(e.measured, 9) + "}";
    }
    json += "]}\n";
    const std::string path = "BENCH_" + name_ + ".json";
    const Status status = telemetry::WriteStringToFile(path, json);
    if (status.ok()) {
      std::printf("[report] wrote %s (%zu entries)\n", path.c_str(),
                  entries_.size());
    } else {
      std::printf("[report] failed to write %s: %s\n", path.c_str(),
                  status.ToString().c_str());
    }
  }

 private:
  struct Entry {
    std::string metric;
    double paper = 0;
    double measured = 0;
    bool has_paper = false;
  };

  static std::string ToHex(std::uint64_t value) {
    char out[24];
    std::snprintf(out, sizeof(out), "%016llx",
                  static_cast<unsigned long long>(value));
    return out;
  }

  std::string name_;
  std::string config_;
  std::vector<Entry> entries_;
};

/// Opt-in tracing for a bench run: when VINELET_TRACE is set (non-empty,
/// not "0"), the owned Telemetry's tracer is enabled, and Finish() (or the
/// destructor) writes `BENCH_<name>.trace.json` (Chrome trace_event, loadable
/// in Perfetto / chrome://tracing) and `BENCH_<name>.metrics.json`.  Pass
/// `telemetry()` into ManagerConfig/FactoryConfig/SimConfig; the pointer is
/// valid whether or not tracing is on, so benches wire it unconditionally.
class TraceSession {
 public:
  explicit TraceSession(std::string name) : name_(std::move(name)) {
    const char* env = std::getenv("VINELET_TRACE");
    enabled_ = env != nullptr && *env != '\0' &&
               std::string_view(env) != "0";
    telemetry_.tracer.SetEnabled(enabled_);
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession() { Finish(); }

  bool enabled() const { return enabled_; }
  telemetry::Telemetry* telemetry() { return &telemetry_; }

  void Finish() {
    if (!enabled_ || finished_) return;
    finished_ = true;
    const std::vector<telemetry::SpanRecord> spans = telemetry_.tracer.Drain();
    const std::string trace_path = "BENCH_" + name_ + ".trace.json";
    const Status trace_status = telemetry::WriteStringToFile(
        trace_path, telemetry::ToChromeTrace(spans, "vinelet:" + name_));
    const std::string metrics_path = "BENCH_" + name_ + ".metrics.json";
    const Status metrics_status = telemetry::WriteStringToFile(
        metrics_path, telemetry::MetricsToJson(telemetry_.metrics.Snapshot()));
    if (trace_status.ok() && metrics_status.ok()) {
      std::printf("[trace] wrote %s (%zu spans) and %s\n", trace_path.c_str(),
                  spans.size(), metrics_path.c_str());
    } else {
      std::printf("[trace] export failed: %s / %s\n",
                  trace_status.ToString().c_str(),
                  metrics_status.ToString().c_str());
    }
  }

 private:
  std::string name_;
  bool enabled_ = false;
  bool finished_ = false;
  telemetry::Telemetry telemetry_;
};

}  // namespace vinelet::bench
