// Ablation of §3.5.2's library-sizing strategies: "to run 8 invocations
// concurrently on a 32-core worker ... one can set the library to occupy
// the whole worker node and set the number of invocation slots to 8.  An
// alternative strategy is to set each library to use 4 cores and have 1
// invocation slot."
//
// Sweeps invocation slots per library instance for the LNNI workload:
// one-slot libraries (the paper's deployment) pay the in-memory context
// setup once per slot but isolate invocations; whole-worker libraries pay
// it once per worker but share one context among all slots.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Ablation: invocation slots per library (LNNI 20k "
              "invocations, 150 workers, L3)\n");

  bench::TraceSession session("ablation_library_slots");
  static const WorkloadCosts costs = LnniCosts(16);
  bench::Table table({"Slots/library", "Libraries deployed", "Peak active",
                      "Setup CPU paid (s)", "Makespan (s)"});
  for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    SimConfig config;
    config.level = core::ReuseLevel::kL3;
    config.cluster.num_workers = 150;
    config.seed = 2024;
    config.library_slots = k;
    config.telemetry = session.telemetry();
    VineSim sim(config, BuildLnniWorkload(costs, 20000));
    const SimResult result = sim.Run();
    table.AddRow(
        {std::to_string(k),
         std::to_string(result.libraries_deployed_total),
         std::to_string(result.libraries_peak_active),
         FormatDouble(static_cast<double>(result.libraries_deployed_total) *
                          costs.context_setup_cpu_s,
                      0),
         FormatDouble(result.makespan, 1)});
  }
  table.Print();
  std::printf(
      "Trade-off: fewer, larger libraries cut total context-setup CPU "
      "%ux but serialize the worker's cold start behind one setup and "
      "share one mutable context among concurrent invocations (only safe "
      "'if permitted by the application', §2.2.3).  For LNNI's cheap 2.7 s "
      "setup the makespan difference is small — the paper's one-slot "
      "deployment buys isolation nearly for free.\n",
      16u);
  return 0;
}
