// Figure 6: execution time of the evaluation applications under different
// levels of context reuse, at the paper's scale on the calibrated simulator.
//
//  6a: LNNI, 100k invocations, 150 workers, L1/L2/L3
//  6b: ExaMol, 10k invocations, 150 workers, L1/L2
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace {

using namespace vinelet;
using namespace vinelet::sim;

// Set from main's TraceSession; VINELET_TRACE=1 records every run's
// virtual-time phase spans into BENCH_fig6_execution_time.trace.json.
telemetry::Telemetry* g_telemetry = nullptr;

SimResult RunLnni(core::ReuseLevel level, std::size_t invocations,
                  std::size_t workers) {
  SimConfig config;
  config.level = level;
  config.cluster.num_workers = workers;
  config.seed = 2024;
  config.telemetry = g_telemetry;
  static const WorkloadCosts costs = LnniCosts(16);
  VineSim sim(config, BuildLnniWorkload(costs, invocations));
  return sim.Run();
}

SimResult RunExamol(core::ReuseLevel level, std::size_t invocations,
                    std::size_t workers) {
  SimConfig config;
  config.level = level;
  config.cluster.num_workers = workers;
  config.seed = 2024;
  config.telemetry = g_telemetry;
  static const WorkloadCosts simulate = ExamolSimulateCosts();
  static const WorkloadCosts train = ExamolTrainCosts();
  static const WorkloadCosts infer = ExamolInferCosts();
  Rng rng(99);
  VineSim sim(config,
              BuildExamolWorkload(simulate, train, infer, invocations, rng));
  return sim.Run();
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 6: execution time with different "
              "levels of context reuse (150 workers)\n");
  bench::TraceSession session("fig6_execution_time");
  g_telemetry = session.telemetry();
  bench::JsonReport report("fig6_execution_time");

  bench::Section("Fig 6a: LNNI, 100,000 invocations");
  const SimResult lnni_l1 = RunLnni(core::ReuseLevel::kL1, 100000, 150);
  const SimResult lnni_l2 = RunLnni(core::ReuseLevel::kL2, 100000, 150);
  const SimResult lnni_l3 = RunLnni(core::ReuseLevel::kL3, 100000, 150);
  {
    bench::Table table({"Level", "Paper (s)", "Measured (s)",
                        "Paper cut vs L1", "Measured cut vs L1"});
    const double m1 = lnni_l1.makespan;
    table.AddRow({"L1", "7485", FormatDouble(m1, 0), "-", "-"});
    table.AddRow({"L2", "~3361", FormatDouble(lnni_l2.makespan, 0), "55.1%",
                  bench::Percent(1.0 - lnni_l2.makespan / m1)});
    table.AddRow({"L3", "414", FormatDouble(lnni_l3.makespan, 0), "94.5%",
                  bench::Percent(1.0 - lnni_l3.makespan / m1)});
    table.Print();
    std::printf("L3 vs L2 improvement: paper 87.7%%, measured %s\n",
                bench::Percent(1.0 - lnni_l3.makespan / lnni_l2.makespan)
                    .c_str());
    report.Add("lnni_l1_makespan_s", 7485, m1);
    report.Add("lnni_l2_makespan_s", 3361, lnni_l2.makespan);
    report.Add("lnni_l3_makespan_s", 414, lnni_l3.makespan);
  }

  bench::Section("Fig 6b: ExaMol, 10,000 invocations");
  const SimResult ex_l1 = RunExamol(core::ReuseLevel::kL1, 10000, 150);
  const SimResult ex_l2 = RunExamol(core::ReuseLevel::kL2, 10000, 150);
  {
    bench::Table table({"Level", "Paper (s)", "Measured (s)",
                        "Paper cut vs L1", "Measured cut vs L1"});
    table.AddRow({"L1", "4600", FormatDouble(ex_l1.makespan, 0), "-", "-"});
    table.AddRow({"L2", "3364", FormatDouble(ex_l2.makespan, 0), "26.9%",
                  bench::Percent(1.0 - ex_l2.makespan / ex_l1.makespan)});
    table.Print();
    report.Add("examol_l1_makespan_s", 4600, ex_l1.makespan);
    report.Add("examol_l2_makespan_s", 3364, ex_l2.makespan);
  }

  bench::Section("Run diagnostics");
  {
    bench::Table table({"Run", "Manager util", "Env mgr xfers",
                        "Env peer xfers", "Mean run time (s)"});
    auto row = [&](const char* name, const SimResult& r) {
      table.AddRow({name, bench::Percent(r.manager_utilization),
                    std::to_string(r.env_manager_transfers),
                    std::to_string(r.env_peer_transfers),
                    FormatDouble(r.run_time.mean(), 2)});
    };
    row("LNNI L1", lnni_l1);
    row("LNNI L2", lnni_l2);
    row("LNNI L3", lnni_l3);
    row("ExaMol L1", ex_l1);
    row("ExaMol L2", ex_l2);
    table.Print();
  }
  report.Write();
  return 0;
}
