// Table 5: overhead breakdown of LNNI invocations with L2 and L3 context
// reuse (manager and worker on the same machine, no interference).
//
// Three reproductions:
//  (a) calibrated-model breakdown at paper scale (the four phases computed
//      from the cost model, uncontended);
//  (b) the real threaded runtime at laptop scale: phase spans recorded by
//      the telemetry tracer for L2-cold, L2-hot, L3-library and
//      L3-invocation, aggregated into Table 5's columns;
//  (c) the simulator at paper scale: the same span names stamped in virtual
//      time, rendered through the same AggregatePhases code path.
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

#include "apps/lnni.hpp"
#include "bench/bench_util.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "poncho/analyzer.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace vinelet;
using bench::Section;
using bench::Table;
using serde::Value;
using telemetry::AggregatePhases;
using telemetry::PhaseTotals;
using telemetry::SpanRecord;

std::string Sec(double v) {
  if (v > 0 && v < 0.01) {
    char out[32];
    std::snprintf(out, sizeof(out), "%.2e", v);
    return out;
  }
  return FormatDouble(v, 3);
}

void AddBreakdownRow(Table& table, const std::string& label,
                     const PhaseTotals& totals, bool exec_na = false) {
  table.AddRow({label, Sec(totals.TransferColumn()), Sec(totals.WorkerColumn()),
                Sec(totals.ContextColumn()),
                exec_na ? "N/A" : Sec(totals.ExecColumn())});
}

void PaperScaleModel() {
  const sim::WorkloadCosts costs = sim::LnniCosts(16);
  const double link_Bps = 1.25e9;                 // 10 GbE
  const double weights_bytes = 98.0 * 1024 * 1024;  // ResNet50 parameters
  const double transfer_cold =
      (costs.env_packed_bytes + weights_bytes) / link_Bps;
  const double local_read_s = costs.l2_local_bytes / 550e6;

  Table table({"Phase", "Invoc&Data Transfer", "Worker Overhead",
               "Library/Invoc Overhead", "Exec Time"});
  table.AddRow({"L2 (Cold)  paper", "1.004", "15.435", "0.403", "5.469"});
  table.AddRow({"L2 (Cold)  model", Sec(transfer_cold), Sec(costs.unpack_cpu_s),
                Sec(costs.deserialize_s),
                Sec(local_read_s + costs.context_rebuild_cpu_s +
                    costs.exec_cpu_s)});
  table.AddRow({"L2 (Hot)   paper", "5.22e-4", "1.18e-3", "0.327", "5.046"});
  table.AddRow({"L2 (Hot)   model", Sec(2e-4), Sec(1e-3),
                Sec(costs.deserialize_s),
                Sec(local_read_s + costs.context_rebuild_cpu_s +
                    costs.exec_cpu_s)});
  table.AddRow({"L3 (Library) paper", "0.989", "15.251", "2.729", "N/A"});
  table.AddRow({"L3 (Library) model", Sec(transfer_cold),
                Sec(costs.unpack_cpu_s), Sec(costs.context_setup_cpu_s),
                "N/A"});
  table.AddRow({"L3 (Invoc.) paper", "2.34e-4", "2.75e-4", "5.14e-4",
                "3.079"});
  table.AddRow({"L3 (Invoc.) model", Sec(1e-4), Sec(1e-4),
                Sec(costs.invocation_overhead_s), Sec(costs.exec_cpu_s)});
  table.Print();
  std::printf("Key deltas preserved: ~2 s of exec at L2 is the context "
              "rebuild L3 hoists into its 2.7 s one-time setup; the L3 "
              "per-invocation overhead is orders of magnitude below L2's.\n");
}

/// Aggregates one measurement window: everything except per-file transfer
/// spans (category "file"), whose time is already covered by the task-level
/// "transfer" wait span — counting both would double the transfer column.
PhaseTotals TaskView(const std::vector<SpanRecord>& spans) {
  return AggregatePhases(
      spans, [](const SpanRecord& s) { return s.category != "file"; });
}

/// Partitions a drained span stream into causal traces.  Trace ids are
/// allocated at submit time, so map order == submission order; untraced
/// spans (startup noise, background chatter) fall out naturally.
std::map<std::uint64_t, std::vector<SpanRecord>> GroupByTrace(
    const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  for (const auto& span : spans) {
    if (span.trace_id != 0) traces[span.trace_id].push_back(span);
  }
  return traces;
}

bool TraceHasPhase(const std::vector<SpanRecord>& spans,
                   std::string_view name) {
  for (const auto& span : spans) {
    if (span.name == name) return true;
  }
  return false;
}

/// Library-deployment window: setup phases come from the library runtime
/// (category "library"); its context transfer is only visible as per-file
/// spans, so the transfer column aggregates those.
PhaseTotals LibraryView(const std::vector<SpanRecord>& spans) {
  PhaseTotals totals = AggregatePhases(
      spans, [](const SpanRecord& s) { return s.category == "library"; });
  const PhaseTotals files = AggregatePhases(
      spans, [](const SpanRecord& s) { return s.category == "file"; });
  totals.transfer_s += files.transfer_s;
  return totals;
}

/// Cross-checks the CriticalPathAnalyzer's per-phase blame against the
/// AggregatePhases sums over the same span set: both are normalized to
/// phase *shares* (blame over its attributed, non-idle seconds; the
/// aggregate over its eight-phase sum) and every lifecycle phase must
/// agree within 5 share-points.  Both sides see the identical filtered
/// vector, so the only source of disagreement is intra-trace span overlap:
/// the analyzer attributes each instant once (latest-started covering
/// span) while the aggregate sums full durations.  Callers pick the filter
/// that makes spans (near-)disjoint within a trace: the threaded runtime
/// drops per-file and admission spans — both are sub-measurements of the
/// window the task-level transfer span already covers — while the
/// simulator keeps its file spans (the env fetch/unpack spans are the only
/// record of that time and overlap nothing).  The remaining tolerance
/// absorbs one known hierarchy on the runtime: the first invocation's
/// dispatch (queue-wait) span umbrellas the library install it triggered,
/// which blame attributes to the install phases but the aggregate also
/// counts as dispatch.  Returns false (and the bench exits non-zero) on
/// disagreement — the blame report is only useful if it reproduces the
/// established breakdown.
bool CrossCheckBlame(const std::vector<SpanRecord>& spans,
                     bool include_file_spans, const std::string& label,
                     bench::JsonReport& report) {
  std::vector<SpanRecord> traced;
  traced.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    if (span.trace_id == 0) continue;
    if (!include_file_spans &&
        (span.category == "file" || span.category == "admission")) {
      continue;
    }
    traced.push_back(span);
  }
  const telemetry::BlameReport blame =
      telemetry::CriticalPathAnalyzer().Analyze(traced);
  const PhaseTotals agg = AggregatePhases(traced);
  const double agg_total = agg.submit_s + agg.dispatch_s + agg.transfer_s +
                           agg.unpack_s + agg.context_setup_s +
                           agg.deserialize_s + agg.exec_s + agg.result_s;
  const double blame_total =
      blame.total_makespan_s - blame.PhaseSeconds(telemetry::kIdlePhase);
  const std::pair<const char*, double> phases[] = {
      {"submit", agg.submit_s},
      {"dispatch", agg.dispatch_s},
      {"transfer", agg.transfer_s},
      {"unpack", agg.unpack_s},
      {"context-setup", agg.context_setup_s},
      {"deserialize", agg.deserialize_s},
      {"exec", agg.exec_s},
      {"result", agg.result_s}};
  double max_delta = 0.0;
  const char* worst_phase = "";
  for (const auto& [name, agg_s] : phases) {
    const double agg_share = agg_total > 0 ? agg_s / agg_total : 0.0;
    const double blame_share =
        blame_total > 0 ? blame.PhaseSeconds(name) / blame_total : 0.0;
    const double delta = std::abs(agg_share - blame_share);
    if (delta > max_delta) {
      max_delta = delta;
      worst_phase = name;
    }
  }
  const bool ok = max_delta <= 0.05;
  std::printf("  %s: blame vs aggregate over %zu trace(s): max share delta "
              "%.4f (%s) -> %s\n",
              label.c_str(), blame.traces, max_delta, worst_phase,
              ok ? "OK" : "MISMATCH");
  if (!ok) {
    for (const auto& [name, agg_s] : phases) {
      std::printf("    %-14s blame %8.4fs (%.4f)  aggregate %8.4fs (%.4f)\n",
                  name, blame.PhaseSeconds(name),
                  blame_total > 0 ? blame.PhaseSeconds(name) / blame_total
                                  : 0.0,
                  agg_s, agg_total > 0 ? agg_s / agg_total : 0.0);
    }
  }
  report.AddMeasured(label + " blame_share_max_delta", max_delta);
  return ok;
}

bool RealRuntimeMeasured(bench::JsonReport& report) {
  serde::FunctionRegistry registry;
  apps::LnniConfig lnni_config;
  lnni_config.dim = 96;
  lnni_config.layers = 4;
  lnni_config.build_passes = 16;
  (void)apps::RegisterLnniFunctions(registry, lnni_config);

  // One telemetry handle across manager + workers; spans drained per
  // measurement window below.
  telemetry::Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);

  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.telemetry = &telemetry;
  core::Manager manager(network, manager_config);
  (void)manager.Start();
  core::FactoryConfig factory_config;
  factory_config.initial_workers = 1;
  factory_config.registry = &registry;
  factory_config.telemetry = &telemetry;
  core::Factory factory(network, factory_config);
  (void)factory.Start();
  (void)manager.WaitForWorkers(1, 30.0);

  // Real (scaled) environment + real weights, both cached + unpacked.
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.02));
  const Blob weights = apps::MakeLnniWeightsBlob(lnni_config);
  auto env = analyzer.AnalyzeImports({"ml-inference"}).value();
  auto env_decl = manager.DeclareBlob("env", env.tarball,
                                      storage::FileKind::kEnvironment, true,
                                      true, /*unpack=*/true);
  auto weights_decl = manager.DeclareBlob(lnni_config.weights_file, weights,
                                          storage::FileKind::kData, true);
  const Value args = Value::Dict({{"count", Value(16)}, {"seed", Value(1)}});

  Table table({"Phase", "Invoc&Data Transfer", "Worker Overhead",
               "Library/Invoc Overhead", "Exec Time"});

  // L2: two sequential remote tasks — cold then hot.  The breakdown is
  // derived from the causal traces, not drain windows: both tasks run,
  // then the stream is partitioned by trace_id and the cold trace is the
  // one that paid the environment unpack.
  (void)telemetry.tracer.Drain();  // discard startup noise
  bool l2_ok = true;
  for (int i = 0; i < 2 && l2_ok; ++i) {
    auto outcome = manager
                       .SubmitTask("lnni_infer", args,
                                   {env_decl, weights_decl},
                                   core::Resources{2, 4096, 4096})
                       ->Wait();
    if (!outcome.ok()) {
      std::printf("L2 run failed: %s\n", outcome.status().ToString().c_str());
      l2_ok = false;
    }
  }
  std::vector<SpanRecord> all_spans;  // full stream for the blame check
  if (l2_ok) {
    const std::vector<SpanRecord> l2_spans = telemetry.tracer.Drain();
    all_spans.insert(all_spans.end(), l2_spans.begin(), l2_spans.end());
    // Trace ids are allocated at submit, so map order == submission order:
    // the first trace is the cold run (it also paid the env unpack).
    std::size_t index = 0;
    for (const auto& [trace_id, spans] : GroupByTrace(l2_spans)) {
      const char* label = index++ == 0 ? "L2 (Cold)" : "L2 (Hot)";
      const PhaseTotals totals = TaskView(spans);
      AddBreakdownRow(table, label, totals);
      report.AddMeasured(std::string(label) + " exec_s", totals.ExecColumn());
    }
  }

  // L3: library deployment + two invocations, again split by trace: the
  // first call's trace carries the one-time setup (its submit triggered
  // the install), the second is the steady-state invocation cost.
  auto spec = manager.CreateLibraryFromFunctions(
      "lnni", {"lnni_infer"}, "lnni_setup", Value(), nullptr);
  if (spec.ok()) {
    manager.AddLibraryInput(*spec, env_decl);
    manager.AddLibraryInput(*spec, weights_decl);
    (void)manager.InstallLibrary(*spec);
    auto outcome = manager.SubmitCall("lnni", "lnni_infer", args)->Wait();
    auto hot = manager.SubmitCall("lnni", "lnni_infer", args)->Wait();
    if (outcome.ok() && hot.ok()) {
      const std::vector<SpanRecord> l3_spans = telemetry.tracer.Drain();
      all_spans.insert(all_spans.end(), l3_spans.begin(), l3_spans.end());
      const auto traces = GroupByTrace(l3_spans);
      const std::vector<SpanRecord>* steady = nullptr;
      for (const auto& [trace_id, spans] : traces) {
        if (TraceHasPhase(spans, "context-setup")) {
          AddBreakdownRow(table, "L3 (Library)", LibraryView(spans),
                          /*exec_na=*/true);
        } else if (TraceHasPhase(spans, "exec")) {
          steady = &spans;  // highest trace_id wins: the hot second call
        }
      }
      if (steady != nullptr) {
        const PhaseTotals totals =
            AggregatePhases(*steady, [](const SpanRecord& s) {
              return s.category == "invocation" && s.track != "manager";
            });
        AddBreakdownRow(table, "L3 (Invoc.)", totals);
        report.AddMeasured("L3 (Invoc.) exec_s", totals.ExecColumn());
      }
      // Cross-check against the worker-reported wire breakdown: the library
      // runtime now separates function deserialization from context setup,
      // so the manager's last-setup gauges split the old "context" bucket.
      const core::ManagerMetrics metrics = manager.metrics();
      const core::TimingBreakdown& setup = metrics.last_library_setup;
      std::printf("Manager-reported library setup: transfer=%s worker=%s "
                  "deserialize=%s context=%s\n",
                  Sec(setup.transfer_s).c_str(), Sec(setup.worker_s).c_str(),
                  Sec(setup.deserialize_s).c_str(),
                  Sec(setup.context_s).c_str());
      report.AddMeasured("L3 setup deserialize_s", setup.deserialize_s);
      report.AddMeasured("L3 setup context_s", setup.context_s);
    } else {
      std::printf("L3 run failed: %s\n",
                  (outcome.ok() ? hot : outcome).status().ToString().c_str());
    }
  }
  table.Print();
  std::printf("Rows are per-trace aggregates: each invocation's four "
              "columns come from the spans sharing its trace_id, so "
              "concurrent background work can never bleed into a row.\n");
  std::printf("Shape check (wall clock, laptop scale): L3 invocation "
              "overhead columns are orders of magnitude below L2's, and L3 "
              "exec drops by the hoisted rebuild cost.\n");
  const bool blame_ok =
      CrossCheckBlame(all_spans, /*include_file_spans=*/false, "runtime",
                      report);
  manager.Stop();
  factory.Stop();
  return blame_ok;
}

/// Runs the simulator with tracing on and returns the drained spans —
/// the same eight phase names as the threaded runtime, in virtual time.
std::vector<SpanRecord> SimSpans(core::ReuseLevel level, std::size_t n) {
  telemetry::Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);
  sim::SimConfig config;
  config.level = level;
  config.cluster.num_workers = 1;
  config.seed = 7;
  config.telemetry = &telemetry;
  sim::VineSim vinesim(config, sim::BuildLnniWorkload(sim::LnniCosts(16), n));
  (void)vinesim.Run();
  return telemetry.tracer.Drain();
}

bool SimulatedBreakdown(bench::JsonReport& report) {
  Table table({"Phase", "Invoc&Data Transfer", "Worker Overhead",
               "Library/Invoc Overhead", "Exec Time"});
  constexpr std::size_t kInvocations = 8;
  bool blame_ok = true;
  for (const auto& [level, label] :
       {std::pair{core::ReuseLevel::kL2, "L2 (sim, 8 invoc.)"},
        std::pair{core::ReuseLevel::kL3, "L3 (sim, 8 invoc.)"}}) {
    const std::vector<SpanRecord> spans = SimSpans(level, kInvocations);
    blame_ok = CrossCheckBlame(spans, /*include_file_spans=*/true, label,
                               report) &&
               blame_ok;
    // The simulator's task- and file-level spans are disjoint (env transfer
    // is per worker, not re-counted per invocation), so aggregate them all.
    const PhaseTotals totals = AggregatePhases(spans);
    AddBreakdownRow(table, label, totals);
    report.AddMeasured(std::string(label) + " exec_s", totals.ExecColumn());

    // Acceptance check: the span stream renders to valid Chrome trace JSON.
    const std::string json = telemetry::ToChromeTrace(spans, "vinelet:sim");
    auto check = telemetry::ValidateChromeTrace(json);
    if (check.ok()) {
      std::printf("  %s: %zu spans -> valid Chrome trace (%zu events, "
                  "%zu tracks)\n",
                  label, spans.size(), check->events, check->tracks);
    } else {
      std::printf("  %s: TRACE INVALID: %s\n", label,
                  check.status().ToString().c_str());
    }
  }
  table.Print();
  std::printf("Same AggregatePhases code path as (b); totals cover %zu "
              "invocations plus the one-time env fetch/unpack.\n",
              kInvocations);
  return blame_ok;
}

}  // namespace

int main() {
  std::printf("Reproduction of Table 5: overhead breakdown of LNNI "
              "invocations with L2 and L3 context reuse\n");
  vinelet::bench::JsonReport report("table5_breakdown");
  report.SetConfig("levels=L2,L3 sim_invocations=8 runtime=lnni");
  Section("(a) Calibrated model at paper scale (uncontended)");
  PaperScaleModel();
  Section("(b) Real threaded runtime, laptop scale (telemetry spans)");
  const bool runtime_ok = RealRuntimeMeasured(report);
  Section("(c) Simulator, virtual-time spans through the same aggregation");
  const bool sim_ok = SimulatedBreakdown(report);
  report.Write();
  if (!runtime_ok || !sim_ok) {
    std::printf("FAIL: blame report disagrees with the phase aggregation\n");
    return 1;
  }
  return 0;
}
