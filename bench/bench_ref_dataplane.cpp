// Pass-by-reference data plane A/B: by-value vs BlobRef results on a
// fan-out/fan-in DAG over the real threaded runtime.
//
// The workload models the paper's data-dependent stages: P producers each
// emit a ~payload_bytes result; every producer's output fans out to C
// consumers, and one fan-in call per mode folds all P outputs together.
// DAG edges are wired with OnReady — the producer's resolved value (inline
// bytes by-value, a WrapRef dict by-ref) is passed positionally to its
// consumers, exactly as an application would chain futures.
//
// By-value, every edge payload crosses the manager twice: once inline in
// InvocationDone, once again inside each consumer's dispatch args.  By-ref,
// the payload stays pinned on the producing worker and consumers fetch it
// peer-to-peer (or hit it locally), so manager-relayed result bytes for the
// DAG stage collapse to the small scalar results.
//
// Usage: bench_ref_dataplane [--smoke]
//   --smoke   2 workers, 4 producers x 4 consumers, 256 KiB payloads (CI)
// Writes BENCH_ref_dataplane.json; exits non-zero if any invocation failed
// or the by-ref run relayed DAG payload bytes through the manager.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/blob_ref.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"

namespace {

using namespace vinelet;
using bench::Section;
using bench::Table;
using serde::Value;

struct Params {
  std::size_t workers = 4;
  std::size_t producers = 8;
  std::size_t consumers_per = 6;  // fan-out degree per producer
  std::int64_t payload_bytes = 1 << 20;
  double timeout_s = 120.0;
};

struct ModeResult {
  double makespan_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t relayed_result_bytes = 0;  // inline result bytes -> manager
  std::uint64_t p2p_fetch_bytes = 0;
  std::uint64_t refs_held = 0;
  std::uint64_t ref_results = 0;
  std::size_t failures = 0;
};

void RegisterBenchFunctions(serde::FunctionRegistry& registry) {
  serde::FunctionDef make_payload;
  make_payload.name = "make_payload";
  make_payload.fn = [](const Value& args,
                       const serde::InvocationEnv&) -> Result<Value> {
    auto bytes = args.GetInt("bytes");
    if (!bytes.ok()) return bytes.status();
    auto fill = args.GetInt("fill");
    if (!fill.ok()) return fill.status();
    return Value(std::string(static_cast<std::size_t>(*bytes),
                             static_cast<char>('a' + *fill % 23)));
  };
  (void)registry.RegisterFunction(make_payload);

  serde::FunctionDef probe;
  probe.name = "payload_probe";
  probe.fn = [](const Value& args,
                const serde::InvocationEnv&) -> Result<Value> {
    if (args.type() != Value::Type::kList || args.AsList().empty())
      return InvalidArgumentError("expected positional [payload]");
    const Value& payload = args.AsList()[0];
    if (payload.type() != Value::Type::kString)
      return InvalidArgumentError("payload not materialized");
    const std::string& s = payload.AsString();
    return Value(static_cast<std::int64_t>(s.size()) +
                 static_cast<std::int64_t>(s[0]));
  };
  (void)registry.RegisterFunction(probe);

  serde::FunctionDef fold;
  fold.name = "sum_payloads";
  fold.fn = [](const Value& args,
               const serde::InvocationEnv&) -> Result<Value> {
    if (args.type() != Value::Type::kList)
      return InvalidArgumentError("expected positional payload list");
    std::int64_t total = 0;
    for (const Value& payload : args.AsList()) {
      if (payload.type() != Value::Type::kString)
        return InvalidArgumentError("payload not materialized");
      total += static_cast<std::int64_t>(payload.AsString().size());
    }
    return Value(total);
  };
  (void)registry.RegisterFunction(fold);
}

ModeResult RunMode(const Params& params, bool by_ref) {
  ModeResult out;
  serde::FunctionRegistry registry;
  RegisterBenchFunctions(registry);
  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  core::Manager manager(network, manager_config);
  if (!manager.Start().ok()) return out;
  core::FactoryConfig factory_config;
  factory_config.initial_workers = params.workers;
  factory_config.worker_resources = {32, 64 * 1024, 64 * 1024};
  factory_config.registry = &registry;
  // By-ref mode: any result >= 64 KiB stays on its producing worker.
  factory_config.ref_results_min_bytes = by_ref ? 64 * 1024 : 0;
  core::Factory factory(network, factory_config);
  if (!factory.Start().ok()) return out;
  if (!manager.WaitForWorkers(params.workers, 30.0).ok()) return out;

  // slots=2 with whole-worker resources: a consumer backlog forces the
  // autoscaler to recruit additional workers, so DAG edges genuinely cross
  // worker boundaries instead of resolving as local cache hits.
  core::LibraryOptions options;
  options.slots = 2;
  auto spec = manager.CreateLibraryFromFunctions(
      "data", {"make_payload", "payload_probe", "sum_payloads"}, "", Value(),
      nullptr, options);
  if (!spec.ok() || !manager.InstallLibrary(*spec).ok()) return out;

  std::mutex mu;
  std::vector<double> latencies;  // consumer submit -> resolve, seconds
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> producers_done{0};
  std::vector<Value> produced(params.producers);

  const auto start = std::chrono::steady_clock::now();
  auto now_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const std::int64_t bytes = params.payload_bytes;
  for (std::size_t p = 0; p < params.producers; ++p) {
    auto future = manager.SubmitCall(
        "data", "make_payload",
        Value::Dict({{"bytes", Value(bytes)},
                     {"fill", Value(static_cast<std::int64_t>(p))}}));
    future->OnReady([&, p](const Result<core::Outcome>& outcome) {
      if (!outcome.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::int64_t expected =
          bytes + ('a' + static_cast<std::int64_t>(p) % 23);
      {
        std::lock_guard<std::mutex> lock(mu);
        produced[p] = outcome->value;
      }
      // Fan-out: C consumers per producer, each fed the resolved value
      // (inline payload by-value, WrapRef placeholder by-ref).
      for (std::size_t c = 0; c < params.consumers_per; ++c) {
        const double submitted = now_s();
        auto consumer = manager.SubmitCall("data", "payload_probe",
                                           Value::List({outcome->value}));
        consumer->OnReady(
            [&, submitted, expected](const Result<core::Outcome>& probed) {
              if (!probed.ok() || probed->value.AsInt() != expected) {
                failures.fetch_add(1);
                return;
              }
              std::lock_guard<std::mutex> lock(mu);
              latencies.push_back(now_s() - submitted);
            });
      }
      // Fan-in: once every producer resolved, fold all P outputs in one
      // call — a consumer with P ref args by-ref.
      if (producers_done.fetch_add(1) + 1 == params.producers) {
        serde::ValueList all;
        {
          std::lock_guard<std::mutex> lock(mu);
          all.assign(produced.begin(), produced.end());
        }
        const std::int64_t total =
            static_cast<std::int64_t>(params.producers) * bytes;
        auto folded =
            manager.SubmitCall("data", "sum_payloads", Value(std::move(all)));
        folded->OnReady([&, total](const Result<core::Outcome>& fold) {
          if (!fold.ok() || fold->value.AsInt() != total) failures.fetch_add(1);
        });
      }
    });
  }

  if (!manager.WaitAll(params.timeout_s).ok()) failures.fetch_add(1);
  out.makespan_s = now_s();
  out.failures = failures.load();

  auto status = manager.QueryStatus();
  if (status.ok()) {
    for (const auto& w : status->workers) {
      out.relayed_result_bytes += w.relayed_result_bytes;
      out.p2p_fetch_bytes += w.p2p_fetch_bytes;
      out.refs_held += w.refs_held;
    }
  }
  out.ref_results = manager.metrics().ref_results;

  {
    std::lock_guard<std::mutex> lock(mu);
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      const std::size_t idx =
          std::min(latencies.size() - 1, (latencies.size() * 99) / 100);
      out.p99_s = latencies[idx];
    }
  }

  manager.Stop();
  factory.Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      params.workers = 2;
      params.producers = 4;
      params.consumers_per = 4;
      params.payload_bytes = 256 * 1024;
    }
  }

  Section("Pass-by-reference data plane: fan-out/fan-in DAG A/B");
  std::printf(
      "workers=%zu producers=%zu consumers/producer=%zu payload=%lld B\n",
      params.workers, params.producers, params.consumers_per,
      static_cast<long long>(params.payload_bytes));

  const ModeResult value = RunMode(params, /*by_ref=*/false);
  const ModeResult ref = RunMode(params, /*by_ref=*/true);

  Table table({"mode", "makespan", "consumer p99", "mgr-relayed result B",
               "p2p fetch B", "ref results", "failures"});
  auto row = [&](const char* name, const ModeResult& r) {
    table.AddRow({name, bench::Seconds(r.makespan_s, 3),
                  bench::Seconds(r.p99_s, 3),
                  std::to_string(r.relayed_result_bytes),
                  std::to_string(r.p2p_fetch_bytes),
                  std::to_string(r.ref_results),
                  std::to_string(r.failures)});
  };
  row("by-value", value);
  row("by-ref", ref);
  table.Print();

  bench::JsonReport report("ref_dataplane");
  report.AddMeasured("value_makespan_s", value.makespan_s);
  report.AddMeasured("ref_makespan_s", ref.makespan_s);
  report.AddMeasured("value_consumer_p99_s", value.p99_s);
  report.AddMeasured("ref_consumer_p99_s", ref.p99_s);
  report.AddMeasured("value_manager_relayed_result_bytes",
                     static_cast<double>(value.relayed_result_bytes));
  report.AddMeasured("ref_manager_relayed_result_bytes",
                     static_cast<double>(ref.relayed_result_bytes));
  report.AddMeasured("ref_p2p_fetch_bytes",
                     static_cast<double>(ref.p2p_fetch_bytes));
  report.AddMeasured("ref_results", static_cast<double>(ref.ref_results));
  report.AddMeasured("makespan_speedup",
                     ref.makespan_s > 0 ? value.makespan_s / ref.makespan_s
                                        : 0.0);
  report.Write();

  // Gates: no failed invocations, and by-ref must keep DAG payload bytes
  // out of the manager — its inline result traffic must be under one
  // producer payload (the scalar consumer results are a few bytes each).
  bool ok = value.failures == 0 && ref.failures == 0;
  if (ref.ref_results < params.producers) {
    std::printf("FAIL: expected >= %zu ref results, saw %llu\n",
                params.producers,
                static_cast<unsigned long long>(ref.ref_results));
    ok = false;
  }
  if (ref.relayed_result_bytes >=
      static_cast<std::uint64_t>(params.payload_bytes)) {
    std::printf("FAIL: by-ref relayed %llu result bytes through the manager\n",
                static_cast<unsigned long long>(ref.relayed_result_bytes));
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
