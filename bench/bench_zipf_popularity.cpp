// Zipf-popularity scheduling sweep: context-affinity scheduler vs the
// legacy first-fit dispatcher over a skewed multi-library service mix.
//
// The LNNI workloads in the paper pin one function class to the whole
// cluster; a function-centric service serves many libraries with a
// heavy-tailed popularity curve and an open arrival stream (Fig 10's
// regime: far more libraries than the cluster can hold warm at once, so
// the eviction decision is the whole game).  This bench offers an
// identical pre-sampled Poisson/Zipf stream to both policies:
//   - first-fit: first worker/instance in order wins, popularity-blind
//     eviction (first idle instance found), unbatched dispatch
//     (max_batch = 1), legacy queue-vs-capacity autoscale rule;
//   - affinity: least-loaded affine routing, threshold-gated autoscaling,
//     Fig-11 share-value eviction preference, batched dispatch.
// Both run through the simulator's per-library path, so the margin is the
// policy's doing, not a modeling asymmetry.  Reported: makespan, p99
// end-to-end latency (finished - arrival), affinity hit rate, deploy
// (cold-start) count, eviction churn, batch shape.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vinelet;
  using namespace vinelet::sim;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Full run: the acceptance configuration — 64 workers (1024 one-slot
  // instance slots), a library universe ~1.5x the slot count, and an
  // arrival rate that keeps the cluster busy without saturating it, so
  // queueing reflects cold-start waste rather than raw capacity.
  const std::size_t num_workers = smoke ? 16 : 64;
  const std::size_t libraries = smoke ? 384 : 1536;
  const std::size_t invocations = smoke ? 1500 : 12000;
  const double arrival_rate = smoke ? 40.0 : 160.0;  // invocations / s
  const double zipf_s = 1.2;
  const double exec_sigma = 0.2;
  std::printf(
      "Zipf-popularity scheduling: affinity vs first-fit "
      "(%zu invocations at %.0f/s, %zu libraries, %zu workers, s=%.1f%s)\n",
      invocations, arrival_rate, libraries, num_workers, zipf_s,
      smoke ? ", smoke" : "");

  bench::TraceSession session("zipf_popularity");
  static const WorkloadCosts costs = LnniCosts(16);
  Rng workload_rng(7);
  const std::vector<InvocationSpec> workload =
      BuildZipfWorkload(costs, invocations, libraries, zipf_s, exec_sigma,
                        arrival_rate, workload_rng);

  // The steal threshold trades the two headline metrics against each other:
  // th=1 displaces idle capacity as soon as a backlog forms (best drain
  // parallelism, so best makespan, while the share-aware victim choice
  // still protects the head libraries); the default th=4 consolidates
  // backlogs through fewer warm instances (fewest cold starts, so best
  // mean/p99 latency, at a small makespan cost from the serial drain
  // tail).  Both rows run so the trade-off is on the record.
  struct Case {
    const char* name;
    core::SchedulerConfig scheduler;
  };
  Case cases[3] = {{"first-fit", {}}, {"affinity th=1", {}},
                   {"affinity th=4", {}}};
  cases[0].scheduler.policy = core::SchedulerPolicy::kFirstFit;
  cases[0].scheduler.max_batch = 1;  // legacy one-message-per-invocation
  cases[1].scheduler.policy = core::SchedulerPolicy::kAffinity;
  cases[1].scheduler.steal_threshold = 1;
  cases[2].scheduler.policy = core::SchedulerPolicy::kAffinity;
  cases[2].scheduler.steal_threshold = 4;

  constexpr int kCases = 3;
  SimResult results[kCases];
  double p99_latency[kCases] = {0, 0, 0};
  double mean_latency[kCases] = {0, 0, 0};
  for (int i = 0; i < kCases; ++i) {
    SimConfig config;
    config.level = core::ReuseLevel::kL3;
    config.cluster.num_workers = num_workers;
    config.seed = 2024;
    config.track_trace = true;
    config.scheduler = cases[i].scheduler;
    config.telemetry = session.telemetry();
    VineSim sim(config, workload);
    results[i] = sim.Run();
    std::vector<double> latencies;
    latencies.reserve(results[i].trace.size());
    double total = 0;
    for (const auto& t : results[i].trace) {
      const double latency = t.finished - workload[t.invocation].arrival_s;
      latencies.push_back(latency);
      total += latency;
    }
    p99_latency[i] = Percentile(latencies, 0.99);
    mean_latency[i] =
        latencies.empty() ? 0 : total / static_cast<double>(latencies.size());
  }

  bench::Table table({"Policy", "Makespan", "Mean latency", "p99 latency",
                      "Hit rate", "Deploys", "Evicts", "Steals",
                      "Mean batch"});
  for (int i = 0; i < kCases; ++i) {
    const SimResult& r = results[i];
    const double routed =
        static_cast<double>(r.affinity_hits + r.affinity_misses);
    const double hit_rate =
        routed > 0 ? static_cast<double>(r.affinity_hits) / routed : 0.0;
    const double mean_batch =
        r.dispatch_batches > 0
            ? static_cast<double>(r.dispatch_batched_invocations) /
                  static_cast<double>(r.dispatch_batches)
            : 0.0;
    table.AddRow({cases[i].name, bench::Seconds(r.makespan, 0),
                  bench::Seconds(mean_latency[i], 2),
                  bench::Seconds(p99_latency[i], 2), bench::Percent(hit_rate),
                  std::to_string(r.libraries_deployed_total),
                  std::to_string(r.autoscale_evicts),
                  std::to_string(r.steals), FormatDouble(mean_batch, 2)});
  }
  table.Print();

  const double makespan_gain = 1.0 - results[1].makespan / results[0].makespan;
  const double p99_gain = 1.0 - p99_latency[1] / p99_latency[0];
  const double mean_gain = 1.0 - mean_latency[1] / mean_latency[0];
  std::printf(
      "Affinity (th=1) vs first-fit: makespan %s, mean latency %s, "
      "p99 latency %s better.\n",
      bench::Percent(makespan_gain).c_str(), bench::Percent(mean_gain).c_str(),
      bench::Percent(p99_gain).c_str());
  std::printf(
      "Affinity (th=4) vs first-fit: makespan %s, mean latency %s, "
      "p99 latency %s better.\n",
      bench::Percent(1.0 - results[2].makespan / results[0].makespan).c_str(),
      bench::Percent(1.0 - mean_latency[2] / mean_latency[0]).c_str(),
      bench::Percent(1.0 - p99_latency[2] / p99_latency[0]).c_str());
  std::printf(
      "Shape check: affinity wins by retaining proven (high share value) "
      "libraries, so popular arrivals keep hitting warm slots instead of "
      "paying a cold redeploy.\n");

  bench::JsonReport report("zipf_popularity");
  report.AddMeasured("workers", static_cast<double>(num_workers));
  report.AddMeasured("libraries", static_cast<double>(libraries));
  report.AddMeasured("invocations", static_cast<double>(invocations));
  report.AddMeasured("arrival_rate_per_s", arrival_rate);
  report.AddMeasured("zipf_s", zipf_s);
  report.AddMeasured("firstfit_makespan_s", results[0].makespan);
  report.AddMeasured("affinity_makespan_s", results[1].makespan);
  report.AddMeasured("firstfit_mean_latency_s", mean_latency[0]);
  report.AddMeasured("affinity_mean_latency_s", mean_latency[1]);
  report.AddMeasured("firstfit_p99_latency_s", p99_latency[0]);
  report.AddMeasured("affinity_p99_latency_s", p99_latency[1]);
  report.AddMeasured("makespan_improvement", makespan_gain);
  report.AddMeasured("mean_latency_improvement", mean_gain);
  report.AddMeasured("p99_latency_improvement", p99_gain);
  // The consolidating (default steal_threshold) variant, for the knob
  // trade-off record: best latency, small makespan give-back.
  report.AddMeasured("consolidating_makespan_s", results[2].makespan);
  report.AddMeasured("consolidating_mean_latency_s", mean_latency[2]);
  report.AddMeasured("consolidating_p99_latency_s", p99_latency[2]);
  report.AddMeasured("consolidating_makespan_improvement",
                     1.0 - results[2].makespan / results[0].makespan);
  report.AddMeasured("consolidating_p99_latency_improvement",
                     1.0 - p99_latency[2] / p99_latency[0]);
  report.AddMeasured("firstfit_deploys",
                     static_cast<double>(results[0].libraries_deployed_total));
  report.AddMeasured("affinity_deploys",
                     static_cast<double>(results[1].libraries_deployed_total));
  report.AddMeasured("firstfit_evicts",
                     static_cast<double>(results[0].autoscale_evicts));
  report.AddMeasured("affinity_evicts",
                     static_cast<double>(results[1].autoscale_evicts));
  report.AddMeasured("affinity_steals",
                     static_cast<double>(results[1].steals));
  const double routed = static_cast<double>(results[1].affinity_hits +
                                            results[1].affinity_misses);
  report.AddMeasured("affinity_hit_rate",
                     routed > 0 ? static_cast<double>(
                                      results[1].affinity_hits) /
                                      routed
                                : 0.0);
  const double routed0 = static_cast<double>(results[0].affinity_hits +
                                             results[0].affinity_misses);
  report.AddMeasured("firstfit_hit_rate",
                     routed0 > 0 ? static_cast<double>(
                                       results[0].affinity_hits) /
                                       routed0
                                 : 0.0);
  report.AddMeasured(
      "affinity_mean_batch",
      results[1].dispatch_batches > 0
          ? static_cast<double>(results[1].dispatch_batched_invocations) /
                static_cast<double>(results[1].dispatch_batches)
          : 0.0);
  report.AddMeasured("affinity_max_batch",
                     static_cast<double>(results[1].dispatch_max_batch));
  report.Write();
  return 0;
}
