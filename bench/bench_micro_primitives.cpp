// Microbenchmarks of vinelet's core primitives (google-benchmark).
//
// These quantify the constant factors behind the runtime's overheads:
// content hashing (every transfer is verified), value / message
// serialization (everything crosses the network as bytes), function
// serialization, environment packing/unpacking, and scheduler data
// structures.
#include <benchmark/benchmark.h>

#include "common/buffer_pool.hpp"
#include "core/protocol.hpp"
#include "core/scheduler.hpp"
#include "hash/content_id.hpp"
#include "hash/hash_ring.hpp"
#include "poncho/packer.hpp"
#include "serde/function_registry.hpp"
#include "serde/value.hpp"
#include "storage/cache_index.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using namespace vinelet;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Blob payload = poncho::Packer::DeterministicBytes("bench", size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha256::Hash(payload.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Sha256Scalar(benchmark::State& state) {
  // The portable compression loop, pinned regardless of CPU features: the
  // BM_Sha256 / BM_Sha256Scalar pair measures what the runtime-dispatched
  // hardware backend (SHA-NI / ARMv8 crypto) buys on this machine.
  const auto size = static_cast<std::size_t>(state.range(0));
  const Blob payload = poncho::Packer::DeterministicBytes("bench", size);
  hash::Sha256::ForceScalarForTest(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha256::Hash(payload.span()));
  }
  hash::Sha256::ForceScalarForTest(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(std::string("dispatched-backend=") + hash::Sha256::Backend());
}
BENCHMARK(BM_Sha256Scalar)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ValueEncodeDecode(benchmark::State& state) {
  serde::ValueList list;
  for (int i = 0; i < 64; ++i) {
    list.push_back(serde::Value::Dict(
        {{"id", serde::Value(i)}, {"name", serde::Value("molecule")},
         {"energy", serde::Value(1.5 * i)}}));
  }
  const serde::Value value(std::move(list));
  for (auto _ : state) {
    const Blob blob = value.ToBlob();
    auto decoded = serde::Value::FromBlob(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ValueEncodeDecode);

void BM_SerializedFunctionRoundTrip(benchmark::State& state) {
  const auto code_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Blob blob = serde::SerializedFunction::Serialize(
        "lnni_infer", serde::Value(42), code_size);
    auto parsed = serde::SerializedFunction::Deserialize(blob);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SerializedFunctionRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BlobFromStringCopy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const std::string text(size, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blob::FromString(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BlobFromStringCopy)->Arg(1 << 12)->Arg(1 << 20);

void BM_BlobFromStringMove(benchmark::State& state) {
  // The move overload adopts the string's heap buffer: the per-iteration
  // cost is the string construction itself (shared with the copy benchmark)
  // plus pointer bookkeeping, never a second memcpy of the payload.
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::string text(size, 'x');
    benchmark::DoNotOptimize(Blob::FromString(std::move(text)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BlobFromStringMove)->Arg(1 << 12)->Arg(1 << 20);

void BM_MessageEncodeDecode(benchmark::State& state) {
  core::RunInvocationMsg msg{1001, 3, "lnni_infer",
                             serde::Value::Dict({{"count", serde::Value(16)},
                                                 {"seed", serde::Value(7)}})
                                 .ToBlob(),
                             {},
                             {}};
  for (auto _ : state) {
    const Blob blob = core::EncodeMessage(core::Message(msg));
    auto decoded = core::DecodeMessage(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void RunMessageEncodeArena(benchmark::State& state, bool pooled) {
  // Steady-state encode traffic with the buffer pool on vs off: the pooled
  // run recycles a few warm vectors per thread, the unpooled run pays an
  // allocate/free pair (and, at MB sizes, fresh page faults) per message —
  // the arena on/off micro-primitive pair.  range(0) sizes the inline args
  // blob, spanning tiny control messages to chunk-sized payload headers.
  const auto args_bytes = static_cast<std::size_t>(state.range(0));
  BufferPool::SetEnabled(pooled);
  BufferPool::DrainThisThread();
  core::RunInvocationMsg msg{
      1001,
      3,
      "lnni_infer",
      serde::Value(std::string(args_bytes, 'x')).ToBlob(),
      {},
      {}};
  const core::Message message(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeMessage(message));
  }
  BufferPool::SetEnabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MessageEncodeArenaOn(benchmark::State& state) {
  RunMessageEncodeArena(state, true);
}
BENCHMARK(BM_MessageEncodeArenaOn)->Arg(64)->Arg(1 << 16)->Arg(1 << 20);

void BM_MessageEncodeArenaOff(benchmark::State& state) {
  RunMessageEncodeArena(state, false);
}
BENCHMARK(BM_MessageEncodeArenaOff)->Arg(64)->Arg(1 << 16)->Arg(1 << 20);

core::PutFileMsg MakePutFile(std::size_t payload_bytes) {
  core::PutFileMsg msg;
  msg.decl.name = "env-tarball";
  msg.decl.id = hash::ContentId::OfText("bench-put-file");
  msg.decl.size = payload_bytes;
  msg.payload = poncho::Packer::DeterministicBytes("bench", payload_bytes);
  return msg;
}

void BM_EncodeMessagePutFile(benchmark::State& state) {
  // Self-contained encoding: the bulk payload is copied into the archive
  // (with Reserve pre-sizing the buffer to one allocation).
  const auto size = static_cast<std::size_t>(state.range(0));
  const core::Message message(MakePutFile(size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeMessage(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeMessagePutFile)->Arg(1 << 16)->Arg(1 << 20)->Arg(4 << 20);

void BM_EncodeFramePutFile(benchmark::State& state) {
  // Wire-frame encoding: the bulk payload rides as a borrowed refcounted
  // attachment, so the cost is the small header regardless of payload size.
  const auto size = static_cast<std::size_t>(state.range(0));
  const core::Message message(MakePutFile(size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeFrame(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeFramePutFile)->Arg(1 << 16)->Arg(1 << 20)->Arg(4 << 20);

void BM_EnvironmentUnpack(benchmark::State& state) {
  // A scaled environment: unpack cost is the dominant worker overhead in
  // Table 5, so its throughput matters.
  poncho::PackageCatalog catalog =
      poncho::PackageCatalog::SyntheticMlCatalog(0.001);
  poncho::EnvironmentSpec spec{catalog.Resolve({"ml-inference"}).value()};
  const Blob tarball = poncho::Packer::PackEnvironment(spec);
  for (auto _ : state) {
    auto dir = poncho::Packer::Unpack(tarball);
    benchmark::DoNotOptimize(dir);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.TotalUnpackedBytes()));
}
BENCHMARK(BM_EnvironmentUnpack);

void BM_HashRingOwner(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= static_cast<std::uint64_t>(state.range(0));
       ++w)
    ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Owner(key++));
  }
}
BENCHMARK(BM_HashRingOwner)->Arg(16)->Arg(150);

void BM_HashRingWalk(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= 150; ++w) ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.WalkFrom(key++));
  }
}
BENCHMARK(BM_HashRingWalk);

void BM_SpanEmitDisabled(benchmark::State& state) {
  // The cost of tracing when it is off: EmitLinked on a disabled tracer is
  // one relaxed atomic load, so leaving the calls in the hot path is free.
  telemetry::Telemetry telemetry;
  const telemetry::TraceContext parent{1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        telemetry.tracer.EmitLinked(parent, telemetry::Phase::kExec,
                                    "invocation", "worker-1", 0, 0.0, 1.0));
  }
}
BENCHMARK(BM_SpanEmitDisabled);

void BM_SpanEmitEnabled(benchmark::State& state) {
  telemetry::Telemetry telemetry;
  telemetry.tracer.SetEnabled(true);
  const telemetry::TraceContext parent{1, 1};
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        telemetry.tracer.EmitLinked(parent, telemetry::Phase::kExec,
                                    "invocation", "worker-1", n, 0.0, 1.0));
    // Drain periodically so memory stays bounded; the pause keeps the
    // drain out of the measured time.
    if ((++n & 0xFFFu) == 0) {
      state.PauseTiming();
      (void)telemetry.tracer.Drain();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_SpanEmitEnabled);

void RunMetricsHotPath(benchmark::State& state, bool sampled) {
  // The instrumented completion hot path — counter bump plus latency
  // observe — with the windowed time-series sampler snapshotting the same
  // registry at 100 Hz vs not at all.  The sampler only reads atomics from
  // its own thread, so the on/off pair bounds its hot-path tax; the
  // acceptance budget is <2% (ISSUE 9), an order of magnitude above the
  // cache-line sharing this measures in practice.
  telemetry::Telemetry telemetry;
  telemetry::Counter& ops = telemetry.metrics.GetCounter("bench.ops");
  telemetry::Histogram& latency =
      telemetry.metrics.GetHistogram("bench.latency_s");
  telemetry::TimeSeriesConfig config;
  config.window_s = 0.01;  // 10x the production rate, to amplify any tax
  telemetry::TimeSeriesStore store(&telemetry.metrics, config);
  telemetry::BackgroundSampler sampler(&store, &telemetry.clock);
  if (sampled) sampler.Start();
  double x = 1e-6;
  for (auto _ : state) {
    ops.Add();
    latency.Observe(x);
    x = x < 1.0 ? x * 1.001 : 1e-6;
    benchmark::DoNotOptimize(x);
  }
  if (sampled) {
    sampler.Stop();
    state.SetLabel("windows=" + std::to_string(store.Windows().size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MetricsHotPathSamplerOff(benchmark::State& state) {
  RunMetricsHotPath(state, false);
}
BENCHMARK(BM_MetricsHotPathSamplerOff);

void BM_MetricsHotPathSamplerOn(benchmark::State& state) {
  RunMetricsHotPath(state, true);
}
BENCHMARK(BM_MetricsHotPathSamplerOn);

void BM_TimeSeriesSampleAt(benchmark::State& state) {
  // One sampler tick over a registry at cluster scale (range = metric
  // count per kind): the off-hot-path cost of a window snapshot, which
  // bounds how fine the sampling window can reasonably be.
  const auto metrics = static_cast<std::size_t>(state.range(0));
  telemetry::Telemetry telemetry;
  for (std::size_t i = 0; i < metrics; ++i) {
    telemetry.metrics.GetCounter("bench.counter." + std::to_string(i)).Add();
    telemetry.metrics.GetGauge("bench.gauge." + std::to_string(i)).Set(1.0);
    telemetry.metrics.GetHistogram("bench.hist." + std::to_string(i))
        .Observe(0.001);
  }
  telemetry::TimeSeriesConfig config;
  config.capacity = 64;
  telemetry::TimeSeriesStore store(&telemetry.metrics, config);
  double now = 0.0;
  store.SampleAt(now);
  for (auto _ : state) {
    now += 1.0;
    store.SampleAt(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesSampleAt)->Arg(8)->Arg(64);

void BM_FlightRecorderRecord(benchmark::State& state) {
  // Fixed-size seqlock ring: recording never allocates, so it is safe on
  // every failure path (and cheap enough to sprinkle on hot ones).
  telemetry::Telemetry telemetry;
  std::uint64_t n = 0;
  for (auto _ : state) {
    telemetry.flight.Record("invoke", "steady-state", 1, n++, 0);
  }
}
BENCHMARK(BM_FlightRecorderRecord);

void RunDirectInvocation(benchmark::State& state, bool traced) {
  // The worker's direct-mode invocation hot path — deserialize args, run
  // the function, serialize the result — with the same two EmitLinked
  // calls the library runtime makes.  Comparing the traced and untraced
  // runs bounds the trace-recording overhead (<2% is the budget).
  telemetry::Telemetry telemetry;
  telemetry.tracer.SetEnabled(traced);
  auto& tracer = telemetry.tracer;
  serde::FunctionRegistry registry;
  auto keys = std::make_shared<std::vector<std::string>>();
  for (int i = 0; i < 128; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    keys->push_back(std::move(key));
  }
  serde::FunctionDef def;
  def.name = "bench_sum";
  def.fn = [keys](const serde::Value& args,
                  const serde::InvocationEnv&) -> Result<serde::Value> {
    std::int64_t sum = 0;
    for (const auto& key : *keys) sum += args.Get(key).AsInt();
    return serde::Value(sum);
  };
  if (!registry.RegisterFunction(def).ok()) return;
  serde::ValueDict dict;
  for (int i = 0; i < 128; ++i) dict[(*keys)[i]] = serde::Value(i);
  const Blob args_blob = serde::Value(std::move(dict)).ToBlob();
  const auto fn = registry.FindFunction("bench_sum");
  const telemetry::TraceContext root{1, 1};
  std::size_t n = 0;
  for (auto _ : state) {
    const double t0 = tracer.Now();
    auto args = serde::Value::FromBlob(args_blob);
    const double t1 = tracer.Now();
    auto result = fn->fn(*args, serde::InvocationEnv{});
    const double t2 = tracer.Now();
    auto ctx = tracer.EmitLinked(root, telemetry::Phase::kDeserialize,
                                 "invocation", "bench", n, t0, t1);
    tracer.EmitLinked(ctx, telemetry::Phase::kExec, "invocation", "bench", n,
                      t1, t2);
    benchmark::DoNotOptimize(result->ToBlob());
    if (traced && (++n & 0xFFFu) == 0) {
      state.PauseTiming();
      (void)tracer.Drain();
      state.ResumeTiming();
    }
  }
}

void BM_DirectInvocationTraceOff(benchmark::State& state) {
  RunDirectInvocation(state, false);
}
BENCHMARK(BM_DirectInvocationTraceOff);

void BM_DirectInvocationTraceOn(benchmark::State& state) {
  RunDirectInvocation(state, true);
}
BENCHMARK(BM_DirectInvocationTraceOn);

void BM_SchedulerDispatchDecision(benchmark::State& state) {
  // One full manager-side scheduling decision at cluster scale: the
  // least-loaded pick over every warm instance plus the closed-loop
  // autoscale verdict.  This is the per-invocation cost the affinity
  // scheduler adds to the event loop, so it must stay trivially small
  // next to the ~ms dispatch path.
  const auto instances = static_cast<std::size_t>(state.range(0));
  std::vector<core::DispatchCandidate> candidates;
  candidates.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i)
    candidates.push_back({i + 1, static_cast<std::uint32_t>(i % 5)});
  const core::SchedulerConfig config;
  core::AutoscaleSignal signal;
  signal.ready_instances = instances;
  signal.free_slots = instances / 2;
  std::size_t n = 0;
  for (auto _ : state) {
    signal.queue_depth = n++ % (4 * instances);
    benchmark::DoNotOptimize(
        core::PickLeastLoaded(candidates.data(), candidates.size()));
    benchmark::DoNotOptimize(core::DecideAutoscale(config, signal));
  }
}
BENCHMARK(BM_SchedulerDispatchDecision)->Arg(16)->Arg(150)->Arg(2400);

core::RunInvocationMsg MakeRunInvocation(std::uint64_t id) {
  return {id, 3, "lnni_infer",
          serde::Value::Dict(
              {{"count", serde::Value(16)}, {"seed", serde::Value(7)}})
              .ToBlob(),
          {},
          {}};
}

void BM_EncodeRunInvocationUnbatched(benchmark::State& state) {
  // Protocol cost of dispatching `batch` invocations the legacy way: one
  // RunInvocationMsg frame each.
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(
          core::EncodeMessage(core::Message(MakeRunInvocation(i))));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EncodeRunInvocationUnbatched)->Arg(4)->Arg(16);

void BM_EncodeRunInvocationBatched(benchmark::State& state) {
  // The same `batch` invocations folded into one RunInvocationBatchMsg:
  // one frame header, one encode pass — the protocol amortization the
  // batched dispatch path buys (compare items/s against the unbatched
  // run; the ratio calibrates SimConfig::batch_item_cost_factor).
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    core::RunInvocationBatchMsg msg;
    msg.instance_id = 3;
    msg.items.reserve(batch);
    for (std::uint64_t i = 0; i < batch; ++i)
      msg.items.push_back(MakeRunInvocation(i));
    benchmark::DoNotOptimize(core::EncodeMessage(core::Message(msg)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EncodeRunInvocationBatched)->Arg(4)->Arg(16);

void BM_CacheIndexChurn(benchmark::State& state) {
  storage::CacheIndex cache(1 << 20);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto id = hash::ContentId::OfText("blob-" + std::to_string(n % 512));
    if (!cache.Touch(id)) {
      benchmark::DoNotOptimize(cache.Insert(id, 4096));
    }
    ++n;
  }
}
BENCHMARK(BM_CacheIndexChurn);

}  // namespace

BENCHMARK_MAIN();
