// Microbenchmarks of vinelet's core primitives (google-benchmark).
//
// These quantify the constant factors behind the runtime's overheads:
// content hashing (every transfer is verified), value / message
// serialization (everything crosses the network as bytes), function
// serialization, environment packing/unpacking, and scheduler data
// structures.
#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "hash/content_id.hpp"
#include "hash/hash_ring.hpp"
#include "poncho/packer.hpp"
#include "serde/function_registry.hpp"
#include "serde/value.hpp"
#include "storage/cache_index.hpp"

namespace {

using namespace vinelet;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Blob payload = poncho::Packer::DeterministicBytes("bench", size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha256::Hash(payload.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ValueEncodeDecode(benchmark::State& state) {
  serde::ValueList list;
  for (int i = 0; i < 64; ++i) {
    list.push_back(serde::Value::Dict(
        {{"id", serde::Value(i)}, {"name", serde::Value("molecule")},
         {"energy", serde::Value(1.5 * i)}}));
  }
  const serde::Value value(std::move(list));
  for (auto _ : state) {
    const Blob blob = value.ToBlob();
    auto decoded = serde::Value::FromBlob(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ValueEncodeDecode);

void BM_SerializedFunctionRoundTrip(benchmark::State& state) {
  const auto code_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Blob blob = serde::SerializedFunction::Serialize(
        "lnni_infer", serde::Value(42), code_size);
    auto parsed = serde::SerializedFunction::Deserialize(blob);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SerializedFunctionRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BlobFromStringCopy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const std::string text(size, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blob::FromString(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BlobFromStringCopy)->Arg(1 << 12)->Arg(1 << 20);

void BM_BlobFromStringMove(benchmark::State& state) {
  // The move overload adopts the string's heap buffer: the per-iteration
  // cost is the string construction itself (shared with the copy benchmark)
  // plus pointer bookkeeping, never a second memcpy of the payload.
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::string text(size, 'x');
    benchmark::DoNotOptimize(Blob::FromString(std::move(text)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BlobFromStringMove)->Arg(1 << 12)->Arg(1 << 20);

void BM_MessageEncodeDecode(benchmark::State& state) {
  core::RunInvocationMsg msg{1001, 3, "lnni_infer",
                             serde::Value::Dict({{"count", serde::Value(16)},
                                                 {"seed", serde::Value(7)}})
                                 .ToBlob()};
  for (auto _ : state) {
    const Blob blob = core::EncodeMessage(core::Message(msg));
    auto decoded = core::DecodeMessage(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

core::PutFileMsg MakePutFile(std::size_t payload_bytes) {
  core::PutFileMsg msg;
  msg.decl.name = "env-tarball";
  msg.decl.id = hash::ContentId::OfText("bench-put-file");
  msg.decl.size = payload_bytes;
  msg.payload = poncho::Packer::DeterministicBytes("bench", payload_bytes);
  return msg;
}

void BM_EncodeMessagePutFile(benchmark::State& state) {
  // Self-contained encoding: the bulk payload is copied into the archive
  // (with Reserve pre-sizing the buffer to one allocation).
  const auto size = static_cast<std::size_t>(state.range(0));
  const core::Message message(MakePutFile(size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeMessage(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeMessagePutFile)->Arg(1 << 16)->Arg(1 << 20)->Arg(4 << 20);

void BM_EncodeFramePutFile(benchmark::State& state) {
  // Wire-frame encoding: the bulk payload rides as a borrowed refcounted
  // attachment, so the cost is the small header regardless of payload size.
  const auto size = static_cast<std::size_t>(state.range(0));
  const core::Message message(MakePutFile(size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeFrame(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeFramePutFile)->Arg(1 << 16)->Arg(1 << 20)->Arg(4 << 20);

void BM_EnvironmentUnpack(benchmark::State& state) {
  // A scaled environment: unpack cost is the dominant worker overhead in
  // Table 5, so its throughput matters.
  poncho::PackageCatalog catalog =
      poncho::PackageCatalog::SyntheticMlCatalog(0.001);
  poncho::EnvironmentSpec spec{catalog.Resolve({"ml-inference"}).value()};
  const Blob tarball = poncho::Packer::PackEnvironment(spec);
  for (auto _ : state) {
    auto dir = poncho::Packer::Unpack(tarball);
    benchmark::DoNotOptimize(dir);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.TotalUnpackedBytes()));
}
BENCHMARK(BM_EnvironmentUnpack);

void BM_HashRingOwner(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= static_cast<std::uint64_t>(state.range(0));
       ++w)
    ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Owner(key++));
  }
}
BENCHMARK(BM_HashRingOwner)->Arg(16)->Arg(150);

void BM_HashRingWalk(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= 150; ++w) ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.WalkFrom(key++));
  }
}
BENCHMARK(BM_HashRingWalk);

void BM_CacheIndexChurn(benchmark::State& state) {
  storage::CacheIndex cache(1 << 20);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto id = hash::ContentId::OfText("blob-" + std::to_string(n % 512));
    if (!cache.Touch(id)) {
      benchmark::DoNotOptimize(cache.Insert(id, 4096));
    }
    ++n;
  }
}
BENCHMARK(BM_CacheIndexChurn);

}  // namespace

BENCHMARK_MAIN();
