// Microbenchmarks of vinelet's core primitives (google-benchmark).
//
// These quantify the constant factors behind the runtime's overheads:
// content hashing (every transfer is verified), value / message
// serialization (everything crosses the network as bytes), function
// serialization, environment packing/unpacking, and scheduler data
// structures.
#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "hash/content_id.hpp"
#include "hash/hash_ring.hpp"
#include "poncho/packer.hpp"
#include "serde/function_registry.hpp"
#include "serde/value.hpp"
#include "storage/cache_index.hpp"

namespace {

using namespace vinelet;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Blob payload = poncho::Packer::DeterministicBytes("bench", size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha256::Hash(payload.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ValueEncodeDecode(benchmark::State& state) {
  serde::ValueList list;
  for (int i = 0; i < 64; ++i) {
    list.push_back(serde::Value::Dict(
        {{"id", serde::Value(i)}, {"name", serde::Value("molecule")},
         {"energy", serde::Value(1.5 * i)}}));
  }
  const serde::Value value(std::move(list));
  for (auto _ : state) {
    const Blob blob = value.ToBlob();
    auto decoded = serde::Value::FromBlob(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ValueEncodeDecode);

void BM_SerializedFunctionRoundTrip(benchmark::State& state) {
  const auto code_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const Blob blob = serde::SerializedFunction::Serialize(
        "lnni_infer", serde::Value(42), code_size);
    auto parsed = serde::SerializedFunction::Deserialize(blob);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SerializedFunctionRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MessageEncodeDecode(benchmark::State& state) {
  core::RunInvocationMsg msg{1001, 3, "lnni_infer",
                             serde::Value::Dict({{"count", serde::Value(16)},
                                                 {"seed", serde::Value(7)}})
                                 .ToBlob()};
  for (auto _ : state) {
    const Blob blob = core::EncodeMessage(core::Message(msg));
    auto decoded = core::DecodeMessage(blob);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_EnvironmentUnpack(benchmark::State& state) {
  // A scaled environment: unpack cost is the dominant worker overhead in
  // Table 5, so its throughput matters.
  poncho::PackageCatalog catalog =
      poncho::PackageCatalog::SyntheticMlCatalog(0.001);
  poncho::EnvironmentSpec spec{catalog.Resolve({"ml-inference"}).value()};
  const Blob tarball = poncho::Packer::PackEnvironment(spec);
  for (auto _ : state) {
    auto dir = poncho::Packer::Unpack(tarball);
    benchmark::DoNotOptimize(dir);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.TotalUnpackedBytes()));
}
BENCHMARK(BM_EnvironmentUnpack);

void BM_HashRingOwner(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= static_cast<std::uint64_t>(state.range(0));
       ++w)
    ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Owner(key++));
  }
}
BENCHMARK(BM_HashRingOwner)->Arg(16)->Arg(150);

void BM_HashRingWalk(benchmark::State& state) {
  hash::HashRing ring;
  for (std::uint64_t w = 1; w <= 150; ++w) ring.Add(w);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.WalkFrom(key++));
  }
}
BENCHMARK(BM_HashRingWalk);

void BM_CacheIndexChurn(benchmark::State& state) {
  storage::CacheIndex cache(1 << 20);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto id = hash::ContentId::OfText("blob-" + std::to_string(n % 512));
    if (!cache.Touch(id)) {
      benchmark::DoNotOptimize(cache.Insert(id, 4096));
    }
    ++n;
  }
}
BENCHMARK(BM_CacheIndexChurn);

}  // namespace

BENCHMARK_MAIN();
