// Table 3: the heterogeneous cluster model.  Prints the encoded machine
// groups and verifies that sampled clusters (as used by every simulation)
// follow the paper's proportions.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Table 3: major machine groups in the local "
              "cluster\n");

  bench::Section("Encoded machine groups (paper Table 3)");
  {
    bench::Table table({"Group", "Machine Prefix", "CPU Model", "# Machines",
                        "GFlops", "DRAM (GB)", "Speed factor"});
    const auto groups = PaperMachineGroups();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      table.AddRow({std::to_string(g + 1), groups[g].name,
                    groups[g].cpu_model, std::to_string(groups[g].machines),
                    FormatDouble(groups[g].gflops, 1),
                    std::to_string(groups[g].dram_gb),
                    FormatDouble(groups[g].gflops / groups[0].gflops, 2)});
    }
    table.Print();
  }

  bench::Section("Sampled worker pools (proportional allocation)");
  {
    bench::Table table({"Workers requested", "G1", "G2", "G3", "G4", "G5"});
    for (std::size_t n : {10, 50, 100, 150}) {
      ClusterConfig config;
      config.num_workers = n;
      Rng rng(42);
      const auto workers = SampleCluster(config, rng);
      std::map<std::size_t, int> by_group;
      for (const auto& worker : workers) by_group[worker.group]++;
      table.AddRow({std::to_string(n), std::to_string(by_group[0]),
                    std::to_string(by_group[1]), std::to_string(by_group[2]),
                    std::to_string(by_group[3]), std::to_string(by_group[4])});
    }
    table.Print();
    std::printf("Paper proportions: 58/117/14/7/5 machines per group "
                "(96.2%% of all machines used in any run).\n");
  }
  return 0;
}
