// Figure 7: histograms of invocation run time for the LNNI application
// (100k invocations, 150 workers) at the three levels of context reuse.
// As in the paper, values above 40 s are clipped into the last bin.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Figure 7: invocation run-time histograms, "
              "LNNI 100k invocations, 150 workers\n");

  bench::TraceSession session("fig7_histograms");
  static const WorkloadCosts costs = LnniCosts(16);
  const char* expectations[3] = {
      "paper: most invocations within 12-20 s, long tail",
      "paper: spread around 10-16 s",
      "paper: clustered around 3-7 s"};

  for (int i = 0; i < 3; ++i) {
    const auto level = static_cast<core::ReuseLevel>(i + 1);
    SimConfig config;
    config.level = level;
    config.cluster.num_workers = 150;
    config.seed = 2024;
    config.telemetry = session.telemetry();
    VineSim sim(config, BuildLnniWorkload(costs, 100000));
    const SimResult result = sim.Run();

    Histogram histogram(0.0, 40.0, 20);
    for (double t : result.run_times) histogram.Add(t);

    bench::Section(std::string("Fig 7") + static_cast<char>('a' + i) + ": " +
                   std::string(core::ReuseLevelName(level)) +
                   " context reuse (" + expectations[i] + ")");
    std::printf("%s", histogram.Render(60).c_str());
    std::printf("mean=%.2f s  std=%.2f s  min=%.2f s  max=%.2f s\n",
                result.run_time.mean(), result.run_time.stddev(),
                result.run_time.min(), result.run_time.max());
  }
  return 0;
}
