// Figure 11: average library share value (invocations served per deployed
// library) with respect to completed invocations.  The paper's finding: the
// share value grows linearly — a deployed library is a one-time cost that
// subsequent invocations amortize indefinitely.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Figure 11: average library share value vs "
              "completed invocations (LNNI 100k, 150 workers, L3)\n");

  bench::TraceSession session("fig11_share_value");
  static const WorkloadCosts costs = LnniCosts(16);
  SimConfig config;
  config.level = core::ReuseLevel::kL3;
  config.cluster.num_workers = 150;
  config.seed = 2024;
  config.track_series = true;
  config.telemetry = session.telemetry();
  config.worker_mean_lifetime_s = 600.0;
  config.worker_respawn_delay_s = 10.0;
  VineSim sim(config, BuildLnniWorkload(costs, 100000));
  const SimResult result = sim.Run();

  bench::Section("Average share value vs invocations completed");
  const auto series = result.avg_share_value.Downsample(24);
  for (const auto& point : series) {
    const int bar = static_cast<int>(point.value * 1.5);
    std::printf("%8.0f invocations | share %6.2f |", point.t, point.value);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  // Linearity check: fit share = a * completed + b and report R^2.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const auto& points = result.avg_share_value.points();
  const double n = static_cast<double>(points.size());
  for (const auto& p : points) {
    sx += p.t;
    sy += p.value;
    sxx += p.t * p.t;
    sxy += p.t * p.value;
    syy += p.value * p.value;
  }
  const double cov = sxy - sx * sy / n;
  const double var_x = sxx - sx * sx / n;
  const double var_y = syy - sy * sy / n;
  const double r2 = (cov * cov) / (var_x * var_y);

  bench::Section("Summary");
  bench::Table table({"Metric", "Paper", "Measured"});
  table.AddRow({"Growth", "linear in completed invocations",
                "R^2 = " + FormatDouble(r2, 4)});
  table.AddRow({"Final average share", "~40-50",
                FormatDouble(points.back().value, 1)});
  table.Print();
  std::printf("Shape check: share value grows linearly (R^2 close to 1) — a "
              "library is a one-time cost amortized over its invocations.\n");
  return 0;
}
