// Table 4: statistics for invocation run time with three levels of context
// reuse in LNNI-100k (seconds): mean / std deviation / min / max.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Table 4: invocation run-time statistics, "
              "LNNI 100k invocations, 150 workers\n");

  bench::TraceSession session("table4_invocation_stats");
  static const WorkloadCosts costs = LnniCosts(16);
  struct PaperRow {
    const char* mean;
    const char* stddev;
    const char* min;
    const char* max;
  };
  const PaperRow paper[3] = {{"21.59", "34.78", "6.71", "289.72"},
                             {"13.48", "3.68", "6.09", "45.33"},
                             {"4.77", "3.43", "2.67", "39.51"}};

  bench::Table table({"Level", "Mean (paper/sim)", "Std (paper/sim)",
                      "Min (paper/sim)", "Max (paper/sim)"});
  for (int i = 0; i < 3; ++i) {
    const auto level = static_cast<core::ReuseLevel>(i + 1);
    SimConfig config;
    config.level = level;
    config.cluster.num_workers = 150;
    config.seed = 2024;
    config.telemetry = session.telemetry();
    VineSim sim(config, BuildLnniWorkload(costs, 100000));
    const SimResult result = sim.Run();
    const auto& s = result.run_time;
    table.AddRow({std::string(core::ReuseLevelName(level)),
                  std::string(paper[i].mean) + " / " + FormatDouble(s.mean(), 2),
                  std::string(paper[i].stddev) + " / " +
                      FormatDouble(s.stddev(), 2),
                  std::string(paper[i].min) + " / " + FormatDouble(s.min(), 2),
                  std::string(paper[i].max) + " / " +
                      FormatDouble(s.max(), 2)});
  }
  table.Print();
  std::printf("Shape checks: mean(L1) > mean(L2) > mean(L3); L1 has the "
              "heaviest tail (largest std/max).\n");
  return 0;
}
