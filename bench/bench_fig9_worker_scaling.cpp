// Figure 9: effect of the number of connected workers on LNNI's execution
// time (10k invocations).  The paper's Q3 finding: L3 saturates early (the
// manager's tiny per-invocation cost needs few workers), while L1/L2 gain
// little from more workers because the manager's per-task dispatch work is
// the bottleneck.  The text also reports L3 at 10 and 25 workers (455 s and
// 145 s), which we include.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace vinelet;
  using namespace vinelet::sim;
  std::printf("Reproduction of Figure 9: LNNI execution time vs connected "
              "workers (10k invocations)\n");

  bench::TraceSession session("fig9_worker_scaling");
  static const WorkloadCosts costs = LnniCosts(16);
  auto run = [&](core::ReuseLevel level, std::size_t workers) {
    SimConfig config;
    config.level = level;
    config.cluster.num_workers = workers;
    config.seed = 2024;
    config.telemetry = session.telemetry();
    if (level == core::ReuseLevel::kL3 && workers == 50) {
      // Paper note: "the run with L3 and 50 workers has no group 2 machines".
      config.cluster.group_fractions = {0.75, 0.0, 0.11, 0.08, 0.06};
    }
    VineSim sim(config, BuildLnniWorkload(costs, 10000));
    return sim.Run().makespan;
  };

  bench::Section("Main sweep (Fig 9)");
  {
    bench::Table table({"Workers", "L1 (s)", "L2 (s)", "L3 (s)"});
    for (std::size_t workers : {50, 100, 150}) {
      table.AddRow({std::to_string(workers),
                    FormatDouble(run(core::ReuseLevel::kL1, workers), 0),
                    FormatDouble(run(core::ReuseLevel::kL2, workers), 0),
                    FormatDouble(run(core::ReuseLevel::kL3, workers), 0)});
    }
    table.Print();
  }

  bench::Section("L3 small-pool extension (paper text: 455 s @ 10, 145 s @ 25)");
  {
    bench::Table table({"Workers", "Paper L3 (s)", "Measured L3 (s)"});
    const double at10 = run(core::ReuseLevel::kL3, 10);
    const double at25 = run(core::ReuseLevel::kL3, 25);
    table.AddRow({"10", "455", FormatDouble(at10, 0)});
    table.AddRow({"25", "145", FormatDouble(at25, 0)});
    table.Print();
  }
  std::printf("Shape check: L3 flat from 50 workers on; L1/L2 improve only "
              "slightly with more workers.\n");
  return 0;
}
