// Figure 8: effect of increasing individual invocations' run time on LNNI's
// execution time.  10k invocations, 100 workers, 16/160/1600 inferences per
// invocation, three reuse levels.  The paper's Q2 finding: the shorter the
// invocation, the more context reuse matters.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace vinelet;
  using namespace vinelet::sim;
  // --smoke: CI-sized run (one case, 500 invocations, 20 workers) — large
  // enough to exercise every trace-emitting code path, small enough for a
  // gating job.  The full run reproduces the paper's 10k x 100 setup.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t invocations = smoke ? 500 : 10000;
  const std::size_t num_workers = smoke ? 20 : 100;
  std::printf("Reproduction of Figure 8: LNNI execution time vs inferences "
              "per invocation (%zu invocations, %zu workers%s)\n",
              invocations, num_workers, smoke ? ", smoke" : "");

  bench::TraceSession session("fig8_invocation_runtime");
  static const WorkloadCosts costs16 = LnniCosts(16);
  static const WorkloadCosts costs160 = LnniCosts(160);
  static const WorkloadCosts costs1600 = LnniCosts(1600);
  const struct {
    int inferences;
    const WorkloadCosts* costs;
    const char* paper_l3_vs_l1;
    const char* paper_l3_vs_l2;
  } cases[] = {{16, &costs16, "81%", "75%"},
               {160, &costs160, "41.3%", "41.2%"},
               {1600, &costs1600, "15.6%", "3.7%"}};

  bench::Table table({"Inferences/invoc", "L1 (s)", "L2 (s)", "L3 (s)",
                      "L3 vs L1 (paper/sim)", "L3 vs L2 (paper/sim)",
                      "Mean invoc time (s)"});
  for (const auto& c : cases) {
    if (smoke && c.inferences != 16) continue;
    double makespans[3];
    double mean_runtime = 0;
    for (int i = 0; i < 3; ++i) {
      SimConfig config;
      config.level = static_cast<core::ReuseLevel>(i + 1);
      config.cluster.num_workers = num_workers;
      config.seed = 2024;
      config.telemetry = session.telemetry();
      if (c.inferences == 16 && config.level == core::ReuseLevel::kL1) {
        // Paper note: "the run with L1 and 16 inferences uses a significant
        // amount (89%) of group 2 machines".
        config.cluster.group_fractions = {0.11, 0.89};
      }
      VineSim sim(config, BuildLnniWorkload(*c.costs, invocations));
      const SimResult result = sim.Run();
      makespans[i] = result.makespan;
      if (config.level == core::ReuseLevel::kL3)
        mean_runtime = result.run_time.mean();
    }
    table.AddRow(
        {std::to_string(c.inferences), FormatDouble(makespans[0], 0),
         FormatDouble(makespans[1], 0), FormatDouble(makespans[2], 0),
         std::string(c.paper_l3_vs_l1) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[0]),
         std::string(c.paper_l3_vs_l2) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[1]),
         FormatDouble(mean_runtime, 1)});
  }
  table.Print();
  std::printf("Paper mean invocation run times: 6.2 s (16), 40.9 s (160), "
              "379.7 s (1600).\n");
  std::printf("Shape check: the L3 speedup shrinks as invocations grow — "
              "the context-reload overhead is fixed per invocation.\n");
  return 0;
}
