// Figure 8: effect of increasing individual invocations' run time on LNNI's
// execution time.  10k invocations, 100 workers, 16/160/1600 inferences per
// invocation, three reuse levels.  The paper's Q2 finding: the shorter the
// invocation, the more context reuse matters.
//
// With VINELET_TRACE set this bench doubles as the observability smoke
// fixture: the simulator drives the windowed time-series sampler in virtual
// time (BENCH_fig8_invocation_runtime.timeseries.jsonl, same schema the
// runtime's BackgroundSampler emits), and the traced span stream is folded
// into a critical-path blame report cross-checked against AggregatePhases
// (BENCH_fig8_invocation_runtime.blame.json).  CI validates both with
// scripts/check_critical_path.py.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/demo_registry.hpp"
#include "bench/bench_util.hpp"
#include "core/factory.hpp"
#include "core/manager.hpp"
#include "core/worker.hpp"
#include "net/network.hpp"
#include "net/tcp_transport.hpp"
#include "poncho/analyzer.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/export.hpp"
#include "telemetry/timeseries.hpp"

// ---------------------------------------------------------------------------
// Real-runtime leg (--runtime): the same LNNI shape through the actual
// manager/worker runtime instead of the DES, over either the in-process
// bus or real TCP sockets.  Used by CI to check that the TCP transport
// does not distort the Figure 8 workload: both legs run the identical
// workload and the makespans must agree within tolerance (the workload is
// execution-bound, so transport cost should be noise).
// ---------------------------------------------------------------------------

namespace runtime_leg {

using namespace vinelet;
using serde::Value;

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LegResult {
  double makespan_s = 0.0;
  double mean_exec_s = 0.0;
  int failed = 0;
};

/// Broadcast weights, install the LNNI library, fan out `invocations`
/// calls, and drain.  The manager must already see its workers.
Result<LegResult> DriveWorkload(core::Manager& manager, int invocations) {
  const apps::LnniConfig lnni = apps::DemoLnniConfig();
  poncho::Analyzer analyzer(poncho::PackageCatalog::SyntheticMlCatalog(0.005));
  auto env = analyzer.AnalyzeImports({"ml-inference"});
  if (!env.ok()) return env.status();
  auto env_decl = manager.DeclareBlob("env", env->tarball,
                                      storage::FileKind::kEnvironment,
                                      /*cache=*/true, /*peer_transfer=*/true,
                                      /*unpack=*/true);
  auto weights_decl =
      manager.DeclareBlob(lnni.weights_file, apps::MakeLnniWeightsBlob(lnni),
                          storage::FileKind::kData, /*cache=*/true);
  const double started_s = NowS();
  (void)manager.BroadcastFile(weights_decl);
  auto spec = manager.CreateLibraryFromFunctions("lnni", {"lnni_infer"},
                                                 "lnni_setup", Value());
  if (!spec.ok()) return spec.status();
  manager.AddLibraryInput(*spec, env_decl);
  manager.AddLibraryInput(*spec, weights_decl);
  spec->slots = 4;
  VINELET_RETURN_IF_ERROR(manager.InstallLibrary(*spec));
  std::vector<core::FuturePtr> futures;
  futures.reserve(static_cast<std::size_t>(invocations));
  for (int i = 0; i < invocations; ++i) {
    futures.push_back(manager.SubmitCall(
        "lnni", "lnni_infer",
        Value::Dict({{"count", Value(8)}, {"seed", Value(i)}})));
  }
  VINELET_RETURN_IF_ERROR(manager.WaitAll(120.0));
  LegResult leg;
  leg.makespan_s = NowS() - started_s;
  double exec_total = 0.0;
  for (const auto& future : futures) {
    auto outcome = future->Wait();
    if (!outcome.ok()) {
      ++leg.failed;
      continue;
    }
    exec_total += outcome->timing.exec_s;
  }
  if (invocations > leg.failed)
    leg.mean_exec_s = exec_total / (invocations - leg.failed);
  return leg;
}

/// In-process leg: manager + factory workers over the in-process bus.
Result<LegResult> RunInProcess(const serde::FunctionRegistry& registry,
                               telemetry::Telemetry* telemetry,
                               std::size_t workers, int invocations) {
  auto network = std::make_shared<net::Network>();
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.telemetry = telemetry;
  core::Manager manager(network, manager_config);
  VINELET_RETURN_IF_ERROR(manager.Start());
  core::FactoryConfig factory_config;
  factory_config.initial_workers = workers;
  factory_config.registry = &registry;
  factory_config.telemetry = &manager.telemetry();
  core::Factory factory(network, factory_config);
  VINELET_RETURN_IF_ERROR(factory.Start());
  VINELET_RETURN_IF_ERROR(manager.WaitForWorkers(workers, 30.0));
  auto leg = DriveWorkload(manager, invocations);
  manager.Stop();
  factory.Stop();
  return leg;
}

/// TCP leg: a real hub socket plus one node transport per worker — every
/// frame crosses a loopback socket even though the processes are threads.
Result<LegResult> RunOverTcp(const serde::FunctionRegistry& registry,
                             telemetry::Telemetry* telemetry,
                             std::size_t workers, int invocations) {
  net::TcpTransportConfig hub_config;
  auto hub = std::make_shared<net::TcpTransport>(hub_config);
  VINELET_RETURN_IF_ERROR(hub->Start());
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.telemetry = telemetry;
  core::Manager manager(hub, manager_config);
  Status status = manager.Start();
  if (!status.ok()) {
    hub->Shutdown();
    return status;
  }
  std::vector<std::shared_ptr<net::TcpTransport>> nodes;
  std::vector<std::unique_ptr<core::Worker>> worker_objs;
  auto teardown = [&] {
    manager.Stop();
    for (auto& w : worker_objs) w->Stop();
    for (auto& node : nodes) node->Shutdown();
    hub->Shutdown();
  };
  for (std::size_t i = 0; i < workers; ++i) {
    net::TcpTransportConfig node_config;
    node_config.hub_host = "127.0.0.1";
    node_config.hub_port = hub->listen_port();
    auto node = std::make_shared<net::TcpTransport>(node_config);
    if (Status node_status = node->Start(); !node_status.ok()) {
      teardown();
      return node_status;
    }
    nodes.push_back(node);
    core::WorkerConfig worker_config;
    worker_config.id = static_cast<core::WorkerId>(i + 1);
    worker_config.registry = &registry;
    worker_config.telemetry = &manager.telemetry();
    worker_objs.push_back(std::make_unique<core::Worker>(node, worker_config));
    if (Status worker_status = worker_objs.back()->Start();
        !worker_status.ok()) {
      teardown();
      return worker_status;
    }
  }
  if (Status wait_status = manager.WaitForWorkers(workers, 30.0);
      !wait_status.ok()) {
    teardown();
    return wait_status;
  }
  auto leg = DriveWorkload(manager, invocations);
  teardown();
  return leg;
}

/// Hub-for-external-workers leg (--listen): real cross-process deployment.
Result<LegResult> RunAsHub(const serde::FunctionRegistry& registry,
                           telemetry::Telemetry* telemetry, std::uint16_t port,
                           std::size_t workers, int invocations) {
  net::TcpTransportConfig hub_config;
  hub_config.listen_port = port;
  auto hub = std::make_shared<net::TcpTransport>(hub_config);
  VINELET_RETURN_IF_ERROR(hub->Start());
  core::ManagerConfig manager_config;
  manager_config.registry = &registry;
  manager_config.telemetry = telemetry;
  core::Manager manager(hub, manager_config);
  Status status = manager.Start();
  if (!status.ok()) {
    hub->Shutdown();
    return status;
  }
  std::printf("[runtime] hub on port %u, waiting for %zu workerd(s)\n",
              hub->listen_port(), workers);
  std::fflush(stdout);
  if (Status wait_status = manager.WaitForWorkers(workers, 60.0);
      !wait_status.ok()) {
    manager.Stop();
    hub->Shutdown();
    return wait_status;
  }
  auto leg = DriveWorkload(manager, invocations);
  // Per-connection counters prove the traffic really crossed sockets.
  for (const auto& conn : hub->ConnectionsSnapshot()) {
    std::printf("[runtime] conn peer %llu %s: sent %llu B, recv %llu B, "
                "stalls %llu\n",
                static_cast<unsigned long long>(conn.peer),
                conn.remote_addr.c_str(),
                static_cast<unsigned long long>(conn.bytes_sent),
                static_cast<unsigned long long>(conn.bytes_received),
                static_cast<unsigned long long>(conn.backpressure_stalls));
  }
  manager.Stop();
  hub->Shutdown();
  return leg;
}

/// Tolerance for TCP vs in-process agreement (see EXPERIMENTS.md): the
/// smoke workload is execution-bound, so real-socket overhead must stay
/// inside 2x plus a fixed 0.5 s slack for connection setup.
bool WithinTolerance(const LegResult& inproc, const LegResult& tcp) {
  return tcp.makespan_s <= 2.0 * inproc.makespan_s + 0.5;
}

int Main(bool smoke, std::uint16_t listen_port, std::size_t ext_workers) {
  const std::size_t workers = smoke ? 2 : 4;
  const int invocations = smoke ? 48 : 500;
  serde::FunctionRegistry registry;
  if (Status status = apps::RegisterDemoFunctions(registry); !status.ok()) {
    std::printf("register failed: %s\n", status.ToString().c_str());
    return 1;
  }
  // With VINELET_TRACE set, the real runtime's spans (manager + workers
  // share the session telemetry) export to BENCH_fig8_runtime_leg.trace.json
  // for the same causal-schema gate the DES trace goes through.
  bench::TraceSession session("fig8_runtime_leg");
  if (listen_port != 0) {
    auto leg = RunAsHub(registry, session.telemetry(), listen_port,
                        ext_workers, invocations);
    if (!leg.ok()) {
      std::printf("[runtime] hub leg failed: %s\n",
                  leg.status().ToString().c_str());
      return 1;
    }
    std::printf("[runtime] cross-process: %d invocation(s), makespan %.3f s, "
                "mean exec %.4f s, failed %d\n",
                invocations, leg->makespan_s, leg->mean_exec_s, leg->failed);
    return leg->failed == 0 ? 0 : 1;
  }

  bench::Table table({"Leg", "Workers", "Invocations", "Makespan (s)",
                      "Mean exec (s)", "Failed"});
  auto inproc =
      RunInProcess(registry, session.telemetry(), workers, invocations);
  if (!inproc.ok()) {
    std::printf("[runtime] in-process leg failed: %s\n",
                inproc.status().ToString().c_str());
    return 1;
  }
  table.AddRow({"in-process", std::to_string(workers),
                std::to_string(invocations),
                FormatDouble(inproc->makespan_s, 3),
                FormatDouble(inproc->mean_exec_s, 4),
                std::to_string(inproc->failed)});
  auto tcp = RunOverTcp(registry, session.telemetry(), workers, invocations);
  if (!tcp.ok()) {
    std::printf("[runtime] tcp leg failed: %s\n",
                tcp.status().ToString().c_str());
    return 1;
  }
  table.AddRow({"tcp-loopback", std::to_string(workers),
                std::to_string(invocations),
                FormatDouble(tcp->makespan_s, 3),
                FormatDouble(tcp->mean_exec_s, 4),
                std::to_string(tcp->failed)});
  table.Print();
  const bool ok = inproc->failed == 0 && tcp->failed == 0 &&
                  WithinTolerance(*inproc, *tcp);
  std::printf("[runtime] tcp/in-process makespan ratio %.2f (tolerance: "
              "<= 2.0x + 0.5 s) -> %s\n",
              inproc->makespan_s > 0 ? tcp->makespan_s / inproc->makespan_s
                                     : 0.0,
              ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace runtime_leg

int main(int argc, char** argv) {
  using namespace vinelet;
  using namespace vinelet::sim;
  // --smoke: CI-sized run (one case, 500 invocations, 20 workers) — large
  // enough to exercise every trace-emitting code path, small enough for a
  // gating job.  The full run reproduces the paper's 10k x 100 setup.
  bool smoke = false;
  bool runtime = false;
  std::uint16_t listen_port = 0;
  std::size_t ext_workers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--runtime") == 0) {
      runtime = true;
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      runtime = true;
      listen_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      ext_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }
  if (runtime) return runtime_leg::Main(smoke, listen_port, ext_workers);
  const std::size_t invocations = smoke ? 500 : 10000;
  const std::size_t num_workers = smoke ? 20 : 100;
  std::printf("Reproduction of Figure 8: LNNI execution time vs inferences "
              "per invocation (%zu invocations, %zu workers%s)\n",
              invocations, num_workers, smoke ? ", smoke" : "");

  bench::TraceSession session("fig8_invocation_runtime");
  bench::JsonReport report("fig8_invocation_runtime");
  report.SetConfig("invocations=" + std::to_string(invocations) +
                   " workers=" + std::to_string(num_workers) +
                   " smoke=" + (smoke ? std::string("1") : std::string("0")));
  static const WorkloadCosts costs16 = LnniCosts(16);
  static const WorkloadCosts costs160 = LnniCosts(160);
  static const WorkloadCosts costs1600 = LnniCosts(1600);
  const struct {
    int inferences;
    const WorkloadCosts* costs;
    const char* paper_l3_vs_l1;
    const char* paper_l3_vs_l2;
  } cases[] = {{16, &costs16, "81%", "75%"},
               {160, &costs160, "41.3%", "41.2%"},
               {1600, &costs1600, "15.6%", "3.7%"}};

  // Most recent L3 run's virtual-time time-series, written next to the trace
  // when tracing is on.  The DES drives the same TimeSeriesStore the
  // runtime's BackgroundSampler feeds, so the JSONL schema is identical.
  std::string timeseries_jsonl;
  bench::Table table({"Inferences/invoc", "L1 (s)", "L2 (s)", "L3 (s)",
                      "L3 vs L1 (paper/sim)", "L3 vs L2 (paper/sim)",
                      "Mean invoc time (s)"});
  for (const auto& c : cases) {
    if (smoke && c.inferences != 16) continue;
    double makespans[3];
    double mean_runtime = 0;
    for (int i = 0; i < 3; ++i) {
      SimConfig config;
      config.level = static_cast<core::ReuseLevel>(i + 1);
      config.cluster.num_workers = num_workers;
      config.seed = 2024;
      config.telemetry = session.telemetry();
      telemetry::TimeSeriesConfig ts_config;
      ts_config.window_s = 60.0;  // virtual seconds per window
      telemetry::TimeSeriesStore ts_store(&session.telemetry()->metrics,
                                          ts_config);
      if (session.enabled()) config.timeseries = &ts_store;
      if (c.inferences == 16 && config.level == core::ReuseLevel::kL1) {
        // Paper note: "the run with L1 and 16 inferences uses a significant
        // amount (89%) of group 2 machines".
        config.cluster.group_fractions = {0.11, 0.89};
      }
      VineSim sim(config, BuildLnniWorkload(*c.costs, invocations));
      const SimResult result = sim.Run();
      makespans[i] = result.makespan;
      if (config.level == core::ReuseLevel::kL3) {
        mean_runtime = result.run_time.mean();
        if (session.enabled()) timeseries_jsonl = ts_store.ToJsonLines();
      }
      report.AddMeasured("makespan_s L" + std::to_string(i + 1) + " inf" +
                             std::to_string(c.inferences),
                         result.makespan);
    }
    table.AddRow(
        {std::to_string(c.inferences), FormatDouble(makespans[0], 0),
         FormatDouble(makespans[1], 0), FormatDouble(makespans[2], 0),
         std::string(c.paper_l3_vs_l1) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[0]),
         std::string(c.paper_l3_vs_l2) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[1]),
         FormatDouble(mean_runtime, 1)});
  }
  table.Print();
  std::printf("Paper mean invocation run times: 6.2 s (16), 40.9 s (160), "
              "379.7 s (1600).\n");
  std::printf("Shape check: the L3 speedup shrinks as invocations grow — "
              "the context-reload overhead is fixed per invocation.\n");

  if (session.enabled()) {
    // Fold the full traced span stream (all levels and cases) into a blame
    // report; Snapshot() leaves the spans for TraceSession::Finish to drain
    // into the Chrome trace.  The simulator's spans are disjoint within a
    // trace, so the embedded AggregatePhases totals must agree with the
    // blame attribution — scripts/check_critical_path.py enforces the same
    // 5-share-point tolerance bench_table5_breakdown applies.
    const std::vector<telemetry::SpanRecord> spans =
        session.telemetry()->tracer.Snapshot();
    std::vector<telemetry::SpanRecord> traced;
    traced.reserve(spans.size());
    for (const telemetry::SpanRecord& span : spans) {
      if (span.trace_id != 0) traced.push_back(span);
    }
    const telemetry::BlameReport blame =
        telemetry::CriticalPathAnalyzer().Analyze(traced);
    const telemetry::PhaseTotals agg = telemetry::AggregatePhases(traced);
    std::string blame_json = telemetry::BlameReportToJson(blame);
    while (!blame_json.empty() && blame_json.back() == '\n')
      blame_json.pop_back();
    std::string out = "{\"blame\":";
    out += blame_json;
    out += ",\"aggregate\":{";
    const std::pair<const char*, double> phases[] = {
        {"submit", agg.submit_s},
        {"dispatch", agg.dispatch_s},
        {"transfer", agg.transfer_s},
        {"unpack", agg.unpack_s},
        {"context-setup", agg.context_setup_s},
        {"deserialize", agg.deserialize_s},
        {"exec", agg.exec_s},
        {"result", agg.result_s}};
    for (std::size_t i = 0; i < 8; ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += phases[i].first;
      out += "\":";
      out += FormatDouble(phases[i].second, 9);
    }
    out += "}}\n";
    const std::string blame_path = "BENCH_fig8_invocation_runtime.blame.json";
    if (Status status = telemetry::WriteStringToFile(blame_path, out);
        status.ok()) {
      std::printf("[blame] wrote %s (%zu traces, %zu spans)\n",
                  blame_path.c_str(), blame.traces, blame.spans);
    } else {
      std::printf("[blame] failed to write %s: %s\n", blame_path.c_str(),
                  status.ToString().c_str());
    }
    const std::string ts_path =
        "BENCH_fig8_invocation_runtime.timeseries.jsonl";
    if (Status status =
            telemetry::WriteStringToFile(ts_path, timeseries_jsonl);
        status.ok()) {
      std::printf("[timeseries] wrote %s\n", ts_path.c_str());
    } else {
      std::printf("[timeseries] failed to write %s: %s\n", ts_path.c_str(),
                  status.ToString().c_str());
    }
  }
  report.Write();
  return 0;
}
