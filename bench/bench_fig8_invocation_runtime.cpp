// Figure 8: effect of increasing individual invocations' run time on LNNI's
// execution time.  10k invocations, 100 workers, 16/160/1600 inferences per
// invocation, three reuse levels.  The paper's Q2 finding: the shorter the
// invocation, the more context reuse matters.
//
// With VINELET_TRACE set this bench doubles as the observability smoke
// fixture: the simulator drives the windowed time-series sampler in virtual
// time (BENCH_fig8_invocation_runtime.timeseries.jsonl, same schema the
// runtime's BackgroundSampler emits), and the traced span stream is folded
// into a critical-path blame report cross-checked against AggregatePhases
// (BENCH_fig8_invocation_runtime.blame.json).  CI validates both with
// scripts/check_critical_path.py.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/export.hpp"
#include "telemetry/timeseries.hpp"

int main(int argc, char** argv) {
  using namespace vinelet;
  using namespace vinelet::sim;
  // --smoke: CI-sized run (one case, 500 invocations, 20 workers) — large
  // enough to exercise every trace-emitting code path, small enough for a
  // gating job.  The full run reproduces the paper's 10k x 100 setup.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t invocations = smoke ? 500 : 10000;
  const std::size_t num_workers = smoke ? 20 : 100;
  std::printf("Reproduction of Figure 8: LNNI execution time vs inferences "
              "per invocation (%zu invocations, %zu workers%s)\n",
              invocations, num_workers, smoke ? ", smoke" : "");

  bench::TraceSession session("fig8_invocation_runtime");
  bench::JsonReport report("fig8_invocation_runtime");
  report.SetConfig("invocations=" + std::to_string(invocations) +
                   " workers=" + std::to_string(num_workers) +
                   " smoke=" + (smoke ? std::string("1") : std::string("0")));
  static const WorkloadCosts costs16 = LnniCosts(16);
  static const WorkloadCosts costs160 = LnniCosts(160);
  static const WorkloadCosts costs1600 = LnniCosts(1600);
  const struct {
    int inferences;
    const WorkloadCosts* costs;
    const char* paper_l3_vs_l1;
    const char* paper_l3_vs_l2;
  } cases[] = {{16, &costs16, "81%", "75%"},
               {160, &costs160, "41.3%", "41.2%"},
               {1600, &costs1600, "15.6%", "3.7%"}};

  // Most recent L3 run's virtual-time time-series, written next to the trace
  // when tracing is on.  The DES drives the same TimeSeriesStore the
  // runtime's BackgroundSampler feeds, so the JSONL schema is identical.
  std::string timeseries_jsonl;
  bench::Table table({"Inferences/invoc", "L1 (s)", "L2 (s)", "L3 (s)",
                      "L3 vs L1 (paper/sim)", "L3 vs L2 (paper/sim)",
                      "Mean invoc time (s)"});
  for (const auto& c : cases) {
    if (smoke && c.inferences != 16) continue;
    double makespans[3];
    double mean_runtime = 0;
    for (int i = 0; i < 3; ++i) {
      SimConfig config;
      config.level = static_cast<core::ReuseLevel>(i + 1);
      config.cluster.num_workers = num_workers;
      config.seed = 2024;
      config.telemetry = session.telemetry();
      telemetry::TimeSeriesConfig ts_config;
      ts_config.window_s = 60.0;  // virtual seconds per window
      telemetry::TimeSeriesStore ts_store(&session.telemetry()->metrics,
                                          ts_config);
      if (session.enabled()) config.timeseries = &ts_store;
      if (c.inferences == 16 && config.level == core::ReuseLevel::kL1) {
        // Paper note: "the run with L1 and 16 inferences uses a significant
        // amount (89%) of group 2 machines".
        config.cluster.group_fractions = {0.11, 0.89};
      }
      VineSim sim(config, BuildLnniWorkload(*c.costs, invocations));
      const SimResult result = sim.Run();
      makespans[i] = result.makespan;
      if (config.level == core::ReuseLevel::kL3) {
        mean_runtime = result.run_time.mean();
        if (session.enabled()) timeseries_jsonl = ts_store.ToJsonLines();
      }
      report.AddMeasured("makespan_s L" + std::to_string(i + 1) + " inf" +
                             std::to_string(c.inferences),
                         result.makespan);
    }
    table.AddRow(
        {std::to_string(c.inferences), FormatDouble(makespans[0], 0),
         FormatDouble(makespans[1], 0), FormatDouble(makespans[2], 0),
         std::string(c.paper_l3_vs_l1) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[0]),
         std::string(c.paper_l3_vs_l2) + " / " +
             bench::Percent(1.0 - makespans[2] / makespans[1]),
         FormatDouble(mean_runtime, 1)});
  }
  table.Print();
  std::printf("Paper mean invocation run times: 6.2 s (16), 40.9 s (160), "
              "379.7 s (1600).\n");
  std::printf("Shape check: the L3 speedup shrinks as invocations grow — "
              "the context-reload overhead is fixed per invocation.\n");

  if (session.enabled()) {
    // Fold the full traced span stream (all levels and cases) into a blame
    // report; Snapshot() leaves the spans for TraceSession::Finish to drain
    // into the Chrome trace.  The simulator's spans are disjoint within a
    // trace, so the embedded AggregatePhases totals must agree with the
    // blame attribution — scripts/check_critical_path.py enforces the same
    // 5-share-point tolerance bench_table5_breakdown applies.
    const std::vector<telemetry::SpanRecord> spans =
        session.telemetry()->tracer.Snapshot();
    std::vector<telemetry::SpanRecord> traced;
    traced.reserve(spans.size());
    for (const telemetry::SpanRecord& span : spans) {
      if (span.trace_id != 0) traced.push_back(span);
    }
    const telemetry::BlameReport blame =
        telemetry::CriticalPathAnalyzer().Analyze(traced);
    const telemetry::PhaseTotals agg = telemetry::AggregatePhases(traced);
    std::string blame_json = telemetry::BlameReportToJson(blame);
    while (!blame_json.empty() && blame_json.back() == '\n')
      blame_json.pop_back();
    std::string out = "{\"blame\":";
    out += blame_json;
    out += ",\"aggregate\":{";
    const std::pair<const char*, double> phases[] = {
        {"submit", agg.submit_s},
        {"dispatch", agg.dispatch_s},
        {"transfer", agg.transfer_s},
        {"unpack", agg.unpack_s},
        {"context-setup", agg.context_setup_s},
        {"deserialize", agg.deserialize_s},
        {"exec", agg.exec_s},
        {"result", agg.result_s}};
    for (std::size_t i = 0; i < 8; ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += phases[i].first;
      out += "\":";
      out += FormatDouble(phases[i].second, 9);
    }
    out += "}}\n";
    const std::string blame_path = "BENCH_fig8_invocation_runtime.blame.json";
    if (Status status = telemetry::WriteStringToFile(blame_path, out);
        status.ok()) {
      std::printf("[blame] wrote %s (%zu traces, %zu spans)\n",
                  blame_path.c_str(), blame.traces, blame.spans);
    } else {
      std::printf("[blame] failed to write %s: %s\n", blame_path.c_str(),
                  status.ToString().c_str());
    }
    const std::string ts_path =
        "BENCH_fig8_invocation_runtime.timeseries.jsonl";
    if (Status status =
            telemetry::WriteStringToFile(ts_path, timeseries_jsonl);
        status.ok()) {
      std::printf("[timeseries] wrote %s\n", ts_path.c_str());
    } else {
      std::printf("[timeseries] failed to write %s: %s\n", ts_path.c_str(),
                  status.ToString().c_str());
    }
  }
  report.Write();
  return 0;
}
