#include "core/resources.hpp"

#include <cstdio>

namespace vinelet::core {

std::string Resources::ToString() const {
  if (IsAll()) return "{all}";
  char out[96];
  std::snprintf(out, sizeof(out), "{cores=%u, mem=%lluMB, disk=%lluMB}", cores,
                static_cast<unsigned long long>(memory_mb),
                static_cast<unsigned long long>(disk_mb));
  return out;
}

bool ResourceAllocator::CanAllocate(const Resources& request) const noexcept {
  if (request.IsAll()) return FullyIdle();
  return request.FitsWithin(free_);
}

Result<Resources> ResourceAllocator::Allocate(const Resources& request) {
  if (request.IsAll()) {
    if (!FullyIdle())
      return ResourceExhaustedError("whole-worker request on busy worker");
    Resources claimed = free_;
    free_ = Resources{0, 0, 0};
    // A zeroed `free_` must not read as "fully idle = All()" elsewhere;
    // FullyIdle compares against total, which is non-zero, so it is safe.
    return claimed;
  }
  if (!request.FitsWithin(free_))
    return ResourceExhaustedError("insufficient resources: need " +
                                  request.ToString() + ", free " +
                                  free_.ToString());
  free_.cores -= request.cores;
  free_.memory_mb -= request.memory_mb;
  free_.disk_mb -= request.disk_mb;
  return request;
}

Status ResourceAllocator::Release(const Resources& claimed) {
  if (claimed.cores + free_.cores > total_.cores ||
      claimed.memory_mb + free_.memory_mb > total_.memory_mb ||
      claimed.disk_mb + free_.disk_mb > total_.disk_mb)
    return FailedPreconditionError("release exceeds allocation: " +
                                   claimed.ToString());
  free_.cores += claimed.cores;
  free_.memory_mb += claimed.memory_mb;
  free_.disk_mb += claimed.disk_mb;
  return Status::Ok();
}

}  // namespace vinelet::core
