#include "core/scheduler.hpp"

namespace vinelet::core {

std::string_view SchedulerPolicyName(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kFirstFit: return "first_fit";
    case SchedulerPolicy::kAffinity: return "affinity";
  }
  return "unknown";
}

void AffinityIndex::Add(const std::string& library, WorkerId worker) {
  ++table_[library][worker];
}

void AffinityIndex::Remove(const std::string& library, WorkerId worker) {
  auto it = table_.find(library);
  if (it == table_.end()) return;
  auto worker_it = it->second.find(worker);
  if (worker_it == it->second.end()) return;
  if (--worker_it->second == 0) it->second.erase(worker_it);
  if (it->second.empty()) table_.erase(it);
}

void AffinityIndex::RemoveWorker(WorkerId worker) {
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.erase(worker);
    if (it->second.empty())
      it = table_.erase(it);
    else
      ++it;
  }
}

const AffinityIndex::WorkerCounts* AffinityIndex::Get(
    const std::string& library) const {
  auto it = table_.find(library);
  return it == table_.end() ? nullptr : &it->second;
}

bool AffinityIndex::Contains(const std::string& library,
                             WorkerId worker) const {
  const WorkerCounts* counts = Get(library);
  return counts != nullptr && counts->count(worker) > 0;
}

std::size_t AffinityIndex::CountFor(const std::string& library) const {
  const WorkerCounts* counts = Get(library);
  if (counts == nullptr) return 0;
  std::size_t total = 0;
  for (const auto& [worker, instances] : *counts) total += instances;
  return total;
}

AutoscaleAction DecideAutoscale(const SchedulerConfig& config,
                                const AutoscaleSignal& signal) {
  if (signal.queue_depth == 0) {
    // Idle.  An instance set whose share value (invocations served per warm
    // instance, Fig 11) never reached the floor is a preferred eviction
    // victim; a proven one is worth retaining for warm starts.  Callers
    // additionally gate eviction on the instance being idle and on another
    // library actually being starved.
    if (signal.ready_instances > 0 && signal.share_value < config.share_floor)
      return AutoscaleAction::kEvict;
    return AutoscaleAction::kHold;
  }

  // Backlog fits in warm or in-flight capacity: let affinity drain it.
  const std::size_t upcoming = signal.free_slots + signal.pending_slots;
  if (signal.queue_depth <= upcoming) return AutoscaleAction::kHold;

  // Spare, uncommitted capacity somewhere in the cluster: expanding there
  // displaces no warm instance, so take it as soon as the backlog outruns
  // the capacity already in flight.
  if (signal.workers_with_room > 0) return AutoscaleAction::kDeploy;

  // Fully committed cluster: one more instance must displace another
  // library's warm context.  Each instance — warm or already in flight —
  // tolerates a backlog of `steal_threshold` before that displacement is
  // worth it, so a backlog of Q settles at ~Q/steal_threshold instances
  // instead of one per queued invocation.  A cold library with nothing in
  // flight tolerates no backlog and displaces immediately.
  const std::size_t tolerated =
      (signal.ready_instances + signal.pending_instances) *
      config.steal_threshold;
  if (signal.queue_depth > tolerated) return AutoscaleAction::kDeploy;

  // Saturation override: an absolute backlog this deep always keeps at
  // least one deploy in flight, however tolerant the warm set is sized.
  if (signal.queue_depth >= config.autoscale_queue_high &&
      signal.pending_instances == 0)
    return AutoscaleAction::kDeploy;

  return AutoscaleAction::kHold;
}

std::size_t PickLeastLoaded(const DispatchCandidate* candidates,
                            std::size_t count) {
  std::size_t best = kNoCandidate;
  for (std::size_t i = 0; i < count; ++i) {
    if (candidates[i].free_slots == 0) continue;
    if (best == kNoCandidate ||
        candidates[i].free_slots > candidates[best].free_slots ||
        (candidates[i].free_slots == candidates[best].free_slots &&
         candidates[i].instance_id < candidates[best].instance_id))
      best = i;
  }
  return best;
}

}  // namespace vinelet::core
