// Manager: the control plane of the real runtime.
//
// Mirrors TaskVine's single-threaded manager: one event loop owns all
// scheduling state and consumes (a) worker messages and (b) API commands
// queued by application threads.  It implements the paper's three mechanisms
// end-to-end:
//
//  * discover — CreateLibraryFromFunctions packages function code
//    (serialized blobs), software dependencies (poncho-analyzed environment
//    tarball), shared input data and the context-setup binding into a
//    LibrarySpec (§3.2);
//  * distribute — content-addressed files flow to workers manager-direct or
//    via capped peer pushes chosen from the replica table (§3.3);
//  * retain — libraries are installed once per worker, invocations are
//    routed to instances with free slots, and empty libraries are evicted
//    when another function's invocations are starved (§3.4, §3.5.2).
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "core/blob_ref.hpp"
#include "core/future.hpp"
#include "core/introspect.hpp"
#include "core/protocol.hpp"
#include "core/scheduler.hpp"
#include "hash/hash_ring.hpp"
#include "net/network.hpp"
#include "poncho/analyzer.hpp"
#include "serde/function_registry.hpp"
#include "storage/broadcast.hpp"
#include "storage/content_store.hpp"
#include "storage/replica_table.hpp"
#include "telemetry/telemetry.hpp"

namespace vinelet::core {

struct ManagerConfig {
  /// Per-worker concurrent outbound transfer cap N (§3.3).
  unsigned worker_transfer_cap = 3;
  /// Manager concurrent sends of cached files (0 = unbounded).
  unsigned manager_transfer_cap = 0;
  /// Enable worker-to-worker transfers (Fig 3b); off = Fig 3a.
  bool peer_transfers = true;
  /// Retries before a task/invocation fails permanently (worker churn).
  int max_attempts = 3;
  /// A broadcast with no progress for this long re-probes every pending
  /// worker with an (idempotent) duplicate of chunk 0.  Live workers drop
  /// the duplicate; dead relays make the send fail, which is what triggers
  /// subtree recovery for a worker that crashed after its chunks were
  /// accepted by the transport but before it confirmed.
  double broadcast_probe_s = 0.5;
  /// A worker is flagged as a straggler by QueryStatus when its rolling p95
  /// invocation latency exceeds this multiple of the cluster median.
  double straggler_factor = 3.0;
  /// Invocation routing + library autoscaling policy (context affinity by
  /// default; kFirstFit restores the legacy first-ready-instance behaviour).
  SchedulerConfig scheduler;
  /// Declarative per-library latency/goodput targets.  When any target is
  /// configured the manager evaluates a sliding window of invocation
  /// resolutions and ships the verdicts inside ClusterStatus.
  telemetry::SloConfig slo;
  const serde::FunctionRegistry* registry = nullptr;  // default: Global()
  /// Shared telemetry (metrics registry + span tracer).  Pass the same
  /// handle to FactoryConfig so manager and worker metrics/spans land
  /// together; null = the manager owns a private instance.
  telemetry::Telemetry* telemetry = nullptr;
};

struct ManagerMetrics {
  std::uint64_t tasks_completed = 0;
  std::uint64_t invocations_completed = 0;
  std::uint64_t libraries_deployed = 0;  // cumulative instances installed
  std::uint64_t libraries_active = 0;
  std::uint64_t libraries_evicted = 0;
  std::uint64_t retries = 0;
  std::uint64_t peer_transfers = 0;
  std::uint64_t manager_transfers = 0;

  /// Pass-by-reference data plane: results that stayed on their producing
  /// worker (and the payload bytes the manager therefore never relayed),
  /// and refs garbage-collected after release.
  std::uint64_t ref_results = 0;
  std::uint64_t ref_result_bytes = 0;
  std::uint64_t refs_dropped = 0;

  /// Scheduler telemetry: did an invocation arrive to retained context
  /// (a ready instance of its library existed somewhere), and how often did
  /// the autoscaler recruit cold capacity beyond the warm affinity set.
  std::uint64_t affinity_hits = 0;
  std::uint64_t affinity_misses = 0;
  std::uint64_t steals = 0;
  std::uint64_t autoscale_deploys = 0;
  std::uint64_t autoscale_evicts = 0;

  /// Sum of worker memory currently occupied by retained contexts across
  /// all active libraries (reported by workers at LibraryReady, §2.1.3).
  std::uint64_t retained_context_bytes = 0;

  /// Setup-cost breakdown reported by the most recently readied library
  /// (transfer / unpack / context-setup), for overhead studies (Table 5).
  TimingBreakdown last_library_setup;

  /// Average invocations served per deployed library (Fig 11's share value).
  double AvgShareValue() const {
    return libraries_deployed == 0
               ? 0.0
               : static_cast<double>(invocations_completed) /
                     static_cast<double>(libraries_deployed);
  }
};

/// End-state invariant report produced by Manager::CheckQuiescent().
/// The chaos harness calls it after WaitAll: a drained cluster must hold no
/// queued/running work, no in-flight transfers or broadcasts, consistent
/// per-worker resource accounting, and gauges equal to their true values.
/// Transitional states (an instance still staging/installing/draining) are
/// reported as violations so callers poll until the cluster settles.
struct QuiescenceReport {
  bool quiescent = true;
  std::vector<std::string> violations;

  std::uint64_t outstanding_futures = 0;
  std::size_t task_queue = 0;
  std::size_t running_tasks = 0;
  std::size_t transfers = 0;
  std::size_t broadcasts = 0;
  std::size_t queued_calls = 0;
  std::size_t running_invocations = 0;
  std::size_t instances = 0;
  std::uint64_t libraries_active_gauge = 0;
  std::uint64_t retained_context_bytes_gauge = 0;
  /// (library, worker) pairs in the affinity index at audit time; the audit
  /// recomputes the whole table from the instance map and reports every
  /// stale or missing entry (e.g. one left behind by a worker death).
  std::size_t affinity_entries = 0;
  std::uint64_t affinity_warm_gauge = 0;
  /// Pass-by-reference audit: tracked refs (each must have ≥1 live replica
  /// and a consumer refcount matching the queued/running calls) and their
  /// total payload bytes retained on workers.
  std::size_t refs_tracked = 0;
  std::uint64_t ref_bytes = 0;

  std::string ToString() const;
};

/// Deployment knobs for CreateLibraryFromFunctions.
struct LibraryOptions {
  Resources resources = Resources::All();
  std::uint32_t slots = 1;
  ExecMode exec_mode = ExecMode::kDirect;
  /// Modeled size of each serialized function blob.
  std::size_t function_code_size = 4096;
};

class Manager {
 public:
  Manager(std::shared_ptr<net::Transport> network, ManagerConfig config = {});
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  Status Start();
  void Stop();

  // --- data plane (thread-safe, callable from any thread) -----------------

  /// Declares a blob as a named, content-addressed input file and stores
  /// its payload at the manager (the equivalent of vine.File(..., cache=,
  /// peer_transfer=) in Fig 5).
  storage::FileDecl DeclareBlob(const std::string& name, Blob payload,
                                storage::FileKind kind, bool cache = true,
                                bool peer_transfer = true, bool unpack = false);

  /// Distributes a declared blob to every currently-connected worker through
  /// the chunk-pipelined spanning tree (§3.3 + cut-through relay): the blob
  /// is split into `chunk_bytes` chunks, every receiver forwards chunk k to
  /// its tree children as soon as it arrives, and each destination
  /// reassembles and hash-verifies before its ContentStore admits the blob.
  /// Resolves once every worker holds a verified replica; workers that die
  /// mid-broadcast are dropped, and their orphaned subtrees are re-fed
  /// directly from the manager.  `chunk_bytes` 0 = default (4 MB);
  /// `fanout_cap` 0 = the configured worker_transfer_cap.
  FuturePtr BroadcastFile(const storage::FileDecl& decl,
                          std::uint64_t chunk_bytes = 0,
                          unsigned fanout_cap = 0);

  // --- function-context API (Fig 5) ---------------------------------------

  /// Discovers the context of `function_names`: serializes each function,
  /// optionally runs the poncho analyzer to package their software
  /// dependencies, and binds the setup function.  Additional shared input
  /// data can be attached with AddLibraryInput before InstallLibrary.
  Result<LibrarySpec> CreateLibraryFromFunctions(
      const std::string& library_name,
      const std::vector<std::string>& function_names,
      const std::string& setup_name = "",
      const serde::Value& setup_args = serde::Value(),
      const poncho::Analyzer* analyzer = nullptr,
      const LibraryOptions& options = LibraryOptions());

  void AddLibraryInput(LibrarySpec& spec, storage::FileDecl decl) const;

  /// Registers the library template; instances are deployed lazily when
  /// invocations arrive.
  Status InstallLibrary(LibrarySpec spec);

  // --- submission ----------------------------------------------------------

  /// Submits a stateless task (L1/L2 execution).  `inputs` with cache=false
  /// ride inline with the task on every execution; cache=true inputs are
  /// staged once per worker.
  FuturePtr SubmitTask(const std::string& function_name,
                       const serde::Value& args,
                       std::vector<storage::FileDecl> inputs,
                       Resources resources,
                       bool ship_serialized_function = true,
                       std::size_t function_code_size = 4096);

  /// Submits a FunctionCall against an installed library (L3 execution):
  /// only the arguments travel.
  FuturePtr SubmitCall(const std::string& library_name,
                       const std::string& function_name,
                       const serde::Value& args);

  // --- pass-by-reference data plane ---------------------------------------

  /// Materializes a ref's payload at the application: the manager fetches it
  /// from a surviving replica (nearest by hash ring) and caches it so
  /// repeated fetches of the same ref are free.  This is the only point
  /// where ref payload bytes cross the manager — DAG edges never do.
  Result<Blob> FetchRef(const BlobRef& ref, double timeout_s = 10.0);

  /// Declares the application done with a ref.  Once every already-dispatched
  /// consumer has settled, the manager sends DropBlob to every replica holder
  /// and forgets the ref; submitting new consumers after release races the
  /// drop and may fail with kDataLoss.
  Status ReleaseRef(const BlobRef& ref);

  // --- control -------------------------------------------------------------

  /// Blocks until every submitted task/call has resolved.
  /// timeout_s < 0 waits forever; kTimeout on expiry.
  Status WaitAll(double timeout_s = -1.0);

  /// Blocks until `count` workers are connected.
  Status WaitForWorkers(std::size_t count, double timeout_s = 30.0);

  std::size_t connected_workers() const;

  /// Legacy aggregate view, assembled from the telemetry registry.
  ManagerMetrics metrics() const;

  /// Collects a live ClusterStatus: manager-side queue depths and broadcast
  /// progress plus one StatusReplyMsg per connected worker, with straggler
  /// flags derived from rolling invocation latencies.  Blocks the calling
  /// thread until every worker answered (or died) or `timeout_s` expired.
  Result<ClusterStatus> QueryStatus(double timeout_s = 5.0);

  /// Debug API for the chaos harness: verifies on the manager thread that
  /// every scheduler structure has drained and every gauge matches the
  /// state it summarizes.  Blocks the calling thread; safe any time the
  /// manager is running.  See QuiescenceReport for what is checked.
  Result<QuiescenceReport> CheckQuiescent(double timeout_s = 5.0);

  /// The telemetry sink this manager reports into (shared or owned).
  telemetry::Telemetry& telemetry() const { return *telemetry_; }

 private:
  // ---- command plumbing (application thread -> manager thread) ----
  struct InstallCmd {
    LibrarySpec spec;
  };
  struct TaskCmd {
    TaskSpec spec;  // inline_files empty; inputs split at enqueue
    FuturePtr future;
    double submitted_s = 0;  // telemetry clock at SubmitTask
  };
  struct CallCmd {
    std::string library;
    std::string function;
    Blob args;
    FuturePtr future;
    double submitted_s = 0;
  };
  struct BroadcastCmd {
    storage::FileDecl decl;
    std::uint64_t chunk_bytes = 0;
    unsigned fanout_cap = 0;
    FuturePtr future;
    double submitted_s = 0;
  };
  /// Synthesized when the network reports an endpoint vanished (abrupt
  /// worker death with no Goodbye).
  struct DisconnectCmd {
    WorkerId worker = 0;
  };
  /// Introspection request from an application thread (QueryStatus).
  struct StatusCmd {
    std::shared_ptr<std::promise<Result<ClusterStatus>>> promise;
  };
  /// Invariant audit request from an application thread (CheckQuiescent).
  struct QuiescenceCmd {
    std::shared_ptr<std::promise<QuiescenceReport>> promise;
  };
  /// Application thread wants a ref's payload bytes (FetchRef).
  struct FetchRefCmd {
    BlobRef ref;
    std::shared_ptr<std::promise<Result<Blob>>> promise;
  };
  /// Application thread is done with a ref (ReleaseRef).
  struct ReleaseRefCmd {
    BlobRef ref;
  };
  using Command =
      std::variant<InstallCmd, TaskCmd, CallCmd, BroadcastCmd, DisconnectCmd,
                   StatusCmd, QuiescenceCmd, FetchRefCmd, ReleaseRefCmd>;

  // ---- scheduler state (manager thread only) ----
  struct WorkerState {
    ResourceAllocator alloc;
    std::set<LibraryInstanceId> instances;
    std::set<TaskId> running_tasks;
    /// Rolling window of invocation round-trip latencies (newest last,
    /// capped at kLatencyWindow) feeding QueryStatus straggler detection.
    std::deque<double> invocation_latency_s;
    explicit WorkerState(Resources total) : alloc(total) {}
  };
  static constexpr std::size_t kLatencyWindow = 64;

  struct PendingTask {
    TaskSpec spec;  // inputs = cached decls only
    std::vector<storage::FileDecl> inline_decls;
    FuturePtr future;
    int attempts = 0;
    double submitted_s = 0;  // telemetry clock at SubmitTask
    double queued_s = 0;     // telemetry clock at (re)enqueue
    /// Causal trace of this task; root span emitted at submit, advanced at
    /// each dispatch so downstream worker spans chain off it.
    telemetry::TraceContext trace;
  };

  struct RunningTask {
    PendingTask task;
    WorkerId worker = 0;
    Resources claimed;
    std::size_t pending_files = 0;
    double staged_at = 0;  // telemetry clock when staging began
    double transfer_wait_s = 0;
  };

  struct PendingCall {
    InvocationId id = 0;
    std::string library;
    std::string function;
    Blob args;
    /// Arguments that arrived as WrapRef dicts, discovered once at submit.
    /// `source` is stamped at each dispatch (it names the replica the worker
    /// fetches from), and kept here so a source death can cancel the fetch.
    std::vector<RefArg> ref_args;
    FuturePtr future;
    int attempts = 0;
    double submitted_s = 0;
    double queued_s = 0;
    telemetry::TraceContext trace;
  };

  struct LibraryInfo {
    LibrarySpec spec;
    std::deque<PendingCall> queue;
  };

  enum class InstanceState { kStaging, kInstalling, kReady, kDraining };

  struct InstanceInfo {
    LibraryInstanceId id = 0;
    std::string library;
    WorkerId worker = 0;
    InstanceState state = InstanceState::kStaging;
    Resources claimed;
    std::uint32_t slots = 1;
    std::uint32_t slots_in_use = 0;
    std::size_t pending_files = 0;
    std::map<InvocationId, PendingCall> running;
    std::uint64_t served = 0;
    std::uint64_t context_memory = 0;  // reported at LibraryReady
    /// Trace of the call that triggered this deployment; library staging and
    /// install spans chain off it.
    telemetry::TraceContext trace;
  };

  struct TransferKey {
    WorkerId dest;
    hash::ContentId id;
    auto operator<=>(const TransferKey&) const = default;
  };

  /// Something waiting for a file to land on a worker.
  struct Waiter {
    bool is_instance = false;
    std::uint64_t id = 0;  // TaskId or LibraryInstanceId
  };

  struct Transfer {
    storage::FileDecl decl;
    storage::SourceChoice source;
    std::vector<Waiter> waiters;
    int attempts = 0;
    /// False when parked because every source was saturated; retried from
    /// TrySchedule.
    bool started = true;
    double started_s = 0;  // telemetry clock when the send went out
    /// Trace of the first waiter; the transfer span and the worker-side
    /// admission span chain off it.
    telemetry::TraceContext trace;
  };

  /// One in-flight chunked broadcast (manager thread only).
  struct BroadcastState {
    storage::FileDecl decl;
    std::uint64_t chunk_bytes = 0;
    std::uint64_t num_chunks = 0;
    /// Snapshot of the worker set at launch; plan indices map into it.
    std::vector<WorkerId> order;
    storage::PipelinePlan plan;
    std::set<WorkerId> pending;  // destinations not yet confirmed
    std::map<WorkerId, int> attempts;
    FuturePtr future;
    double started_s = 0;
    double last_probe_s = 0;
    /// Root trace of the broadcast; every PutChunkMsg (including probes and
    /// direct resends) carries it so relay spans link back here.
    telemetry::TraceContext trace;
  };

  /// One manager-tracked pass-by-reference result (manager thread only).
  /// Placement truth lives in replicas_; this records the payload size, how
  /// many dispatched-or-queued consumers still reference it, and whether the
  /// application released it (the GC precondition).
  struct RefInfo {
    std::uint64_t size = 0;
    std::uint64_t pending_consumers = 0;
    bool released = false;
  };

  /// One in-flight FetchRef materialization (manager thread only): the
  /// replica currently serving it, holders already tried, and the blocked
  /// application threads.
  struct ManagerFetch {
    BlobRef ref;
    WorkerId source = 0;
    std::set<WorkerId> tried;
    std::vector<std::shared_ptr<std::promise<Result<Blob>>>> waiters;
  };

  /// One in-flight QueryStatus (manager thread only).  A second query that
  /// arrives while one is active resolves the first with partial data.
  struct StatusQuery {
    std::shared_ptr<std::promise<Result<ClusterStatus>>> promise;
    ClusterStatus status;
    std::set<WorkerId> awaiting;
    bool active = false;
  };

  // ---- manager-thread methods ----
  void Run();
  void HandleFrame(const net::Frame& frame);
  void HandleCommand(Command command);
  void TrySchedule();
  bool TryScheduleTask(PendingTask& task);
  void TryScheduleLibrary(const std::string& library_name);
  bool TryDispatchCall(LibraryInfo& info);
  bool TryDeployInstance(const std::string& library_name);
  bool TryEvictEmptyLibrary(const std::string& for_library);

  /// Observable inputs to one autoscaling decision for `library_name`.
  AutoscaleSignal BuildAutoscaleSignal(const std::string& library_name) const;
  /// Moves up to min(free slots, max_batch) queued calls of the instance's
  /// library onto it — one RunInvocationMsg when a single call fits, one
  /// RunInvocationBatchMsg otherwise.  Returns the number dispatched.
  std::size_t DispatchCallsTo(InstanceInfo& instance,
                              std::deque<PendingCall>& queue);
  /// Re-publishes the warm-instance gauge after an affinity mutation.
  void SyncAffinityGauge();

  /// Begins staging `decl` onto `worker` (or joins an in-flight transfer).
  /// Returns true if the file still needs to arrive (waiter recorded).
  /// Returns false — with NO waiter recorded — when the file cannot be
  /// staged at all (payload missing from the manager store); callers either
  /// dispatch without the file (the worker fails it cleanly) or fail the
  /// waiter, but must never wait on a transfer that was never started.
  bool StageFile(const storage::FileDecl& decl, WorkerId worker,
                 Waiter waiter, telemetry::TraceContext trace);
  void CompleteTransfer(WorkerId worker, const hash::ContentId& id,
                        bool success, const std::string& error);

  // ---- chunked pipelined broadcast (manager thread) ----
  void StartBroadcast(BroadcastCmd cmd);
  /// Sends every chunk of `state.decl` straight from the manager to `worker`
  /// with no relay route (recovery path; reassembly dedupes overlaps).
  void ResendBroadcastDirect(BroadcastState& state, WorkerId worker);
  void CompleteBroadcastReady(WorkerId worker, const hash::ContentId& id);
  void FailBroadcastWorker(WorkerId worker, const hash::ContentId& id,
                           const std::string& error);
  /// Removes the dead worker from every active broadcast and re-feeds its
  /// orphaned subtree directly from the manager.
  void HandleBroadcastWorkerDeath(WorkerId worker);
  void FinishBroadcast(std::map<hash::ContentId, BroadcastState>::iterator it);
  void ProbeBroadcasts();
  void DispatchTask(RunningTask& running);
  void DispatchInstall(InstanceInfo& instance);
  void FeedInstance(InstanceInfo& instance);

  /// Send failures and Goodbyes enqueue here; ProcessDeadWorkers reaps them
  /// between event batches so no scheduling loop ever mutates the worker
  /// table out from under itself.
  void ProcessDeadWorkers();
  void OnWorkerDead(WorkerId worker);
  void StartParkedTransfers();
  /// Permanently fails one transfer waiter: unwinds the placement (worker
  /// sets, claimed resources) and, for task waiters, resolves the future.
  /// Staging instances are discarded; their calls stay queued and retry.
  void FailWaiter(const Waiter& waiter, const Status& status);
  void RunQuiescenceCheck(QuiescenceCmd cmd);
  void ResolveTask(TaskId id, Result<Outcome> outcome);
  void ResolveCall(InstanceInfo& instance, InvocationId id,
                   Result<Outcome> outcome);
  void RequeueCall(PendingCall call);
  void FinishOne();  // decrement outstanding + notify WaitAll

  // ---- pass-by-reference data plane (manager thread) ----
  /// Discovers WrapRef dicts in the call's argument list (once, at submit)
  /// and counts the call as a pending consumer of each tracked ref.
  void RegisterRefArgs(PendingCall& call);
  /// The call resolved (success or permanent failure): release its claim on
  /// every ref argument and GC refs that became droppable.
  void SettleCallRefs(const PendingCall& call);
  /// Sends DropBlob to every holder and forgets the ref, iff it was released
  /// and no dispatched/queued consumer still references it.
  void MaybeDropRef(const hash::ContentId& id);
  /// Nearest replica of `id` by hash-ring order, excluding `target`;
  /// 0 when no live worker holds it.
  WorkerId PickRefSource(const hash::ContentId& id, WorkerId target) const;
  void HandleFetchRefCmd(FetchRefCmd cmd);
  /// Directs the fetch at the next untried holder; false when none is left.
  bool AdvanceManagerFetch(ManagerFetch& fetch);
  void HandleManagerBlobData(BlobDataMsg msg);

  // ---- live introspection (manager thread) ----
  void StartStatusQuery(StatusCmd cmd);
  void HandleStatusReply(WorkerId worker, const StatusReplyMsg& msg);
  void FinalizeStatusQuery();

  Status SendTo(WorkerId worker, const Message& message);

  /// Time on the shared telemetry clock (span and queue-wait time base).
  double Now() const { return telemetry_->clock.Now(); }

  // ---- shared (mutex-guarded) ----
  std::shared_ptr<net::Transport> network_;
  ManagerConfig config_;
  const serde::FunctionRegistry* registry_;

  std::shared_ptr<net::Inbox> inbox_;
  Channel<Command> commands_;
  std::thread thread_;
  bool started_ = false;

  storage::ContentStore manager_store_;  // declared file payloads

  mutable std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::uint64_t outstanding_ = 0;
  std::size_t worker_count_ = 0;

  // ---- telemetry ----
  // All counters live in the (possibly shared) registry; the struct caches
  // the handles so hot paths skip the name lookup.  Gauges are only written
  // from the manager thread, so their read-modify-write clamps are safe.
  std::unique_ptr<telemetry::Telemetry> owned_telemetry_;  // unconfigured case
  telemetry::Telemetry* telemetry_ = nullptr;
  struct MetricHandles {
    telemetry::Counter* tasks_completed = nullptr;
    telemetry::Counter* invocations_completed = nullptr;
    telemetry::Counter* libraries_deployed = nullptr;
    telemetry::Counter* libraries_evicted = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* peer_transfers = nullptr;
    telemetry::Counter* manager_transfers = nullptr;
    telemetry::Counter* peer_transfer_bytes = nullptr;
    telemetry::Counter* manager_transfer_bytes = nullptr;
    telemetry::Counter* ref_results = nullptr;
    telemetry::Counter* ref_result_bytes = nullptr;
    telemetry::Counter* refs_dropped = nullptr;
    // Broadcast recovery traffic, kept separate from the admission-time
    // payload accounting so retries never double-count broadcast bytes.
    telemetry::Counter* broadcast_resends = nullptr;
    telemetry::Counter* broadcast_resend_bytes = nullptr;
    telemetry::Counter* affinity_hits = nullptr;
    telemetry::Counter* affinity_misses = nullptr;
    telemetry::Counter* steals = nullptr;
    telemetry::Counter* autoscale_deploys = nullptr;
    telemetry::Counter* autoscale_evicts = nullptr;
    telemetry::Gauge* affinity_warm_instances = nullptr;
    telemetry::Gauge* libraries_active = nullptr;
    telemetry::Gauge* retained_context_bytes = nullptr;
    telemetry::Gauge* setup_transfer_s = nullptr;
    telemetry::Gauge* setup_worker_s = nullptr;
    telemetry::Gauge* setup_deserialize_s = nullptr;
    telemetry::Gauge* setup_context_s = nullptr;
    telemetry::Gauge* setup_exec_s = nullptr;
    telemetry::Histogram* task_roundtrip_s = nullptr;
    telemetry::Histogram* invocation_roundtrip_s = nullptr;
    telemetry::Histogram* dispatch_batch_size = nullptr;
  } m_;

  std::atomic<std::uint64_t> next_task_id_{1};
  std::atomic<std::uint64_t> next_invocation_id_{1};

  // ---- manager-thread-only state ----
  std::map<WorkerId, WorkerState> workers_;
  hash::HashRing ring_;
  /// Which workers retain a ready instance of each library; every dispatch
  /// routes through it and CheckQuiescent audits it against instances_.
  AffinityIndex affinity_;
  storage::ReplicaTable replicas_;
  std::map<std::string, LibraryInfo> libraries_;
  std::map<LibraryInstanceId, InstanceInfo> instances_;
  std::deque<PendingTask> task_queue_;
  std::map<TaskId, RunningTask> running_tasks_;
  std::map<TransferKey, Transfer> transfers_;
  std::map<hash::ContentId, BroadcastState> broadcasts_;
  /// Pass-by-reference results the cluster still retains (see RefInfo).
  std::map<hash::ContentId, RefInfo> refs_;
  /// FetchRef materializations awaiting a BlobDataMsg reply.
  std::map<hash::ContentId, ManagerFetch> manager_fetches_;
  std::set<WorkerId> pending_dead_;
  LibraryInstanceId next_instance_id_ = 1;
  StatusQuery status_query_;
  /// Sliding-window SLO evaluator; fed on the manager thread at every
  /// invocation resolution, read by StartStatusQuery.
  telemetry::SloMonitor slo_monitor_;
};

}  // namespace vinelet::core
