// Live introspection: cluster status scatter/gather over StatusRequest/
// StatusReply and the quiescence checker.
#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Live introspection.
// ---------------------------------------------------------------------------

namespace {

double RollingP95(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  std::vector<double> sorted(window.begin(), window.end());
  const auto rank = (sorted.size() - 1) * 95 / 100;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

}  // namespace

void Manager::StartStatusQuery(StatusCmd cmd) {
  // A new query preempts an unfinished one: resolve the old promise with
  // whatever arrived so far rather than leaving its caller to time out.
  if (status_query_.active) FinalizeStatusQuery();

  status_query_ = StatusQuery{};
  status_query_.promise = std::move(cmd.promise);
  status_query_.active = true;

  ClusterStatus& status = status_query_.status;
  status.collected_s = Now();
  status.task_queue_depth = task_queue_.size();
  status.straggler_factor = config_.straggler_factor;
  for (const auto& [name, info] : libraries_)
    status.library_queues.push_back({name, info.queue.size()});
  status.scheduler.policy =
      std::string(SchedulerPolicyName(config_.scheduler.policy));
  status.scheduler.affinity_hits = m_.affinity_hits->Value();
  status.scheduler.affinity_misses = m_.affinity_misses->Value();
  status.scheduler.steals = m_.steals->Value();
  status.scheduler.autoscale_deploys = m_.autoscale_deploys->Value();
  status.scheduler.autoscale_evicts = m_.autoscale_evicts->Value();
  {
    const telemetry::HistogramSnapshot batches =
        m_.dispatch_batch_size->Snapshot();
    status.scheduler.batches_sent = batches.count;
    status.scheduler.avg_batch_size = batches.Mean();
    status.scheduler.max_batch_size =
        static_cast<std::uint64_t>(batches.max);
  }
  for (const auto& [library, workers] : affinity_.table()) {
    AffinitySetStatus set;
    set.library = library;
    for (const auto& [worker, count] : workers) set.workers.push_back(worker);
    status.scheduler.affinity_sets.push_back(std::move(set));
  }
  for (const auto& [id, state] : broadcasts_) {
    BroadcastStatus b;
    b.name = state.decl.name;
    b.id = id;
    b.num_chunks = state.num_chunks;
    b.pending.assign(state.pending.begin(), state.pending.end());
    status.broadcasts.push_back(std::move(b));
  }
  status.slo = slo_monitor_.Snapshot(Now());

  // Skeleton per worker with the manager-side latency view; the wire reply
  // fills in the worker-side fields.
  for (const auto& [id, state] : workers_) {
    WorkerStatus w;
    w.id = id;
    w.p95_latency_s = RollingP95(state.invocation_latency_s);
    w.latency_samples = state.invocation_latency_s.size();
    status.workers.push_back(std::move(w));
    status_query_.awaiting.insert(id);
  }
  for (auto it = status_query_.awaiting.begin();
       it != status_query_.awaiting.end();) {
    const WorkerId id = *it;
    if (SendTo(id, StatusRequestMsg{}).ok()) {
      ++it;
    } else {
      // Send failed: the worker is gone and will be reaped, but its reply
      // will never come — don't block the query on it.
      std::erase_if(status_query_.status.workers,
                    [&](const WorkerStatus& w) { return w.id == id; });
      it = status_query_.awaiting.erase(it);
    }
  }
  if (status_query_.awaiting.empty()) FinalizeStatusQuery();
}

void Manager::HandleStatusReply(WorkerId worker, const StatusReplyMsg& msg) {
  if (!status_query_.active) return;
  if (status_query_.awaiting.erase(worker) == 0) return;  // stale reply
  for (WorkerStatus& w : status_query_.status.workers) {
    if (w.id != worker) continue;
    w.inbox_depth = msg.inbox_depth;
    w.tasks_executed = msg.tasks_executed;
    w.cache = msg.cache;
    w.assemblies = msg.assemblies;
    w.libraries = msg.libraries;
    w.refs_held = msg.refs_held;
    w.p2p_fetch_bytes = msg.p2p_fetch_bytes;
    w.p2p_serve_bytes = msg.p2p_serve_bytes;
    w.relayed_result_bytes = msg.relayed_result_bytes;
    w.arena_hwm_bytes = msg.arena_hwm_bytes;
    break;
  }
  if (status_query_.awaiting.empty()) FinalizeStatusQuery();
}

void Manager::FinalizeStatusQuery() {
  if (!status_query_.active) return;
  ClusterStatus& status = status_query_.status;

  // Straggler detection: a worker whose rolling p95 exceeds
  // straggler_factor × the cluster median p95 (over workers with samples).
  std::vector<double> p95s;
  for (const WorkerStatus& w : status.workers)
    if (w.latency_samples > 0) p95s.push_back(w.p95_latency_s);
  if (!p95s.empty()) {
    const auto mid = p95s.size() / 2;
    std::nth_element(p95s.begin(),
                     p95s.begin() + static_cast<std::ptrdiff_t>(mid),
                     p95s.end());
    status.cluster_median_p95_s = p95s[mid];
    for (WorkerStatus& w : status.workers) {
      w.straggler = w.latency_samples > 0 && status.cluster_median_p95_s > 0 &&
                    w.p95_latency_s >
                        status.straggler_factor * status.cluster_median_p95_s;
    }
  }

  // Transport-level counters: which sockets the manager's traffic actually
  // rode, how much, and whether senders ever stalled on backpressure.
  status.connections = network_->ConnectionsSnapshot();

  status_query_.promise->set_value(std::move(status));
  status_query_ = StatusQuery{};
}

void Manager::RunQuiescenceCheck(QuiescenceCmd cmd) {
  // Reap deaths the transport has already signalled, so the audit sees the
  // settled state rather than a snapshot taken mid-recovery.
  ProcessDeadWorkers();

  QuiescenceReport report;
  auto violate = [&](std::string what) {
    report.quiescent = false;
    report.violations.push_back(std::move(what));
  };

  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    report.outstanding_futures = outstanding_;
  }
  if (report.outstanding_futures != 0)
    violate(std::to_string(report.outstanding_futures) +
            " submitted futures still unresolved");

  report.task_queue = task_queue_.size();
  if (report.task_queue != 0)
    violate(std::to_string(report.task_queue) + " tasks still queued");
  report.running_tasks = running_tasks_.size();
  if (report.running_tasks != 0)
    violate(std::to_string(report.running_tasks) +
            " entries leaked in running_tasks_");
  report.transfers = transfers_.size();
  if (report.transfers != 0)
    violate(std::to_string(report.transfers) +
            " transfers still in flight (or leaked)");
  report.broadcasts = broadcasts_.size();
  if (report.broadcasts != 0)
    violate(std::to_string(report.broadcasts) + " broadcasts still active");

  for (const auto& [name, info] : libraries_) {
    report.queued_calls += info.queue.size();
    if (!info.queue.empty())
      violate("library " + name + " still has " +
              std::to_string(info.queue.size()) + " queued calls");
  }

  // Instances may legitimately outlive the workload (retained context is
  // the point), but they must be settled: kReady, no running invocations,
  // no claimed slots, nothing mid-stage.  Transitional states are reported
  // so callers poll until removal/readiness lands.
  report.instances = instances_.size();
  std::size_t expected_active = 0;
  double expected_context_bytes = 0.0;
  for (const auto& [id, instance] : instances_) {
    const std::string label =
        "instance " + instance.library + "#" + std::to_string(id);
    report.running_invocations += instance.running.size();
    if (!instance.running.empty())
      violate(label + " still has " +
              std::to_string(instance.running.size()) +
              " running invocations");
    if (instance.slots_in_use != instance.running.size())
      violate(label + " slots_in_use=" +
              std::to_string(instance.slots_in_use) + " but " +
              std::to_string(instance.running.size()) +
              " running invocations");
    switch (instance.state) {
      case InstanceState::kStaging:
        violate(label + " still staging");
        break;
      case InstanceState::kInstalling:
        violate(label + " still installing");
        break;
      case InstanceState::kDraining:
        violate(label + " still draining");
        break;
      case InstanceState::kReady:
        if (instance.pending_files != 0)
          violate(label + " ready but pending_files=" +
                  std::to_string(instance.pending_files));
        break;
    }
    if (instance.state == InstanceState::kReady ||
        instance.state == InstanceState::kDraining) {
      ++expected_active;
      expected_context_bytes += static_cast<double>(instance.context_memory);
    }
    auto worker_it = workers_.find(instance.worker);
    if (worker_it == workers_.end() ||
        !worker_it->second.instances.contains(id))
      violate(label + " not linked to worker " +
              std::to_string(instance.worker));
  }

  // Gauges must equal the values recomputed from first principles.
  report.libraries_active_gauge =
      static_cast<std::uint64_t>(m_.libraries_active->Value());
  if (m_.libraries_active->Value() !=
      static_cast<double>(expected_active))
    violate("libraries_active gauge = " +
            std::to_string(report.libraries_active_gauge) + " but " +
            std::to_string(expected_active) + " ready/draining instances");
  report.retained_context_bytes_gauge =
      static_cast<std::uint64_t>(m_.retained_context_bytes->Value());
  if (m_.retained_context_bytes->Value() != expected_context_bytes)
    violate("retained_context_bytes gauge = " +
            std::to_string(report.retained_context_bytes_gauge) +
            " but instances retain " +
            std::to_string(static_cast<std::uint64_t>(
                expected_context_bytes)) +
            " bytes");

  // Affinity sets must equal what the instance table implies: exactly one
  // entry per kReady instance, keyed by its (library, worker).  A stale
  // entry (e.g. left behind by a worker death) would route invocations at
  // vanished context; a missing one hides warm capacity.
  AffinityIndex expected_affinity;
  for (const auto& [id, instance] : instances_)
    if (instance.state == InstanceState::kReady)
      expected_affinity.Add(instance.library, instance.worker);
  for (const auto& [library, workers] : affinity_.table()) {
    report.affinity_entries += workers.size();
    const AffinityIndex::WorkerCounts* expected =
        expected_affinity.Get(library);
    for (const auto& [worker, count] : workers) {
      std::uint32_t expected_count = 0;
      if (expected != nullptr) {
        auto expected_it = expected->find(worker);
        if (expected_it != expected->end())
          expected_count = expected_it->second;
      }
      if (expected_count == 0)
        violate("stale affinity entry: " + library + " -> worker " +
                std::to_string(worker) + " (no ready instance there)");
      else if (expected_count != count)
        violate("affinity count for " + library + " on worker " +
                std::to_string(worker) + " = " + std::to_string(count) +
                " but " + std::to_string(expected_count) +
                " ready instances");
    }
  }
  std::size_t expected_warm = 0;
  for (const auto& [library, workers] : expected_affinity.table())
    for (const auto& [worker, count] : workers) {
      expected_warm += count;
      if (!affinity_.Contains(library, worker))
        violate("missing affinity entry: " + library + " -> worker " +
                std::to_string(worker));
    }
  report.affinity_warm_gauge =
      static_cast<std::uint64_t>(m_.affinity_warm_instances->Value());
  if (m_.affinity_warm_instances->Value() !=
      static_cast<double>(expected_warm))
    violate("affinity_warm_instances gauge = " +
            std::to_string(report.affinity_warm_gauge) + " but " +
            std::to_string(expected_warm) + " ready instances");

  // Per-worker accounting: the membership sets must be mirrored by the
  // scheduler tables, and the recorded claims must exactly explain the
  // allocator's non-free resources.
  for (const auto& [worker_id, state] : workers_) {
    const std::string label = "worker " + std::to_string(worker_id);
    for (TaskId task_id : state.running_tasks)
      if (!running_tasks_.contains(task_id))
        violate(label + " lists unknown running task " +
                std::to_string(task_id));
    for (LibraryInstanceId inst_id : state.instances)
      if (!instances_.contains(inst_id))
        violate(label + " lists unknown instance " +
                std::to_string(inst_id));
    Resources claimed{0, 0, 0};
    auto add_claim = [&claimed](const Resources& r) {
      claimed.cores += r.cores;
      claimed.memory_mb += r.memory_mb;
      claimed.disk_mb += r.disk_mb;
    };
    for (const auto& [_, running] : running_tasks_)
      if (running.worker == worker_id) add_claim(running.claimed);
    for (const auto& [_, instance] : instances_)
      if (instance.worker == worker_id) add_claim(instance.claimed);
    const Resources total = state.alloc.total();
    const Resources expected_free{total.cores - claimed.cores,
                                  total.memory_mb - claimed.memory_mb,
                                  total.disk_mb - claimed.disk_mb};
    if (claimed.cores > total.cores || claimed.memory_mb > total.memory_mb ||
        claimed.disk_mb > total.disk_mb) {
      violate(label + " oversubscribed: claims " + claimed.ToString() +
              " of " + total.ToString());
    } else if (!(state.alloc.free() == expected_free)) {
      violate(label + " allocator free=" + state.alloc.free().ToString() +
              " but recorded claims imply " + expected_free.ToString());
    }
  }

  // Pass-by-reference audit: every tracked ref must still have a live
  // replica, and its consumer refcount must equal the consumers actually
  // queued or running — a drifted count either drops a payload a consumer is
  // about to fetch or pins it forever.  No FetchRef may be outstanding.
  report.refs_tracked = refs_.size();
  std::map<hash::ContentId, std::uint64_t> expected_consumers;
  for (const auto& [name, info] : libraries_)
    for (const auto& call : info.queue)
      for (const RefArg& arg : call.ref_args)
        ++expected_consumers[arg.ref.id];
  for (const auto& [id, instance] : instances_)
    for (const auto& [_, call] : instance.running)
      for (const RefArg& arg : call.ref_args)
        ++expected_consumers[arg.ref.id];
  for (const auto& [id, info] : refs_) {
    report.ref_bytes += info.size;
    const std::string label = "ref " + id.ShortHex();
    if (replicas_.ReplicaCount(id) == 0)
      violate(label + " tracked but no live replica holds it");
    std::uint64_t expected = 0;
    auto expected_it = expected_consumers.find(id);
    if (expected_it != expected_consumers.end()) expected = expected_it->second;
    if (info.pending_consumers != expected)
      violate(label + " counts " + std::to_string(info.pending_consumers) +
              " pending consumers but " + std::to_string(expected) +
              " are queued/running");
  }
  if (!manager_fetches_.empty())
    violate(std::to_string(manager_fetches_.size()) +
            " manager ref fetches still in flight");

  cmd.promise->set_value(std::move(report));
}

}  // namespace vinelet::core
