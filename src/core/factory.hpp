// Factory: acquires and releases workers.
//
// In TaskVine the factory process keeps the requested number of workers
// alive in the cluster (paper §3.6); here it owns Worker threads.  Tests use
// it for fault injection (KillWorker) and elasticity (SpawnWorker), matching
// the paper's worker-churn scenarios.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/worker.hpp"
#include "net/network.hpp"

namespace vinelet::core {

struct FactoryConfig {
  std::size_t initial_workers = 1;
  Resources worker_resources{32, 64 * 1024, 64 * 1024};
  std::uint64_t cache_capacity_bytes = 0;
  const serde::FunctionRegistry* registry = nullptr;
  /// Shared telemetry handed to every spawned worker (usually the same
  /// instance the manager reports into).  Null = each worker owns its own.
  telemetry::Telemetry* telemetry = nullptr;
  /// Fault injector handed to every spawned worker (chaos harness).
  std::shared_ptr<net::FaultInjector> fault;
  /// Pass-by-reference results threshold handed to every spawned worker
  /// (WorkerConfig::ref_results_min_bytes); 0 = results ship by value.
  std::uint64_t ref_results_min_bytes = 0;
};

class Factory {
 public:
  Factory(std::shared_ptr<net::Transport> network, FactoryConfig config)
      : network_(std::move(network)), config_(config) {}
  ~Factory() { Stop(); }

  Factory(const Factory&) = delete;
  Factory& operator=(const Factory&) = delete;

  /// Spawns the initial workers (endpoint ids 1..initial_workers).
  Status Start();

  /// Gracefully stops every worker.
  void Stop();

  /// Adds one more worker; returns its id.
  Result<WorkerId> SpawnWorker();

  /// Abruptly kills a worker (no Goodbye) — fault injection.
  Status KillWorker(WorkerId id);

  /// Gracefully removes a worker (scale-down).
  Status StopWorker(WorkerId id);

  std::vector<WorkerId> WorkerIds() const;
  Worker* GetWorker(WorkerId id);
  std::size_t size() const;

 private:
  std::shared_ptr<net::Transport> network_;
  FactoryConfig config_;

  mutable std::mutex mu_;
  std::map<WorkerId, std::unique_ptr<Worker>> workers_;
  WorkerId next_id_ = 1;
};

}  // namespace vinelet::core
