// Shared vocabulary types of the execution engine.
#pragma once

#include <cstdint>
#include <string>

namespace vinelet::core {

using TaskId = std::uint64_t;        // plain (stateless) tasks
using InvocationId = std::uint64_t;  // function calls against a library
using WorkerId = std::uint64_t;      // == net::EndpointId of the worker
using LibraryInstanceId = std::uint64_t;

/// How a library executes an invocation (paper §3.4 step 4).
enum class ExecMode : std::uint8_t {
  kDirect = 0,  // synchronously inside the library's own thread
  kFork,        // a child (thread here, process in TaskVine) per invocation
};

/// The three levels of context reuse studied in the evaluation (§4.2).
enum class ReuseLevel : std::uint8_t {
  kL1 = 1,  // stateless tasks, no caching: pull everything every time
  kL2 = 2,  // on-disk reuse: worker cache holds env + data
  kL3 = 3,  // on-disk + in-memory reuse via resident libraries
};

std::string_view ReuseLevelName(ReuseLevel level) noexcept;

/// Per-execution overhead breakdown, mirroring Table 5's four columns.
struct TimingBreakdown {
  double transfer_s = 0;     // invocation details + data over the network
  double worker_s = 0;       // worker-side setup: sandbox, unpack, staging
  double deserialize_s = 0;  // decode functions / arguments from bytes
  double context_s = 0;      // reconstruct / context setup proper
  double exec_s = 0;         // the function body itself

  double Total() const noexcept {
    return transfer_s + worker_s + deserialize_s + context_s + exec_s;
  }

  TimingBreakdown& operator+=(const TimingBreakdown& other) noexcept {
    transfer_s += other.transfer_s;
    worker_s += other.worker_s;
    deserialize_s += other.deserialize_s;
    context_s += other.context_s;
    exec_s += other.exec_s;
    return *this;
  }
};

}  // namespace vinelet::core
