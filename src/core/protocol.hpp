// The manager ↔ worker wire protocol.
//
// Every interaction in the real runtime is one of these messages, serialized
// to bytes before it crosses the Network (nothing structured is shared
// between threads).  The message set mirrors TaskVine's split between the
// data plane (file placement: put/push/ready), the task plane (stateless
// ExecuteTask), and the invocation plane added by the paper (InstallLibrary,
// RunInvocation, RemoveLibrary — §3.4/§3.5).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/blob_ref.hpp"
#include "core/resources.hpp"
#include "core/types.hpp"
#include "net/network.hpp"
#include "storage/file_decl.hpp"
#include "telemetry/span.hpp"

namespace vinelet::core {

// ---------------------------------------------------------------------------
// Specs carried inside messages.
// ---------------------------------------------------------------------------

/// A stateless task (execution levels L1/L2): brings its code, data and
/// arguments along (Table 1, row "Task").
///
/// `inputs` are cache-resident files the manager staged ahead of time (L2);
/// `inline_files` ride with the task itself and are discarded after it —
/// the L1 behaviour of re-pulling everything on every execution.
struct TaskSpec {
  TaskId id = 0;
  std::string function_name;
  Blob args;  // serialized Value
  std::vector<storage::FileDecl> inputs;
  std::vector<std::pair<storage::FileDecl, Blob>> inline_files;
  Resources resources;
};

/// A library: the "special task" whose daemon retains the function context
/// (paper §3.4).  Serialized function code and shared input data travel as
/// content-addressed input files; the spec itself only carries names and
/// policy.
struct LibrarySpec {
  std::string name;
  std::vector<std::string> function_names;
  std::string setup_name;  // context-setup function ("" = none)
  Blob setup_args;         // serialized Value passed to the setup
  std::vector<storage::FileDecl> inputs;
  Resources resources = Resources::All();
  std::uint32_t slots = 1;
  ExecMode exec_mode = ExecMode::kDirect;
};

// ---------------------------------------------------------------------------
// Manager → worker.
// ---------------------------------------------------------------------------
//
// Causality: the data- and invocation-plane messages carry a
// telemetry::TraceContext (two u64s on the wire) naming the trace they
// belong to and the sender-side span that caused them, so the receiver's
// spans link into the same end-to-end story.  Replies (TaskDone /
// InvocationDone) carry the worker's exec-span context back, so the
// manager's result span parents across the wire in both directions.  A
// zero context is "untraced" and costs nothing downstream.

/// Deliver a file's payload (manager-sourced or peer-pushed).
struct PutFileMsg {
  storage::FileDecl decl;
  Blob payload;
  telemetry::TraceContext trace;
};

/// Instruct the receiving worker (a holder of the file) to push it to a
/// peer: the spanning-tree building block (§3.3).
struct PushFileMsg {
  storage::FileDecl decl;
  WorkerId dest = 0;
  telemetry::TraceContext trace;
};

/// One subtree of a pipelined broadcast: the receiver forwards each chunk to
/// `dest` and hands it `children` as its own subtrees.  Routes travel inside
/// every chunk message, so relays are stateless — a worker needs no broadcast
/// bookkeeping to participate, and the manager can re-route around a dead
/// relay just by re-sending chunks with a different (or empty) route.
struct ChunkRoute {
  WorkerId dest = 0;
  std::vector<ChunkRoute> children;
};

/// One chunk of a pipelined (cut-through) broadcast.  The receiver forwards
/// the chunk to each subtree in `children` *before* local reassembly, so a
/// chunk crosses the whole tree in depth × chunk-time instead of each hop
/// waiting for the full blob.  When sent via EncodeFrame, `chunk` rides as
/// the frame's borrowed attachment: relays forward the same refcounted bytes
/// they received, copying nothing.
struct PutChunkMsg {
  storage::FileDecl decl;           // the whole blob being distributed
  std::uint64_t chunk_index = 0;
  std::uint64_t num_chunks = 0;
  std::uint64_t chunk_bytes = 0;    // nominal chunk size (last may be short)
  std::vector<ChunkRoute> children; // subtrees this receiver relays to
  Blob chunk;
  /// Parent for this hop's receive span; relays re-stamp it with their own
  /// receive span before forwarding, so the trace mirrors the tree.
  telemetry::TraceContext trace;
};

struct ExecuteTaskMsg {
  TaskSpec task;
  telemetry::TraceContext trace;
};

struct InstallLibraryMsg {
  LibrarySpec spec;
  LibraryInstanceId instance_id = 0;
  telemetry::TraceContext trace;
};

struct RemoveLibraryMsg {
  LibraryInstanceId instance_id = 0;
};

/// One pass-by-reference argument of an invocation: which top-level argument
/// position it fills, the ref itself, and the replica the manager chose for
/// the consumer to fetch from (`source` is stamped at dispatch time from the
/// live ReplicaTable; 0 means the target already holds the payload).
struct RefArg {
  std::uint32_t arg_index = 0;
  BlobRef ref;
  WorkerId source = 0;
};

struct RunInvocationMsg {
  InvocationId id = 0;
  LibraryInstanceId instance_id = 0;
  std::string function_name;
  Blob args;  // serialized Value — all an invocation needs (Table 1)
  /// Arguments passed by reference: the worker fetches each missing payload
  /// peer-to-peer from `source` before the invocation runs, and the library
  /// splices the materialized Value into `args` at `arg_index`.
  std::vector<RefArg> ref_args;
  telemetry::TraceContext trace;
};

/// Batched dispatch: N invocations against one library instance in a single
/// frame, amortizing the per-message protocol and span overhead (the DFlow
/// argument).  Each item keeps its own id, arguments and TraceContext, and
/// the worker answers with one InvocationDoneMsg per item — causal traces
/// and exactly-once future resolution are untouched by batching.
struct RunInvocationBatchMsg {
  LibraryInstanceId instance_id = 0;
  std::vector<RunInvocationMsg> items;  // item.instance_id == instance_id
};

struct ShutdownMsg {};

/// Live-introspection probe (manager → worker): answer with a
/// StatusReplyMsg snapshot.
struct StatusRequestMsg {};

// ---------------------------------------------------------------------------
// Worker → manager.
// ---------------------------------------------------------------------------

struct HelloMsg {
  Resources resources;
};

struct FileReadyMsg {
  hash::ContentId content_id;
  std::uint64_t size = 0;
};

struct FileFailedMsg {
  hash::ContentId content_id;
  std::string error;
};

struct TaskDoneMsg {
  TaskId id = 0;
  bool ok = false;
  Blob result;        // serialized Value on success
  std::string error;  // on failure
  TimingBreakdown timing;
  telemetry::TraceContext trace;  // the worker's exec-span context
};

struct LibraryReadyMsg {
  LibraryInstanceId instance_id = 0;
  TimingBreakdown timing;  // transfer/unpack/context-setup costs (Table 5 row L3-Library)
  /// Worker memory retained by the context — reported so the manager can
  /// account for occupied resources (paper §2.1.3).
  std::uint64_t context_memory_bytes = 0;
};

struct LibraryRemovedMsg {
  LibraryInstanceId instance_id = 0;
};

struct InvocationDoneMsg {
  InvocationId id = 0;
  bool ok = false;
  /// Inline result bytes.  Sent via EncodeFrame the blob rides as the frame
  /// attachment, so even by-value results cross the manager's inbox as a
  /// borrowed refcounted view, never a second copy.  Empty when `ref` is
  /// set: the payload stayed in the producing worker's store.
  Blob result;
  /// Pass-by-reference result (valid() when the worker retained the payload
  /// and the manager should record placement instead of relaying bytes).
  BlobRef ref;
  std::string error;
  TimingBreakdown timing;
  telemetry::TraceContext trace;  // the worker's exec-span context
};

struct GoodbyeMsg {};

// ---------------------------------------------------------------------------
// Peer-to-peer ref data plane (worker ↔ worker, manager-mediated recovery).
// ---------------------------------------------------------------------------

/// Worker → worker: ask a replica holder for a content-addressed payload.
/// The requester is the frame's sender; `tag` is an opaque correlation id
/// echoed on the BlobDataMsg so a requester can match replies to fetches.
struct FetchBlobMsg {
  hash::ContentId id;
  std::uint64_t tag = 0;
  telemetry::TraceContext trace;
};

/// Worker → worker: the fetched payload (or a miss).  Via EncodeFrame the
/// payload rides as the frame attachment — the serving worker forwards its
/// cached refcounted bytes without copying, same as the chunk relay.
struct BlobDataMsg {
  hash::ContentId id;
  std::uint64_t tag = 0;
  bool ok = false;
  Blob payload;
  std::string error;
  telemetry::TraceContext trace;
};

/// Manager → worker: a ref's consumers are all settled and the manager
/// released it — unpin and drop the payload from the local store.
struct DropBlobMsg {
  hash::ContentId id;
};

/// Manager → worker: the replica a pending fetch was directed at died; fail
/// the invocations parked on `id` so they requeue and re-dispatch against a
/// surviving replica.  Idempotent if the fetch already completed.
struct CancelFetchMsg {
  hash::ContentId id;
};

/// One cached context on a worker, for the status reply.
struct CacheEntryStatus {
  hash::ContentId id;
  std::uint64_t bytes = 0;
};

/// One in-progress chunked-broadcast reassembly on a worker.
struct AssemblyStatus {
  hash::ContentId id;
  std::uint64_t received = 0;  // chunks landed
  std::uint64_t total = 0;     // chunks expected
};

/// One resident library instance on a worker.
struct LibrarySlotStatus {
  LibraryInstanceId instance_id = 0;
  std::string library;
  std::uint64_t invocations_served = 0;
  std::uint64_t queued = 0;  // submitted, not yet completed
};

/// Worker → manager answer to StatusRequestMsg: the worker's live state.
struct StatusReplyMsg {
  std::uint64_t inbox_depth = 0;     // frames waiting in the worker's inbox
  std::uint64_t tasks_executed = 0;  // lifetime stateless-task count
  std::vector<CacheEntryStatus> cache;
  std::vector<AssemblyStatus> assemblies;
  std::vector<LibrarySlotStatus> libraries;
  // Data-plane counters (pass-by-reference path).
  std::uint64_t refs_held = 0;          // pinned ref payloads in the store
  std::uint64_t p2p_fetch_bytes = 0;    // ref bytes fetched from peers
  std::uint64_t p2p_serve_bytes = 0;    // ref bytes served to peers
  std::uint64_t relayed_result_bytes = 0;  // by-value result bytes sent up
  std::uint64_t arena_hwm_bytes = 0;    // encode buffer-pool high-water mark
};

using Message =
    std::variant<PutFileMsg, PushFileMsg, ExecuteTaskMsg, InstallLibraryMsg,
                 RemoveLibraryMsg, RunInvocationMsg, ShutdownMsg, HelloMsg,
                 FileReadyMsg, FileFailedMsg, TaskDoneMsg, LibraryReadyMsg,
                 LibraryRemovedMsg, InvocationDoneMsg, GoodbyeMsg, PutChunkMsg,
                 StatusRequestMsg, StatusReplyMsg, RunInvocationBatchMsg,
                 FetchBlobMsg, BlobDataMsg, DropBlobMsg, CancelFetchMsg>;

/// Serializes a message to a single self-contained blob (bulk payloads
/// inline).  Kept for tests and for contexts without a Frame.
Blob EncodeMessage(const Message& message);

/// Parses a self-contained framed blob; kDataLoss on any malformed input.
Result<Message> DecodeMessage(const Blob& blob);

/// A message encoded for the wire: a small header payload plus an optional
/// bulk attachment.  PutFile's payload and PutChunk's chunk travel as the
/// attachment — a borrowed refcounted view, never re-copied into the
/// header's ByteBuffer — so forwarding bulk data is pointer traffic.
struct WireFrame {
  Blob payload;
  Blob attachment;
};

WireFrame EncodeFrame(const Message& message);

/// Decodes a received frame, reattaching the bulk payload zero-copy.
/// Accepts both wire forms: attachment-borne bulk and inline-encoded blobs.
Result<Message> DecodeFrame(const net::Frame& frame);

}  // namespace vinelet::core
