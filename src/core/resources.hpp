// Worker resource accounting.
//
// Libraries own "an arbitrary but fixed allocation of resources on a worker
// node in terms of cores, memory, and disk" and expose a logical resource
// called invocation slots (paper §3.5.2); plain tasks get independent
// allocations.  The allocator enforces that the manager never oversubscribes
// a worker — a tested invariant.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace vinelet::core {

struct Resources {
  std::uint32_t cores = 1;
  std::uint64_t memory_mb = 1024;
  std::uint64_t disk_mb = 1024;

  /// Whole-worker sentinel: the library "by default takes all resources of
  /// a worker" (§3.5.2).
  static Resources All() noexcept { return Resources{0, 0, 0}; }
  bool IsAll() const noexcept {
    return cores == 0 && memory_mb == 0 && disk_mb == 0;
  }

  /// Componentwise fit; callers resolve All() before asking (the allocator
  /// resolves All() to "the worker must be fully idle").
  bool FitsWithin(const Resources& available) const noexcept {
    return cores <= available.cores && memory_mb <= available.memory_mb &&
           disk_mb <= available.disk_mb;
  }

  std::string ToString() const;

  friend bool operator==(const Resources&, const Resources&) = default;
};

/// Tracks free resources on one worker.
class ResourceAllocator {
 public:
  explicit ResourceAllocator(Resources total) : total_(total), free_(total) {}

  const Resources& total() const noexcept { return total_; }
  const Resources& free() const noexcept { return free_; }
  bool FullyIdle() const noexcept { return free_ == total_; }

  /// True if `request` (with All() resolved against the total) would fit.
  bool CanAllocate(const Resources& request) const noexcept;

  /// Claims resources; the returned value is what was actually claimed
  /// (All() resolves to everything currently free — a whole-worker library
  /// requires a fully idle worker).  kResourceExhausted when it cannot fit.
  Result<Resources> Allocate(const Resources& request);

  /// Returns a previous allocation.  kFailedPrecondition on over-release.
  Status Release(const Resources& claimed);

 private:
  Resources total_;
  Resources free_;
};

}  // namespace vinelet::core
