// Context-affinity scheduling policy, shared by the live Manager and the
// discrete-event simulator.
//
// The paper's retention argument (§3.4) only pays off if invocations are
// routed to workers that already hold the library's context.  This header
// factors the scheduling *decisions* out of the manager event loop into
// pure, deterministic components so the exact same policy runs in the real
// runtime and bit-identically inside the DES (`src/sim`):
//
//  * AffinityIndex — per-library affinity sets: which workers currently
//    retain a ready instance of each library.  Kept in sync with deploy /
//    evict / death events by the owner; audited by CheckQuiescent().
//  * PickLeastLoaded — route an invocation to the least-loaded affine
//    instance (most free slots, ties broken by lowest instance id so the
//    choice is deterministic).
//  * DecideAutoscale — the closed loop: deploy another instance when queued
//    demand exceeds warm capacity by the steal threshold, flag idle
//    libraries with a poor Fig-11 share value as preferred eviction
//    victims, hold otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "core/types.hpp"

namespace vinelet::core {

enum class SchedulerPolicy : std::uint8_t {
  kFirstFit = 0,  // legacy: first ready instance in map order
  kAffinity,      // least-loaded affine worker + threshold-gated stealing
};

std::string_view SchedulerPolicyName(SchedulerPolicy policy) noexcept;

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kAffinity;

  /// Queued invocations per instance — warm or already deploying — a
  /// library tolerates before the scheduler recruits cold capacity, i.e.
  /// before a deploy may displace another library's idle warm instance.  A
  /// backlog of Q therefore settles at ~Q/steal_threshold instances rather
  /// than one per queued invocation; below the threshold the backlog drains
  /// through the affinity set.
  std::size_t steal_threshold = 4;

  /// Absolute queue depth at which the autoscaler keeps at least one deploy
  /// in flight no matter how large the tolerated per-instance backlog is:
  /// sustained starvation always gets capacity on the way.
  std::size_t autoscale_queue_high = 16;

  /// Fig-11 share-value floor (invocations served per warm instance).  An
  /// idle library below the floor never amortized its deploys and is a
  /// preferred eviction victim when another library starves for capacity;
  /// one at or above the floor is retained longest, because evicting it
  /// destroys exactly the amortization Fig 11 measures.
  double share_floor = 4.0;

  /// Maximum invocations folded into one RunInvocationBatchMsg.  1 disables
  /// batching (every dispatch uses the legacy RunInvocationMsg path).
  std::uint32_t max_batch = 16;
};

/// Per-library affinity sets: library -> { worker -> ready instance count }.
/// Counts (not booleans) because a worker may host several instances of the
/// same library; the entry disappears only when the last one drains.
class AffinityIndex {
 public:
  using WorkerCounts = std::map<WorkerId, std::uint32_t>;

  /// A ready instance of `library` appeared on `worker`.
  void Add(const std::string& library, WorkerId worker);

  /// A ready instance of `library` left `worker` (evicted or its worker
  /// died).  Removing an absent entry is ignored (idempotent) so callers
  /// may tear down without tracking readiness themselves.
  void Remove(const std::string& library, WorkerId worker);

  /// Worker death: drop `worker` from every library's set.
  void RemoveWorker(WorkerId worker);

  /// Workers currently retaining `library`, or nullptr when none.
  const WorkerCounts* Get(const std::string& library) const;

  bool Contains(const std::string& library, WorkerId worker) const;

  /// Total ready instances of `library` across the cluster.
  std::size_t CountFor(const std::string& library) const;

  /// Full table, for quiescence audits and status export.
  const std::map<std::string, WorkerCounts>& table() const { return table_; }

  void Clear() { table_.clear(); }

 private:
  std::map<std::string, WorkerCounts> table_;
};

/// Inputs to one autoscaling decision for one library.  All fields are
/// observable in both the runtime manager and the DES, which is what makes
/// the policy mirrorable.
struct AutoscaleSignal {
  std::size_t queue_depth = 0;        // invocations waiting for this library
  std::size_t ready_instances = 0;    // warm instances (affinity set size)
  std::size_t pending_instances = 0;  // staging / installing (capacity in
                                      // flight — don't double-deploy)
  std::size_t free_slots = 0;         // open slots across warm instances
  std::size_t pending_slots = 0;      // slots the pending instances will add
  /// Workers that could host one more instance of this library without
  /// evicting anything.  Expansion into such capacity displaces nobody, so
  /// it is gated only on the backlog outrunning capacity in flight; the
  /// steal threshold throttles displacing deploys alone.
  std::size_t workers_with_room = 0;
  double share_value = 0.0;  // Fig 11: invocations served per warm instance
};

enum class AutoscaleAction : std::uint8_t { kHold = 0, kDeploy, kEvict };

/// Pure decision function — no side effects, no clock, no randomness — so
/// the runtime and the simulator agree bit-for-bit on every decision.
AutoscaleAction DecideAutoscale(const SchedulerConfig& config,
                                const AutoscaleSignal& signal);

/// Candidate instance for least-loaded routing.
struct DispatchCandidate {
  std::uint64_t instance_id = 0;
  std::uint32_t free_slots = 0;
};

/// Least-loaded pick: most free slots wins; ties break toward the lowest
/// instance id so runtime and simulator make identical choices.  Returns
/// the index into `candidates`, or npos when empty / no free slots.
std::size_t PickLeastLoaded(const DispatchCandidate* candidates,
                            std::size_t count);

inline constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);

}  // namespace vinelet::core
