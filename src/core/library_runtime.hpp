// LibraryRuntime: the worker-side daemon that retains a function context.
//
// This is the paper's "library" (§3.4): a special task that performs the
// one-time context setup — staging input files, unpacking the environment,
// deserializing function code, running the context-setup function — then
// stays resident, serving invocations that only carry their arguments.
// Direct mode executes an invocation synchronously in the library's own
// thread; fork mode spawns a child (a thread here, standing in for
// TaskVine's fork(2)) per invocation so concurrent invocations share the
// same retained context.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/channel.hpp"
#include "common/clock.hpp"
#include "core/protocol.hpp"
#include "net/fault.hpp"
#include "core/unpack_registry.hpp"
#include "serde/function_registry.hpp"
#include "storage/content_store.hpp"
#include "telemetry/telemetry.hpp"

namespace vinelet::core {

class LibraryRuntime {
 public:
  /// What setup produced: its cost breakdown and the memory footprint of
  /// the retained context (reported for manager-side accounting, §2.1.3).
  struct SetupReport {
    TimingBreakdown timing;
    std::uint64_t context_memory_bytes = 0;
  };

  struct Callbacks {
    /// Fired once after setup: OK with the setup report, or the setup
    /// failure (the manager then discards the instance).
    std::function<void(LibraryInstanceId, Result<SetupReport>)> on_ready;

    /// Fired for every completed invocation.
    std::function<void(InvocationDoneMsg)> on_done;
  };

  /// `telemetry` (optional) receives unpack/deserialize/context-setup spans
  /// for the one-time setup and deserialize/exec spans per invocation, on
  /// track `track` ("library-<name>#<id>" when empty).
  LibraryRuntime(LibrarySpec spec, LibraryInstanceId instance_id,
                 storage::ContentStore* store, UnpackRegistry* unpacked,
                 const serde::FunctionRegistry* registry, Callbacks callbacks,
                 telemetry::Telemetry* telemetry = nullptr,
                 std::string track = {});
  ~LibraryRuntime();

  LibraryRuntime(const LibraryRuntime&) = delete;
  LibraryRuntime& operator=(const LibraryRuntime&) = delete;

  void Start();

  /// Stops accepting invocations, waits for running ones, joins the thread.
  void Stop();

  /// Enqueues an invocation; false if the library is shutting down.
  bool Submit(RunInvocationMsg msg);

  /// Enqueues a whole dispatch batch under one channel lock (batched
  /// RunInvocationBatchMsg unpack path).  Returns the number of items
  /// accepted; fewer than msgs.size() means the library is shutting down
  /// and items from the returned index on were not consumed.
  std::size_t SubmitBatch(std::vector<RunInvocationMsg>& msgs);

  LibraryInstanceId instance_id() const noexcept { return instance_id_; }
  const LibrarySpec& spec() const noexcept { return spec_; }

  /// Number of invocations completed by this instance — its "share value"
  /// (paper Fig 11).
  std::uint64_t invocations_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Invocations accepted but not yet picked up by the library thread
  /// (live-introspection queue depth).
  std::uint64_t queued() const { return requests_.size(); }

  /// Parent context for the one-time setup spans (the InstallLibraryMsg's
  /// trace).  Call before Start().
  void SetSetupTrace(telemetry::TraceContext trace) noexcept {
    setup_trace_ = trace;
  }

  /// Fault injector consulted during setup and per invocation (chaos
  /// harness); `endpoint` keys this worker's deterministic fault stream.
  /// Call before Start().
  void SetFaultInjector(std::shared_ptr<net::FaultInjector> injector,
                        net::EndpointId endpoint) noexcept {
    fault_ = std::move(injector);
    fault_endpoint_ = endpoint;
  }

  /// Pass-by-reference results: a successful invocation whose serialized
  /// result is at least `min_bytes` is retained (pinned) in the worker's
  /// store and answered with a BlobRef naming `worker` as the replica,
  /// instead of inline bytes.  0 disables (every result ships by value).
  /// `refs_held` (optional) is the hosting worker's pinned-ref gauge,
  /// incremented for each retained result.  Call before Start().
  void SetRefPolicy(std::uint64_t min_bytes, WorkerId worker,
                    std::atomic<std::uint64_t>* refs_held) noexcept {
    ref_min_bytes_ = min_bytes;
    ref_worker_ = worker;
    refs_held_ = refs_held;
  }

 private:
  void Run();
  Status Setup(TimingBreakdown& timing);
  InvocationDoneMsg RunOne(const RunInvocationMsg& msg);
  void ReapForked(bool all);

  LibrarySpec spec_;
  LibraryInstanceId instance_id_;
  storage::ContentStore* store_;
  UnpackRegistry* unpacked_;
  const serde::FunctionRegistry* registry_;
  Callbacks callbacks_;
  WallClock clock_;

  // ---- telemetry (optional; null = no spans/metrics) ----
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string track_;
  telemetry::TraceContext setup_trace_;
  telemetry::Counter* invocations_metric_ = nullptr;
  telemetry::Histogram* invoke_exec_s_ = nullptr;
  telemetry::Histogram* setup_s_ = nullptr;

  std::shared_ptr<net::FaultInjector> fault_;
  net::EndpointId fault_endpoint_ = 0;

  std::uint64_t ref_min_bytes_ = 0;  // 0 = results always ship by value
  WorkerId ref_worker_ = 0;
  std::atomic<std::uint64_t>* refs_held_ = nullptr;

  Channel<RunInvocationMsg> requests_;
  std::thread thread_;
  std::atomic<std::uint64_t> served_{0};

  // Retained state, built once in Setup and read by invocations.
  struct BoundFunction {
    serde::FunctionDef def;
    serde::Value closure;
  };
  std::map<std::string, BoundFunction> functions_;
  std::map<std::string, Blob> files_;
  serde::ContextHandle context_;
  std::vector<std::shared_ptr<const poncho::UnpackedDir>> held_envs_;

  std::mutex fork_mu_;
  std::vector<std::thread> forked_;
};

}  // namespace vinelet::core
