// Worker: one compute node of the real runtime.
//
// A worker is a thread with an inbox, a local content-addressed cache
// ("local disk"), an unpack registry, and a set of resident library
// instances.  It executes stateless tasks (L1/L2), hosts libraries that
// retain function contexts (L3), and serves peer transfers so contexts can
// spread worker-to-worker (Fig 3b).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "core/library_runtime.hpp"
#include "core/protocol.hpp"
#include "core/resources.hpp"
#include "core/unpack_registry.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "serde/function_registry.hpp"
#include "storage/content_store.hpp"
#include "telemetry/telemetry.hpp"

namespace vinelet::core {

struct WorkerConfig {
  WorkerId id = 1;
  Resources resources{32, 64 * 1024, 64 * 1024};  // paper §4.2 worker shape
  std::uint64_t cache_capacity_bytes = 0;         // 0 = unbounded
  const serde::FunctionRegistry* registry = nullptr;  // default: Global()
  /// Shared telemetry; usually the same handle the manager was given, so
  /// worker cache/unpack metrics and execution spans land alongside the
  /// manager's.  Null = private instance.
  telemetry::Telemetry* telemetry = nullptr;
  /// Fault injector for chaos testing: injects task/invocation/setup
  /// failures and straggler delays keyed by this worker's endpoint id.
  /// Null = no injected faults.
  std::shared_ptr<net::FaultInjector> fault;
  /// Pass-by-reference results: library invocation results of at least this
  /// many serialized bytes are retained in the worker's store and reported
  /// to the manager as a BlobRef instead of inline bytes.  0 (the default)
  /// disables the ref data plane: every result ships by value.
  std::uint64_t ref_results_min_bytes = 0;
};

class Worker {
 public:
  Worker(std::shared_ptr<net::Transport> network, WorkerConfig config);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Registers the endpoint, announces itself to the manager (Hello), and
  /// starts the inbox loop.
  Status Start();

  /// Graceful shutdown: Goodbye, stop libraries, join everything.
  void Stop();

  /// Simulated crash: vanish without a Goodbye.  The manager learns of the
  /// death when its next send fails, exactly like a TCP reset.
  void Kill();

  WorkerId id() const noexcept { return config_.id; }
  storage::ContentStore& store() noexcept { return store_; }
  const storage::ContentStore& store() const noexcept { return store_; }
  std::size_t libraries_hosted() const;
  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void Handle(net::Frame frame);
  void HandlePutFile(PutFileMsg msg);
  void HandlePushFile(const PushFileMsg& msg);
  void HandlePutChunk(PutChunkMsg msg);
  void HandleExecuteTask(ExecuteTaskMsg msg, double decode_s);
  void HandleInstallLibrary(InstallLibraryMsg msg, double decode_s);
  void HandleRemoveLibrary(const RemoveLibraryMsg& msg);
  void HandleRunInvocation(RunInvocationMsg msg);
  void HandleRunInvocationBatch(RunInvocationBatchMsg msg);
  void HandleFetchBlob(const FetchBlobMsg& msg, net::EndpointId requester);
  void HandleBlobData(BlobDataMsg msg);
  void HandleDropBlob(const DropBlobMsg& msg);
  void HandleCancelFetch(const CancelFetchMsg& msg);
  void HandleStatusRequest();

  /// Submits an invocation whose ref arguments are all locally resident;
  /// answers not-present if the library instance is gone.
  void SubmitReady(RunInvocationMsg msg);
  /// Parks an invocation with missing ref payloads and issues peer fetches
  /// for each one (deduplicated per content id).  Inbox thread only.
  void ParkAndFetch(RunInvocationMsg msg);
  void StartFetch(const RefArg& ref_arg, InvocationId waiter);
  /// Fails every invocation parked on `id` (the manager requeues them and
  /// re-stamps a surviving source) and forgets the fetch.
  void FailFetch(const hash::ContentId& id, const std::string& error);

  /// Runs a stateless task; executes on a task thread.  `trace` is the
  /// manager's staging-span context; the exec span context rides back on
  /// the TaskDoneMsg.
  TaskDoneMsg ExecuteTask(const TaskSpec& task, double decode_s,
                          telemetry::TraceContext trace);

  void SendToManager(const Message& message);
  void ReapTaskThreads(bool all);

  std::shared_ptr<net::Transport> network_;
  WorkerConfig config_;
  const serde::FunctionRegistry* registry_;
  storage::ContentStore store_;
  UnpackRegistry unpacked_;
  WallClock clock_;

  // ---- telemetry ----
  std::unique_ptr<telemetry::Telemetry> owned_telemetry_;  // unconfigured case
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string track_;  // span track label, "worker-<id>"
  struct MetricHandles {
    telemetry::Counter* files_received = nullptr;
    telemetry::Counter* bytes_received = nullptr;
    telemetry::Counter* peer_pushes = nullptr;
    telemetry::Counter* peer_push_bytes = nullptr;
    telemetry::Counter* chunks_received = nullptr;
    telemetry::Counter* chunks_relayed = nullptr;
    telemetry::Counter* unpacks = nullptr;
    telemetry::Histogram* unpack_s = nullptr;
    telemetry::Histogram* task_exec_s = nullptr;
  } m_;

  /// In-progress chunked broadcast reassembly, keyed by content id.
  /// Inbox-thread only.  Duplicate chunks (manager re-sends after a relay
  /// death) are dropped here, which is what makes recovery idempotent.
  struct ChunkAssembly {
    storage::FileDecl decl;
    std::vector<Blob> chunks;
    std::vector<bool> have;
    std::size_t received = 0;
  };
  std::map<hash::ContentId, ChunkAssembly> assemblies_;

  /// An invocation waiting for ref-argument payloads to land.  Inbox-thread
  /// only.  `awaiting` counts distinct content ids still in flight; the
  /// invocation submits when it reaches zero.
  struct ParkedInvocation {
    RunInvocationMsg msg;
    std::size_t awaiting = 0;
  };
  std::map<InvocationId, ParkedInvocation> parked_;

  /// One in-flight peer fetch, keyed by content id so concurrent consumers
  /// of the same ref share a single FetchBlob round trip.  Inbox-thread
  /// only.
  struct FetchState {
    WorkerId source = 0;
    std::vector<InvocationId> waiters;
  };
  std::map<hash::ContentId, FetchState> fetches_;
  std::uint64_t next_fetch_tag_ = 1;

  // ---- data-plane counters (reported via StatusReplyMsg) ----
  std::atomic<std::uint64_t> refs_held_{0};
  std::atomic<std::uint64_t> p2p_fetch_bytes_{0};
  std::atomic<std::uint64_t> p2p_serve_bytes_{0};
  std::atomic<std::uint64_t> relayed_result_bytes_{0};

  std::shared_ptr<net::Inbox> inbox_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};

  mutable std::mutex libraries_mu_;
  std::map<LibraryInstanceId, std::unique_ptr<LibraryRuntime>> libraries_;
  /// Instances whose setup failed: the failure callback runs on the
  /// library's own thread, so it cannot destroy (join) itself; the corpse
  /// is parked here and reaped at shutdown, after its thread has exited.
  std::vector<std::unique_ptr<LibraryRuntime>> dead_libraries_;

  std::mutex tasks_mu_;
  std::vector<std::thread> task_threads_;
};

}  // namespace vinelet::core
