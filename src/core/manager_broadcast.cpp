// Context distribution: per-worker file staging and the chunked,
// pipelined broadcast tree (fanout routing, resends, worker-death
// repair, completion probes).
#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// File staging.
// ---------------------------------------------------------------------------

bool Manager::StageFile(const storage::FileDecl& decl, WorkerId worker,
                        Waiter waiter, telemetry::TraceContext trace) {
  const TransferKey key{worker, decl.id};
  auto it = transfers_.find(key);
  if (it != transfers_.end()) {
    it->second.waiters.push_back(waiter);
    return true;
  }

  auto source = replicas_.PickSource(
      decl.id, worker, config_.peer_transfers && decl.peer_transfer);
  Transfer transfer;
  transfer.decl = decl;
  transfer.waiters.push_back(waiter);
  transfer.trace = trace;  // first waiter owns the transfer's causality
  if (!source.ok()) {
    // All sources saturated: park the transfer; StartParkedTransfers retries
    // as other transfers complete.  (Only possible with a finite manager cap.)
    transfer.started = false;
    transfers_.emplace(key, std::move(transfer));
    return true;
  }
  transfer.source = *source;
  replicas_.BeginTransfer(transfer.source);

  transfer.started_s = Now();
  if (transfer.source.from_manager) {
    auto payload = manager_store_.Get(decl.id);
    if (!payload.ok()) {
      // Should not happen: declared files live in the manager store.  When
      // it does (a fabricated or dropped declaration), decline instead of
      // emplacing a zombie transfer: a transfer that never sends anything
      // never completes, and its waiters would hang WaitAll forever.  The
      // caller proceeds without the file and the worker fails the work
      // cleanly ("input not staged"), feeding the normal retry path.
      VLOG_ERROR("manager") << "missing declared payload " << decl.name;
      replicas_.EndTransfer(transfer.source);
      return false;
    }
    m_.manager_transfers->Add();
    m_.manager_transfer_bytes->Add(decl.size);
    (void)SendTo(worker, PutFileMsg{decl, std::move(*payload),
                                    transfer.trace});
  } else {
    m_.peer_transfers->Add();
    m_.peer_transfer_bytes->Add(decl.size);
    (void)SendTo(transfer.source.peer,
                 PushFileMsg{decl, worker, transfer.trace});
  }
  transfers_.emplace(key, std::move(transfer));
  return true;
}

void Manager::StartParkedTransfers() {
  for (auto& [key, transfer] : transfers_) {
    if (transfer.started) continue;
    auto source = replicas_.PickSource(
        transfer.decl.id, key.dest,
        config_.peer_transfers && transfer.decl.peer_transfer);
    if (!source.ok()) continue;  // still saturated
    transfer.source = *source;
    transfer.started = true;
    transfer.started_s = Now();
    replicas_.BeginTransfer(transfer.source);
    if (transfer.source.from_manager) {
      auto payload = manager_store_.Get(transfer.decl.id);
      if (payload.ok()) {
        m_.manager_transfers->Add();
        m_.manager_transfer_bytes->Add(transfer.decl.size);
        (void)SendTo(key.dest, PutFileMsg{transfer.decl, std::move(*payload),
                                          transfer.trace});
      }
    } else {
      m_.peer_transfers->Add();
      m_.peer_transfer_bytes->Add(transfer.decl.size);
      (void)SendTo(transfer.source.peer,
                   PushFileMsg{transfer.decl, key.dest, transfer.trace});
    }
  }
}

void Manager::CompleteTransfer(WorkerId worker, const hash::ContentId& id,
                               bool success, const std::string& error) {
  const TransferKey key{worker, id};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;  // e.g. worker died mid-transfer
  Transfer transfer = std::move(it->second);
  transfers_.erase(it);
  replicas_.EndTransfer(transfer.source);

  if (!success) {
    VLOG_WARN("manager") << "transfer of " << transfer.decl.name << " to "
                         << worker << " failed: " << error;
    telemetry_->flight.Record("xfer-fail", error, transfer.trace.trace_id,
                              id.Prefix64(), worker);
    if (++transfer.attempts < config_.max_attempts) {
      // Retry from a fresh source (the failed peer may hold a corrupt or
      // evicted copy; the manager always has the original).
      auto source =
          replicas_.PickSource(id, worker, /*allow_peer_transfer=*/false);
      if (source.ok()) {
        transfer.source = *source;
        replicas_.BeginTransfer(transfer.source);
        auto payload = manager_store_.Get(id);
        if (payload.ok()) {
          (void)SendTo(worker, PutFileMsg{transfer.decl, std::move(*payload),
                                          transfer.trace});
          transfers_.emplace(key, std::move(transfer));
          return;
        }
        replicas_.EndTransfer(transfer.source);
      }
    }
    // Permanent failure: fail task waiters; discard staging instances.
    const Status fail_status =
        DataLossError("input transfer failed: " + transfer.decl.name);
    for (const Waiter& waiter : transfer.waiters)
      FailWaiter(waiter, fail_status);
    return;
  }

  replicas_.AddReplica(id, worker);
  telemetry_->tracer.EmitLinked(transfer.trace, telemetry::Phase::kTransfer,
                                "file", "worker-" + std::to_string(worker),
                                id.Prefix64(), transfer.started_s, Now());
  for (const Waiter& waiter : transfer.waiters) {
    if (waiter.is_instance) {
      auto inst_it = instances_.find(waiter.id);
      if (inst_it == instances_.end()) continue;
      if (inst_it->second.pending_files > 0 &&
          --inst_it->second.pending_files == 0)
        DispatchInstall(inst_it->second);
    } else {
      auto task_it = running_tasks_.find(waiter.id);
      if (task_it == running_tasks_.end()) continue;
      if (task_it->second.pending_files > 0 &&
          --task_it->second.pending_files == 0)
        DispatchTask(task_it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Chunked pipelined broadcast.
// ---------------------------------------------------------------------------

void Manager::StartBroadcast(BroadcastCmd cmd) {
  auto fail = [&](Status status) {
    cmd.future->Resolve(std::move(status));
    FinishOne();
  };
  if (broadcasts_.count(cmd.decl.id) != 0) {
    fail(FailedPreconditionError("broadcast already active: " + cmd.decl.name));
    return;
  }
  auto payload = manager_store_.Get(cmd.decl.id);
  if (!payload.ok()) {
    fail(payload.status());
    return;
  }

  BroadcastState state;
  state.decl = cmd.decl;
  state.chunk_bytes =
      cmd.chunk_bytes != 0 ? cmd.chunk_bytes : storage::kDefaultChunkBytes;
  state.future = std::move(cmd.future);
  state.started_s = cmd.submitted_s;
  state.last_probe_s = Now();
  for (const auto& [id, _] : workers_) state.order.push_back(id);
  if (state.order.empty()) {
    state.future->Resolve(Outcome{});  // no workers: trivially complete
    FinishOne();
    return;
  }

  storage::BroadcastParams params;
  params.num_workers = state.order.size();
  params.fanout_cap =
      cmd.fanout_cap != 0 ? cmd.fanout_cap : config_.worker_transfer_cap;
  params.mode = storage::BroadcastMode::kSpanningTree;
  auto plan = storage::PlanPipelinedBroadcast(
      params, storage::ChunkParams{state.decl.size, state.chunk_bytes});
  if (!plan.ok()) {
    fail(plan.status());
    return;
  }
  state.plan = std::move(*plan);
  state.num_chunks = state.plan.num_chunks;
  state.pending.insert(state.order.begin(), state.order.end());
  // Root span of the broadcast trace: every chunk (probes and recovery
  // resends included) carries this context so relay spans link back here.
  state.trace = telemetry_->tracer.StartTrace(
      telemetry::Phase::kSubmit, "broadcast", "manager",
      state.decl.id.Prefix64(), cmd.submitted_s, Now());

  // Materialize each root's relay subtree once; every chunk reuses it.
  auto build = [&](auto&& self, std::uint64_t index) -> ChunkRoute {
    ChunkRoute route;
    route.dest = state.order[static_cast<std::size_t>(index)];
    for (std::uint64_t child :
         state.plan.children[static_cast<std::size_t>(index)])
      route.children.push_back(self(self, child));
    return route;
  };
  std::vector<std::vector<ChunkRoute>> root_children;
  root_children.reserve(state.plan.roots.size());
  for (std::uint64_t root : state.plan.roots) {
    std::vector<ChunkRoute> subtree;
    for (std::uint64_t child :
         state.plan.children[static_cast<std::size_t>(root)])
      subtree.push_back(build(build, child));
    root_children.push_back(std::move(subtree));
  }

  // Stream chunk-major: every root has chunk k in flight before any k+1, so
  // relays begin forwarding after one chunk-time, not one blob-time.  Each
  // slice is a zero-copy view of the stored payload, so queueing the whole
  // schedule costs pointers, not copies of the blob.
  for (std::uint64_t k = 0; k < state.num_chunks; ++k) {
    Blob slice = payload->Slice(
        static_cast<std::size_t>(k * state.chunk_bytes),
        static_cast<std::size_t>(state.chunk_bytes));
    for (std::size_t r = 0; r < state.plan.roots.size(); ++r) {
      PutChunkMsg msg;
      msg.decl = state.decl;
      msg.chunk_index = k;
      msg.num_chunks = state.num_chunks;
      msg.chunk_bytes = state.chunk_bytes;
      msg.children = root_children[r];
      msg.chunk = slice;
      msg.trace = state.trace;
      (void)SendTo(state.order[static_cast<std::size_t>(state.plan.roots[r])],
                   msg);
    }
  }
  for (std::size_t r = 0; r < state.plan.roots.size(); ++r) {
    m_.manager_transfers->Add();
    m_.manager_transfer_bytes->Add(state.decl.size);
  }
  broadcasts_.emplace(state.decl.id, std::move(state));
}

void Manager::ResendBroadcastDirect(BroadcastState& state, WorkerId worker) {
  auto payload = manager_store_.Get(state.decl.id);
  if (!payload.ok()) return;
  // Recovery traffic is accounted separately: the broadcast's payload bytes
  // were counted once at admission (StartBroadcast), and counting resends
  // into manager_transfer_bytes would double-bill every retried subtree.
  m_.broadcast_resends->Add();
  m_.broadcast_resend_bytes->Add(state.decl.size);
  telemetry_->flight.Record("bcast-resend", state.decl.name,
                            state.trace.trace_id, state.decl.id.Prefix64(),
                            worker);
  for (std::uint64_t k = 0; k < state.num_chunks; ++k) {
    PutChunkMsg msg;
    msg.decl = state.decl;
    msg.chunk_index = k;
    msg.num_chunks = state.num_chunks;
    msg.chunk_bytes = state.chunk_bytes;
    msg.chunk = payload->Slice(static_cast<std::size_t>(k * state.chunk_bytes),
                               static_cast<std::size_t>(state.chunk_bytes));
    msg.trace = state.trace;
    if (!SendTo(worker, msg).ok()) return;  // died again; reaped next batch
  }
}

void Manager::CompleteBroadcastReady(WorkerId worker,
                                     const hash::ContentId& id) {
  auto it = broadcasts_.find(id);
  if (it == broadcasts_.end()) return;
  if (it->second.pending.erase(worker) == 0) return;  // duplicate confirm
  replicas_.AddReplica(id, worker);
  if (it->second.pending.empty()) FinishBroadcast(it);
}

void Manager::FailBroadcastWorker(WorkerId worker, const hash::ContentId& id,
                                  const std::string& error) {
  auto it = broadcasts_.find(id);
  if (it == broadcasts_.end()) return;
  BroadcastState& state = it->second;
  if (state.pending.count(worker) == 0) return;
  if (++state.attempts[worker] < config_.max_attempts) {
    VLOG_WARN("manager") << "broadcast chunk reassembly failed on worker "
                         << worker << " (" << error << "); re-sending direct";
    ResendBroadcastDirect(state, worker);
    return;
  }
  state.future->Resolve(DataLossError("broadcast of " + state.decl.name +
                                      " to worker " + std::to_string(worker) +
                                      " failed: " + error));
  FinishOne();
  broadcasts_.erase(it);
}

void Manager::HandleBroadcastWorkerDeath(WorkerId worker) {
  for (auto it = broadcasts_.begin(); it != broadcasts_.end();) {
    BroadcastState& state = it->second;
    state.pending.erase(worker);
    auto pos = std::find(state.order.begin(), state.order.end(), worker);
    if (pos != state.order.end()) {
      // Every chunk the dead worker had not yet relayed is lost to its
      // subtree: re-feed each still-pending descendant directly from the
      // manager.  Chunks that did get through are deduped by reassembly.
      const auto dead_index =
          static_cast<std::size_t>(pos - state.order.begin());
      std::vector<std::uint64_t> stack(state.plan.children[dead_index].begin(),
                                       state.plan.children[dead_index].end());
      while (!stack.empty()) {
        const auto index = static_cast<std::size_t>(stack.back());
        stack.pop_back();
        stack.insert(stack.end(), state.plan.children[index].begin(),
                     state.plan.children[index].end());
        const WorkerId dest = state.order[index];
        if (state.pending.count(dest) != 0) ResendBroadcastDirect(state, dest);
      }
    }
    auto next = std::next(it);
    if (state.pending.empty()) FinishBroadcast(it);
    it = next;
  }
}

void Manager::ProbeBroadcasts() {
  // Liveness backstop: a relay that crashes after the transport accepted its
  // chunks never confirms and never fails a send, so nothing else would
  // notice.  Periodically re-send chunk 0 (deduped by reassembly, and
  // re-acked by workers that already hold the file) to every unconfirmed
  // worker; a dead endpoint makes the send fail, which feeds the normal
  // death-recovery path.
  const double now = Now();
  for (auto& [id, state] : broadcasts_) {
    if (now - state.last_probe_s < config_.broadcast_probe_s) continue;
    state.last_probe_s = now;
    auto payload = manager_store_.Get(state.decl.id);
    if (!payload.ok()) continue;
    for (WorkerId worker : state.pending) {
      PutChunkMsg msg;
      msg.decl = state.decl;
      msg.chunk_index = 0;
      msg.num_chunks = state.num_chunks;
      msg.chunk_bytes = state.chunk_bytes;
      msg.chunk =
          payload->Slice(0, static_cast<std::size_t>(state.chunk_bytes));
      msg.trace = state.trace;
      (void)SendTo(worker, msg);
    }
  }
}

void Manager::FinishBroadcast(
    std::map<hash::ContentId, BroadcastState>::iterator it) {
  BroadcastState state = std::move(it->second);
  broadcasts_.erase(it);
  const double now = Now();
  telemetry_->tracer.EmitLinked(state.trace, telemetry::Phase::kTransfer,
                                "broadcast", "manager",
                                state.decl.id.Prefix64(), state.started_s,
                                now);
  Outcome outcome;
  outcome.timing.transfer_s = now - state.started_s;
  state.future->Resolve(std::move(outcome));
  FinishOne();
}

}  // namespace vinelet::core
