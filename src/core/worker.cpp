#include "core/worker.hpp"

#include <chrono>

#include "common/buffer_pool.hpp"
#include "common/log.hpp"

namespace vinelet::core {

Worker::Worker(std::shared_ptr<net::Transport> network, WorkerConfig config)
    : network_(std::move(network)),
      config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &serde::FunctionRegistry::Global()),
      store_(config.cache_capacity_bytes) {
  if (config.telemetry != nullptr) {
    telemetry_ = config.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<telemetry::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  track_ = "worker-" + std::to_string(config_.id);
  auto& reg = telemetry_->metrics;
  m_.files_received = &reg.GetCounter("worker.files_received");
  m_.bytes_received = &reg.GetCounter("worker.bytes_received");
  m_.peer_pushes = &reg.GetCounter("worker.peer_pushes");
  m_.peer_push_bytes = &reg.GetCounter("worker.peer_push_bytes");
  m_.chunks_received = &reg.GetCounter("worker.chunks_received");
  m_.chunks_relayed = &reg.GetCounter("worker.chunks_relayed");
  m_.unpacks = &reg.GetCounter("worker.unpacks");
  m_.unpack_s = &reg.GetHistogram("worker.unpack_s");
  m_.task_exec_s = &reg.GetHistogram("worker.task_exec_s");
  // All workers' caches aggregate under one prefix.
  store_.BindMetrics(&reg, "worker.cache");
}

Worker::~Worker() { Stop(); }

Status Worker::Start() {
  auto inbox = network_->Register(config_.id);
  if (!inbox.ok()) return inbox.status();
  inbox_ = std::move(*inbox);
  thread_ = std::thread([this] { Run(); });
  SendToManager(HelloMsg{config_.resources});
  return Status::Ok();
}

void Worker::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (network_->Connected(config_.id)) {
    SendToManager(GoodbyeMsg{});
    network_->Unregister(config_.id);
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    for (auto& [_, library] : libraries_) library->Stop();
    libraries_.clear();
    dead_libraries_.clear();  // threads already exited after setup failure
  }
  ReapTaskThreads(/*all=*/true);
}

void Worker::Kill() {
  if (stopping_.exchange(true)) return;
  // Post-mortem journal: the flight recorder's recent events are the only
  // record of what this worker was doing when it "crashed".
  telemetry_->flight.Record("kill", "", 0, config_.id,
                            tasks_executed_.load(std::memory_order_relaxed));
  telemetry_->flight.DumpOnEnv("worker-" + std::to_string(config_.id) +
                               "-kill");
  network_->Unregister(config_.id);  // vanish: inbox closes, no Goodbye
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    for (auto& [_, library] : libraries_) library->Stop();
    libraries_.clear();
    dead_libraries_.clear();
  }
  ReapTaskThreads(/*all=*/true);
}

std::size_t Worker::libraries_hosted() const {
  std::lock_guard<std::mutex> lock(libraries_mu_);
  return libraries_.size();
}

void Worker::Run() {
  while (auto frame = inbox_->Recv()) {
    Handle(std::move(*frame));
  }
}

void Worker::Handle(net::Frame frame) {
  const net::EndpointId sender = frame.sender;
  Stopwatch decode_watch(clock_);
  auto message = DecodeFrame(frame);
  const double decode_s = decode_watch.Elapsed();
  if (!message.ok()) {
    VLOG_ERROR("worker") << config_.id
                         << " dropped malformed frame: "
                         << message.status().ToString();
    return;
  }
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, PutFileMsg>) {
          HandlePutFile(std::move(msg));
        } else if constexpr (std::is_same_v<T, PushFileMsg>) {
          HandlePushFile(msg);
        } else if constexpr (std::is_same_v<T, PutChunkMsg>) {
          HandlePutChunk(std::move(msg));
        } else if constexpr (std::is_same_v<T, ExecuteTaskMsg>) {
          HandleExecuteTask(std::move(msg), decode_s);
        } else if constexpr (std::is_same_v<T, InstallLibraryMsg>) {
          HandleInstallLibrary(std::move(msg), decode_s);
        } else if constexpr (std::is_same_v<T, RemoveLibraryMsg>) {
          HandleRemoveLibrary(msg);
        } else if constexpr (std::is_same_v<T, RunInvocationMsg>) {
          HandleRunInvocation(std::move(msg));
        } else if constexpr (std::is_same_v<T, RunInvocationBatchMsg>) {
          HandleRunInvocationBatch(std::move(msg));
        } else if constexpr (std::is_same_v<T, FetchBlobMsg>) {
          HandleFetchBlob(msg, sender);
        } else if constexpr (std::is_same_v<T, BlobDataMsg>) {
          HandleBlobData(std::move(msg));
        } else if constexpr (std::is_same_v<T, DropBlobMsg>) {
          HandleDropBlob(msg);
        } else if constexpr (std::is_same_v<T, CancelFetchMsg>) {
          HandleCancelFetch(msg);
        } else if constexpr (std::is_same_v<T, StatusRequestMsg>) {
          HandleStatusRequest();
        } else if constexpr (std::is_same_v<T, ShutdownMsg>) {
          // Manager-initiated teardown; Run() exits when the inbox closes.
          network_->Unregister(config_.id);
        } else {
          VLOG_WARN("worker") << config_.id << " ignoring unexpected message";
        }
      },
      std::move(*message));
}

void Worker::HandlePutFile(PutFileMsg msg) {
  const double arrived_s = telemetry_->tracer.Now();
  // Verified store: a corrupted transfer surfaces as FileFailed, and the
  // manager re-sources the file (possibly from a different peer).
  Status status = store_.Put(msg.decl.id, std::move(msg.payload));
  // Admission span (hash-verify + cache insert), chained off the sender's
  // transfer context.
  telemetry_->tracer.EmitLinked(msg.trace, telemetry::Phase::kTransfer,
                                "admission", track_, msg.decl.id.Prefix64(),
                                arrived_s, telemetry_->tracer.Now());
  if (status.ok()) {
    m_.files_received->Add();
    m_.bytes_received->Add(msg.decl.size);
    SendToManager(FileReadyMsg{msg.decl.id, msg.decl.size});
  } else {
    telemetry_->flight.Record("file-failed", status.ToString(),
                              msg.trace.trace_id, msg.decl.id.Prefix64(),
                              config_.id);
    telemetry_->flight.DumpOnEnv("worker-" + std::to_string(config_.id) +
                                 "-filefail");
    SendToManager(FileFailedMsg{msg.decl.id, status.ToString()});
  }
}

void Worker::HandlePushFile(const PushFileMsg& msg) {
  // Spanning-tree hop: we hold the file; push it to a peer worker.
  auto blob = store_.Get(msg.decl.id);
  if (!blob.ok()) {
    SendToManager(FileFailedMsg{msg.decl.id,
                                "push source lost file: " + msg.decl.name});
    return;
  }
  // The blob travels as the frame attachment: this hop moves a refcounted
  // pointer, not the payload bytes.  The trace rides along so the
  // destination's admission span still links to the original transfer.
  WireFrame wire = EncodeFrame(PutFileMsg{msg.decl, std::move(*blob),
                                          msg.trace});
  Status sent = network_->Send(config_.id, msg.dest, std::move(wire.payload),
                               std::move(wire.attachment));
  if (sent.ok()) {
    m_.peer_pushes->Add();
    m_.peer_push_bytes->Add(msg.decl.size);
  }
  if (!sent.ok()) {
    // Destination died; the manager will notice via its own sends.
    VLOG_WARN("worker") << config_.id << " peer push failed: "
                        << sent.ToString();
  }
}

void Worker::HandlePutChunk(PutChunkMsg msg) {
  const double arrived_s = telemetry_->tracer.Now();
  // This hop's receive span is pre-allocated so forwarded chunks can name it
  // as their parent before it is emitted — the trace mirrors the relay tree.
  const bool traced = telemetry_->tracer.enabled() && msg.trace.valid();
  telemetry::TraceContext hop_ctx = msg.trace;
  if (traced)
    hop_ctx = {msg.trace.trace_id, telemetry::SpanTracer::AllocateId()};
  // Cut-through relay first, before any local work: forward chunk k to every
  // subtree the route assigns us.  The chunk Blob is a refcounted view, so
  // each relay hop forwards the exact bytes it received — no copy (asserted
  // by Blob::SharesPayloadWith in tests).
  for (const ChunkRoute& child : msg.children) {
    PutChunkMsg forward;
    forward.decl = msg.decl;
    forward.chunk_index = msg.chunk_index;
    forward.num_chunks = msg.num_chunks;
    forward.chunk_bytes = msg.chunk_bytes;
    forward.children = child.children;
    forward.chunk = msg.chunk;  // shared payload
    forward.trace = hop_ctx;
    WireFrame wire = EncodeFrame(forward);
    Status sent = network_->Send(config_.id, child.dest,
                                 std::move(wire.payload),
                                 std::move(wire.attachment));
    if (sent.ok()) {
      m_.chunks_relayed->Add();
      m_.peer_push_bytes->Add(msg.chunk.size());
    } else {
      // The subtree root died mid-relay; the manager observes the death via
      // its own sends and re-sends the subtree's chunks directly.
      VLOG_WARN("worker") << config_.id << " chunk relay to " << child.dest
                          << " failed: " << sent.ToString();
    }
  }
  // Emit the receive span before any dedupe early-return: children already
  // reference its id, and an orphan parent would break trace validation.
  if (telemetry_->tracer.enabled()) {
    telemetry::SpanRecord record;
    record.name =
        std::string(telemetry::PhaseName(telemetry::Phase::kTransfer));
    record.category = "chunk";
    record.track = track_;
    record.id = msg.decl.id.Prefix64() ^ msg.chunk_index;
    record.start_s = arrived_s;
    record.end_s = telemetry_->tracer.Now();
    if (traced) {
      record.trace_id = msg.trace.trace_id;
      record.span_id = hop_ctx.parent_span_id;
      record.parent_span_id = msg.trace.parent_span_id;
    }
    telemetry_->tracer.Emit(std::move(record));
  }

  if (msg.num_chunks == 0 || msg.chunk_index >= msg.num_chunks) return;
  if (store_.Contains(msg.decl.id)) {
    // Already assembled (duplicate delivery after a re-plan): just confirm.
    if (msg.chunk_index == 0)
      SendToManager(FileReadyMsg{msg.decl.id, msg.decl.size});
    return;
  }

  ChunkAssembly& assembly = assemblies_[msg.decl.id];
  if (assembly.chunks.empty()) {
    assembly.decl = msg.decl;
    assembly.chunks.resize(static_cast<std::size_t>(msg.num_chunks));
    assembly.have.assign(static_cast<std::size_t>(msg.num_chunks), false);
  }
  if (assembly.chunks.size() != msg.num_chunks) return;  // inconsistent rerun
  const auto index = static_cast<std::size_t>(msg.chunk_index);
  if (assembly.have[index]) return;  // duplicate chunk: idempotent
  assembly.have[index] = true;
  assembly.chunks[index] = std::move(msg.chunk);
  ++assembly.received;
  m_.chunks_received->Add();

  if (assembly.received < assembly.chunks.size()) return;

  // Reassemble and admit through the verifying Put: a corrupted chunk makes
  // the content hash mismatch and surfaces as FileFailed, never as a bad
  // cache entry.
  ByteBuffer buffer;
  buffer.Reserve(static_cast<std::size_t>(assembly.decl.size));
  for (const Blob& chunk : assembly.chunks) buffer.Append(chunk.span());
  const storage::FileDecl decl = assembly.decl;
  assemblies_.erase(msg.decl.id);
  Status status = store_.Put(decl.id, Blob(std::move(buffer)));
  if (status.ok()) {
    m_.files_received->Add();
    m_.bytes_received->Add(decl.size);
    SendToManager(FileReadyMsg{decl.id, decl.size});
  } else {
    telemetry_->flight.Record("assembly-failed", status.ToString(),
                              msg.trace.trace_id, decl.id.Prefix64(),
                              config_.id);
    telemetry_->flight.DumpOnEnv("worker-" + std::to_string(config_.id) +
                                 "-filefail");
    SendToManager(FileFailedMsg{decl.id, status.ToString()});
  }
}

void Worker::HandleExecuteTask(ExecuteTaskMsg msg, double decode_s) {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  task_threads_.emplace_back([this, msg = std::move(msg), decode_s]() mutable {
    TaskDoneMsg done = ExecuteTask(msg.task, decode_s, msg.trace);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    SendToManager(done);
  });
  // Opportunistically reap finished threads so the vector stays small.
  if (task_threads_.size() > 2 * config_.resources.cores) {
    // Cannot join here while holding tasks_mu_ against Stop(); reaping is
    // deferred to ReapTaskThreads which runs at shutdown.  The vector is
    // bounded by the manager's resource accounting in practice.
  }
}

TaskDoneMsg Worker::ExecuteTask(const TaskSpec& task, double decode_s,
                                telemetry::TraceContext trace) {
  TaskDoneMsg done;
  done.id = task.id;
  done.trace = trace;  // ride the trace back even if this side is untraced
  done.timing.transfer_s = decode_s;
  const double phase_start_s = telemetry_->tracer.Now();

  // --- Worker overhead: verify + stage inline files, stage cached inputs,
  // unpack environments (cached unpack for L2, throwaway unpack for L1).
  Stopwatch watch(clock_);
  std::map<std::string, Blob> files;
  std::vector<std::shared_ptr<const poncho::UnpackedDir>> held;

  auto fail = [&](const Status& status) {
    done.ok = false;
    done.error = status.ToString();
    return done;
  };

  for (const auto& [decl, payload] : task.inline_files) {
    if (hash::ContentId::Of(payload) != decl.id)
      return fail(DataLossError("inline file corrupt: " + decl.name));
    if (decl.unpack) {
      auto dir = poncho::Packer::Unpack(payload);  // L1: expand every time
      if (!dir.ok()) return fail(dir.status());
      auto dir_ptr = std::make_shared<const poncho::UnpackedDir>(
          std::move(*dir));
      for (const auto& [name, content] : dir_ptr->files)
        files.emplace(name, content);
      held.push_back(std::move(dir_ptr));
    } else if (decl.kind != storage::FileKind::kSerializedFunction) {
      files.emplace(decl.name, payload);
    }
  }
  for (const auto& decl : task.inputs) {
    auto blob = store_.Get(decl.id);
    if (!blob.ok())
      return fail(FailedPreconditionError("task input not staged: " +
                                          decl.name));
    if (decl.unpack) {
      bool unpacked_now = false;
      Stopwatch unpack_watch(clock_);
      auto dir = unpacked_.GetOrUnpack(decl.id, *blob, &unpacked_now);
      if (!dir.ok()) return fail(dir.status());
      if (unpacked_now) {
        m_.unpacks->Add();
        m_.unpack_s->Observe(unpack_watch.Elapsed());
      }
      for (const auto& [name, content] : (*dir)->files)
        files.emplace(name, content);
      held.push_back(*dir);
    } else if (decl.kind != storage::FileKind::kSerializedFunction) {
      files.emplace(decl.name, std::move(*blob));
    }
  }
  done.timing.worker_s = watch.Elapsed();

  // --- Context overhead: reconstruct the function object and arguments.
  watch.Restart();
  serde::Value closure;
  serde::FunctionDef def;
  bool found = false;
  const std::string fn_file = "fn:" + task.function_name;
  // Serialized function may arrive inline (L1) or via the cache (L2).
  for (const auto& [decl, payload] : task.inline_files) {
    if (decl.kind == storage::FileKind::kSerializedFunction &&
        decl.name == fn_file) {
      auto parsed = serde::SerializedFunction::Deserialize(payload);
      if (!parsed.ok()) return fail(parsed.status());
      auto looked_up = registry_->FindFunction(parsed->name());
      if (!looked_up.ok()) return fail(looked_up.status());
      def = std::move(*looked_up);
      closure = parsed->closure();
      found = true;
      break;
    }
  }
  if (!found) {
    for (const auto& decl : task.inputs) {
      if (decl.kind == storage::FileKind::kSerializedFunction &&
          decl.name == fn_file) {
        auto blob = store_.Get(decl.id);
        if (!blob.ok()) return fail(blob.status());
        auto parsed = serde::SerializedFunction::Deserialize(*blob);
        if (!parsed.ok()) return fail(parsed.status());
        auto looked_up = registry_->FindFunction(parsed->name());
        if (!looked_up.ok()) return fail(looked_up.status());
        def = std::move(*looked_up);
        closure = parsed->closure();
        found = true;
        break;
      }
    }
  }
  if (!found) {
    auto looked_up = registry_->FindFunction(task.function_name);
    if (!looked_up.ok()) return fail(looked_up.status());
    def = std::move(*looked_up);
  }
  auto args = serde::Value::FromBlob(task.args);
  if (!args.ok()) return fail(args.status());
  // Function/argument decoding is deserialize cost, not context setup —
  // stateless tasks build no retained context at all.
  done.timing.deserialize_s = watch.Elapsed();

  if (config_.fault && config_.fault->InjectTaskFailure(config_.id))
    return fail(InternalError("injected task failure"));

  // --- Execute.  No retained context: env.context is null, so the function
  // rebuilds any in-memory state it needs (the repeated work L3 removes).
  // An injected straggler delay is charged to exec_s: from the outside it
  // is simply a slow execution.
  watch.Restart();
  if (config_.fault) {
    const double slow_s = config_.fault->StragglerDelayS(config_.id);
    if (slow_s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(slow_s));
  }
  serde::InvocationEnv env;
  env.files = &files;
  env.closure = &closure;
  env.sandbox = "sandbox-task-" + std::to_string(task.id);
  auto result = def.fn(*args, env);
  done.timing.exec_s = watch.Elapsed();

  if (!result.ok()) return fail(result.status());
  done.ok = true;
  done.result = result->ToBlob();
  m_.task_exec_s->Observe(done.timing.exec_s);
  if (telemetry_->tracer.enabled()) {
    // unpack -> deserialize -> exec chain off the manager's staging span;
    // the exec context rides back on TaskDone for the result span.
    auto& tracer = telemetry_->tracer;
    double t = phase_start_s;
    telemetry::TraceContext ctx = trace;
    ctx = tracer.EmitLinked(ctx, telemetry::Phase::kUnpack, "task", track_,
                            task.id, t, t + done.timing.worker_s);
    t += done.timing.worker_s;
    ctx = tracer.EmitLinked(ctx, telemetry::Phase::kDeserialize, "task",
                            track_, task.id, t, t + done.timing.deserialize_s);
    t += done.timing.deserialize_s;
    ctx = tracer.EmitLinked(ctx, telemetry::Phase::kExec, "task", track_,
                            task.id, t, t + done.timing.exec_s);
    done.trace = ctx;
  }
  return done;
}

void Worker::HandleInstallLibrary(InstallLibraryMsg msg, double decode_s) {
  LibraryRuntime::Callbacks callbacks;
  const double transfer_s = decode_s;
  callbacks.on_ready = [this, transfer_s](
                           LibraryInstanceId id,
                           Result<LibraryRuntime::SetupReport> report) {
    if (report.ok()) {
      TimingBreakdown t = report->timing;
      t.transfer_s = transfer_s;
      SendToManager(LibraryReadyMsg{id, t, report->context_memory_bytes});
    } else {
      // Report the failed install as an immediate removal so the manager
      // releases the resources and can retry elsewhere.  This callback runs
      // on the library's own thread: park the instance instead of
      // destroying it (destruction joins the thread we are on).
      VLOG_WARN("worker") << config_.id << " library setup failed: "
                          << report.status().ToString();
      {
        std::lock_guard<std::mutex> lock(libraries_mu_);
        auto it = libraries_.find(id);
        if (it != libraries_.end()) {
          dead_libraries_.push_back(std::move(it->second));
          libraries_.erase(it);
        }
      }
      SendToManager(LibraryRemovedMsg{id});
    }
  };
  callbacks.on_done = [this](InvocationDoneMsg done) {
    relayed_result_bytes_.fetch_add(done.result.size(),
                                    std::memory_order_relaxed);
    SendToManager(std::move(done));
  };

  auto library = std::make_unique<LibraryRuntime>(
      std::move(msg.spec), msg.instance_id, &store_, &unpacked_, registry_,
      std::move(callbacks), telemetry_);
  library->SetSetupTrace(msg.trace);
  if (config_.fault) library->SetFaultInjector(config_.fault, config_.id);
  library->SetRefPolicy(config_.ref_results_min_bytes, config_.id,
                        &refs_held_);
  LibraryRuntime* raw = library.get();
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    libraries_.emplace(msg.instance_id, std::move(library));
  }
  raw->Start();
}

void Worker::HandleRemoveLibrary(const RemoveLibraryMsg& msg) {
  std::unique_ptr<LibraryRuntime> library;
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    auto it = libraries_.find(msg.instance_id);
    if (it == libraries_.end()) return;
    library = std::move(it->second);
    libraries_.erase(it);
  }
  library->Stop();  // waits for in-flight invocations (manager only removes
                    // empty libraries, so this returns promptly)
  SendToManager(LibraryRemovedMsg{msg.instance_id});
}

void Worker::HandleRunInvocation(RunInvocationMsg msg) {
  for (const RefArg& ra : msg.ref_args) {
    if (!store_.Contains(ra.ref.id)) {
      ParkAndFetch(std::move(msg));
      return;
    }
  }
  SubmitReady(std::move(msg));
}

void Worker::HandleRunInvocationBatch(RunInvocationBatchMsg msg) {
  // One instance lookup and one lock round for the whole batch; every item
  // still completes (or fails) individually, so the manager's per-invocation
  // futures and causal traces behave exactly as with single dispatch.
  // Items whose ref arguments are not yet local peel off into the park/fetch
  // path and submit individually once their payloads land.
  std::vector<RunInvocationMsg> ready;
  ready.reserve(msg.items.size());
  for (auto& item : msg.items) {
    bool resident = true;
    for (const RefArg& ra : item.ref_args) {
      if (!store_.Contains(ra.ref.id)) {
        resident = false;
        break;
      }
    }
    if (resident)
      ready.push_back(std::move(item));
    else
      ParkAndFetch(std::move(item));
  }
  if (ready.empty()) return;
  std::vector<InvocationId> failed;
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    auto it = libraries_.find(msg.instance_id);
    if (it == libraries_.end()) {
      failed.reserve(ready.size());
      for (const auto& item : ready) failed.push_back(item.id);
    } else {
      // SubmitBatch consumes items from the front; anything past the
      // accepted count never reached the library thread (it was closing)
      // and must be failed individually so each future still resolves.
      const std::size_t accepted = it->second->SubmitBatch(ready);
      for (std::size_t i = accepted; i < ready.size(); ++i)
        failed.push_back(ready[i].id);
    }
  }
  for (InvocationId id : failed) {
    InvocationDoneMsg done;
    done.id = id;
    done.ok = false;
    done.error = "library instance not present on worker";
    SendToManager(std::move(done));
  }
}

void Worker::SubmitReady(RunInvocationMsg msg) {
  const InvocationId id = msg.id;
  bool submitted = false;
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    auto it = libraries_.find(msg.instance_id);
    if (it != libraries_.end()) submitted = it->second->Submit(std::move(msg));
  }
  if (!submitted) {
    InvocationDoneMsg done;
    done.id = id;
    done.ok = false;
    done.error = "library instance not present on worker";
    SendToManager(std::move(done));
  }
}

void Worker::ParkAndFetch(RunInvocationMsg msg) {
  const InvocationId id = msg.id;
  if (parked_.contains(id)) return;  // duplicate delivery; fetches in flight
  std::vector<RefArg> missing;
  for (const RefArg& ra : msg.ref_args)
    if (!store_.Contains(ra.ref.id)) missing.push_back(ra);
  ParkedInvocation& slot = parked_[id];
  slot.msg = std::move(msg);
  slot.awaiting = missing.size();
  for (const RefArg& ra : missing) {
    // A failed StartFetch fails (and erases) this parked invocation; the
    // remaining fetches would only feed a corpse.
    if (!parked_.contains(id)) break;
    StartFetch(ra, id);
  }
}

void Worker::StartFetch(const RefArg& ref_arg, InvocationId waiter) {
  auto [it, inserted] = fetches_.try_emplace(ref_arg.ref.id);
  it->second.waiters.push_back(waiter);
  if (!inserted) return;  // fetch already in flight; ride along
  it->second.source = ref_arg.source;
  if (ref_arg.source == 0 || ref_arg.source == config_.id) {
    // The manager believed the payload was already here (or gave no source)
    // but the store disagrees — likely evicted.  Fail fast so the manager
    // re-dispatches with a live replica.
    FailFetch(ref_arg.ref.id, "ref payload not in local store");
    return;
  }
  FetchBlobMsg fetch;
  fetch.id = ref_arg.ref.id;
  fetch.tag = next_fetch_tag_++;
  WireFrame wire = EncodeFrame(fetch);
  Status sent = network_->Send(config_.id, ref_arg.source,
                               std::move(wire.payload),
                               std::move(wire.attachment));
  if (!sent.ok())
    FailFetch(ref_arg.ref.id,
              "fetch source unreachable: " + sent.ToString());
}

void Worker::FailFetch(const hash::ContentId& id, const std::string& error) {
  auto it = fetches_.find(id);
  if (it == fetches_.end()) return;
  std::vector<InvocationId> waiters = std::move(it->second.waiters);
  fetches_.erase(it);
  for (InvocationId waiter : waiters) {
    auto parked_it = parked_.find(waiter);
    if (parked_it == parked_.end()) continue;
    parked_.erase(parked_it);
    InvocationDoneMsg done;
    done.id = waiter;
    done.ok = false;
    done.error = "ref fetch failed: " + error;
    SendToManager(std::move(done));
  }
}

void Worker::HandleFetchBlob(const FetchBlobMsg& msg,
                             net::EndpointId requester) {
  BlobDataMsg reply;
  reply.id = msg.id;
  reply.tag = msg.tag;
  reply.trace = msg.trace;
  auto blob = store_.Get(msg.id);
  if (blob.ok()) {
    reply.ok = true;
    reply.payload = std::move(*blob);
  } else {
    reply.error = "replica miss on worker " + std::to_string(config_.id);
  }
  const std::uint64_t served = reply.payload.size();
  // The payload rides as the frame attachment: serving a ref forwards the
  // store's refcounted bytes, same zero-copy path as the chunk relay.
  WireFrame wire = EncodeFrame(reply);
  Status sent = network_->Send(config_.id, requester, std::move(wire.payload),
                               std::move(wire.attachment));
  if (sent.ok() && served > 0)
    p2p_serve_bytes_.fetch_add(served, std::memory_order_relaxed);
}

void Worker::HandleBlobData(BlobDataMsg msg) {
  if (!msg.ok) {
    FailFetch(msg.id, msg.error.empty() ? "replica miss" : msg.error);
    return;
  }
  // Verified admission: a corrupted transfer fails the hash check here and
  // the parked invocations requeue against another replica.
  const std::uint64_t size = msg.payload.size();
  Status stored = store_.Put(msg.id, std::move(msg.payload));
  if (!stored.ok()) {
    FailFetch(msg.id, stored.ToString());
    return;
  }
  auto it = fetches_.find(msg.id);
  if (it == fetches_.end()) return;  // late duplicate; nothing waiting
  (void)store_.Pin(msg.id);
  refs_held_.fetch_add(1, std::memory_order_relaxed);
  p2p_fetch_bytes_.fetch_add(size, std::memory_order_relaxed);
  // Announce the new replica so the manager's table learns this worker now
  // holds the payload (future consumers can fetch from here, and the
  // eventual DropBlob reaches every copy).
  SendToManager(FileReadyMsg{msg.id, size});
  std::vector<InvocationId> waiters = std::move(it->second.waiters);
  fetches_.erase(it);
  for (InvocationId waiter : waiters) {
    auto parked_it = parked_.find(waiter);
    if (parked_it == parked_.end()) continue;
    if (--parked_it->second.awaiting > 0) continue;
    RunInvocationMsg run = std::move(parked_it->second.msg);
    parked_.erase(parked_it);
    SubmitReady(std::move(run));
  }
}

void Worker::HandleDropBlob(const DropBlobMsg& msg) {
  if (!store_.Contains(msg.id)) return;
  (void)store_.Unpin(msg.id);
  (void)store_.Remove(msg.id);
  // Guarded decrement: a DropBlob can race a crashed producer's re-execution
  // and arrive for a payload this worker never counted.
  std::uint64_t held = refs_held_.load(std::memory_order_relaxed);
  while (held > 0 && !refs_held_.compare_exchange_weak(
                         held, held - 1, std::memory_order_relaxed)) {
  }
}

void Worker::HandleCancelFetch(const CancelFetchMsg& msg) {
  // Idempotent: if the fetch already completed there is nothing parked.
  FailFetch(msg.id, "fetch cancelled: replica owner died");
}

void Worker::HandleStatusRequest() {
  // Snapshot assembled on the inbox thread, which owns assemblies_; the
  // cache and library maps have their own locks.
  StatusReplyMsg reply;
  reply.inbox_depth = inbox_->size();
  reply.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  for (const auto& entry : store_.List())
    reply.cache.push_back({entry.id, entry.bytes});
  for (const auto& [id, assembly] : assemblies_)
    reply.assemblies.push_back(
        {id, assembly.received, assembly.chunks.size()});
  {
    std::lock_guard<std::mutex> lock(libraries_mu_);
    for (const auto& [id, library] : libraries_)
      reply.libraries.push_back({id, library->spec().name,
                                 library->invocations_served(),
                                 library->queued()});
  }
  reply.refs_held = refs_held_.load(std::memory_order_relaxed);
  reply.p2p_fetch_bytes = p2p_fetch_bytes_.load(std::memory_order_relaxed);
  reply.p2p_serve_bytes = p2p_serve_bytes_.load(std::memory_order_relaxed);
  reply.relayed_result_bytes =
      relayed_result_bytes_.load(std::memory_order_relaxed);
  // The encode buffer pool is process-wide; every worker reports the same
  // high-water mark, which status consumers display as the node arena HWM.
  reply.arena_hwm_bytes = BufferPool::GetStats().hwm_bytes;
  SendToManager(reply);
}

void Worker::SendToManager(const Message& message) {
  WireFrame wire = EncodeFrame(message);
  Status status =
      network_->Send(config_.id, net::kManagerEndpoint,
                     std::move(wire.payload), std::move(wire.attachment));
  if (!status.ok()) {
    VLOG_DEBUG("worker") << config_.id
                         << " send to manager failed: " << status.ToString();
  }
}

void Worker::ReapTaskThreads(bool all) {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    if (all) to_join.swap(task_threads_);
  }
  for (auto& t : to_join)
    if (t.joinable()) t.join();
}

}  // namespace vinelet::core
