// Pass-by-reference data plane: ref-argument discovery in submitted
// calls, refcount settlement when calls finish, DropBlob propagation,
// and the manager-side FetchBlob client used by Manager::FetchRef.
#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Pass-by-reference data plane.
// ---------------------------------------------------------------------------

namespace {

/// Cheap pre-filter: serialized WrapRef dicts embed the literal "$blobref"
/// key, so argument blobs without that byte sequence cannot carry a ref and
/// skip the Value decode entirely (by-value workloads pay nothing).
bool MightContainRef(const Blob& args) {
  static constexpr std::string_view kKey = "$blobref";
  const auto bytes = args.span();
  return std::search(bytes.begin(), bytes.end(), kKey.begin(), kKey.end()) !=
         bytes.end();
}

}  // namespace

void Manager::RegisterRefArgs(PendingCall& call) {
  if (call.args.size() == 0 || !MightContainRef(call.args)) return;
  auto value = serde::Value::FromBlob(call.args);
  if (!value.ok() || value->type() != serde::Value::Type::kList) return;
  const auto& list = value->AsList();
  for (std::size_t i = 0; i < list.size(); ++i) {
    auto ref = TryUnwrapRef(list[i]);
    if (!ref) continue;
    RefArg arg;
    arg.arg_index = static_cast<std::uint32_t>(i);
    arg.ref = *ref;
    call.ref_args.push_back(arg);
    auto it = refs_.find(ref->id);
    if (it != refs_.end()) ++it->second.pending_consumers;
  }
}

void Manager::SettleCallRefs(const PendingCall& call) {
  for (const RefArg& arg : call.ref_args) {
    auto it = refs_.find(arg.ref.id);
    if (it == refs_.end()) continue;
    if (it->second.pending_consumers > 0) --it->second.pending_consumers;
    MaybeDropRef(arg.ref.id);
  }
}

void Manager::MaybeDropRef(const hash::ContentId& id) {
  auto it = refs_.find(id);
  if (it == refs_.end()) return;
  if (!it->second.released || it->second.pending_consumers != 0) return;
  for (WorkerId holder : replicas_.Holders(id)) {
    (void)SendTo(holder, DropBlobMsg{id});
    replicas_.RemoveReplica(id, holder);
  }
  (void)manager_store_.Remove(id);  // FetchRef may have cached a copy
  m_.refs_dropped->Add();
  refs_.erase(it);
}

WorkerId Manager::PickRefSource(const hash::ContentId& id,
                                WorkerId target) const {
  // Nearest replica by hash ring: walk the ring from the content id and take
  // the first live holder other than the target itself.
  for (WorkerId candidate : ring_.WalkFrom(id.Prefix64())) {
    if (candidate == target) continue;
    if (replicas_.HasReplica(id, candidate)) return candidate;
  }
  return 0;  // no live holder; the worker fails the fetch and the call retries
}

void Manager::HandleFetchRefCmd(FetchRefCmd cmd) {
  if (auto cached = manager_store_.Get(cmd.ref.id); cached.ok()) {
    cmd.promise->set_value(std::move(*cached));
    return;
  }
  auto [it, inserted] = manager_fetches_.try_emplace(cmd.ref.id);
  it->second.ref = cmd.ref;
  it->second.waiters.push_back(std::move(cmd.promise));
  if (inserted && !AdvanceManagerFetch(it->second)) {
    for (auto& waiter : it->second.waiters)
      waiter->set_value(
          DataLossError("no live replica holds ref " + cmd.ref.id.ShortHex()));
    manager_fetches_.erase(it);
  }
}

bool Manager::AdvanceManagerFetch(ManagerFetch& fetch) {
  for (WorkerId candidate : ring_.WalkFrom(fetch.ref.id.Prefix64())) {
    if (fetch.tried.contains(candidate)) continue;
    if (!replicas_.HasReplica(fetch.ref.id, candidate)) continue;
    fetch.tried.insert(candidate);
    if (SendTo(candidate, FetchBlobMsg{fetch.ref.id, 0, {}}).ok()) {
      fetch.source = candidate;
      return true;
    }
  }
  return false;
}

void Manager::HandleManagerBlobData(BlobDataMsg msg) {
  auto it = manager_fetches_.find(msg.id);
  if (it == manager_fetches_.end()) return;  // stale reply (already resolved)
  if (msg.ok && hash::ContentId::Of(msg.payload) == msg.id) {
    // Cache at the manager so repeated FetchRef calls are free; dropped
    // again when the ref is released.
    (void)manager_store_.PutTrusted(msg.id, msg.payload);
    for (auto& waiter : it->second.waiters)
      waiter->set_value(msg.payload);
    manager_fetches_.erase(it);
    return;
  }
  // Miss or corrupt copy: try the next holder; out of holders = data loss.
  if (!AdvanceManagerFetch(it->second)) {
    for (auto& waiter : it->second.waiters)
      waiter->set_value(DataLossError(
          "every replica of ref " + msg.id.ShortHex() + " failed" +
          (msg.error.empty() ? "" : ": " + msg.error)));
    manager_fetches_.erase(it);
  }
}

}  // namespace vinelet::core
