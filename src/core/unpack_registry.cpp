#include "core/unpack_registry.hpp"

namespace vinelet::core {

Result<std::shared_ptr<const poncho::UnpackedDir>> UnpackRegistry::GetOrUnpack(
    const hash::ContentId& id, const Blob& tarball, bool* unpacked_now) {
  if (unpacked_now != nullptr) *unpacked_now = false;
  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = slots_.find(id);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(id, slot);
      owner = true;
    } else {
      slot = it->second;
    }
    if (!owner) {
      cv_.wait(lock, [&] { return slot->ready; });
      if (!slot->error.ok()) return slot->error;
      return slot->dir;
    }
  }

  // Owner path: unpack outside the lock (this is the expensive step).
  auto dir = poncho::Packer::Unpack(tarball);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dir.ok()) {
      slot->dir = std::make_shared<const poncho::UnpackedDir>(std::move(*dir));
    } else {
      slot->error = dir.status();
      slots_.erase(id);  // allow a retry with a fresh (uncorrupted) tarball
    }
    slot->ready = true;
  }
  cv_.notify_all();
  if (!slot->error.ok()) return slot->error;
  if (unpacked_now != nullptr) *unpacked_now = true;
  return slot->dir;
}

Result<std::shared_ptr<const poncho::UnpackedDir>> UnpackRegistry::Peek(
    const hash::ContentId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  if (it == slots_.end() || !it->second->ready || !it->second->error.ok())
    return NotFoundError("environment not unpacked: " + id.ShortHex());
  return it->second->dir;
}

bool UnpackRegistry::Contains(const hash::ContentId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(id);
  return it != slots_.end() && it->second->ready && it->second->error.ok();
}

void UnpackRegistry::Remove(const hash::ContentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(id);
}

std::size_t UnpackRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace vinelet::core
