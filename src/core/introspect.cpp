#include "core/introspect.hpp"

#include <cstdio>

#include "telemetry/export.hpp"

namespace vinelet::core {

namespace {

std::string Seconds(double value) {
  char out[48];
  std::snprintf(out, sizeof(out), "%.3f", value);
  return out;
}

}  // namespace

bool AnyStraggler(const ClusterStatus& status) {
  for (const auto& worker : status.workers)
    if (worker.straggler) return true;
  return false;
}

bool AnySloBreach(const ClusterStatus& status) {
  for (const auto& slo : status.slo)
    if (slo.Breached()) return true;
  return false;
}

std::string FormatClusterStatus(const ClusterStatus& status) {
  std::string out;
  out += "cluster status @ t=" + Seconds(status.collected_s) + "s\n";
  out += "  task queue: " + std::to_string(status.task_queue_depth) + "\n";
  for (const auto& queue : status.library_queues) {
    out += "  library queue " + queue.library + ": " +
           std::to_string(queue.queued) + "\n";
  }
  for (const auto& broadcast : status.broadcasts) {
    out += "  broadcast " + broadcast.name + " (" + broadcast.id.ShortHex() +
           ", " + std::to_string(broadcast.num_chunks) + " chunks): " +
           std::to_string(broadcast.pending.size()) + " subtree(s) pending";
    if (!broadcast.pending.empty()) {
      out += " [";
      for (std::size_t i = 0; i < broadcast.pending.size(); ++i) {
        if (i != 0) out += " ";
        out += std::to_string(broadcast.pending[i]);
      }
      out += "]";
    }
    out += "\n";
  }
  const SchedulerStatus& sched = status.scheduler;
  out += "  scheduler " + sched.policy + ": hit rate " +
         Seconds(sched.HitRate()) + " (" + std::to_string(sched.affinity_hits) +
         " hits / " + std::to_string(sched.affinity_misses) + " misses), " +
         std::to_string(sched.steals) + " steal(s), autoscaler +" +
         std::to_string(sched.autoscale_deploys) + "/-" +
         std::to_string(sched.autoscale_evicts) + "\n";
  out += "  dispatch batches: " + std::to_string(sched.batches_sent) +
         " message(s), avg " + Seconds(sched.avg_batch_size) +
         " invocation(s)/message, max " +
         std::to_string(sched.max_batch_size) + "\n";
  for (const auto& set : sched.affinity_sets) {
    out += "  affinity " + set.library + ": workers [";
    for (std::size_t i = 0; i < set.workers.size(); ++i) {
      if (i != 0) out += " ";
      out += std::to_string(set.workers[i]);
    }
    out += "]\n";
  }
  for (const auto& slo : status.slo) {
    out += "  slo " + slo.library + ": " + std::to_string(slo.samples) +
           " sample(s), viol " + Seconds(slo.violation_fraction) + " (" +
           std::to_string(slo.violations) + "), p50 " + Seconds(slo.p50_s) +
           "s, p99 " + Seconds(slo.p99_s) + "s, goodput " +
           Seconds(slo.goodput_per_s) + "/s, burn " + Seconds(slo.burn_rate);
    if (slo.Breached()) {
      out += "  ** SLO BREACH";
      if (slo.latency_breached) out += " latency";
      if (slo.goodput_breached) out += " goodput";
      out += " **";
    }
    out += "\n";
  }
  out += "  median p95 latency: " + Seconds(status.cluster_median_p95_s) +
         "s (straggler factor " + Seconds(status.straggler_factor) + ")\n";
  for (const auto& worker : status.workers) {
    out += "  worker " + std::to_string(worker.id) + ": inbox " +
           std::to_string(worker.inbox_depth) + ", tasks " +
           std::to_string(worker.tasks_executed) + ", cache " +
           std::to_string(worker.cache.size()) + " blobs / " +
           std::to_string(worker.CacheBytes()) + " B, p95 " +
           Seconds(worker.p95_latency_s) + "s over " +
           std::to_string(worker.latency_samples) + " sample(s)";
    if (worker.straggler) out += "  ** STRAGGLER **";
    out += "\n";
    out += "    data plane: refs held " + std::to_string(worker.refs_held) +
           ", p2p fetched " + std::to_string(worker.p2p_fetch_bytes) +
           " B, p2p served " + std::to_string(worker.p2p_serve_bytes) +
           " B, relayed results " +
           std::to_string(worker.relayed_result_bytes) + " B, arena hwm " +
           std::to_string(worker.arena_hwm_bytes) + " B\n";
    for (const auto& entry : worker.cache) {
      out += "    cache " + entry.id.ShortHex() + " " +
             std::to_string(entry.bytes) + " B\n";
    }
    for (const auto& assembly : worker.assemblies) {
      out += "    assembling " + assembly.id.ShortHex() + " " +
             std::to_string(assembly.received) + "/" +
             std::to_string(assembly.total) + " chunks\n";
    }
    for (const auto& slot : worker.libraries) {
      out += "    library " + slot.library + "#" +
             std::to_string(slot.instance_id) + ": served " +
             std::to_string(slot.invocations_served) + ", queued " +
             std::to_string(slot.queued) + "\n";
    }
  }
  for (const auto& conn : status.connections) {
    out += "  conn ";
    out += conn.peer == 0 ? std::string("(inbound)")
                          : ("peer " + std::to_string(conn.peer));
    out += " " + conn.remote_addr + ": sent " +
           std::to_string(conn.frames_sent) + " frame(s) / " +
           std::to_string(conn.bytes_sent) + " B, recv " +
           std::to_string(conn.frames_received) + " frame(s) / " +
           std::to_string(conn.bytes_received) + " B, queue " +
           std::to_string(conn.send_queue_bytes) + " B (peak " +
           std::to_string(conn.peak_queue_bytes) + " B), stalls " +
           std::to_string(conn.backpressure_stalls) + "\n";
  }
  return out;
}

std::string ClusterStatusToJson(const ClusterStatus& status) {
  using telemetry::JsonEscape;
  std::string out = "{\n\"collected_s\": " + Seconds(status.collected_s) +
                    ",\n\"task_queue_depth\": " +
                    std::to_string(status.task_queue_depth) +
                    ",\n\"cluster_median_p95_s\": " +
                    Seconds(status.cluster_median_p95_s) +
                    ",\n\"straggler_factor\": " +
                    Seconds(status.straggler_factor) +
                    ",\n\"library_queues\": [";
  bool first = true;
  for (const auto& queue : status.library_queues) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"library\":\"" + JsonEscape(queue.library) +
           "\",\"queued\":" + std::to_string(queue.queued) + "}";
  }
  out += "\n],\n\"broadcasts\": [";
  first = true;
  for (const auto& broadcast : status.broadcasts) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + JsonEscape(broadcast.name) + "\",\"id\":\"" +
           broadcast.id.ShortHex() +
           "\",\"num_chunks\":" + std::to_string(broadcast.num_chunks) +
           ",\"pending\":[";
    for (std::size_t i = 0; i < broadcast.pending.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(broadcast.pending[i]);
    }
    out += "]}";
  }
  const SchedulerStatus& sched = status.scheduler;
  out += "\n],\n\"scheduler\": {\"policy\":\"" + JsonEscape(sched.policy) +
         "\",\"hit_rate\":" + Seconds(sched.HitRate()) +
         ",\"affinity_hits\":" + std::to_string(sched.affinity_hits) +
         ",\"affinity_misses\":" + std::to_string(sched.affinity_misses) +
         ",\"steals\":" + std::to_string(sched.steals) +
         ",\"autoscale_deploys\":" + std::to_string(sched.autoscale_deploys) +
         ",\"autoscale_evicts\":" + std::to_string(sched.autoscale_evicts) +
         ",\"batches_sent\":" + std::to_string(sched.batches_sent) +
         ",\"avg_batch_size\":" + Seconds(sched.avg_batch_size) +
         ",\"max_batch_size\":" + std::to_string(sched.max_batch_size) +
         ",\"affinity_sets\":[";
  first = true;
  for (const auto& set : sched.affinity_sets) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"library\":\"" + JsonEscape(set.library) + "\",\"workers\":[";
    for (std::size_t i = 0; i < set.workers.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(set.workers[i]);
    }
    out += "]}";
  }
  out += "\n]},\n\"slo\": [";
  first = true;
  for (const auto& slo : status.slo) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"library\":\"" + JsonEscape(slo.library) +
           "\",\"latency_target_s\":" + Seconds(slo.latency_target_s) +
           ",\"target_fraction\":" + Seconds(slo.target_fraction) +
           ",\"min_goodput_per_s\":" + Seconds(slo.min_goodput_per_s) +
           ",\"window_s\":" + Seconds(slo.window_s) +
           ",\"samples\":" + std::to_string(slo.samples) +
           ",\"violations\":" + std::to_string(slo.violations) +
           ",\"violation_fraction\":" + Seconds(slo.violation_fraction) +
           ",\"p50_s\":" + Seconds(slo.p50_s) +
           ",\"p99_s\":" + Seconds(slo.p99_s) +
           ",\"goodput_per_s\":" + Seconds(slo.goodput_per_s) +
           ",\"burn_rate\":" + Seconds(slo.burn_rate) +
           ",\"latency_breached\":" + (slo.latency_breached ? "true" : "false") +
           ",\"goodput_breached\":" +
           (slo.goodput_breached ? "true" : "false") + "}";
  }
  out += "\n],\n\"workers\": [";
  first = true;
  for (const auto& worker : status.workers) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"id\":" + std::to_string(worker.id) +
           ",\"inbox_depth\":" + std::to_string(worker.inbox_depth) +
           ",\"tasks_executed\":" + std::to_string(worker.tasks_executed) +
           ",\"p95_latency_s\":" + Seconds(worker.p95_latency_s) +
           ",\"latency_samples\":" + std::to_string(worker.latency_samples) +
           ",\"straggler\":" + (worker.straggler ? "true" : "false") +
           ",\"refs_held\":" + std::to_string(worker.refs_held) +
           ",\"p2p_fetch_bytes\":" + std::to_string(worker.p2p_fetch_bytes) +
           ",\"p2p_serve_bytes\":" + std::to_string(worker.p2p_serve_bytes) +
           ",\"relayed_result_bytes\":" +
           std::to_string(worker.relayed_result_bytes) +
           ",\"arena_hwm_bytes\":" + std::to_string(worker.arena_hwm_bytes) +
           ",\"cache\":[";
    for (std::size_t i = 0; i < worker.cache.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"id\":\"" + worker.cache[i].id.ShortHex() +
             "\",\"bytes\":" + std::to_string(worker.cache[i].bytes) + "}";
    }
    out += "],\"assemblies\":[";
    for (std::size_t i = 0; i < worker.assemblies.size(); ++i) {
      if (i != 0) out += ",";
      const AssemblyStatus& assembly = worker.assemblies[i];
      out += "{\"id\":\"" + assembly.id.ShortHex() +
             "\",\"received\":" + std::to_string(assembly.received) +
             ",\"total\":" + std::to_string(assembly.total) + "}";
    }
    out += "],\"libraries\":[";
    for (std::size_t i = 0; i < worker.libraries.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"instance_id\":" +
             std::to_string(worker.libraries[i].instance_id) +
             ",\"library\":\"" + JsonEscape(worker.libraries[i].library) +
             "\",\"served\":" +
             std::to_string(worker.libraries[i].invocations_served) +
             ",\"queued\":" + std::to_string(worker.libraries[i].queued) + "}";
    }
    out += "]}";
  }
  out += "\n],\n\"connections\": [";
  first = true;
  for (const auto& conn : status.connections) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"peer\":" + std::to_string(conn.peer) + ",\"remote_addr\":\"" +
           JsonEscape(conn.remote_addr) +
           "\",\"frames_sent\":" + std::to_string(conn.frames_sent) +
           ",\"bytes_sent\":" + std::to_string(conn.bytes_sent) +
           ",\"frames_received\":" + std::to_string(conn.frames_received) +
           ",\"bytes_received\":" + std::to_string(conn.bytes_received) +
           ",\"send_queue_bytes\":" + std::to_string(conn.send_queue_bytes) +
           ",\"peak_queue_bytes\":" + std::to_string(conn.peak_queue_bytes) +
           ",\"backpressure_stalls\":" +
           std::to_string(conn.backpressure_stalls) + "}";
  }
  out += "\n]\n}\n";
  return out;
}

}  // namespace vinelet::core
