#include "core/library_runtime.hpp"

#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

LibraryRuntime::LibraryRuntime(LibrarySpec spec, LibraryInstanceId instance_id,
                               storage::ContentStore* store,
                               UnpackRegistry* unpacked,
                               const serde::FunctionRegistry* registry,
                               Callbacks callbacks,
                               telemetry::Telemetry* telemetry,
                               std::string track)
    : spec_(std::move(spec)),
      instance_id_(instance_id),
      store_(store),
      unpacked_(unpacked),
      registry_(registry),
      callbacks_(std::move(callbacks)),
      telemetry_(telemetry),
      track_(std::move(track)) {
  if (telemetry_ != nullptr) {
    if (track_.empty())
      track_ = "library-" + spec_.name + "#" + std::to_string(instance_id_);
    auto& reg = telemetry_->metrics;
    invocations_metric_ = &reg.GetCounter("library.invocations");
    invoke_exec_s_ = &reg.GetHistogram("library.invocation_exec_s");
    setup_s_ = &reg.GetHistogram("library.setup_s");
  }
}

LibraryRuntime::~LibraryRuntime() { Stop(); }

void LibraryRuntime::Start() {
  thread_ = std::thread([this] { Run(); });
}

void LibraryRuntime::Stop() {
  requests_.Close();
  if (thread_.joinable()) thread_.join();
  ReapForked(/*all=*/true);
}

bool LibraryRuntime::Submit(RunInvocationMsg msg) {
  return requests_.Send(std::move(msg));
}

std::size_t LibraryRuntime::SubmitBatch(std::vector<RunInvocationMsg>& msgs) {
  return requests_.SendAll(msgs.begin(), msgs.end());
}

void LibraryRuntime::Run() {
  // Phase 1: one-time context setup — the whole point of the library.
  TimingBreakdown setup_timing;
  Status status = Setup(setup_timing);
  if (!status.ok()) {
    VLOG_WARN("library") << spec_.name << "#" << instance_id_
                         << " setup failed: " << status.ToString();
    callbacks_.on_ready(instance_id_, Result<SetupReport>(status));
    return;
  }
  SetupReport report;
  report.timing = setup_timing;
  report.context_memory_bytes = context_ ? context_->MemoryBytes() : 0;
  callbacks_.on_ready(instance_id_, report);

  // Phase 2: serve invocations until told to stop.
  while (auto msg = requests_.Recv()) {
    if (spec_.exec_mode == ExecMode::kDirect) {
      InvocationDoneMsg done = RunOne(*msg);
      served_.fetch_add(1, std::memory_order_relaxed);
      callbacks_.on_done(std::move(done));
    } else {
      // Fork mode: a child per invocation, all sharing the retained
      // context.  The manager's slot accounting bounds concurrency.
      RunInvocationMsg request = std::move(*msg);
      std::lock_guard<std::mutex> lock(fork_mu_);
      forked_.emplace_back([this, request = std::move(request)] {
        InvocationDoneMsg done = RunOne(request);
        served_.fetch_add(1, std::memory_order_relaxed);
        callbacks_.on_done(std::move(done));
      });
    }
    ReapForked(/*all=*/false);
  }
  ReapForked(/*all=*/true);
}

Status LibraryRuntime::Setup(TimingBreakdown& timing) {
  const double phase_start_s =
      telemetry_ != nullptr ? telemetry_->tracer.Now() : 0.0;
  // Stage inputs out of the worker cache; unpack environments.
  Stopwatch watch(clock_);
  for (const auto& decl : spec_.inputs) {
    auto blob = store_->Get(decl.id);
    if (!blob.ok())
      return FailedPreconditionError("library input not staged: " + decl.name);
    if (decl.unpack) {
      bool unpacked_now = false;
      Stopwatch unpack_watch(clock_);
      auto dir = unpacked_->GetOrUnpack(decl.id, *blob, &unpacked_now);
      if (!dir.ok()) return dir.status();
      if (unpacked_now && telemetry_ != nullptr) {
        telemetry_->metrics.GetCounter("worker.unpacks").Add();
        telemetry_->metrics.GetHistogram("worker.unpack_s")
            .Observe(unpack_watch.Elapsed());
      }
      held_envs_.push_back(*dir);
      for (const auto& [name, content] : (*dir)->files)
        files_.emplace(name, content);
    } else if (decl.kind != storage::FileKind::kSerializedFunction) {
      files_.emplace(decl.name, std::move(*blob));
    }
  }
  timing.worker_s = watch.Elapsed();

  // Reconstruct function objects (the "deserialize + rebuild" cost).
  watch.Restart();
  for (const auto& fn_name : spec_.function_names) {
    BoundFunction bound;
    // Serialized-path functions ship as an input file named "fn:<name>".
    bool via_blob = false;
    for (const auto& decl : spec_.inputs) {
      if (decl.kind == storage::FileKind::kSerializedFunction &&
          decl.name == "fn:" + fn_name) {
        auto blob = store_->Get(decl.id);
        if (!blob.ok()) return blob.status();
        auto parsed = serde::SerializedFunction::Deserialize(*blob);
        if (!parsed.ok()) return parsed.status();
        auto def = registry_->FindFunction(parsed->name());
        if (!def.ok()) return def.status();
        bound.def = std::move(*def);
        bound.closure = parsed->closure();
        via_blob = true;
        break;
      }
    }
    if (!via_blob) {
      auto def = registry_->FindFunction(fn_name);
      if (!def.ok()) return def.status();
      bound.def = std::move(*def);
    }
    functions_.emplace(fn_name, std::move(bound));
  }
  timing.deserialize_s = watch.Elapsed();

  // Run the context-setup function: build the retained in-memory state.
  // The stopwatch restarts here so context_s is pure context-setup cost;
  // the deserialize work above is attributed to deserialize_s.
  watch.Restart();
  if (fault_ && fault_->InjectSetupFailure(fault_endpoint_))
    return InternalError("injected library setup failure");
  if (!spec_.setup_name.empty()) {
    auto setup = registry_->FindSetup(spec_.setup_name);
    if (!setup.ok()) return setup.status();
    auto args = serde::Value::FromBlob(spec_.setup_args);
    if (!args.ok()) return args.status();
    serde::InvocationEnv env;
    env.files = &files_;
    env.sandbox = "library-" + std::to_string(instance_id_);
    auto context = setup->fn(*args, env);
    if (!context.ok()) return context.status();
    context_ = std::move(*context);
  }
  timing.context_s = watch.Elapsed();

  if (telemetry_ != nullptr) {
    if (setup_s_ != nullptr)
      setup_s_->Observe(timing.worker_s + timing.deserialize_s +
                        timing.context_s);
    if (telemetry_->tracer.enabled()) {
      // Chain the setup phases off the install's trace (EmitLinked degrades
      // to plain spans when no trace was carried in).
      auto& tracer = telemetry_->tracer;
      double t = phase_start_s;
      telemetry::TraceContext ctx = setup_trace_;
      ctx = tracer.EmitLinked(ctx, telemetry::Phase::kUnpack, "library",
                              track_, instance_id_, t, t + timing.worker_s);
      t += timing.worker_s;
      ctx = tracer.EmitLinked(ctx, telemetry::Phase::kDeserialize, "library",
                              track_, instance_id_, t,
                              t + timing.deserialize_s);
      t += timing.deserialize_s;
      tracer.EmitLinked(ctx, telemetry::Phase::kContextSetup, "library",
                        track_, instance_id_, t, t + timing.context_s);
    }
  }
  return Status::Ok();
}

InvocationDoneMsg LibraryRuntime::RunOne(const RunInvocationMsg& msg) {
  InvocationDoneMsg done;
  done.id = msg.id;
  done.trace = msg.trace;  // ride the trace back even if this side is untraced
  const double phase_start_s =
      telemetry_ != nullptr ? telemetry_->tracer.Now() : 0.0;

  // Load arguments into memory — the only per-invocation payload (§3.4).
  Stopwatch watch(clock_);
  auto args = serde::Value::FromBlob(msg.args);
  if (!args.ok()) {
    done.ok = false;
    done.error = args.status().ToString();
    return done;
  }
  // Splice pass-by-reference arguments: the worker fetched every missing
  // payload into the local store before submitting, so these Gets hit.
  for (const RefArg& ra : msg.ref_args) {
    auto payload = store_->Get(ra.ref.id);
    if (!payload.ok()) {
      done.ok = false;
      done.error = "ref argument not in store: " + payload.status().ToString();
      return done;
    }
    auto value = serde::Value::FromBlob(*payload);
    if (!value.ok()) {
      done.ok = false;
      done.error = "ref argument undecodable: " + value.status().ToString();
      return done;
    }
    if (args->type() != serde::Value::Type::kList ||
        ra.arg_index >= args->AsList().size()) {
      done.ok = false;
      done.error = "ref arg index out of range: " +
                   std::to_string(ra.arg_index);
      return done;
    }
    args->AsList()[ra.arg_index] = std::move(*value);
  }
  auto fn_it = functions_.find(msg.function_name);
  if (fn_it == functions_.end()) {
    done.ok = false;
    done.error = "function not in library: " + msg.function_name;
    return done;
  }
  done.timing.deserialize_s = watch.Elapsed();

  if (fault_ && fault_->InjectInvocationFailure(fault_endpoint_)) {
    done.ok = false;
    done.error = "injected invocation failure";
    return done;
  }

  // Execute in the retained environment.  An injected straggler delay is
  // charged to exec_s: from the outside it is simply a slow execution.
  watch.Restart();
  if (fault_) {
    const double slow_s = fault_->StragglerDelayS(fault_endpoint_);
    if (slow_s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(slow_s));
  }
  serde::InvocationEnv env;
  env.files = &files_;
  env.context = context_.get();
  env.closure = &fn_it->second.closure;
  env.sandbox = "sandbox-" + std::to_string(msg.id);
  auto result = fn_it->second.def.fn(*args, env);
  done.timing.exec_s = watch.Elapsed();

  if (!result.ok()) {
    done.ok = false;
    done.error = result.status().ToString();
    return done;
  }
  done.ok = true;
  done.result = result->ToBlob();
  if (ref_min_bytes_ > 0 && done.result.size() >= ref_min_bytes_) {
    // Retain the payload locally (pinned against eviction) and answer with
    // a reference: the result bytes never cross the manager's inbox, and a
    // downstream consumer fetches them peer-to-peer.  If the store rejects
    // the payload the result simply ships by value — refs are an
    // optimization, never a correctness dependency.
    const hash::ContentId ref_id = hash::ContentId::Of(done.result);
    if (store_->PutTrusted(ref_id, done.result).ok()) {
      (void)store_->Pin(ref_id);
      if (refs_held_ != nullptr)
        refs_held_->fetch_add(1, std::memory_order_relaxed);
      done.ref = BlobRef{ref_id, done.result.size(), ref_worker_};
      done.result = Blob();
    }
  }
  if (telemetry_ != nullptr) {
    invocations_metric_->Add();
    invoke_exec_s_->Observe(done.timing.exec_s);
    if (telemetry_->tracer.enabled()) {
      // deserialize -> exec chain off the manager's dispatch span; the exec
      // context rides back on the reply so the result span links to it.
      auto& tracer = telemetry_->tracer;
      telemetry::TraceContext ctx = msg.trace;
      ctx = tracer.EmitLinked(ctx, telemetry::Phase::kDeserialize,
                              "invocation", track_, msg.id, phase_start_s,
                              phase_start_s + done.timing.deserialize_s);
      ctx = tracer.EmitLinked(ctx, telemetry::Phase::kExec, "invocation",
                              track_, msg.id,
                              phase_start_s + done.timing.deserialize_s,
                              phase_start_s + done.timing.deserialize_s +
                                  done.timing.exec_s);
      done.trace = ctx;
    }
  }
  return done;
}

void LibraryRuntime::ReapForked(bool all) {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(fork_mu_);
    if (all) {
      to_join.swap(forked_);
    } else if (forked_.size() > 64) {
      // Bound the backlog: join the oldest half (they are likely done).
      const std::size_t keep = forked_.size() / 2;
      to_join.assign(std::make_move_iterator(forked_.begin()),
                     std::make_move_iterator(forked_.end() -
                                             static_cast<long>(keep)));
      forked_.erase(forked_.begin(),
                    forked_.end() - static_cast<long>(keep));
    }
  }
  for (auto& t : to_join)
    if (t.joinable()) t.join();
}

}  // namespace vinelet::core
