// Live cluster introspection: the structured answer to "what is the
// cluster doing right now?".
//
// Manager::QueryStatus assembles a ClusterStatus from its own scheduler
// state plus one StatusReplyMsg per connected worker (queue depths, cache
// contents, reassembly progress, library slot occupancy), and flags
// stragglers: workers whose rolling p95 invocation latency exceeds
// `straggler_factor` × the cluster median.  The `vinelet-status` CLI and
// tests render it with FormatClusterStatus / ClusterStatusToJson.
#pragma once

#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/types.hpp"
#include "telemetry/slo.hpp"

namespace vinelet::core {

/// One worker's live state, merged from its StatusReplyMsg and the
/// manager's own latency bookkeeping.
struct WorkerStatus {
  WorkerId id = 0;
  std::uint64_t inbox_depth = 0;
  std::uint64_t tasks_executed = 0;
  std::vector<CacheEntryStatus> cache;
  std::vector<AssemblyStatus> assemblies;
  std::vector<LibrarySlotStatus> libraries;
  /// Rolling p95 of invocation round-trip latency on this worker (0 with
  /// no samples), and the window size it was computed over.
  double p95_latency_s = 0.0;
  std::uint64_t latency_samples = 0;
  bool straggler = false;
  /// Pass-by-reference data-plane counters (see StatusReplyMsg): pinned ref
  /// payloads held, peer-to-peer bytes fetched/served, by-value result bytes
  /// relayed through the manager, and the encode buffer-pool high-water mark.
  std::uint64_t refs_held = 0;
  std::uint64_t p2p_fetch_bytes = 0;
  std::uint64_t p2p_serve_bytes = 0;
  std::uint64_t relayed_result_bytes = 0;
  std::uint64_t arena_hwm_bytes = 0;

  std::uint64_t CacheBytes() const {
    std::uint64_t total = 0;
    for (const auto& entry : cache) total += entry.bytes;
    return total;
  }
};

/// One in-flight broadcast: which destinations have not confirmed yet.
struct BroadcastStatus {
  std::string name;
  hash::ContentId id;
  std::uint64_t num_chunks = 0;
  std::vector<WorkerId> pending;  // unconfirmed destinations (subtrees)
};

/// One library template's backlog at the manager.
struct LibraryQueueStatus {
  std::string library;
  std::uint64_t queued = 0;
};

/// One library's affinity set: workers currently retaining its context.
struct AffinitySetStatus {
  std::string library;
  std::vector<WorkerId> workers;
};

/// Scheduler + autoscaler view: routing policy, affinity hit rate, steal
/// and autoscale action counts, and the dispatch batch-size distribution.
struct SchedulerStatus {
  std::string policy;  // "affinity" or "first_fit"
  std::uint64_t affinity_hits = 0;
  std::uint64_t affinity_misses = 0;
  std::uint64_t steals = 0;
  std::uint64_t autoscale_deploys = 0;
  std::uint64_t autoscale_evicts = 0;
  std::uint64_t batches_sent = 0;       // dispatch messages (any size)
  double avg_batch_size = 0.0;          // invocations per dispatch message
  std::uint64_t max_batch_size = 0;     // largest batch observed
  std::vector<AffinitySetStatus> affinity_sets;

  double HitRate() const {
    const std::uint64_t total = affinity_hits + affinity_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(affinity_hits) /
                            static_cast<double>(total);
  }
};

struct ClusterStatus {
  double collected_s = 0.0;  // telemetry clock when the query ran
  std::uint64_t task_queue_depth = 0;
  std::vector<LibraryQueueStatus> library_queues;
  std::vector<BroadcastStatus> broadcasts;
  std::vector<WorkerStatus> workers;
  /// Median of the per-worker p95 latencies (0 with no samples), and the
  /// multiplier a worker's p95 must exceed it by to be flagged.
  double cluster_median_p95_s = 0.0;
  double straggler_factor = 3.0;
  SchedulerStatus scheduler;
  /// Per-library SLO evaluation (empty when no targets are configured).
  std::vector<telemetry::SloSnapshot> slo;
  /// Transport-level view of the manager's links: per-connection frame and
  /// byte counters, send-queue high-water marks, and backpressure stalls.
  /// Populated from Transport::ConnectionsSnapshot(), so it is empty for
  /// the in-process bus and lists real sockets under TcpTransport.
  std::vector<net::ConnectionStats> connections;
};

/// True when any worker carries the straggler flag.
bool AnyStraggler(const ClusterStatus& status);

/// True when any library's SLO is breached (latency burn rate > 1 or
/// goodput under its floor).
bool AnySloBreach(const ClusterStatus& status);

/// Human-readable multi-line rendering (the vinelet-status default).
std::string FormatClusterStatus(const ClusterStatus& status);

/// Machine-readable rendering (vinelet-status --json).
std::string ClusterStatusToJson(const ClusterStatus& status);

}  // namespace vinelet::core
