// Futures returned by Manager::Submit*.
//
// The application "receives a promise that it will know and receive the
// result when a function is successfully executed" (paper §2.1.1); this is
// that promise.  Resolution happens on the manager thread; waiting happens
// on application threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "common/status.hpp"
#include "core/types.hpp"
#include "serde/value.hpp"

namespace vinelet::core {

/// The result of one task or invocation.
struct Outcome {
  serde::Value value;
  TimingBreakdown timing;
  WorkerId worker = 0;
};

/// One-shot, thread-safe promise/future pair.
class OutcomeFuture {
 public:
  /// Resolves exactly once; later calls are ignored (a retried task may race
  /// its original completion after a worker rejoin).
  void Resolve(Result<Outcome> outcome) {
    std::function<void(const Result<Outcome>&)> callback;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++resolutions_;
      if (outcome_.has_value()) return;
      outcome_.emplace(std::move(outcome));
      callback = std::move(callback_);
      callback_ = nullptr;
      cv_.notify_all();
    }
    if (callback) callback(*outcome_);
  }

  /// Registers a one-shot completion callback; fires immediately when the
  /// future is already resolved.  Used by the DAG layer to dispatch
  /// dependents without a polling thread.  At most one callback.
  void OnReady(std::function<void(const Result<Outcome>&)> callback) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!outcome_.has_value()) {
        callback_ = std::move(callback);
        return;
      }
    }
    callback(*outcome_);
  }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outcome_.has_value();
  }

  /// How many times Resolve was *called* (not how many took effect).  The
  /// chaos harness asserts this is exactly 1 at quiescence: a value > 1
  /// means some recovery path tried to complete an already-finished item.
  std::uint64_t resolutions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resolutions_;
  }

  /// Blocks until resolved.
  Result<Outcome> Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return outcome_.has_value(); });
    return *outcome_;
  }

  /// Blocks up to `timeout`; nullopt if still unresolved.
  std::optional<Result<Outcome>> WaitFor(std::chrono::duration<double> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return outcome_.has_value(); }))
      return std::nullopt;
    return *outcome_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Result<Outcome>> outcome_;
  std::function<void(const Result<Outcome>&)> callback_;
  std::uint64_t resolutions_ = 0;
};

using FuturePtr = std::shared_ptr<OutcomeFuture>;

}  // namespace vinelet::core
