#include "core/manager.hpp"
//
// Manager lifecycle, the application-facing API, and the event loop live
// here.  The remaining member functions are grouped by concern into
// sibling translation units: manager_refs.cpp (pass-by-reference data
// plane), manager_scheduler.cpp (placement + dispatch),
// manager_broadcast.cpp (staging + chunked broadcast),
// manager_introspect.cpp (status + quiescence), and manager_recovery.cpp
// (fault handling).

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

Manager::Manager(std::shared_ptr<net::Transport> network, ManagerConfig config)
    : network_(std::move(network)),
      config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &serde::FunctionRegistry::Global()),
      replicas_(config.worker_transfer_cap, config.manager_transfer_cap),
      slo_monitor_(config.slo) {
  if (config.telemetry != nullptr) {
    telemetry_ = config.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<telemetry::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  auto& reg = telemetry_->metrics;
  m_.tasks_completed = &reg.GetCounter("manager.tasks_completed");
  m_.invocations_completed = &reg.GetCounter("manager.invocations_completed");
  m_.libraries_deployed = &reg.GetCounter("manager.libraries_deployed");
  m_.libraries_evicted = &reg.GetCounter("manager.libraries_evicted");
  m_.retries = &reg.GetCounter("manager.retries");
  m_.peer_transfers = &reg.GetCounter("manager.peer_transfers");
  m_.manager_transfers = &reg.GetCounter("manager.manager_transfers");
  m_.peer_transfer_bytes = &reg.GetCounter("manager.peer_transfer_bytes");
  m_.manager_transfer_bytes = &reg.GetCounter("manager.manager_transfer_bytes");
  m_.ref_results = &reg.GetCounter("manager.ref_results");
  m_.ref_result_bytes = &reg.GetCounter("manager.ref_result_bytes");
  m_.refs_dropped = &reg.GetCounter("manager.refs_dropped");
  m_.broadcast_resends = &reg.GetCounter("manager.broadcast_resends");
  m_.broadcast_resend_bytes = &reg.GetCounter("manager.broadcast_resend_bytes");
  m_.affinity_hits = &reg.GetCounter("manager.affinity_hits");
  m_.affinity_misses = &reg.GetCounter("manager.affinity_misses");
  m_.steals = &reg.GetCounter("manager.steals");
  m_.autoscale_deploys = &reg.GetCounter("manager.autoscale_deploys");
  m_.autoscale_evicts = &reg.GetCounter("manager.autoscale_evicts");
  m_.affinity_warm_instances = &reg.GetGauge("manager.affinity_warm_instances");
  m_.libraries_active = &reg.GetGauge("manager.libraries_active");
  m_.retained_context_bytes = &reg.GetGauge("manager.retained_context_bytes");
  m_.setup_transfer_s = &reg.GetGauge("manager.last_setup.transfer_s");
  m_.setup_worker_s = &reg.GetGauge("manager.last_setup.worker_s");
  m_.setup_deserialize_s = &reg.GetGauge("manager.last_setup.deserialize_s");
  m_.setup_context_s = &reg.GetGauge("manager.last_setup.context_s");
  m_.setup_exec_s = &reg.GetGauge("manager.last_setup.exec_s");
  m_.task_roundtrip_s = &reg.GetHistogram("manager.task_roundtrip_s");
  m_.invocation_roundtrip_s =
      &reg.GetHistogram("manager.invocation_roundtrip_s");
  m_.dispatch_batch_size = &reg.GetHistogram("manager.dispatch_batch_size");
}

Manager::~Manager() { Stop(); }

Status Manager::Start() {
  auto inbox = network_->Register(net::kManagerEndpoint);
  if (!inbox.ok()) return inbox.status();
  inbox_ = std::move(*inbox);
  // Learn of abrupt worker departures (no Goodbye) through the transport,
  // the way a real manager observes a TCP reset.
  network_->SetDisconnectListener([this](net::EndpointId id) {
    if (id == net::kManagerEndpoint) return;
    commands_.TrySend(DisconnectCmd{id});
  });
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void Manager::Stop() {
  if (!started_) return;
  started_ = false;
  network_->SetDisconnectListener(nullptr);
  commands_.Close();
  network_->Unregister(net::kManagerEndpoint);  // closes the inbox
  if (thread_.joinable()) thread_.join();

  // After the join, scheduler state is safe to touch: fail anything still
  // outstanding so application threads blocked on futures wake up.
  auto cancel = [this](FuturePtr& future) {
    if (future) future->Resolve(CancelledError("manager stopped"));
    FinishOne();
  };
  for (auto& task : task_queue_) cancel(task.future);
  task_queue_.clear();
  for (auto& [_, running] : running_tasks_) cancel(running.task.future);
  running_tasks_.clear();
  for (auto& [_, info] : libraries_) {
    for (auto& call : info.queue) cancel(call.future);
    info.queue.clear();
  }
  for (auto& [_, instance] : instances_) {
    for (auto& [__, call] : instance.running) cancel(call.future);
    instance.running.clear();
  }
  instances_.clear();
  for (auto& [_, broadcast] : broadcasts_) cancel(broadcast.future);
  broadcasts_.clear();
  if (status_query_.active) {
    status_query_.promise->set_value(CancelledError("manager stopped"));
    status_query_ = StatusQuery{};
  }
  for (auto& [_, fetch] : manager_fetches_)
    for (auto& waiter : fetch.waiters)
      waiter->set_value(CancelledError("manager stopped"));
  manager_fetches_.clear();
}

// ---------------------------------------------------------------------------
// Application-facing API (any thread).
// ---------------------------------------------------------------------------

storage::FileDecl Manager::DeclareBlob(const std::string& name, Blob payload,
                                       storage::FileKind kind, bool cache,
                                       bool peer_transfer, bool unpack) {
  storage::FileDecl decl;
  decl.name = name;
  decl.id = hash::ContentId::Of(payload);
  decl.size = payload.size();
  decl.kind = kind;
  decl.cache = cache;
  decl.peer_transfer = peer_transfer;
  decl.unpack = unpack;
  Status stored = manager_store_.PutTrusted(decl.id, std::move(payload));
  if (!stored.ok()) {
    VLOG_WARN("manager") << "declare failed for " << name << ": "
                         << stored.ToString();
  }
  return decl;
}

FuturePtr Manager::BroadcastFile(const storage::FileDecl& decl,
                                 std::uint64_t chunk_bytes,
                                 unsigned fanout_cap) {
  auto future = std::make_shared<OutcomeFuture>();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(
          BroadcastCmd{decl, chunk_bytes, fanout_cap, future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

Result<LibrarySpec> Manager::CreateLibraryFromFunctions(
    const std::string& library_name,
    const std::vector<std::string>& function_names,
    const std::string& setup_name, const serde::Value& setup_args,
    const poncho::Analyzer* analyzer, const LibraryOptions& options) {
  if (library_name.empty())
    return InvalidArgumentError("library name empty");
  if (function_names.empty())
    return InvalidArgumentError("library needs at least one function");

  LibrarySpec spec;
  spec.name = library_name;
  spec.resources = options.resources;
  spec.slots = options.slots;
  spec.exec_mode = options.exec_mode;

  // Function code: serialize each function and bind the blob as a cached,
  // peer-transferable input file (paper §3.2, "Function code").
  for (const auto& fn_name : function_names) {
    auto def = registry_->FindFunction(fn_name);
    if (!def.ok()) return def.status();
    Blob blob = serde::SerializedFunction::Serialize(
        fn_name, serde::Value(), options.function_code_size);
    storage::FileDecl decl =
        DeclareBlob("fn:" + fn_name, std::move(blob),
                    storage::FileKind::kSerializedFunction,
                    /*cache=*/true, /*peer_transfer=*/true);
    spec.inputs.push_back(std::move(decl));
    spec.function_names.push_back(fn_name);
  }

  // Environment setup binding (paper §3.2, "Environment Setup").
  if (!setup_name.empty()) {
    auto setup = registry_->FindSetup(setup_name);
    if (!setup.ok()) return setup.status();
    spec.setup_name = setup_name;
  }
  spec.setup_args = setup_args.ToBlob();

  // Software dependencies: poncho scan -> resolved env -> packed tarball
  // bound as a cached input (paper §3.2, "Software dependencies").
  if (analyzer != nullptr) {
    auto env = analyzer->AnalyzeFunctions(*registry_, function_names);
    if (!env.ok()) return env.status();
    storage::FileDecl decl = DeclareBlob(
        "env:" + library_name, env->tarball, storage::FileKind::kEnvironment,
        /*cache=*/true, /*peer_transfer=*/true, /*unpack=*/true);
    spec.inputs.push_back(std::move(decl));
  }
  return spec;
}

void Manager::AddLibraryInput(LibrarySpec& spec,
                              storage::FileDecl decl) const {
  spec.inputs.push_back(std::move(decl));
}

Status Manager::InstallLibrary(LibrarySpec spec) {
  for (const auto& decl : spec.inputs) {
    if (!decl.cache)
      return InvalidArgumentError(
          "library inputs must be cacheable (context files are retained): " +
          decl.name);
    if (!manager_store_.Contains(decl.id))
      return FailedPreconditionError("library input not declared: " +
                                     decl.name);
  }
  if (!commands_.Send(InstallCmd{std::move(spec)}))
    return UnavailableError("manager stopped");
  return Status::Ok();
}

FuturePtr Manager::SubmitTask(const std::string& function_name,
                              const serde::Value& args,
                              std::vector<storage::FileDecl> inputs,
                              Resources resources,
                              bool ship_serialized_function,
                              std::size_t function_code_size) {
  auto future = std::make_shared<OutcomeFuture>();

  TaskSpec spec;
  spec.id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
  spec.function_name = function_name;
  spec.args = args.ToBlob();
  spec.resources = resources;
  spec.inputs = std::move(inputs);

  if (ship_serialized_function) {
    // The shipped function blob follows the task's dominant caching mode:
    // cached alongside cached inputs (L2), inline otherwise (L1).
    const bool any_cached = std::any_of(
        spec.inputs.begin(), spec.inputs.end(),
        [](const storage::FileDecl& d) { return d.cache; });
    Blob blob = serde::SerializedFunction::Serialize(
        function_name, serde::Value(), function_code_size);
    storage::FileDecl decl = DeclareBlob(
        "fn:" + function_name, std::move(blob),
        storage::FileKind::kSerializedFunction, any_cached,
        /*peer_transfer=*/true);
    spec.inputs.push_back(std::move(decl));
  }

  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(TaskCmd{std::move(spec), future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

FuturePtr Manager::SubmitCall(const std::string& library_name,
                              const std::string& function_name,
                              const serde::Value& args) {
  auto future = std::make_shared<OutcomeFuture>();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(CallCmd{library_name, function_name, args.ToBlob(),
                              future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

Result<Blob> Manager::FetchRef(const BlobRef& ref, double timeout_s) {
  if (!ref.valid()) return InvalidArgumentError("not a valid ref");
  auto promise = std::make_shared<std::promise<Result<Blob>>>();
  auto future = promise->get_future();
  if (!commands_.Send(FetchRefCmd{ref, std::move(promise)}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("ref fetch timed out");
  return future.get();
}

Status Manager::ReleaseRef(const BlobRef& ref) {
  if (!ref.valid()) return InvalidArgumentError("not a valid ref");
  if (!commands_.Send(ReleaseRefCmd{ref}))
    return UnavailableError("manager stopped");
  return Status::Ok();
}

Status Manager::WaitAll(double timeout_s) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  auto done = [&] { return outstanding_ == 0; };
  if (timeout_s < 0) {
    wait_cv_.wait(lock, done);
    return Status::Ok();
  }
  if (!wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done))
    return TimeoutError("WaitAll: " + std::to_string(outstanding_) +
                        " results still outstanding");
  return Status::Ok();
}

Status Manager::WaitForWorkers(std::size_t count, double timeout_s) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  if (!wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                         [&] { return worker_count_ >= count; }))
    return TimeoutError("workers connected: " + std::to_string(worker_count_) +
                        "/" + std::to_string(count));
  return Status::Ok();
}

std::size_t Manager::connected_workers() const {
  std::lock_guard<std::mutex> lock(wait_mu_);
  return worker_count_;
}

Result<ClusterStatus> Manager::QueryStatus(double timeout_s) {
  auto promise = std::make_shared<std::promise<Result<ClusterStatus>>>();
  auto future = promise->get_future();
  if (!commands_.Send(StatusCmd{promise}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("status query timed out");
  return future.get();
}

Result<QuiescenceReport> Manager::CheckQuiescent(double timeout_s) {
  auto promise = std::make_shared<std::promise<QuiescenceReport>>();
  auto future = promise->get_future();
  if (!commands_.Send(QuiescenceCmd{std::move(promise)}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("quiescence check timed out");
  return future.get();
}

std::string QuiescenceReport::ToString() const {
  if (quiescent) return "quiescent";
  std::string out = "NOT quiescent:";
  for (const std::string& violation : violations) {
    out += "\n  - ";
    out += violation;
  }
  return out;
}

ManagerMetrics Manager::metrics() const {
  const telemetry::MetricsSnapshot snap = telemetry_->metrics.Snapshot();
  ManagerMetrics m;
  m.tasks_completed = snap.CounterValue("manager.tasks_completed");
  m.invocations_completed = snap.CounterValue("manager.invocations_completed");
  m.libraries_deployed = snap.CounterValue("manager.libraries_deployed");
  m.libraries_evicted = snap.CounterValue("manager.libraries_evicted");
  m.retries = snap.CounterValue("manager.retries");
  m.peer_transfers = snap.CounterValue("manager.peer_transfers");
  m.manager_transfers = snap.CounterValue("manager.manager_transfers");
  m.ref_results = snap.CounterValue("manager.ref_results");
  m.ref_result_bytes = snap.CounterValue("manager.ref_result_bytes");
  m.refs_dropped = snap.CounterValue("manager.refs_dropped");
  m.affinity_hits = snap.CounterValue("manager.affinity_hits");
  m.affinity_misses = snap.CounterValue("manager.affinity_misses");
  m.steals = snap.CounterValue("manager.steals");
  m.autoscale_deploys = snap.CounterValue("manager.autoscale_deploys");
  m.autoscale_evicts = snap.CounterValue("manager.autoscale_evicts");
  m.libraries_active = static_cast<std::uint64_t>(
      snap.GaugeValue("manager.libraries_active"));
  m.retained_context_bytes = static_cast<std::uint64_t>(
      snap.GaugeValue("manager.retained_context_bytes"));
  m.last_library_setup.transfer_s =
      snap.GaugeValue("manager.last_setup.transfer_s");
  m.last_library_setup.worker_s = snap.GaugeValue("manager.last_setup.worker_s");
  m.last_library_setup.deserialize_s =
      snap.GaugeValue("manager.last_setup.deserialize_s");
  m.last_library_setup.context_s =
      snap.GaugeValue("manager.last_setup.context_s");
  m.last_library_setup.exec_s = snap.GaugeValue("manager.last_setup.exec_s");
  return m;
}

void Manager::FinishOne() {
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (outstanding_ > 0) --outstanding_;
  wait_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Manager thread: event loop.
// ---------------------------------------------------------------------------

void Manager::Run() {
  bool inbox_open = true;
  bool commands_open = true;
  while (inbox_open || commands_open) {
    bool activity = false;
    if (inbox_open) {
      if (auto frame = inbox_->RecvFor(1ms)) {
        HandleFrame(*frame);
        activity = true;
        // Drain whatever else is queued before rescheduling.
        while (auto more = inbox_->TryRecv()) HandleFrame(*more);
      } else if (inbox_->closed() && inbox_->size() == 0) {
        inbox_open = false;
      }
    }
    if (commands_open) {
      while (auto cmd = commands_.TryRecv()) {
        HandleCommand(std::move(*cmd));
        activity = true;
      }
      if (commands_.closed() && commands_.size() == 0) commands_open = false;
    }
    if (!pending_dead_.empty()) {
      ProcessDeadWorkers();
      activity = true;  // deaths requeue work; reschedule now
    }
    if (!broadcasts_.empty()) ProbeBroadcasts();
    if (activity) TrySchedule();
    if (!inbox_open && commands_open) {
      // Inbox gone (Stop in progress): drain remaining commands and exit.
      commands_open = false;
    }
  }
}

void Manager::HandleFrame(const net::Frame& frame) {
  auto message = DecodeFrame(frame);
  if (!message.ok()) {
    VLOG_ERROR("manager") << "malformed frame from " << frame.sender << ": "
                          << message.status().ToString();
    return;
  }
  const WorkerId sender = frame.sender;
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          workers_.emplace(sender, WorkerState(msg.resources));
          ring_.Add(sender);
          telemetry_->flight.Record("worker-join", "", 0, sender);
          {
            std::lock_guard<std::mutex> lock(wait_mu_);
            worker_count_ = workers_.size();
            wait_cv_.notify_all();
          }
          VLOG_INFO("manager") << "worker " << sender << " joined "
                               << msg.resources.ToString();
        } else if constexpr (std::is_same_v<T, GoodbyeMsg>) {
          pending_dead_.insert(sender);
        } else if constexpr (std::is_same_v<T, FileReadyMsg>) {
          CompleteTransfer(sender, msg.content_id, true, "");
          CompleteBroadcastReady(sender, msg.content_id);
          // A consumer that fetched a ref payload peer-to-peer announces the
          // verified copy the same way; recording it lets later consumers
          // fetch from this worker and survives the original owner's death.
          if (refs_.contains(msg.content_id))
            replicas_.AddReplica(msg.content_id, sender);
        } else if constexpr (std::is_same_v<T, FileFailedMsg>) {
          CompleteTransfer(sender, msg.content_id, false, msg.error);
          FailBroadcastWorker(sender, msg.content_id, msg.error);
        } else if constexpr (std::is_same_v<T, TaskDoneMsg>) {
          auto it = running_tasks_.find(msg.id);
          if (it == running_tasks_.end()) return;  // stale (retried) result
          RunningTask running = std::move(it->second);
          running_tasks_.erase(it);
          auto worker_it = workers_.find(running.worker);
          if (worker_it != workers_.end()) {
            worker_it->second.running_tasks.erase(msg.id);
            Status released = worker_it->second.alloc.Release(running.claimed);
            if (!released.ok()) {
              VLOG_ERROR("manager") << "release: " << released.ToString();
              }
          }
          if (msg.ok) {
            auto value = serde::Value::FromBlob(msg.result);
            if (value.ok()) {
              TimingBreakdown timing = msg.timing;
              timing.transfer_s += running.transfer_wait_s;
              const double received_s = Now();
              // Metrics and spans land before the future resolves so a
              // waiter's snapshot always includes its own completion.
              m_.tasks_completed->Add();
              m_.task_roundtrip_s->Observe(Now() - running.task.submitted_s);
              // Chain the result span off the worker's execution span (the
              // reply carries it back) so the round trip closes the trace.
              telemetry_->tracer.EmitLinked(
                  msg.trace.valid() ? msg.trace : running.task.trace,
                  telemetry::Phase::kResult, "task", "manager", msg.id,
                  received_s, Now());
              running.task.future->Resolve(
                  Outcome{std::move(*value), timing, running.worker});
              FinishOne();
            } else {
              running.task.future->Resolve(value.status());
              FinishOne();
            }
          } else if (++running.task.attempts < config_.max_attempts) {
            m_.retries->Add();
            telemetry_->flight.Record("task-retry", msg.error,
                                      running.task.trace.trace_id, msg.id,
                                      running.worker);
            running.task.queued_s = Now();
            task_queue_.push_back(std::move(running.task));
          } else {
            running.task.future->Resolve(InternalError(msg.error));
            FinishOne();
          }
        } else if constexpr (std::is_same_v<T, LibraryReadyMsg>) {
          auto it = instances_.find(msg.instance_id);
          if (it == instances_.end()) return;
          // A redelivered (duplicated) Ready must not re-count the deploy or
          // re-add the gauge shares; a first Ready only arrives kInstalling.
          if (it->second.state != InstanceState::kInstalling) return;
          it->second.state = InstanceState::kReady;
          it->second.context_memory = msg.context_memory_bytes;
          affinity_.Add(it->second.library, it->second.worker);
          SyncAffinityGauge();
          m_.libraries_deployed->Add();
          m_.libraries_active->Add(1);
          m_.retained_context_bytes->Add(
              static_cast<double>(msg.context_memory_bytes));
          m_.setup_transfer_s->Set(msg.timing.transfer_s);
          m_.setup_worker_s->Set(msg.timing.worker_s);
          m_.setup_deserialize_s->Set(msg.timing.deserialize_s);
          m_.setup_context_s->Set(msg.timing.context_s);
          m_.setup_exec_s->Set(msg.timing.exec_s);
          VLOG_INFO("manager") << "library " << it->second.library << "#"
                               << msg.instance_id << " ready on worker "
                               << it->second.worker;
          FeedInstance(it->second);
        } else if constexpr (std::is_same_v<T, LibraryRemovedMsg>) {
          auto it = instances_.find(msg.instance_id);
          if (it == instances_.end()) return;
          InstanceInfo instance = std::move(it->second);
          instances_.erase(it);
          // Draining instances left the affinity set when eviction began; a
          // removal arriving in kReady (defensive) must drop its entry too.
          if (instance.state == InstanceState::kReady) {
            affinity_.Remove(instance.library, instance.worker);
            SyncAffinityGauge();
          }
          auto worker_it = workers_.find(instance.worker);
          if (worker_it != workers_.end()) {
            worker_it->second.instances.erase(instance.id);
            Status released = worker_it->second.alloc.Release(instance.claimed);
            if (!released.ok()) {
              VLOG_ERROR("manager") << "release: " << released.ToString();
              }
          }
          if (instance.state == InstanceState::kDraining)
            m_.libraries_active->Set(
                std::max(0.0, m_.libraries_active->Value() - 1));
          m_.retained_context_bytes->Set(
              std::max(0.0, m_.retained_context_bytes->Value() -
                                static_cast<double>(instance.context_memory)));
          for (auto& [_, call] : instance.running) RequeueCall(std::move(call));
        } else if constexpr (std::is_same_v<T, InvocationDoneMsg>) {
          // Locate the owning instance through its running set.
          for (auto& [_, instance] : instances_) {
            auto call_it = instance.running.find(msg.id);
            if (call_it == instance.running.end()) continue;
            PendingCall call = std::move(call_it->second);
            instance.running.erase(call_it);
            if (instance.slots_in_use > 0) --instance.slots_in_use;
            ++instance.served;
            // Feed the rolling latency window behind straggler detection.
            auto lat_it = workers_.find(instance.worker);
            if (lat_it != workers_.end()) {
              auto& window = lat_it->second.invocation_latency_s;
              window.push_back(Now() - call.queued_s);
              if (window.size() > kLatencyWindow) window.pop_front();
            }
            if (msg.ok && msg.ref.valid()) {
              // Pass-by-reference result: the payload stayed in the producing
              // worker's store.  Record placement and resolve the future with
              // the wrapped ref — the bytes never transit the manager.
              SettleCallRefs(call);
              refs_[msg.ref.id].size = msg.ref.size;
              replicas_.AddReplica(msg.ref.id, instance.worker);
              const double received_s = Now();
              m_.invocations_completed->Add();
              m_.ref_results->Add();
              m_.ref_result_bytes->Add(msg.ref.size);
              m_.invocation_roundtrip_s->Observe(Now() - call.submitted_s);
              slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                  /*ok=*/true, Now());
              telemetry_->tracer.EmitLinked(
                  msg.trace.valid() ? msg.trace : call.trace,
                  telemetry::Phase::kResult, "invocation", "manager", msg.id,
                  received_s, Now());
              call.future->Resolve(
                  Outcome{WrapRef(msg.ref), msg.timing, instance.worker});
              FinishOne();
            } else if (msg.ok) {
              auto value = serde::Value::FromBlob(msg.result);
              if (value.ok()) {
                const double received_s = Now();
                // As with tasks: record before resolving the future.
                m_.invocations_completed->Add();
                m_.invocation_roundtrip_s->Observe(Now() - call.submitted_s);
                slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                    /*ok=*/true, Now());
                telemetry_->tracer.EmitLinked(
                    msg.trace.valid() ? msg.trace : call.trace,
                    telemetry::Phase::kResult, "invocation", "manager", msg.id,
                    received_s, Now());
                SettleCallRefs(call);
                call.future->Resolve(
                    Outcome{std::move(*value), msg.timing, instance.worker});
                FinishOne();
              } else {
                slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                    /*ok=*/false, Now());
                SettleCallRefs(call);
                call.future->Resolve(value.status());
                FinishOne();
              }
            } else if (++call.attempts < config_.max_attempts) {
              m_.retries->Add();
              telemetry_->flight.Record("call-retry", msg.error,
                                        call.trace.trace_id, msg.id,
                                        instance.worker);
              RequeueCall(std::move(call));
            } else {
              slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                  /*ok=*/false, Now());
              SettleCallRefs(call);
              call.future->Resolve(InternalError(msg.error));
              FinishOne();
            }
            FeedInstance(instance);
            return;
          }
        } else if constexpr (std::is_same_v<T, BlobDataMsg>) {
          HandleManagerBlobData(std::move(msg));  // FetchRef materialization
        } else if constexpr (std::is_same_v<T, StatusReplyMsg>) {
          HandleStatusReply(sender, msg);
        } else {
          VLOG_WARN("manager") << "unexpected message from " << sender;
        }
      },
      std::move(*message));
}

void Manager::HandleCommand(Command command) {
  std::visit(
      [&](auto&& cmd) {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, InstallCmd>) {
          const std::string name = cmd.spec.name;
          libraries_[name].spec = std::move(cmd.spec);
        } else if constexpr (std::is_same_v<T, TaskCmd>) {
          PendingTask task;
          // Split declared inputs: cached ones are staged per-worker, the
          // rest ride inline with every execution (L1 behaviour).
          for (auto& decl : cmd.spec.inputs) {
            if (decl.cache) {
              task.spec.inputs.push_back(std::move(decl));
            } else {
              task.inline_decls.push_back(std::move(decl));
            }
          }
          cmd.spec.inputs = std::move(task.spec.inputs);
          task.spec = std::move(cmd.spec);
          task.future = std::move(cmd.future);
          task.submitted_s = cmd.submitted_s;
          task.queued_s = Now();
          // Root of the task's causal trace; every downstream span (staging,
          // worker execution, result) chains off this context.
          task.trace = telemetry_->tracer.StartTrace(
              telemetry::Phase::kSubmit, "task", "manager", task.spec.id,
              cmd.submitted_s, task.queued_s);
          task_queue_.push_back(std::move(task));
        } else if constexpr (std::is_same_v<T, CallCmd>) {
          auto it = libraries_.find(cmd.library);
          if (it == libraries_.end()) {
            cmd.future->Resolve(
                NotFoundError("library not installed: " + cmd.library));
            FinishOne();
            return;
          }
          PendingCall call;
          call.id = next_invocation_id_.fetch_add(1, std::memory_order_relaxed);
          call.library = cmd.library;
          call.function = std::move(cmd.function);
          call.args = std::move(cmd.args);
          call.future = std::move(cmd.future);
          call.submitted_s = cmd.submitted_s;
          call.queued_s = Now();
          call.trace = telemetry_->tracer.StartTrace(
              telemetry::Phase::kSubmit, "invocation", "manager", call.id,
              cmd.submitted_s, call.queued_s);
          RegisterRefArgs(call);
          // Affinity hit-rate: did this invocation arrive while some worker
          // already retained its library's context?
          if (affinity_.CountFor(cmd.library) > 0)
            m_.affinity_hits->Add();
          else
            m_.affinity_misses->Add();
          it->second.queue.push_back(std::move(call));
        } else if constexpr (std::is_same_v<T, BroadcastCmd>) {
          StartBroadcast(std::move(cmd));
        } else if constexpr (std::is_same_v<T, DisconnectCmd>) {
          pending_dead_.insert(cmd.worker);
        } else if constexpr (std::is_same_v<T, StatusCmd>) {
          StartStatusQuery(std::move(cmd));
        } else if constexpr (std::is_same_v<T, QuiescenceCmd>) {
          RunQuiescenceCheck(std::move(cmd));
        } else if constexpr (std::is_same_v<T, FetchRefCmd>) {
          HandleFetchRefCmd(std::move(cmd));
        } else if constexpr (std::is_same_v<T, ReleaseRefCmd>) {
          auto it = refs_.find(cmd.ref.id);
          if (it == refs_.end()) return;
          it->second.released = true;
          MaybeDropRef(cmd.ref.id);
        }
      },
      std::move(command));
}

Status Manager::SendTo(WorkerId worker, const Message& message) {
  WireFrame wire = EncodeFrame(message);
  Status status =
      network_->Send(net::kManagerEndpoint, worker, std::move(wire.payload),
                     std::move(wire.attachment));
  if (!status.ok()) pending_dead_.insert(worker);
  return status;
}

}  // namespace vinelet::core
