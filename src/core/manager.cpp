#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

Manager::Manager(std::shared_ptr<net::Network> network, ManagerConfig config)
    : network_(std::move(network)),
      config_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &serde::FunctionRegistry::Global()),
      replicas_(config.worker_transfer_cap, config.manager_transfer_cap),
      slo_monitor_(config.slo) {
  if (config.telemetry != nullptr) {
    telemetry_ = config.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<telemetry::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  auto& reg = telemetry_->metrics;
  m_.tasks_completed = &reg.GetCounter("manager.tasks_completed");
  m_.invocations_completed = &reg.GetCounter("manager.invocations_completed");
  m_.libraries_deployed = &reg.GetCounter("manager.libraries_deployed");
  m_.libraries_evicted = &reg.GetCounter("manager.libraries_evicted");
  m_.retries = &reg.GetCounter("manager.retries");
  m_.peer_transfers = &reg.GetCounter("manager.peer_transfers");
  m_.manager_transfers = &reg.GetCounter("manager.manager_transfers");
  m_.peer_transfer_bytes = &reg.GetCounter("manager.peer_transfer_bytes");
  m_.manager_transfer_bytes = &reg.GetCounter("manager.manager_transfer_bytes");
  m_.ref_results = &reg.GetCounter("manager.ref_results");
  m_.ref_result_bytes = &reg.GetCounter("manager.ref_result_bytes");
  m_.refs_dropped = &reg.GetCounter("manager.refs_dropped");
  m_.broadcast_resends = &reg.GetCounter("manager.broadcast_resends");
  m_.broadcast_resend_bytes = &reg.GetCounter("manager.broadcast_resend_bytes");
  m_.affinity_hits = &reg.GetCounter("manager.affinity_hits");
  m_.affinity_misses = &reg.GetCounter("manager.affinity_misses");
  m_.steals = &reg.GetCounter("manager.steals");
  m_.autoscale_deploys = &reg.GetCounter("manager.autoscale_deploys");
  m_.autoscale_evicts = &reg.GetCounter("manager.autoscale_evicts");
  m_.affinity_warm_instances = &reg.GetGauge("manager.affinity_warm_instances");
  m_.libraries_active = &reg.GetGauge("manager.libraries_active");
  m_.retained_context_bytes = &reg.GetGauge("manager.retained_context_bytes");
  m_.setup_transfer_s = &reg.GetGauge("manager.last_setup.transfer_s");
  m_.setup_worker_s = &reg.GetGauge("manager.last_setup.worker_s");
  m_.setup_deserialize_s = &reg.GetGauge("manager.last_setup.deserialize_s");
  m_.setup_context_s = &reg.GetGauge("manager.last_setup.context_s");
  m_.setup_exec_s = &reg.GetGauge("manager.last_setup.exec_s");
  m_.task_roundtrip_s = &reg.GetHistogram("manager.task_roundtrip_s");
  m_.invocation_roundtrip_s =
      &reg.GetHistogram("manager.invocation_roundtrip_s");
  m_.dispatch_batch_size = &reg.GetHistogram("manager.dispatch_batch_size");
}

Manager::~Manager() { Stop(); }

Status Manager::Start() {
  auto inbox = network_->Register(net::kManagerEndpoint);
  if (!inbox.ok()) return inbox.status();
  inbox_ = std::move(*inbox);
  // Learn of abrupt worker departures (no Goodbye) through the transport,
  // the way a real manager observes a TCP reset.
  network_->SetDisconnectListener([this](net::EndpointId id) {
    if (id == net::kManagerEndpoint) return;
    commands_.TrySend(DisconnectCmd{id});
  });
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void Manager::Stop() {
  if (!started_) return;
  started_ = false;
  network_->SetDisconnectListener(nullptr);
  commands_.Close();
  network_->Unregister(net::kManagerEndpoint);  // closes the inbox
  if (thread_.joinable()) thread_.join();

  // After the join, scheduler state is safe to touch: fail anything still
  // outstanding so application threads blocked on futures wake up.
  auto cancel = [this](FuturePtr& future) {
    if (future) future->Resolve(CancelledError("manager stopped"));
    FinishOne();
  };
  for (auto& task : task_queue_) cancel(task.future);
  task_queue_.clear();
  for (auto& [_, running] : running_tasks_) cancel(running.task.future);
  running_tasks_.clear();
  for (auto& [_, info] : libraries_) {
    for (auto& call : info.queue) cancel(call.future);
    info.queue.clear();
  }
  for (auto& [_, instance] : instances_) {
    for (auto& [__, call] : instance.running) cancel(call.future);
    instance.running.clear();
  }
  instances_.clear();
  for (auto& [_, broadcast] : broadcasts_) cancel(broadcast.future);
  broadcasts_.clear();
  if (status_query_.active) {
    status_query_.promise->set_value(CancelledError("manager stopped"));
    status_query_ = StatusQuery{};
  }
  for (auto& [_, fetch] : manager_fetches_)
    for (auto& waiter : fetch.waiters)
      waiter->set_value(CancelledError("manager stopped"));
  manager_fetches_.clear();
}

// ---------------------------------------------------------------------------
// Application-facing API (any thread).
// ---------------------------------------------------------------------------

storage::FileDecl Manager::DeclareBlob(const std::string& name, Blob payload,
                                       storage::FileKind kind, bool cache,
                                       bool peer_transfer, bool unpack) {
  storage::FileDecl decl;
  decl.name = name;
  decl.id = hash::ContentId::Of(payload);
  decl.size = payload.size();
  decl.kind = kind;
  decl.cache = cache;
  decl.peer_transfer = peer_transfer;
  decl.unpack = unpack;
  Status stored = manager_store_.PutTrusted(decl.id, std::move(payload));
  if (!stored.ok()) {
    VLOG_WARN("manager") << "declare failed for " << name << ": "
                         << stored.ToString();
  }
  return decl;
}

FuturePtr Manager::BroadcastFile(const storage::FileDecl& decl,
                                 std::uint64_t chunk_bytes,
                                 unsigned fanout_cap) {
  auto future = std::make_shared<OutcomeFuture>();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(
          BroadcastCmd{decl, chunk_bytes, fanout_cap, future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

Result<LibrarySpec> Manager::CreateLibraryFromFunctions(
    const std::string& library_name,
    const std::vector<std::string>& function_names,
    const std::string& setup_name, const serde::Value& setup_args,
    const poncho::Analyzer* analyzer, const LibraryOptions& options) {
  if (library_name.empty())
    return InvalidArgumentError("library name empty");
  if (function_names.empty())
    return InvalidArgumentError("library needs at least one function");

  LibrarySpec spec;
  spec.name = library_name;
  spec.resources = options.resources;
  spec.slots = options.slots;
  spec.exec_mode = options.exec_mode;

  // Function code: serialize each function and bind the blob as a cached,
  // peer-transferable input file (paper §3.2, "Function code").
  for (const auto& fn_name : function_names) {
    auto def = registry_->FindFunction(fn_name);
    if (!def.ok()) return def.status();
    Blob blob = serde::SerializedFunction::Serialize(
        fn_name, serde::Value(), options.function_code_size);
    storage::FileDecl decl =
        DeclareBlob("fn:" + fn_name, std::move(blob),
                    storage::FileKind::kSerializedFunction,
                    /*cache=*/true, /*peer_transfer=*/true);
    spec.inputs.push_back(std::move(decl));
    spec.function_names.push_back(fn_name);
  }

  // Environment setup binding (paper §3.2, "Environment Setup").
  if (!setup_name.empty()) {
    auto setup = registry_->FindSetup(setup_name);
    if (!setup.ok()) return setup.status();
    spec.setup_name = setup_name;
  }
  spec.setup_args = setup_args.ToBlob();

  // Software dependencies: poncho scan -> resolved env -> packed tarball
  // bound as a cached input (paper §3.2, "Software dependencies").
  if (analyzer != nullptr) {
    auto env = analyzer->AnalyzeFunctions(*registry_, function_names);
    if (!env.ok()) return env.status();
    storage::FileDecl decl = DeclareBlob(
        "env:" + library_name, env->tarball, storage::FileKind::kEnvironment,
        /*cache=*/true, /*peer_transfer=*/true, /*unpack=*/true);
    spec.inputs.push_back(std::move(decl));
  }
  return spec;
}

void Manager::AddLibraryInput(LibrarySpec& spec,
                              storage::FileDecl decl) const {
  spec.inputs.push_back(std::move(decl));
}

Status Manager::InstallLibrary(LibrarySpec spec) {
  for (const auto& decl : spec.inputs) {
    if (!decl.cache)
      return InvalidArgumentError(
          "library inputs must be cacheable (context files are retained): " +
          decl.name);
    if (!manager_store_.Contains(decl.id))
      return FailedPreconditionError("library input not declared: " +
                                     decl.name);
  }
  if (!commands_.Send(InstallCmd{std::move(spec)}))
    return UnavailableError("manager stopped");
  return Status::Ok();
}

FuturePtr Manager::SubmitTask(const std::string& function_name,
                              const serde::Value& args,
                              std::vector<storage::FileDecl> inputs,
                              Resources resources,
                              bool ship_serialized_function,
                              std::size_t function_code_size) {
  auto future = std::make_shared<OutcomeFuture>();

  TaskSpec spec;
  spec.id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
  spec.function_name = function_name;
  spec.args = args.ToBlob();
  spec.resources = resources;
  spec.inputs = std::move(inputs);

  if (ship_serialized_function) {
    // The shipped function blob follows the task's dominant caching mode:
    // cached alongside cached inputs (L2), inline otherwise (L1).
    const bool any_cached = std::any_of(
        spec.inputs.begin(), spec.inputs.end(),
        [](const storage::FileDecl& d) { return d.cache; });
    Blob blob = serde::SerializedFunction::Serialize(
        function_name, serde::Value(), function_code_size);
    storage::FileDecl decl = DeclareBlob(
        "fn:" + function_name, std::move(blob),
        storage::FileKind::kSerializedFunction, any_cached,
        /*peer_transfer=*/true);
    spec.inputs.push_back(std::move(decl));
  }

  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(TaskCmd{std::move(spec), future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

FuturePtr Manager::SubmitCall(const std::string& library_name,
                              const std::string& function_name,
                              const serde::Value& args) {
  auto future = std::make_shared<OutcomeFuture>();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++outstanding_;
  }
  if (!commands_.Send(CallCmd{library_name, function_name, args.ToBlob(),
                              future, Now()})) {
    future->Resolve(UnavailableError("manager stopped"));
    FinishOne();
  }
  return future;
}

Result<Blob> Manager::FetchRef(const BlobRef& ref, double timeout_s) {
  if (!ref.valid()) return InvalidArgumentError("not a valid ref");
  auto promise = std::make_shared<std::promise<Result<Blob>>>();
  auto future = promise->get_future();
  if (!commands_.Send(FetchRefCmd{ref, std::move(promise)}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("ref fetch timed out");
  return future.get();
}

Status Manager::ReleaseRef(const BlobRef& ref) {
  if (!ref.valid()) return InvalidArgumentError("not a valid ref");
  if (!commands_.Send(ReleaseRefCmd{ref}))
    return UnavailableError("manager stopped");
  return Status::Ok();
}

Status Manager::WaitAll(double timeout_s) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  auto done = [&] { return outstanding_ == 0; };
  if (timeout_s < 0) {
    wait_cv_.wait(lock, done);
    return Status::Ok();
  }
  if (!wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done))
    return TimeoutError("WaitAll: " + std::to_string(outstanding_) +
                        " results still outstanding");
  return Status::Ok();
}

Status Manager::WaitForWorkers(std::size_t count, double timeout_s) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  if (!wait_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                         [&] { return worker_count_ >= count; }))
    return TimeoutError("workers connected: " + std::to_string(worker_count_) +
                        "/" + std::to_string(count));
  return Status::Ok();
}

std::size_t Manager::connected_workers() const {
  std::lock_guard<std::mutex> lock(wait_mu_);
  return worker_count_;
}

Result<ClusterStatus> Manager::QueryStatus(double timeout_s) {
  auto promise = std::make_shared<std::promise<Result<ClusterStatus>>>();
  auto future = promise->get_future();
  if (!commands_.Send(StatusCmd{promise}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("status query timed out");
  return future.get();
}

Result<QuiescenceReport> Manager::CheckQuiescent(double timeout_s) {
  auto promise = std::make_shared<std::promise<QuiescenceReport>>();
  auto future = promise->get_future();
  if (!commands_.Send(QuiescenceCmd{std::move(promise)}))
    return UnavailableError("manager stopped");
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready)
    return TimeoutError("quiescence check timed out");
  return future.get();
}

std::string QuiescenceReport::ToString() const {
  if (quiescent) return "quiescent";
  std::string out = "NOT quiescent:";
  for (const std::string& violation : violations) {
    out += "\n  - ";
    out += violation;
  }
  return out;
}

ManagerMetrics Manager::metrics() const {
  const telemetry::MetricsSnapshot snap = telemetry_->metrics.Snapshot();
  ManagerMetrics m;
  m.tasks_completed = snap.CounterValue("manager.tasks_completed");
  m.invocations_completed = snap.CounterValue("manager.invocations_completed");
  m.libraries_deployed = snap.CounterValue("manager.libraries_deployed");
  m.libraries_evicted = snap.CounterValue("manager.libraries_evicted");
  m.retries = snap.CounterValue("manager.retries");
  m.peer_transfers = snap.CounterValue("manager.peer_transfers");
  m.manager_transfers = snap.CounterValue("manager.manager_transfers");
  m.ref_results = snap.CounterValue("manager.ref_results");
  m.ref_result_bytes = snap.CounterValue("manager.ref_result_bytes");
  m.refs_dropped = snap.CounterValue("manager.refs_dropped");
  m.affinity_hits = snap.CounterValue("manager.affinity_hits");
  m.affinity_misses = snap.CounterValue("manager.affinity_misses");
  m.steals = snap.CounterValue("manager.steals");
  m.autoscale_deploys = snap.CounterValue("manager.autoscale_deploys");
  m.autoscale_evicts = snap.CounterValue("manager.autoscale_evicts");
  m.libraries_active = static_cast<std::uint64_t>(
      snap.GaugeValue("manager.libraries_active"));
  m.retained_context_bytes = static_cast<std::uint64_t>(
      snap.GaugeValue("manager.retained_context_bytes"));
  m.last_library_setup.transfer_s =
      snap.GaugeValue("manager.last_setup.transfer_s");
  m.last_library_setup.worker_s = snap.GaugeValue("manager.last_setup.worker_s");
  m.last_library_setup.deserialize_s =
      snap.GaugeValue("manager.last_setup.deserialize_s");
  m.last_library_setup.context_s =
      snap.GaugeValue("manager.last_setup.context_s");
  m.last_library_setup.exec_s = snap.GaugeValue("manager.last_setup.exec_s");
  return m;
}

void Manager::FinishOne() {
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (outstanding_ > 0) --outstanding_;
  wait_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Manager thread: event loop.
// ---------------------------------------------------------------------------

void Manager::Run() {
  bool inbox_open = true;
  bool commands_open = true;
  while (inbox_open || commands_open) {
    bool activity = false;
    if (inbox_open) {
      if (auto frame = inbox_->RecvFor(1ms)) {
        HandleFrame(*frame);
        activity = true;
        // Drain whatever else is queued before rescheduling.
        while (auto more = inbox_->TryRecv()) HandleFrame(*more);
      } else if (inbox_->closed() && inbox_->size() == 0) {
        inbox_open = false;
      }
    }
    if (commands_open) {
      while (auto cmd = commands_.TryRecv()) {
        HandleCommand(std::move(*cmd));
        activity = true;
      }
      if (commands_.closed() && commands_.size() == 0) commands_open = false;
    }
    if (!pending_dead_.empty()) {
      ProcessDeadWorkers();
      activity = true;  // deaths requeue work; reschedule now
    }
    if (!broadcasts_.empty()) ProbeBroadcasts();
    if (activity) TrySchedule();
    if (!inbox_open && commands_open) {
      // Inbox gone (Stop in progress): drain remaining commands and exit.
      commands_open = false;
    }
  }
}

void Manager::HandleFrame(const net::Frame& frame) {
  auto message = DecodeFrame(frame);
  if (!message.ok()) {
    VLOG_ERROR("manager") << "malformed frame from " << frame.sender << ": "
                          << message.status().ToString();
    return;
  }
  const WorkerId sender = frame.sender;
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          workers_.emplace(sender, WorkerState(msg.resources));
          ring_.Add(sender);
          telemetry_->flight.Record("worker-join", "", 0, sender);
          {
            std::lock_guard<std::mutex> lock(wait_mu_);
            worker_count_ = workers_.size();
            wait_cv_.notify_all();
          }
          VLOG_INFO("manager") << "worker " << sender << " joined "
                               << msg.resources.ToString();
        } else if constexpr (std::is_same_v<T, GoodbyeMsg>) {
          pending_dead_.insert(sender);
        } else if constexpr (std::is_same_v<T, FileReadyMsg>) {
          CompleteTransfer(sender, msg.content_id, true, "");
          CompleteBroadcastReady(sender, msg.content_id);
          // A consumer that fetched a ref payload peer-to-peer announces the
          // verified copy the same way; recording it lets later consumers
          // fetch from this worker and survives the original owner's death.
          if (refs_.contains(msg.content_id))
            replicas_.AddReplica(msg.content_id, sender);
        } else if constexpr (std::is_same_v<T, FileFailedMsg>) {
          CompleteTransfer(sender, msg.content_id, false, msg.error);
          FailBroadcastWorker(sender, msg.content_id, msg.error);
        } else if constexpr (std::is_same_v<T, TaskDoneMsg>) {
          auto it = running_tasks_.find(msg.id);
          if (it == running_tasks_.end()) return;  // stale (retried) result
          RunningTask running = std::move(it->second);
          running_tasks_.erase(it);
          auto worker_it = workers_.find(running.worker);
          if (worker_it != workers_.end()) {
            worker_it->second.running_tasks.erase(msg.id);
            Status released = worker_it->second.alloc.Release(running.claimed);
            if (!released.ok()) {
              VLOG_ERROR("manager") << "release: " << released.ToString();
              }
          }
          if (msg.ok) {
            auto value = serde::Value::FromBlob(msg.result);
            if (value.ok()) {
              TimingBreakdown timing = msg.timing;
              timing.transfer_s += running.transfer_wait_s;
              const double received_s = Now();
              // Metrics and spans land before the future resolves so a
              // waiter's snapshot always includes its own completion.
              m_.tasks_completed->Add();
              m_.task_roundtrip_s->Observe(Now() - running.task.submitted_s);
              // Chain the result span off the worker's execution span (the
              // reply carries it back) so the round trip closes the trace.
              telemetry_->tracer.EmitLinked(
                  msg.trace.valid() ? msg.trace : running.task.trace,
                  telemetry::Phase::kResult, "task", "manager", msg.id,
                  received_s, Now());
              running.task.future->Resolve(
                  Outcome{std::move(*value), timing, running.worker});
              FinishOne();
            } else {
              running.task.future->Resolve(value.status());
              FinishOne();
            }
          } else if (++running.task.attempts < config_.max_attempts) {
            m_.retries->Add();
            telemetry_->flight.Record("task-retry", msg.error,
                                      running.task.trace.trace_id, msg.id,
                                      running.worker);
            running.task.queued_s = Now();
            task_queue_.push_back(std::move(running.task));
          } else {
            running.task.future->Resolve(InternalError(msg.error));
            FinishOne();
          }
        } else if constexpr (std::is_same_v<T, LibraryReadyMsg>) {
          auto it = instances_.find(msg.instance_id);
          if (it == instances_.end()) return;
          // A redelivered (duplicated) Ready must not re-count the deploy or
          // re-add the gauge shares; a first Ready only arrives kInstalling.
          if (it->second.state != InstanceState::kInstalling) return;
          it->second.state = InstanceState::kReady;
          it->second.context_memory = msg.context_memory_bytes;
          affinity_.Add(it->second.library, it->second.worker);
          SyncAffinityGauge();
          m_.libraries_deployed->Add();
          m_.libraries_active->Add(1);
          m_.retained_context_bytes->Add(
              static_cast<double>(msg.context_memory_bytes));
          m_.setup_transfer_s->Set(msg.timing.transfer_s);
          m_.setup_worker_s->Set(msg.timing.worker_s);
          m_.setup_deserialize_s->Set(msg.timing.deserialize_s);
          m_.setup_context_s->Set(msg.timing.context_s);
          m_.setup_exec_s->Set(msg.timing.exec_s);
          VLOG_INFO("manager") << "library " << it->second.library << "#"
                               << msg.instance_id << " ready on worker "
                               << it->second.worker;
          FeedInstance(it->second);
        } else if constexpr (std::is_same_v<T, LibraryRemovedMsg>) {
          auto it = instances_.find(msg.instance_id);
          if (it == instances_.end()) return;
          InstanceInfo instance = std::move(it->second);
          instances_.erase(it);
          // Draining instances left the affinity set when eviction began; a
          // removal arriving in kReady (defensive) must drop its entry too.
          if (instance.state == InstanceState::kReady) {
            affinity_.Remove(instance.library, instance.worker);
            SyncAffinityGauge();
          }
          auto worker_it = workers_.find(instance.worker);
          if (worker_it != workers_.end()) {
            worker_it->second.instances.erase(instance.id);
            Status released = worker_it->second.alloc.Release(instance.claimed);
            if (!released.ok()) {
              VLOG_ERROR("manager") << "release: " << released.ToString();
              }
          }
          if (instance.state == InstanceState::kDraining)
            m_.libraries_active->Set(
                std::max(0.0, m_.libraries_active->Value() - 1));
          m_.retained_context_bytes->Set(
              std::max(0.0, m_.retained_context_bytes->Value() -
                                static_cast<double>(instance.context_memory)));
          for (auto& [_, call] : instance.running) RequeueCall(std::move(call));
        } else if constexpr (std::is_same_v<T, InvocationDoneMsg>) {
          // Locate the owning instance through its running set.
          for (auto& [_, instance] : instances_) {
            auto call_it = instance.running.find(msg.id);
            if (call_it == instance.running.end()) continue;
            PendingCall call = std::move(call_it->second);
            instance.running.erase(call_it);
            if (instance.slots_in_use > 0) --instance.slots_in_use;
            ++instance.served;
            // Feed the rolling latency window behind straggler detection.
            auto lat_it = workers_.find(instance.worker);
            if (lat_it != workers_.end()) {
              auto& window = lat_it->second.invocation_latency_s;
              window.push_back(Now() - call.queued_s);
              if (window.size() > kLatencyWindow) window.pop_front();
            }
            if (msg.ok && msg.ref.valid()) {
              // Pass-by-reference result: the payload stayed in the producing
              // worker's store.  Record placement and resolve the future with
              // the wrapped ref — the bytes never transit the manager.
              SettleCallRefs(call);
              refs_[msg.ref.id].size = msg.ref.size;
              replicas_.AddReplica(msg.ref.id, instance.worker);
              const double received_s = Now();
              m_.invocations_completed->Add();
              m_.ref_results->Add();
              m_.ref_result_bytes->Add(msg.ref.size);
              m_.invocation_roundtrip_s->Observe(Now() - call.submitted_s);
              slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                  /*ok=*/true, Now());
              telemetry_->tracer.EmitLinked(
                  msg.trace.valid() ? msg.trace : call.trace,
                  telemetry::Phase::kResult, "invocation", "manager", msg.id,
                  received_s, Now());
              call.future->Resolve(
                  Outcome{WrapRef(msg.ref), msg.timing, instance.worker});
              FinishOne();
            } else if (msg.ok) {
              auto value = serde::Value::FromBlob(msg.result);
              if (value.ok()) {
                const double received_s = Now();
                // As with tasks: record before resolving the future.
                m_.invocations_completed->Add();
                m_.invocation_roundtrip_s->Observe(Now() - call.submitted_s);
                slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                    /*ok=*/true, Now());
                telemetry_->tracer.EmitLinked(
                    msg.trace.valid() ? msg.trace : call.trace,
                    telemetry::Phase::kResult, "invocation", "manager", msg.id,
                    received_s, Now());
                SettleCallRefs(call);
                call.future->Resolve(
                    Outcome{std::move(*value), msg.timing, instance.worker});
                FinishOne();
              } else {
                slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                    /*ok=*/false, Now());
                SettleCallRefs(call);
                call.future->Resolve(value.status());
                FinishOne();
              }
            } else if (++call.attempts < config_.max_attempts) {
              m_.retries->Add();
              telemetry_->flight.Record("call-retry", msg.error,
                                        call.trace.trace_id, msg.id,
                                        instance.worker);
              RequeueCall(std::move(call));
            } else {
              slo_monitor_.Record(instance.library, Now() - call.submitted_s,
                                  /*ok=*/false, Now());
              SettleCallRefs(call);
              call.future->Resolve(InternalError(msg.error));
              FinishOne();
            }
            FeedInstance(instance);
            return;
          }
        } else if constexpr (std::is_same_v<T, BlobDataMsg>) {
          HandleManagerBlobData(std::move(msg));  // FetchRef materialization
        } else if constexpr (std::is_same_v<T, StatusReplyMsg>) {
          HandleStatusReply(sender, msg);
        } else {
          VLOG_WARN("manager") << "unexpected message from " << sender;
        }
      },
      std::move(*message));
}

void Manager::HandleCommand(Command command) {
  std::visit(
      [&](auto&& cmd) {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, InstallCmd>) {
          const std::string name = cmd.spec.name;
          libraries_[name].spec = std::move(cmd.spec);
        } else if constexpr (std::is_same_v<T, TaskCmd>) {
          PendingTask task;
          // Split declared inputs: cached ones are staged per-worker, the
          // rest ride inline with every execution (L1 behaviour).
          for (auto& decl : cmd.spec.inputs) {
            if (decl.cache) {
              task.spec.inputs.push_back(std::move(decl));
            } else {
              task.inline_decls.push_back(std::move(decl));
            }
          }
          cmd.spec.inputs = std::move(task.spec.inputs);
          task.spec = std::move(cmd.spec);
          task.future = std::move(cmd.future);
          task.submitted_s = cmd.submitted_s;
          task.queued_s = Now();
          // Root of the task's causal trace; every downstream span (staging,
          // worker execution, result) chains off this context.
          task.trace = telemetry_->tracer.StartTrace(
              telemetry::Phase::kSubmit, "task", "manager", task.spec.id,
              cmd.submitted_s, task.queued_s);
          task_queue_.push_back(std::move(task));
        } else if constexpr (std::is_same_v<T, CallCmd>) {
          auto it = libraries_.find(cmd.library);
          if (it == libraries_.end()) {
            cmd.future->Resolve(
                NotFoundError("library not installed: " + cmd.library));
            FinishOne();
            return;
          }
          PendingCall call;
          call.id = next_invocation_id_.fetch_add(1, std::memory_order_relaxed);
          call.library = cmd.library;
          call.function = std::move(cmd.function);
          call.args = std::move(cmd.args);
          call.future = std::move(cmd.future);
          call.submitted_s = cmd.submitted_s;
          call.queued_s = Now();
          call.trace = telemetry_->tracer.StartTrace(
              telemetry::Phase::kSubmit, "invocation", "manager", call.id,
              cmd.submitted_s, call.queued_s);
          RegisterRefArgs(call);
          // Affinity hit-rate: did this invocation arrive while some worker
          // already retained its library's context?
          if (affinity_.CountFor(cmd.library) > 0)
            m_.affinity_hits->Add();
          else
            m_.affinity_misses->Add();
          it->second.queue.push_back(std::move(call));
        } else if constexpr (std::is_same_v<T, BroadcastCmd>) {
          StartBroadcast(std::move(cmd));
        } else if constexpr (std::is_same_v<T, DisconnectCmd>) {
          pending_dead_.insert(cmd.worker);
        } else if constexpr (std::is_same_v<T, StatusCmd>) {
          StartStatusQuery(std::move(cmd));
        } else if constexpr (std::is_same_v<T, QuiescenceCmd>) {
          RunQuiescenceCheck(std::move(cmd));
        } else if constexpr (std::is_same_v<T, FetchRefCmd>) {
          HandleFetchRefCmd(std::move(cmd));
        } else if constexpr (std::is_same_v<T, ReleaseRefCmd>) {
          auto it = refs_.find(cmd.ref.id);
          if (it == refs_.end()) return;
          it->second.released = true;
          MaybeDropRef(cmd.ref.id);
        }
      },
      std::move(command));
}

// ---------------------------------------------------------------------------
// Pass-by-reference data plane.
// ---------------------------------------------------------------------------

namespace {

/// Cheap pre-filter: serialized WrapRef dicts embed the literal "$blobref"
/// key, so argument blobs without that byte sequence cannot carry a ref and
/// skip the Value decode entirely (by-value workloads pay nothing).
bool MightContainRef(const Blob& args) {
  static constexpr std::string_view kKey = "$blobref";
  const auto bytes = args.span();
  return std::search(bytes.begin(), bytes.end(), kKey.begin(), kKey.end()) !=
         bytes.end();
}

}  // namespace

void Manager::RegisterRefArgs(PendingCall& call) {
  if (call.args.size() == 0 || !MightContainRef(call.args)) return;
  auto value = serde::Value::FromBlob(call.args);
  if (!value.ok() || value->type() != serde::Value::Type::kList) return;
  const auto& list = value->AsList();
  for (std::size_t i = 0; i < list.size(); ++i) {
    auto ref = TryUnwrapRef(list[i]);
    if (!ref) continue;
    RefArg arg;
    arg.arg_index = static_cast<std::uint32_t>(i);
    arg.ref = *ref;
    call.ref_args.push_back(arg);
    auto it = refs_.find(ref->id);
    if (it != refs_.end()) ++it->second.pending_consumers;
  }
}

void Manager::SettleCallRefs(const PendingCall& call) {
  for (const RefArg& arg : call.ref_args) {
    auto it = refs_.find(arg.ref.id);
    if (it == refs_.end()) continue;
    if (it->second.pending_consumers > 0) --it->second.pending_consumers;
    MaybeDropRef(arg.ref.id);
  }
}

void Manager::MaybeDropRef(const hash::ContentId& id) {
  auto it = refs_.find(id);
  if (it == refs_.end()) return;
  if (!it->second.released || it->second.pending_consumers != 0) return;
  for (WorkerId holder : replicas_.Holders(id)) {
    (void)SendTo(holder, DropBlobMsg{id});
    replicas_.RemoveReplica(id, holder);
  }
  (void)manager_store_.Remove(id);  // FetchRef may have cached a copy
  m_.refs_dropped->Add();
  refs_.erase(it);
}

WorkerId Manager::PickRefSource(const hash::ContentId& id,
                                WorkerId target) const {
  // Nearest replica by hash ring: walk the ring from the content id and take
  // the first live holder other than the target itself.
  for (WorkerId candidate : ring_.WalkFrom(id.Prefix64())) {
    if (candidate == target) continue;
    if (replicas_.HasReplica(id, candidate)) return candidate;
  }
  return 0;  // no live holder; the worker fails the fetch and the call retries
}

void Manager::HandleFetchRefCmd(FetchRefCmd cmd) {
  if (auto cached = manager_store_.Get(cmd.ref.id); cached.ok()) {
    cmd.promise->set_value(std::move(*cached));
    return;
  }
  auto [it, inserted] = manager_fetches_.try_emplace(cmd.ref.id);
  it->second.ref = cmd.ref;
  it->second.waiters.push_back(std::move(cmd.promise));
  if (inserted && !AdvanceManagerFetch(it->second)) {
    for (auto& waiter : it->second.waiters)
      waiter->set_value(
          DataLossError("no live replica holds ref " + cmd.ref.id.ShortHex()));
    manager_fetches_.erase(it);
  }
}

bool Manager::AdvanceManagerFetch(ManagerFetch& fetch) {
  for (WorkerId candidate : ring_.WalkFrom(fetch.ref.id.Prefix64())) {
    if (fetch.tried.contains(candidate)) continue;
    if (!replicas_.HasReplica(fetch.ref.id, candidate)) continue;
    fetch.tried.insert(candidate);
    if (SendTo(candidate, FetchBlobMsg{fetch.ref.id, 0, {}}).ok()) {
      fetch.source = candidate;
      return true;
    }
  }
  return false;
}

void Manager::HandleManagerBlobData(BlobDataMsg msg) {
  auto it = manager_fetches_.find(msg.id);
  if (it == manager_fetches_.end()) return;  // stale reply (already resolved)
  if (msg.ok && hash::ContentId::Of(msg.payload) == msg.id) {
    // Cache at the manager so repeated FetchRef calls are free; dropped
    // again when the ref is released.
    (void)manager_store_.PutTrusted(msg.id, msg.payload);
    for (auto& waiter : it->second.waiters)
      waiter->set_value(msg.payload);
    manager_fetches_.erase(it);
    return;
  }
  // Miss or corrupt copy: try the next holder; out of holders = data loss.
  if (!AdvanceManagerFetch(it->second)) {
    for (auto& waiter : it->second.waiters)
      waiter->set_value(DataLossError(
          "every replica of ref " + msg.id.ShortHex() + " failed" +
          (msg.error.empty() ? "" : ": " + msg.error)));
    manager_fetches_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Scheduling.
// ---------------------------------------------------------------------------

void Manager::TrySchedule() {
  StartParkedTransfers();
  // Stateless tasks: first-fit in FIFO order with a single stable compaction
  // pass — scheduled tasks are dropped by moving the survivors forward once,
  // instead of an O(queue) mid-deque erase per placement (quadratic when a
  // large backlog drains).  The whole sweep early-outs when there is nothing
  // to place or nowhere to place it, and the compaction itself only runs
  // when at least one task actually left the queue — the common idle pass
  // (every worker busy) costs the placement probes and nothing else.
  if (!task_queue_.empty() && !workers_.empty()) {
    std::size_t keep = 0;
    bool placed = false;
    for (std::size_t i = 0; i < task_queue_.size(); ++i) {
      if (TryScheduleTask(task_queue_[i])) {
        placed = true;
      } else {
        if (keep != i) task_queue_[keep] = std::move(task_queue_[i]);
        ++keep;
      }
    }
    if (placed)
      task_queue_.erase(
          task_queue_.begin() + static_cast<std::ptrdiff_t>(keep),
          task_queue_.end());
  }
  // Function calls, per library.
  std::vector<std::string> names;
  names.reserve(libraries_.size());
  for (const auto& [name, info] : libraries_) {
    if (!info.queue.empty()) names.push_back(name);
  }
  for (const auto& name : names) TryScheduleLibrary(name);
}

bool Manager::TryScheduleTask(PendingTask& task) {
  // Walk the ring from the function's hash so repeated submissions of the
  // same function land where its cached context already is.
  const auto order = ring_.WalkFrom(
      hash::ContentId::OfText(task.spec.function_name).Prefix64());
  for (WorkerId worker_id : order) {
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) continue;
    if (!it->second.alloc.CanAllocate(task.spec.resources)) continue;

    auto claimed = it->second.alloc.Allocate(task.spec.resources);
    if (!claimed.ok()) continue;

    RunningTask running;
    running.task = std::move(task);
    running.worker = worker_id;
    running.claimed = *claimed;
    running.staged_at = Now();
    const TaskId id = running.task.spec.id;
    running.task.trace = telemetry_->tracer.EmitLinked(
        running.task.trace, telemetry::Phase::kDispatch, "task", "manager", id,
        running.task.queued_s, running.staged_at);

    for (const auto& decl : running.task.spec.inputs) {
      if (replicas_.HasReplica(decl.id, worker_id)) continue;
      if (StageFile(decl, worker_id, Waiter{false, id}, running.task.trace))
        ++running.pending_files;
    }
    it->second.running_tasks.insert(id);
    auto [placed_it, _] = running_tasks_.emplace(id, std::move(running));
    if (placed_it->second.pending_files == 0) DispatchTask(placed_it->second);
    return true;
  }
  return false;
}

AutoscaleSignal Manager::BuildAutoscaleSignal(
    const std::string& library_name) const {
  AutoscaleSignal signal;
  auto lib_it = libraries_.find(library_name);
  if (lib_it != libraries_.end()) {
    signal.queue_depth = lib_it->second.queue.size();
    for (const auto& [_, worker] : workers_) {
      if (worker.alloc.CanAllocate(lib_it->second.spec.resources))
        ++signal.workers_with_room;
    }
  }
  std::uint64_t served = 0;
  for (const auto& [_, instance] : instances_) {
    if (instance.library != library_name) continue;
    switch (instance.state) {
      case InstanceState::kReady:
        ++signal.ready_instances;
        signal.free_slots += instance.slots - instance.slots_in_use;
        served += instance.served;
        break;
      case InstanceState::kStaging:
      case InstanceState::kInstalling:
        ++signal.pending_instances;
        signal.pending_slots += instance.slots;
        break;
      case InstanceState::kDraining:
        break;
    }
  }
  // Fig 11 share value for this library: invocations served per warm
  // instance, computed from the per-instance counters already maintained
  // for introspection.
  if (signal.ready_instances > 0)
    signal.share_value = static_cast<double>(served) /
                         static_cast<double>(signal.ready_instances);
  return signal;
}

void Manager::TryScheduleLibrary(const std::string& library_name) {
  auto it = libraries_.find(library_name);
  if (it == libraries_.end()) return;
  LibraryInfo& info = it->second;

  while (!info.queue.empty()) {
    if (TryDispatchCall(info)) continue;
    // No warm slot took the call: close the loop through the autoscaler.
    // Under kFirstFit the legacy rule applies (deploy whenever the backlog
    // exceeds upcoming capacity); under kAffinity a deploy additionally
    // requires the per-warm-instance backlog to cross the steal threshold,
    // so small backlogs drain through the affinity set instead of
    // displacing warm capacity elsewhere.
    const AutoscaleSignal signal = BuildAutoscaleSignal(library_name);
    AutoscaleAction action;
    if (config_.scheduler.policy == SchedulerPolicy::kFirstFit) {
      action = signal.queue_depth <= signal.free_slots + signal.pending_slots
                   ? AutoscaleAction::kHold
                   : AutoscaleAction::kDeploy;
    } else {
      action = DecideAutoscale(config_.scheduler, signal);
    }
    if (action != AutoscaleAction::kDeploy) break;  // capacity is on the way
    if (TryDeployInstance(library_name)) {
      m_.autoscale_deploys->Add();
      continue;
    }
    // No worker has room: reclaim an idle library of another function
    // (§3.5.2 empty-library eviction) and wait for the removal.
    TryEvictEmptyLibrary(library_name);
    break;
  }
}

bool Manager::TryDispatchCall(LibraryInfo& info) {
  if (info.queue.empty()) return false;
  InstanceInfo* chosen = nullptr;
  if (config_.scheduler.policy == SchedulerPolicy::kFirstFit) {
    // Legacy: first ready instance in map (deployment) order.
    for (auto& [_, instance] : instances_) {
      if (instance.library != info.spec.name) continue;
      if (instance.state != InstanceState::kReady) continue;
      if (instance.slots_in_use >= instance.slots) continue;
      chosen = &instance;
      break;
    }
  } else {
    // Context affinity: least-loaded warm instance via the shared policy
    // helper (ties break to the lowest instance id — deterministic, and
    // identical to the simulator's choice).
    std::vector<DispatchCandidate> candidates;
    std::vector<InstanceInfo*> backing;
    for (auto& [_, instance] : instances_) {
      if (instance.library != info.spec.name) continue;
      if (instance.state != InstanceState::kReady) continue;
      candidates.push_back(
          {instance.id, instance.slots - instance.slots_in_use});
      backing.push_back(&instance);
    }
    // Ref-aware placement: among warm instances, keep only the ones whose
    // worker already holds the most ref-argument bytes of the next call —
    // co-locating consumer with replica makes the peer fetch disappear.
    // Least-loaded still breaks ties within the kept subset.
    if (!info.queue.front().ref_args.empty() && backing.size() > 1) {
      const PendingCall& front = info.queue.front();
      std::vector<std::uint64_t> score(backing.size(), 0);
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < backing.size(); ++i) {
        for (const RefArg& arg : front.ref_args)
          if (replicas_.HasReplica(arg.ref.id, backing[i]->worker))
            score[i] += arg.ref.size;
        best = std::max(best, score[i]);
      }
      if (best > 0) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < backing.size(); ++i) {
          if (score[i] != best) continue;
          candidates[keep] = candidates[i];
          backing[keep] = backing[i];
          ++keep;
        }
        candidates.resize(keep);
        backing.resize(keep);
      }
    }
    const std::size_t pick =
        PickLeastLoaded(candidates.data(), candidates.size());
    if (pick != kNoCandidate) chosen = backing[pick];
  }
  if (chosen == nullptr) return false;
  return DispatchCallsTo(*chosen, info.queue) > 0;
}

std::size_t Manager::DispatchCallsTo(InstanceInfo& instance,
                                     std::deque<PendingCall>& queue) {
  // Consumers whose ref arguments lost every replica are unrecoverable (the
  // producing invocation already resolved); fail them here instead of
  // burning retry attempts on fetches that can never succeed.
  while (!queue.empty()) {
    std::string lost;
    for (const RefArg& arg : queue.front().ref_args) {
      if (replicas_.ReplicaCount(arg.ref.id) == 0) {
        lost = arg.ref.id.ShortHex();
        break;
      }
    }
    if (lost.empty()) break;
    PendingCall call = std::move(queue.front());
    queue.pop_front();
    SettleCallRefs(call);
    call.future->Resolve(
        DataLossError("every replica of ref argument " + lost + " was lost"));
    FinishOne();
  }

  const std::size_t free_slots = instance.slots - instance.slots_in_use;
  const std::size_t max_batch =
      std::max<std::uint32_t>(1, config_.scheduler.max_batch);
  const std::size_t take =
      std::min({queue.size(), free_slots, max_batch});
  if (take == 0) return 0;
  const WorkerId worker = instance.worker;

  auto pop_next = [&]() {
    PendingCall call = std::move(queue.front());
    queue.pop_front();
    ++instance.slots_in_use;
    call.trace = telemetry_->tracer.EmitLinked(
        call.trace, telemetry::Phase::kDispatch, "invocation", "manager",
        call.id, call.queued_s, Now());
    RunInvocationMsg msg;
    msg.id = call.id;
    msg.instance_id = instance.id;
    msg.function_name = call.function;
    msg.args = call.args;
    // Stamp each ref argument with the replica to fetch from (0 = the
    // target already holds it), and remember the stamp on the running call
    // so a source death can cancel exactly the fetches it strands.
    for (RefArg& arg : call.ref_args) {
      arg.source = replicas_.HasReplica(arg.ref.id, worker)
                       ? 0
                       : PickRefSource(arg.ref.id, worker);
    }
    msg.ref_args = call.ref_args;
    msg.trace = call.trace;
    instance.running.emplace(call.id, std::move(call));
    return msg;
  };

  m_.dispatch_batch_size->Observe(static_cast<double>(take));
  if (take == 1) {
    // Single call: the legacy one-message path, no batch framing.
    // A failed send means the worker died; ProcessDeadWorkers requeues.
    (void)SendTo(worker, pop_next());
    return 1;
  }
  RunInvocationBatchMsg batch;
  batch.instance_id = instance.id;
  batch.items.reserve(take);
  for (std::size_t i = 0; i < take; ++i) batch.items.push_back(pop_next());
  (void)SendTo(worker, batch);
  return take;
}

bool Manager::TryDeployInstance(const std::string& library_name) {
  auto lib_it = libraries_.find(library_name);
  if (lib_it == libraries_.end()) return false;
  const LibrarySpec& spec = lib_it->second.spec;

  const auto order =
      ring_.WalkFrom(hash::ContentId::OfText(library_name).Prefix64());
  for (WorkerId worker_id : order) {
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) continue;
    if (!it->second.alloc.CanAllocate(spec.resources)) continue;
    auto claimed = it->second.alloc.Allocate(spec.resources);
    if (!claimed.ok()) continue;

    // Work stealing: recruiting a worker outside the warm affinity set while
    // the library already has warm instances elsewhere.
    if (affinity_.CountFor(library_name) > 0 &&
        !affinity_.Contains(library_name, worker_id))
      m_.steals->Add();

    InstanceInfo instance;
    instance.id = next_instance_id_++;
    instance.library = library_name;
    instance.worker = worker_id;
    instance.claimed = *claimed;
    instance.slots = spec.slots;
    instance.state = InstanceState::kStaging;
    // Attribute the deployment to the call that triggered it, so library
    // staging and setup land in that invocation's trace.
    if (!lib_it->second.queue.empty())
      instance.trace = lib_it->second.queue.front().trace;

    for (const auto& decl : spec.inputs) {
      if (replicas_.HasReplica(decl.id, worker_id)) continue;
      if (StageFile(decl, worker_id, Waiter{true, instance.id},
                    instance.trace))
        ++instance.pending_files;
    }
    it->second.instances.insert(instance.id);
    auto [placed_it, _] = instances_.emplace(instance.id, std::move(instance));
    if (placed_it->second.pending_files == 0)
      DispatchInstall(placed_it->second);
    return true;
  }
  return false;
}

bool Manager::TryEvictEmptyLibrary(const std::string& for_library) {
  // Fig 11 eviction order: among idle instances, evict the one whose
  // library shows the poorest share value first — DecideAutoscale flags
  // those as preferred victims (kEvict) — then the least-served instance.
  // A proven library is only displaced when no poor one remains, because
  // evicting it destroys the amortization retention paid for.
  InstanceInfo* victim = nullptr;
  bool victim_preferred = false;
  for (auto& [_, instance] : instances_) {
    if (instance.library == for_library) continue;
    if (instance.state != InstanceState::kReady) continue;
    if (instance.slots_in_use != 0) continue;
    auto lib_it = libraries_.find(instance.library);
    if (lib_it != libraries_.end() && !lib_it->second.queue.empty()) continue;

    if (config_.scheduler.policy != SchedulerPolicy::kAffinity) {
      victim = &instance;  // legacy first-fit: first idle instance wins
      break;
    }
    const bool preferred =
        DecideAutoscale(config_.scheduler,
                        BuildAutoscaleSignal(instance.library)) ==
        AutoscaleAction::kEvict;
    if (victim == nullptr || (preferred && !victim_preferred) ||
        (preferred == victim_preferred && instance.served < victim->served)) {
      victim = &instance;
      victim_preferred = preferred;
    }
  }
  if (victim != nullptr) {
    InstanceInfo& instance = *victim;
    instance.state = InstanceState::kDraining;
    affinity_.Remove(instance.library, instance.worker);
    SyncAffinityGauge();
    m_.libraries_evicted->Add();
    m_.autoscale_evicts->Add();
    VLOG_INFO("manager") << "evicting empty library " << instance.library
                         << "#" << instance.id << " from worker "
                         << instance.worker << " for " << for_library;
    (void)SendTo(instance.worker, RemoveLibraryMsg{instance.id});
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// File staging.
// ---------------------------------------------------------------------------

bool Manager::StageFile(const storage::FileDecl& decl, WorkerId worker,
                        Waiter waiter, telemetry::TraceContext trace) {
  const TransferKey key{worker, decl.id};
  auto it = transfers_.find(key);
  if (it != transfers_.end()) {
    it->second.waiters.push_back(waiter);
    return true;
  }

  auto source = replicas_.PickSource(
      decl.id, worker, config_.peer_transfers && decl.peer_transfer);
  Transfer transfer;
  transfer.decl = decl;
  transfer.waiters.push_back(waiter);
  transfer.trace = trace;  // first waiter owns the transfer's causality
  if (!source.ok()) {
    // All sources saturated: park the transfer; StartParkedTransfers retries
    // as other transfers complete.  (Only possible with a finite manager cap.)
    transfer.started = false;
    transfers_.emplace(key, std::move(transfer));
    return true;
  }
  transfer.source = *source;
  replicas_.BeginTransfer(transfer.source);

  transfer.started_s = Now();
  if (transfer.source.from_manager) {
    auto payload = manager_store_.Get(decl.id);
    if (!payload.ok()) {
      // Should not happen: declared files live in the manager store.  When
      // it does (a fabricated or dropped declaration), decline instead of
      // emplacing a zombie transfer: a transfer that never sends anything
      // never completes, and its waiters would hang WaitAll forever.  The
      // caller proceeds without the file and the worker fails the work
      // cleanly ("input not staged"), feeding the normal retry path.
      VLOG_ERROR("manager") << "missing declared payload " << decl.name;
      replicas_.EndTransfer(transfer.source);
      return false;
    }
    m_.manager_transfers->Add();
    m_.manager_transfer_bytes->Add(decl.size);
    (void)SendTo(worker, PutFileMsg{decl, std::move(*payload),
                                    transfer.trace});
  } else {
    m_.peer_transfers->Add();
    m_.peer_transfer_bytes->Add(decl.size);
    (void)SendTo(transfer.source.peer,
                 PushFileMsg{decl, worker, transfer.trace});
  }
  transfers_.emplace(key, std::move(transfer));
  return true;
}

void Manager::StartParkedTransfers() {
  for (auto& [key, transfer] : transfers_) {
    if (transfer.started) continue;
    auto source = replicas_.PickSource(
        transfer.decl.id, key.dest,
        config_.peer_transfers && transfer.decl.peer_transfer);
    if (!source.ok()) continue;  // still saturated
    transfer.source = *source;
    transfer.started = true;
    transfer.started_s = Now();
    replicas_.BeginTransfer(transfer.source);
    if (transfer.source.from_manager) {
      auto payload = manager_store_.Get(transfer.decl.id);
      if (payload.ok()) {
        m_.manager_transfers->Add();
        m_.manager_transfer_bytes->Add(transfer.decl.size);
        (void)SendTo(key.dest, PutFileMsg{transfer.decl, std::move(*payload),
                                          transfer.trace});
      }
    } else {
      m_.peer_transfers->Add();
      m_.peer_transfer_bytes->Add(transfer.decl.size);
      (void)SendTo(transfer.source.peer,
                   PushFileMsg{transfer.decl, key.dest, transfer.trace});
    }
  }
}

void Manager::CompleteTransfer(WorkerId worker, const hash::ContentId& id,
                               bool success, const std::string& error) {
  const TransferKey key{worker, id};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;  // e.g. worker died mid-transfer
  Transfer transfer = std::move(it->second);
  transfers_.erase(it);
  replicas_.EndTransfer(transfer.source);

  if (!success) {
    VLOG_WARN("manager") << "transfer of " << transfer.decl.name << " to "
                         << worker << " failed: " << error;
    telemetry_->flight.Record("xfer-fail", error, transfer.trace.trace_id,
                              id.Prefix64(), worker);
    if (++transfer.attempts < config_.max_attempts) {
      // Retry from a fresh source (the failed peer may hold a corrupt or
      // evicted copy; the manager always has the original).
      auto source =
          replicas_.PickSource(id, worker, /*allow_peer_transfer=*/false);
      if (source.ok()) {
        transfer.source = *source;
        replicas_.BeginTransfer(transfer.source);
        auto payload = manager_store_.Get(id);
        if (payload.ok()) {
          (void)SendTo(worker, PutFileMsg{transfer.decl, std::move(*payload),
                                          transfer.trace});
          transfers_.emplace(key, std::move(transfer));
          return;
        }
        replicas_.EndTransfer(transfer.source);
      }
    }
    // Permanent failure: fail task waiters; discard staging instances.
    const Status fail_status =
        DataLossError("input transfer failed: " + transfer.decl.name);
    for (const Waiter& waiter : transfer.waiters)
      FailWaiter(waiter, fail_status);
    return;
  }

  replicas_.AddReplica(id, worker);
  telemetry_->tracer.EmitLinked(transfer.trace, telemetry::Phase::kTransfer,
                                "file", "worker-" + std::to_string(worker),
                                id.Prefix64(), transfer.started_s, Now());
  for (const Waiter& waiter : transfer.waiters) {
    if (waiter.is_instance) {
      auto inst_it = instances_.find(waiter.id);
      if (inst_it == instances_.end()) continue;
      if (inst_it->second.pending_files > 0 &&
          --inst_it->second.pending_files == 0)
        DispatchInstall(inst_it->second);
    } else {
      auto task_it = running_tasks_.find(waiter.id);
      if (task_it == running_tasks_.end()) continue;
      if (task_it->second.pending_files > 0 &&
          --task_it->second.pending_files == 0)
        DispatchTask(task_it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Chunked pipelined broadcast.
// ---------------------------------------------------------------------------

void Manager::StartBroadcast(BroadcastCmd cmd) {
  auto fail = [&](Status status) {
    cmd.future->Resolve(std::move(status));
    FinishOne();
  };
  if (broadcasts_.count(cmd.decl.id) != 0) {
    fail(FailedPreconditionError("broadcast already active: " + cmd.decl.name));
    return;
  }
  auto payload = manager_store_.Get(cmd.decl.id);
  if (!payload.ok()) {
    fail(payload.status());
    return;
  }

  BroadcastState state;
  state.decl = cmd.decl;
  state.chunk_bytes =
      cmd.chunk_bytes != 0 ? cmd.chunk_bytes : storage::kDefaultChunkBytes;
  state.future = std::move(cmd.future);
  state.started_s = cmd.submitted_s;
  state.last_probe_s = Now();
  for (const auto& [id, _] : workers_) state.order.push_back(id);
  if (state.order.empty()) {
    state.future->Resolve(Outcome{});  // no workers: trivially complete
    FinishOne();
    return;
  }

  storage::BroadcastParams params;
  params.num_workers = state.order.size();
  params.fanout_cap =
      cmd.fanout_cap != 0 ? cmd.fanout_cap : config_.worker_transfer_cap;
  params.mode = storage::BroadcastMode::kSpanningTree;
  auto plan = storage::PlanPipelinedBroadcast(
      params, storage::ChunkParams{state.decl.size, state.chunk_bytes});
  if (!plan.ok()) {
    fail(plan.status());
    return;
  }
  state.plan = std::move(*plan);
  state.num_chunks = state.plan.num_chunks;
  state.pending.insert(state.order.begin(), state.order.end());
  // Root span of the broadcast trace: every chunk (probes and recovery
  // resends included) carries this context so relay spans link back here.
  state.trace = telemetry_->tracer.StartTrace(
      telemetry::Phase::kSubmit, "broadcast", "manager",
      state.decl.id.Prefix64(), cmd.submitted_s, Now());

  // Materialize each root's relay subtree once; every chunk reuses it.
  auto build = [&](auto&& self, std::uint64_t index) -> ChunkRoute {
    ChunkRoute route;
    route.dest = state.order[static_cast<std::size_t>(index)];
    for (std::uint64_t child :
         state.plan.children[static_cast<std::size_t>(index)])
      route.children.push_back(self(self, child));
    return route;
  };
  std::vector<std::vector<ChunkRoute>> root_children;
  root_children.reserve(state.plan.roots.size());
  for (std::uint64_t root : state.plan.roots) {
    std::vector<ChunkRoute> subtree;
    for (std::uint64_t child :
         state.plan.children[static_cast<std::size_t>(root)])
      subtree.push_back(build(build, child));
    root_children.push_back(std::move(subtree));
  }

  // Stream chunk-major: every root has chunk k in flight before any k+1, so
  // relays begin forwarding after one chunk-time, not one blob-time.  Each
  // slice is a zero-copy view of the stored payload, so queueing the whole
  // schedule costs pointers, not copies of the blob.
  for (std::uint64_t k = 0; k < state.num_chunks; ++k) {
    Blob slice = payload->Slice(
        static_cast<std::size_t>(k * state.chunk_bytes),
        static_cast<std::size_t>(state.chunk_bytes));
    for (std::size_t r = 0; r < state.plan.roots.size(); ++r) {
      PutChunkMsg msg;
      msg.decl = state.decl;
      msg.chunk_index = k;
      msg.num_chunks = state.num_chunks;
      msg.chunk_bytes = state.chunk_bytes;
      msg.children = root_children[r];
      msg.chunk = slice;
      msg.trace = state.trace;
      (void)SendTo(state.order[static_cast<std::size_t>(state.plan.roots[r])],
                   msg);
    }
  }
  for (std::size_t r = 0; r < state.plan.roots.size(); ++r) {
    m_.manager_transfers->Add();
    m_.manager_transfer_bytes->Add(state.decl.size);
  }
  broadcasts_.emplace(state.decl.id, std::move(state));
}

void Manager::ResendBroadcastDirect(BroadcastState& state, WorkerId worker) {
  auto payload = manager_store_.Get(state.decl.id);
  if (!payload.ok()) return;
  // Recovery traffic is accounted separately: the broadcast's payload bytes
  // were counted once at admission (StartBroadcast), and counting resends
  // into manager_transfer_bytes would double-bill every retried subtree.
  m_.broadcast_resends->Add();
  m_.broadcast_resend_bytes->Add(state.decl.size);
  telemetry_->flight.Record("bcast-resend", state.decl.name,
                            state.trace.trace_id, state.decl.id.Prefix64(),
                            worker);
  for (std::uint64_t k = 0; k < state.num_chunks; ++k) {
    PutChunkMsg msg;
    msg.decl = state.decl;
    msg.chunk_index = k;
    msg.num_chunks = state.num_chunks;
    msg.chunk_bytes = state.chunk_bytes;
    msg.chunk = payload->Slice(static_cast<std::size_t>(k * state.chunk_bytes),
                               static_cast<std::size_t>(state.chunk_bytes));
    msg.trace = state.trace;
    if (!SendTo(worker, msg).ok()) return;  // died again; reaped next batch
  }
}

void Manager::CompleteBroadcastReady(WorkerId worker,
                                     const hash::ContentId& id) {
  auto it = broadcasts_.find(id);
  if (it == broadcasts_.end()) return;
  if (it->second.pending.erase(worker) == 0) return;  // duplicate confirm
  replicas_.AddReplica(id, worker);
  if (it->second.pending.empty()) FinishBroadcast(it);
}

void Manager::FailBroadcastWorker(WorkerId worker, const hash::ContentId& id,
                                  const std::string& error) {
  auto it = broadcasts_.find(id);
  if (it == broadcasts_.end()) return;
  BroadcastState& state = it->second;
  if (state.pending.count(worker) == 0) return;
  if (++state.attempts[worker] < config_.max_attempts) {
    VLOG_WARN("manager") << "broadcast chunk reassembly failed on worker "
                         << worker << " (" << error << "); re-sending direct";
    ResendBroadcastDirect(state, worker);
    return;
  }
  state.future->Resolve(DataLossError("broadcast of " + state.decl.name +
                                      " to worker " + std::to_string(worker) +
                                      " failed: " + error));
  FinishOne();
  broadcasts_.erase(it);
}

void Manager::HandleBroadcastWorkerDeath(WorkerId worker) {
  for (auto it = broadcasts_.begin(); it != broadcasts_.end();) {
    BroadcastState& state = it->second;
    state.pending.erase(worker);
    auto pos = std::find(state.order.begin(), state.order.end(), worker);
    if (pos != state.order.end()) {
      // Every chunk the dead worker had not yet relayed is lost to its
      // subtree: re-feed each still-pending descendant directly from the
      // manager.  Chunks that did get through are deduped by reassembly.
      const auto dead_index =
          static_cast<std::size_t>(pos - state.order.begin());
      std::vector<std::uint64_t> stack(state.plan.children[dead_index].begin(),
                                       state.plan.children[dead_index].end());
      while (!stack.empty()) {
        const auto index = static_cast<std::size_t>(stack.back());
        stack.pop_back();
        stack.insert(stack.end(), state.plan.children[index].begin(),
                     state.plan.children[index].end());
        const WorkerId dest = state.order[index];
        if (state.pending.count(dest) != 0) ResendBroadcastDirect(state, dest);
      }
    }
    auto next = std::next(it);
    if (state.pending.empty()) FinishBroadcast(it);
    it = next;
  }
}

void Manager::ProbeBroadcasts() {
  // Liveness backstop: a relay that crashes after the transport accepted its
  // chunks never confirms and never fails a send, so nothing else would
  // notice.  Periodically re-send chunk 0 (deduped by reassembly, and
  // re-acked by workers that already hold the file) to every unconfirmed
  // worker; a dead endpoint makes the send fail, which feeds the normal
  // death-recovery path.
  const double now = Now();
  for (auto& [id, state] : broadcasts_) {
    if (now - state.last_probe_s < config_.broadcast_probe_s) continue;
    state.last_probe_s = now;
    auto payload = manager_store_.Get(state.decl.id);
    if (!payload.ok()) continue;
    for (WorkerId worker : state.pending) {
      PutChunkMsg msg;
      msg.decl = state.decl;
      msg.chunk_index = 0;
      msg.num_chunks = state.num_chunks;
      msg.chunk_bytes = state.chunk_bytes;
      msg.chunk =
          payload->Slice(0, static_cast<std::size_t>(state.chunk_bytes));
      msg.trace = state.trace;
      (void)SendTo(worker, msg);
    }
  }
}

void Manager::FinishBroadcast(
    std::map<hash::ContentId, BroadcastState>::iterator it) {
  BroadcastState state = std::move(it->second);
  broadcasts_.erase(it);
  const double now = Now();
  telemetry_->tracer.EmitLinked(state.trace, telemetry::Phase::kTransfer,
                                "broadcast", "manager",
                                state.decl.id.Prefix64(), state.started_s,
                                now);
  Outcome outcome;
  outcome.timing.transfer_s = now - state.started_s;
  state.future->Resolve(std::move(outcome));
  FinishOne();
}

void Manager::DispatchTask(RunningTask& running) {
  const double now = Now();
  running.transfer_wait_s = now - running.staged_at;
  running.task.trace = telemetry_->tracer.EmitLinked(
      running.task.trace, telemetry::Phase::kTransfer, "task",
      "worker-" + std::to_string(running.worker), running.task.spec.id,
      running.staged_at, now);
  ExecuteTaskMsg msg;
  msg.task = running.task.spec;  // copy: a retry reuses the original
  msg.trace = running.task.trace;
  for (const auto& decl : running.task.inline_decls) {
    auto payload = manager_store_.Get(decl.id);
    if (!payload.ok()) {
      // Fully unwind the placement before resolving: leaving the task in
      // running_tasks_ and the worker's running set would let a later
      // worker death requeue this already-failed task and double-resolve
      // its future (stealing another waiter's FinishOne).
      const TaskId id = running.task.spec.id;
      auto worker_it = workers_.find(running.worker);
      if (worker_it != workers_.end()) {
        worker_it->second.running_tasks.erase(id);
        Status released = worker_it->second.alloc.Release(running.claimed);
        if (!released.ok()) {
          VLOG_ERROR("manager") << "release: " << released.ToString();
        }
      }
      running.task.future->Resolve(payload.status());
      FinishOne();
      running_tasks_.erase(id);  // `running` is dangling past this point
      return;
    }
    msg.task.inline_files.emplace_back(decl, std::move(*payload));
  }
  (void)SendTo(running.worker, msg);
}

void Manager::DispatchInstall(InstanceInfo& instance) {
  auto lib_it = libraries_.find(instance.library);
  if (lib_it == libraries_.end()) return;
  instance.state = InstanceState::kInstalling;
  instance.trace = telemetry_->tracer.EmitLinked(
      instance.trace, telemetry::Phase::kDispatch, "library",
      "worker-" + std::to_string(instance.worker), instance.id, Now(), Now());
  InstallLibraryMsg msg{lib_it->second.spec, instance.id, instance.trace};
  (void)SendTo(instance.worker, msg);
}

void Manager::FeedInstance(InstanceInfo& instance) {
  if (instance.state != InstanceState::kReady) return;
  auto lib_it = libraries_.find(instance.library);
  if (lib_it == libraries_.end()) return;
  auto& queue = lib_it->second.queue;
  // Each round folds up to max_batch calls into one frame; loop in case the
  // instance has more free slots than one batch covers.
  while (!queue.empty() && instance.slots_in_use < instance.slots) {
    if (DispatchCallsTo(instance, queue) == 0) return;
  }
}

void Manager::SyncAffinityGauge() {
  std::size_t warm = 0;
  for (const auto& [library, workers] : affinity_.table())
    for (const auto& [worker, count] : workers) warm += count;
  m_.affinity_warm_instances->Set(static_cast<double>(warm));
}

// ---------------------------------------------------------------------------
// Live introspection.
// ---------------------------------------------------------------------------

namespace {

double RollingP95(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  std::vector<double> sorted(window.begin(), window.end());
  const auto rank = (sorted.size() - 1) * 95 / 100;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

}  // namespace

void Manager::StartStatusQuery(StatusCmd cmd) {
  // A new query preempts an unfinished one: resolve the old promise with
  // whatever arrived so far rather than leaving its caller to time out.
  if (status_query_.active) FinalizeStatusQuery();

  status_query_ = StatusQuery{};
  status_query_.promise = std::move(cmd.promise);
  status_query_.active = true;

  ClusterStatus& status = status_query_.status;
  status.collected_s = Now();
  status.task_queue_depth = task_queue_.size();
  status.straggler_factor = config_.straggler_factor;
  for (const auto& [name, info] : libraries_)
    status.library_queues.push_back({name, info.queue.size()});
  status.scheduler.policy =
      std::string(SchedulerPolicyName(config_.scheduler.policy));
  status.scheduler.affinity_hits = m_.affinity_hits->Value();
  status.scheduler.affinity_misses = m_.affinity_misses->Value();
  status.scheduler.steals = m_.steals->Value();
  status.scheduler.autoscale_deploys = m_.autoscale_deploys->Value();
  status.scheduler.autoscale_evicts = m_.autoscale_evicts->Value();
  {
    const telemetry::HistogramSnapshot batches =
        m_.dispatch_batch_size->Snapshot();
    status.scheduler.batches_sent = batches.count;
    status.scheduler.avg_batch_size = batches.Mean();
    status.scheduler.max_batch_size =
        static_cast<std::uint64_t>(batches.max);
  }
  for (const auto& [library, workers] : affinity_.table()) {
    AffinitySetStatus set;
    set.library = library;
    for (const auto& [worker, count] : workers) set.workers.push_back(worker);
    status.scheduler.affinity_sets.push_back(std::move(set));
  }
  for (const auto& [id, state] : broadcasts_) {
    BroadcastStatus b;
    b.name = state.decl.name;
    b.id = id;
    b.num_chunks = state.num_chunks;
    b.pending.assign(state.pending.begin(), state.pending.end());
    status.broadcasts.push_back(std::move(b));
  }
  status.slo = slo_monitor_.Snapshot(Now());

  // Skeleton per worker with the manager-side latency view; the wire reply
  // fills in the worker-side fields.
  for (const auto& [id, state] : workers_) {
    WorkerStatus w;
    w.id = id;
    w.p95_latency_s = RollingP95(state.invocation_latency_s);
    w.latency_samples = state.invocation_latency_s.size();
    status.workers.push_back(std::move(w));
    status_query_.awaiting.insert(id);
  }
  for (auto it = status_query_.awaiting.begin();
       it != status_query_.awaiting.end();) {
    const WorkerId id = *it;
    if (SendTo(id, StatusRequestMsg{}).ok()) {
      ++it;
    } else {
      // Send failed: the worker is gone and will be reaped, but its reply
      // will never come — don't block the query on it.
      std::erase_if(status_query_.status.workers,
                    [&](const WorkerStatus& w) { return w.id == id; });
      it = status_query_.awaiting.erase(it);
    }
  }
  if (status_query_.awaiting.empty()) FinalizeStatusQuery();
}

void Manager::HandleStatusReply(WorkerId worker, const StatusReplyMsg& msg) {
  if (!status_query_.active) return;
  if (status_query_.awaiting.erase(worker) == 0) return;  // stale reply
  for (WorkerStatus& w : status_query_.status.workers) {
    if (w.id != worker) continue;
    w.inbox_depth = msg.inbox_depth;
    w.tasks_executed = msg.tasks_executed;
    w.cache = msg.cache;
    w.assemblies = msg.assemblies;
    w.libraries = msg.libraries;
    w.refs_held = msg.refs_held;
    w.p2p_fetch_bytes = msg.p2p_fetch_bytes;
    w.p2p_serve_bytes = msg.p2p_serve_bytes;
    w.relayed_result_bytes = msg.relayed_result_bytes;
    w.arena_hwm_bytes = msg.arena_hwm_bytes;
    break;
  }
  if (status_query_.awaiting.empty()) FinalizeStatusQuery();
}

void Manager::FinalizeStatusQuery() {
  if (!status_query_.active) return;
  ClusterStatus& status = status_query_.status;

  // Straggler detection: a worker whose rolling p95 exceeds
  // straggler_factor × the cluster median p95 (over workers with samples).
  std::vector<double> p95s;
  for (const WorkerStatus& w : status.workers)
    if (w.latency_samples > 0) p95s.push_back(w.p95_latency_s);
  if (!p95s.empty()) {
    const auto mid = p95s.size() / 2;
    std::nth_element(p95s.begin(),
                     p95s.begin() + static_cast<std::ptrdiff_t>(mid),
                     p95s.end());
    status.cluster_median_p95_s = p95s[mid];
    for (WorkerStatus& w : status.workers) {
      w.straggler = w.latency_samples > 0 && status.cluster_median_p95_s > 0 &&
                    w.p95_latency_s >
                        status.straggler_factor * status.cluster_median_p95_s;
    }
  }

  status_query_.promise->set_value(std::move(status));
  status_query_ = StatusQuery{};
}

void Manager::RunQuiescenceCheck(QuiescenceCmd cmd) {
  // Reap deaths the transport has already signalled, so the audit sees the
  // settled state rather than a snapshot taken mid-recovery.
  ProcessDeadWorkers();

  QuiescenceReport report;
  auto violate = [&](std::string what) {
    report.quiescent = false;
    report.violations.push_back(std::move(what));
  };

  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    report.outstanding_futures = outstanding_;
  }
  if (report.outstanding_futures != 0)
    violate(std::to_string(report.outstanding_futures) +
            " submitted futures still unresolved");

  report.task_queue = task_queue_.size();
  if (report.task_queue != 0)
    violate(std::to_string(report.task_queue) + " tasks still queued");
  report.running_tasks = running_tasks_.size();
  if (report.running_tasks != 0)
    violate(std::to_string(report.running_tasks) +
            " entries leaked in running_tasks_");
  report.transfers = transfers_.size();
  if (report.transfers != 0)
    violate(std::to_string(report.transfers) +
            " transfers still in flight (or leaked)");
  report.broadcasts = broadcasts_.size();
  if (report.broadcasts != 0)
    violate(std::to_string(report.broadcasts) + " broadcasts still active");

  for (const auto& [name, info] : libraries_) {
    report.queued_calls += info.queue.size();
    if (!info.queue.empty())
      violate("library " + name + " still has " +
              std::to_string(info.queue.size()) + " queued calls");
  }

  // Instances may legitimately outlive the workload (retained context is
  // the point), but they must be settled: kReady, no running invocations,
  // no claimed slots, nothing mid-stage.  Transitional states are reported
  // so callers poll until removal/readiness lands.
  report.instances = instances_.size();
  std::size_t expected_active = 0;
  double expected_context_bytes = 0.0;
  for (const auto& [id, instance] : instances_) {
    const std::string label =
        "instance " + instance.library + "#" + std::to_string(id);
    report.running_invocations += instance.running.size();
    if (!instance.running.empty())
      violate(label + " still has " +
              std::to_string(instance.running.size()) +
              " running invocations");
    if (instance.slots_in_use != instance.running.size())
      violate(label + " slots_in_use=" +
              std::to_string(instance.slots_in_use) + " but " +
              std::to_string(instance.running.size()) +
              " running invocations");
    switch (instance.state) {
      case InstanceState::kStaging:
        violate(label + " still staging");
        break;
      case InstanceState::kInstalling:
        violate(label + " still installing");
        break;
      case InstanceState::kDraining:
        violate(label + " still draining");
        break;
      case InstanceState::kReady:
        if (instance.pending_files != 0)
          violate(label + " ready but pending_files=" +
                  std::to_string(instance.pending_files));
        break;
    }
    if (instance.state == InstanceState::kReady ||
        instance.state == InstanceState::kDraining) {
      ++expected_active;
      expected_context_bytes += static_cast<double>(instance.context_memory);
    }
    auto worker_it = workers_.find(instance.worker);
    if (worker_it == workers_.end() ||
        !worker_it->second.instances.contains(id))
      violate(label + " not linked to worker " +
              std::to_string(instance.worker));
  }

  // Gauges must equal the values recomputed from first principles.
  report.libraries_active_gauge =
      static_cast<std::uint64_t>(m_.libraries_active->Value());
  if (m_.libraries_active->Value() !=
      static_cast<double>(expected_active))
    violate("libraries_active gauge = " +
            std::to_string(report.libraries_active_gauge) + " but " +
            std::to_string(expected_active) + " ready/draining instances");
  report.retained_context_bytes_gauge =
      static_cast<std::uint64_t>(m_.retained_context_bytes->Value());
  if (m_.retained_context_bytes->Value() != expected_context_bytes)
    violate("retained_context_bytes gauge = " +
            std::to_string(report.retained_context_bytes_gauge) +
            " but instances retain " +
            std::to_string(static_cast<std::uint64_t>(
                expected_context_bytes)) +
            " bytes");

  // Affinity sets must equal what the instance table implies: exactly one
  // entry per kReady instance, keyed by its (library, worker).  A stale
  // entry (e.g. left behind by a worker death) would route invocations at
  // vanished context; a missing one hides warm capacity.
  AffinityIndex expected_affinity;
  for (const auto& [id, instance] : instances_)
    if (instance.state == InstanceState::kReady)
      expected_affinity.Add(instance.library, instance.worker);
  for (const auto& [library, workers] : affinity_.table()) {
    report.affinity_entries += workers.size();
    const AffinityIndex::WorkerCounts* expected =
        expected_affinity.Get(library);
    for (const auto& [worker, count] : workers) {
      std::uint32_t expected_count = 0;
      if (expected != nullptr) {
        auto expected_it = expected->find(worker);
        if (expected_it != expected->end())
          expected_count = expected_it->second;
      }
      if (expected_count == 0)
        violate("stale affinity entry: " + library + " -> worker " +
                std::to_string(worker) + " (no ready instance there)");
      else if (expected_count != count)
        violate("affinity count for " + library + " on worker " +
                std::to_string(worker) + " = " + std::to_string(count) +
                " but " + std::to_string(expected_count) +
                " ready instances");
    }
  }
  std::size_t expected_warm = 0;
  for (const auto& [library, workers] : expected_affinity.table())
    for (const auto& [worker, count] : workers) {
      expected_warm += count;
      if (!affinity_.Contains(library, worker))
        violate("missing affinity entry: " + library + " -> worker " +
                std::to_string(worker));
    }
  report.affinity_warm_gauge =
      static_cast<std::uint64_t>(m_.affinity_warm_instances->Value());
  if (m_.affinity_warm_instances->Value() !=
      static_cast<double>(expected_warm))
    violate("affinity_warm_instances gauge = " +
            std::to_string(report.affinity_warm_gauge) + " but " +
            std::to_string(expected_warm) + " ready instances");

  // Per-worker accounting: the membership sets must be mirrored by the
  // scheduler tables, and the recorded claims must exactly explain the
  // allocator's non-free resources.
  for (const auto& [worker_id, state] : workers_) {
    const std::string label = "worker " + std::to_string(worker_id);
    for (TaskId task_id : state.running_tasks)
      if (!running_tasks_.contains(task_id))
        violate(label + " lists unknown running task " +
                std::to_string(task_id));
    for (LibraryInstanceId inst_id : state.instances)
      if (!instances_.contains(inst_id))
        violate(label + " lists unknown instance " +
                std::to_string(inst_id));
    Resources claimed{0, 0, 0};
    auto add_claim = [&claimed](const Resources& r) {
      claimed.cores += r.cores;
      claimed.memory_mb += r.memory_mb;
      claimed.disk_mb += r.disk_mb;
    };
    for (const auto& [_, running] : running_tasks_)
      if (running.worker == worker_id) add_claim(running.claimed);
    for (const auto& [_, instance] : instances_)
      if (instance.worker == worker_id) add_claim(instance.claimed);
    const Resources total = state.alloc.total();
    const Resources expected_free{total.cores - claimed.cores,
                                  total.memory_mb - claimed.memory_mb,
                                  total.disk_mb - claimed.disk_mb};
    if (claimed.cores > total.cores || claimed.memory_mb > total.memory_mb ||
        claimed.disk_mb > total.disk_mb) {
      violate(label + " oversubscribed: claims " + claimed.ToString() +
              " of " + total.ToString());
    } else if (!(state.alloc.free() == expected_free)) {
      violate(label + " allocator free=" + state.alloc.free().ToString() +
              " but recorded claims imply " + expected_free.ToString());
    }
  }

  // Pass-by-reference audit: every tracked ref must still have a live
  // replica, and its consumer refcount must equal the consumers actually
  // queued or running — a drifted count either drops a payload a consumer is
  // about to fetch or pins it forever.  No FetchRef may be outstanding.
  report.refs_tracked = refs_.size();
  std::map<hash::ContentId, std::uint64_t> expected_consumers;
  for (const auto& [name, info] : libraries_)
    for (const auto& call : info.queue)
      for (const RefArg& arg : call.ref_args)
        ++expected_consumers[arg.ref.id];
  for (const auto& [id, instance] : instances_)
    for (const auto& [_, call] : instance.running)
      for (const RefArg& arg : call.ref_args)
        ++expected_consumers[arg.ref.id];
  for (const auto& [id, info] : refs_) {
    report.ref_bytes += info.size;
    const std::string label = "ref " + id.ShortHex();
    if (replicas_.ReplicaCount(id) == 0)
      violate(label + " tracked but no live replica holds it");
    std::uint64_t expected = 0;
    auto expected_it = expected_consumers.find(id);
    if (expected_it != expected_consumers.end()) expected = expected_it->second;
    if (info.pending_consumers != expected)
      violate(label + " counts " + std::to_string(info.pending_consumers) +
              " pending consumers but " + std::to_string(expected) +
              " are queued/running");
  }
  if (!manager_fetches_.empty())
    violate(std::to_string(manager_fetches_.size()) +
            " manager ref fetches still in flight");

  cmd.promise->set_value(std::move(report));
}

// ---------------------------------------------------------------------------
// Fault handling.
// ---------------------------------------------------------------------------

void Manager::RequeueCall(PendingCall call) {
  auto it = libraries_.find(call.library);
  if (it == libraries_.end()) {
    SettleCallRefs(call);
    call.future->Resolve(NotFoundError("library vanished: " + call.library));
    FinishOne();
    return;
  }
  call.queued_s = Now();
  it->second.queue.push_front(std::move(call));
}

void Manager::FailWaiter(const Waiter& waiter, const Status& status) {
  if (waiter.is_instance) {
    // Discard the staging instance; its queued calls stay in the library
    // queue and redeploy elsewhere on the next scheduling pass.
    auto inst_it = instances_.find(waiter.id);
    if (inst_it == instances_.end()) return;
    auto worker_it = workers_.find(inst_it->second.worker);
    if (worker_it != workers_.end()) {
      worker_it->second.instances.erase(inst_it->second.id);
      Status released =
          worker_it->second.alloc.Release(inst_it->second.claimed);
      if (!released.ok()) {
        VLOG_ERROR("manager") << "release: " << released.ToString();
      }
    }
    instances_.erase(inst_it);
  } else {
    auto task_it = running_tasks_.find(waiter.id);
    if (task_it == running_tasks_.end()) return;
    auto worker_it = workers_.find(task_it->second.worker);
    if (worker_it != workers_.end()) {
      worker_it->second.running_tasks.erase(waiter.id);
      Status released =
          worker_it->second.alloc.Release(task_it->second.claimed);
      if (!released.ok()) {
        VLOG_ERROR("manager") << "release: " << released.ToString();
      }
    }
    task_it->second.task.future->Resolve(status);
    FinishOne();
    running_tasks_.erase(task_it);
  }
}

void Manager::ProcessDeadWorkers() {
  while (!pending_dead_.empty()) {
    const WorkerId worker = *pending_dead_.begin();
    pending_dead_.erase(pending_dead_.begin());
    OnWorkerDead(worker);
  }
}

void Manager::OnWorkerDead(WorkerId worker) {
  auto it = workers_.find(worker);
  if (it == workers_.end()) return;
  VLOG_INFO("manager") << "worker " << worker << " left ("
                       << it->second.running_tasks.size() << " tasks, "
                       << it->second.instances.size() << " instances)";
  telemetry_->flight.Record("worker-dead", "", 0, worker,
                            it->second.running_tasks.size());
  // A status query can't wait on a dead worker; drop its (never-arriving)
  // entry and finalize if it was the last one outstanding.
  if (status_query_.active && status_query_.awaiting.erase(worker) != 0) {
    auto& entries = status_query_.status.workers;
    std::erase_if(entries,
                  [&](const WorkerStatus& w) { return w.id == worker; });
    if (status_query_.awaiting.empty()) FinalizeStatusQuery();
  }

  const std::set<TaskId> dead_tasks = std::move(it->second.running_tasks);
  const std::set<LibraryInstanceId> dead_instances =
      std::move(it->second.instances);
  workers_.erase(it);
  ring_.Remove(worker);

  // Pass-by-reference recovery, part 1: consumers parked mid-fetch on the
  // dead replica would wait forever — cancel exactly the fetches whose
  // dispatch stamped this worker as the source.  The cancelled invocations
  // fail back to the manager, requeue, and re-dispatch against a surviving
  // replica (or fail with kDataLoss below if none is left).
  for (auto& [_, instance] : instances_) {
    if (instance.worker == worker) continue;  // dies with its worker below
    std::set<hash::ContentId> cancel;
    for (const auto& [__, call] : instance.running)
      for (const RefArg& arg : call.ref_args)
        if (arg.source == worker) cancel.insert(arg.ref.id);
    for (const hash::ContentId& id : cancel)
      (void)SendTo(instance.worker, CancelFetchMsg{id});
  }

  replicas_.RemoveWorker(worker);

  // Part 2: refs whose last replica died are gone for good — forget them so
  // the audit sees a consistent table; their not-yet-dispatched consumers
  // fail with kDataLoss at dispatch time.
  for (auto ref_it = refs_.begin(); ref_it != refs_.end();) {
    if (replicas_.ReplicaCount(ref_it->first) == 0) {
      telemetry_->flight.Record("ref-lost", ref_it->first.ShortHex(), 0,
                                ref_it->first.Prefix64(), worker);
      ref_it = refs_.erase(ref_it);
    } else {
      ++ref_it;
    }
  }

  // Part 3: a FetchRef materialization served by the dead worker retries the
  // next holder; out of holders = data loss for its waiters.
  for (auto f_it = manager_fetches_.begin(); f_it != manager_fetches_.end();) {
    if (f_it->second.source != worker || AdvanceManagerFetch(f_it->second)) {
      ++f_it;
      continue;
    }
    for (auto& waiter : f_it->second.waiters)
      waiter->set_value(DataLossError("ref replica died and no other holder "
                                      "survives: " +
                                      f_it->second.ref.id.ShortHex()));
    f_it = manager_fetches_.erase(f_it);
  }
  // Drop every affinity entry pointing at the dead worker — a stale entry
  // here is exactly what the quiescence audit flags as a violation.
  affinity_.RemoveWorker(worker);
  SyncAffinityGauge();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    worker_count_ = workers_.size();
    wait_cv_.notify_all();
  }

  // Transfers touching the dead worker: destinations die with their
  // waiters (requeued below); transfers *sourced* from it restart from a
  // new source.
  std::vector<std::pair<TransferKey, Transfer>> resource;
  for (auto t_it = transfers_.begin(); t_it != transfers_.end();) {
    if (t_it->first.dest == worker) {
      replicas_.EndTransfer(t_it->second.source);
      t_it = transfers_.erase(t_it);
    } else if (!t_it->second.source.from_manager &&
               t_it->second.source.peer == worker) {
      replicas_.EndTransfer(t_it->second.source);
      resource.emplace_back(t_it->first, std::move(t_it->second));
      t_it = transfers_.erase(t_it);
    } else {
      ++t_it;
    }
  }
  for (auto& [key, transfer] : resource) {
    // Restage from the manager (it normally holds every declared payload).
    // When StageFile declines — or the fresh transfer is not found under
    // the key — the remaining waiters must be failed explicitly: silently
    // dropping them leaves their futures unresolved and hangs WaitAll.
    auto waiters = std::move(transfer.waiters);
    const Status lost =
        DataLossError("transfer source died and restage failed: " +
                      transfer.decl.name);
    bool first = true;
    bool staged = false;
    for (const Waiter& waiter : waiters) {
      if (first) {
        first = false;
        staged = StageFile(transfer.decl, key.dest, waiter, transfer.trace);
        if (!staged) FailWaiter(waiter, lost);
        continue;
      }
      auto new_it = staged ? transfers_.find(key) : transfers_.end();
      if (new_it != transfers_.end())
        new_it->second.waiters.push_back(waiter);
      else
        FailWaiter(waiter, lost);
    }
  }

  HandleBroadcastWorkerDeath(worker);

  for (TaskId id : dead_tasks) {
    auto task_it = running_tasks_.find(id);
    if (task_it == running_tasks_.end()) continue;
    PendingTask task = std::move(task_it->second.task);
    running_tasks_.erase(task_it);
    if (++task.attempts < config_.max_attempts) {
      m_.retries->Add();
      task.queued_s = Now();
      task_queue_.push_back(std::move(task));
    } else {
      task.future->Resolve(UnavailableError("worker died repeatedly"));
      FinishOne();
    }
  }

  for (LibraryInstanceId id : dead_instances) {
    auto inst_it = instances_.find(id);
    if (inst_it == instances_.end()) continue;
    InstanceInfo instance = std::move(inst_it->second);
    instances_.erase(inst_it);
    // A draining instance was counted active at LibraryReady and its
    // LibraryRemovedMsg (the usual decrement point) will never arrive from
    // a dead worker — decrement here for both states or the gauge drifts.
    if (instance.state == InstanceState::kReady ||
        instance.state == InstanceState::kDraining)
      m_.libraries_active->Set(
          std::max(0.0, m_.libraries_active->Value() - 1));
    m_.retained_context_bytes->Set(
        std::max(0.0, m_.retained_context_bytes->Value() -
                          static_cast<double>(instance.context_memory)));
    for (auto& [_, call] : instance.running) {
      if (++call.attempts < config_.max_attempts) {
        m_.retries->Add();
        RequeueCall(std::move(call));
      } else {
        SettleCallRefs(call);
        call.future->Resolve(UnavailableError("worker died repeatedly"));
        FinishOne();
      }
    }
  }
}

Status Manager::SendTo(WorkerId worker, const Message& message) {
  WireFrame wire = EncodeFrame(message);
  Status status =
      network_->Send(net::kManagerEndpoint, worker, std::move(wire.payload),
                     std::move(wire.attachment));
  if (!status.ok()) pending_dead_.insert(worker);
  return status;
}

}  // namespace vinelet::core
