// Scheduling: admission of pending tasks and library calls, context-
// affinity placement, batched invocation dispatch, instance deploys,
// and closed-loop library autoscaling decisions.
#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Scheduling.
// ---------------------------------------------------------------------------

void Manager::TrySchedule() {
  StartParkedTransfers();
  // Stateless tasks: first-fit in FIFO order with a single stable compaction
  // pass — scheduled tasks are dropped by moving the survivors forward once,
  // instead of an O(queue) mid-deque erase per placement (quadratic when a
  // large backlog drains).  The whole sweep early-outs when there is nothing
  // to place or nowhere to place it, and the compaction itself only runs
  // when at least one task actually left the queue — the common idle pass
  // (every worker busy) costs the placement probes and nothing else.
  if (!task_queue_.empty() && !workers_.empty()) {
    std::size_t keep = 0;
    bool placed = false;
    for (std::size_t i = 0; i < task_queue_.size(); ++i) {
      if (TryScheduleTask(task_queue_[i])) {
        placed = true;
      } else {
        if (keep != i) task_queue_[keep] = std::move(task_queue_[i]);
        ++keep;
      }
    }
    if (placed)
      task_queue_.erase(
          task_queue_.begin() + static_cast<std::ptrdiff_t>(keep),
          task_queue_.end());
  }
  // Function calls, per library.
  std::vector<std::string> names;
  names.reserve(libraries_.size());
  for (const auto& [name, info] : libraries_) {
    if (!info.queue.empty()) names.push_back(name);
  }
  for (const auto& name : names) TryScheduleLibrary(name);
}

bool Manager::TryScheduleTask(PendingTask& task) {
  // Walk the ring from the function's hash so repeated submissions of the
  // same function land where its cached context already is.
  const auto order = ring_.WalkFrom(
      hash::ContentId::OfText(task.spec.function_name).Prefix64());
  for (WorkerId worker_id : order) {
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) continue;
    if (!it->second.alloc.CanAllocate(task.spec.resources)) continue;

    auto claimed = it->second.alloc.Allocate(task.spec.resources);
    if (!claimed.ok()) continue;

    RunningTask running;
    running.task = std::move(task);
    running.worker = worker_id;
    running.claimed = *claimed;
    running.staged_at = Now();
    const TaskId id = running.task.spec.id;
    running.task.trace = telemetry_->tracer.EmitLinked(
        running.task.trace, telemetry::Phase::kDispatch, "task", "manager", id,
        running.task.queued_s, running.staged_at);

    for (const auto& decl : running.task.spec.inputs) {
      if (replicas_.HasReplica(decl.id, worker_id)) continue;
      if (StageFile(decl, worker_id, Waiter{false, id}, running.task.trace))
        ++running.pending_files;
    }
    it->second.running_tasks.insert(id);
    auto [placed_it, _] = running_tasks_.emplace(id, std::move(running));
    if (placed_it->second.pending_files == 0) DispatchTask(placed_it->second);
    return true;
  }
  return false;
}

AutoscaleSignal Manager::BuildAutoscaleSignal(
    const std::string& library_name) const {
  AutoscaleSignal signal;
  auto lib_it = libraries_.find(library_name);
  if (lib_it != libraries_.end()) {
    signal.queue_depth = lib_it->second.queue.size();
    for (const auto& [_, worker] : workers_) {
      if (worker.alloc.CanAllocate(lib_it->second.spec.resources))
        ++signal.workers_with_room;
    }
  }
  std::uint64_t served = 0;
  for (const auto& [_, instance] : instances_) {
    if (instance.library != library_name) continue;
    switch (instance.state) {
      case InstanceState::kReady:
        ++signal.ready_instances;
        signal.free_slots += instance.slots - instance.slots_in_use;
        served += instance.served;
        break;
      case InstanceState::kStaging:
      case InstanceState::kInstalling:
        ++signal.pending_instances;
        signal.pending_slots += instance.slots;
        break;
      case InstanceState::kDraining:
        break;
    }
  }
  // Fig 11 share value for this library: invocations served per warm
  // instance, computed from the per-instance counters already maintained
  // for introspection.
  if (signal.ready_instances > 0)
    signal.share_value = static_cast<double>(served) /
                         static_cast<double>(signal.ready_instances);
  return signal;
}

void Manager::TryScheduleLibrary(const std::string& library_name) {
  auto it = libraries_.find(library_name);
  if (it == libraries_.end()) return;
  LibraryInfo& info = it->second;

  while (!info.queue.empty()) {
    if (TryDispatchCall(info)) continue;
    // No warm slot took the call: close the loop through the autoscaler.
    // Under kFirstFit the legacy rule applies (deploy whenever the backlog
    // exceeds upcoming capacity); under kAffinity a deploy additionally
    // requires the per-warm-instance backlog to cross the steal threshold,
    // so small backlogs drain through the affinity set instead of
    // displacing warm capacity elsewhere.
    const AutoscaleSignal signal = BuildAutoscaleSignal(library_name);
    AutoscaleAction action;
    if (config_.scheduler.policy == SchedulerPolicy::kFirstFit) {
      action = signal.queue_depth <= signal.free_slots + signal.pending_slots
                   ? AutoscaleAction::kHold
                   : AutoscaleAction::kDeploy;
    } else {
      action = DecideAutoscale(config_.scheduler, signal);
    }
    if (action != AutoscaleAction::kDeploy) break;  // capacity is on the way
    if (TryDeployInstance(library_name)) {
      m_.autoscale_deploys->Add();
      continue;
    }
    // No worker has room: reclaim an idle library of another function
    // (§3.5.2 empty-library eviction) and wait for the removal.
    TryEvictEmptyLibrary(library_name);
    break;
  }
}

bool Manager::TryDispatchCall(LibraryInfo& info) {
  if (info.queue.empty()) return false;
  InstanceInfo* chosen = nullptr;
  if (config_.scheduler.policy == SchedulerPolicy::kFirstFit) {
    // Legacy: first ready instance in map (deployment) order.
    for (auto& [_, instance] : instances_) {
      if (instance.library != info.spec.name) continue;
      if (instance.state != InstanceState::kReady) continue;
      if (instance.slots_in_use >= instance.slots) continue;
      chosen = &instance;
      break;
    }
  } else {
    // Context affinity: least-loaded warm instance via the shared policy
    // helper (ties break to the lowest instance id — deterministic, and
    // identical to the simulator's choice).
    std::vector<DispatchCandidate> candidates;
    std::vector<InstanceInfo*> backing;
    for (auto& [_, instance] : instances_) {
      if (instance.library != info.spec.name) continue;
      if (instance.state != InstanceState::kReady) continue;
      candidates.push_back(
          {instance.id, instance.slots - instance.slots_in_use});
      backing.push_back(&instance);
    }
    // Ref-aware placement: among warm instances, keep only the ones whose
    // worker already holds the most ref-argument bytes of the next call —
    // co-locating consumer with replica makes the peer fetch disappear.
    // Least-loaded still breaks ties within the kept subset.
    if (!info.queue.front().ref_args.empty() && backing.size() > 1) {
      const PendingCall& front = info.queue.front();
      std::vector<std::uint64_t> score(backing.size(), 0);
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < backing.size(); ++i) {
        for (const RefArg& arg : front.ref_args)
          if (replicas_.HasReplica(arg.ref.id, backing[i]->worker))
            score[i] += arg.ref.size;
        best = std::max(best, score[i]);
      }
      if (best > 0) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < backing.size(); ++i) {
          if (score[i] != best) continue;
          candidates[keep] = candidates[i];
          backing[keep] = backing[i];
          ++keep;
        }
        candidates.resize(keep);
        backing.resize(keep);
      }
    }
    const std::size_t pick =
        PickLeastLoaded(candidates.data(), candidates.size());
    if (pick != kNoCandidate) chosen = backing[pick];
  }
  if (chosen == nullptr) return false;
  return DispatchCallsTo(*chosen, info.queue) > 0;
}

std::size_t Manager::DispatchCallsTo(InstanceInfo& instance,
                                     std::deque<PendingCall>& queue) {
  // Consumers whose ref arguments lost every replica are unrecoverable (the
  // producing invocation already resolved); fail them here instead of
  // burning retry attempts on fetches that can never succeed.
  while (!queue.empty()) {
    std::string lost;
    for (const RefArg& arg : queue.front().ref_args) {
      if (replicas_.ReplicaCount(arg.ref.id) == 0) {
        lost = arg.ref.id.ShortHex();
        break;
      }
    }
    if (lost.empty()) break;
    PendingCall call = std::move(queue.front());
    queue.pop_front();
    SettleCallRefs(call);
    call.future->Resolve(
        DataLossError("every replica of ref argument " + lost + " was lost"));
    FinishOne();
  }

  const std::size_t free_slots = instance.slots - instance.slots_in_use;
  const std::size_t max_batch =
      std::max<std::uint32_t>(1, config_.scheduler.max_batch);
  const std::size_t take =
      std::min({queue.size(), free_slots, max_batch});
  if (take == 0) return 0;
  const WorkerId worker = instance.worker;

  auto pop_next = [&]() {
    PendingCall call = std::move(queue.front());
    queue.pop_front();
    ++instance.slots_in_use;
    call.trace = telemetry_->tracer.EmitLinked(
        call.trace, telemetry::Phase::kDispatch, "invocation", "manager",
        call.id, call.queued_s, Now());
    RunInvocationMsg msg;
    msg.id = call.id;
    msg.instance_id = instance.id;
    msg.function_name = call.function;
    msg.args = call.args;
    // Stamp each ref argument with the replica to fetch from (0 = the
    // target already holds it), and remember the stamp on the running call
    // so a source death can cancel exactly the fetches it strands.
    for (RefArg& arg : call.ref_args) {
      arg.source = replicas_.HasReplica(arg.ref.id, worker)
                       ? 0
                       : PickRefSource(arg.ref.id, worker);
    }
    msg.ref_args = call.ref_args;
    msg.trace = call.trace;
    instance.running.emplace(call.id, std::move(call));
    return msg;
  };

  m_.dispatch_batch_size->Observe(static_cast<double>(take));
  if (take == 1) {
    // Single call: the legacy one-message path, no batch framing.
    // A failed send means the worker died; ProcessDeadWorkers requeues.
    (void)SendTo(worker, pop_next());
    return 1;
  }
  RunInvocationBatchMsg batch;
  batch.instance_id = instance.id;
  batch.items.reserve(take);
  for (std::size_t i = 0; i < take; ++i) batch.items.push_back(pop_next());
  (void)SendTo(worker, batch);
  return take;
}

bool Manager::TryDeployInstance(const std::string& library_name) {
  auto lib_it = libraries_.find(library_name);
  if (lib_it == libraries_.end()) return false;
  const LibrarySpec& spec = lib_it->second.spec;

  const auto order =
      ring_.WalkFrom(hash::ContentId::OfText(library_name).Prefix64());
  for (WorkerId worker_id : order) {
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) continue;
    if (!it->second.alloc.CanAllocate(spec.resources)) continue;
    auto claimed = it->second.alloc.Allocate(spec.resources);
    if (!claimed.ok()) continue;

    // Work stealing: recruiting a worker outside the warm affinity set while
    // the library already has warm instances elsewhere.
    if (affinity_.CountFor(library_name) > 0 &&
        !affinity_.Contains(library_name, worker_id))
      m_.steals->Add();

    InstanceInfo instance;
    instance.id = next_instance_id_++;
    instance.library = library_name;
    instance.worker = worker_id;
    instance.claimed = *claimed;
    instance.slots = spec.slots;
    instance.state = InstanceState::kStaging;
    // Attribute the deployment to the call that triggered it, so library
    // staging and setup land in that invocation's trace.
    if (!lib_it->second.queue.empty())
      instance.trace = lib_it->second.queue.front().trace;

    for (const auto& decl : spec.inputs) {
      if (replicas_.HasReplica(decl.id, worker_id)) continue;
      if (StageFile(decl, worker_id, Waiter{true, instance.id},
                    instance.trace))
        ++instance.pending_files;
    }
    it->second.instances.insert(instance.id);
    auto [placed_it, _] = instances_.emplace(instance.id, std::move(instance));
    if (placed_it->second.pending_files == 0)
      DispatchInstall(placed_it->second);
    return true;
  }
  return false;
}

bool Manager::TryEvictEmptyLibrary(const std::string& for_library) {
  // Fig 11 eviction order: among idle instances, evict the one whose
  // library shows the poorest share value first — DecideAutoscale flags
  // those as preferred victims (kEvict) — then the least-served instance.
  // A proven library is only displaced when no poor one remains, because
  // evicting it destroys the amortization retention paid for.
  InstanceInfo* victim = nullptr;
  bool victim_preferred = false;
  for (auto& [_, instance] : instances_) {
    if (instance.library == for_library) continue;
    if (instance.state != InstanceState::kReady) continue;
    if (instance.slots_in_use != 0) continue;
    auto lib_it = libraries_.find(instance.library);
    if (lib_it != libraries_.end() && !lib_it->second.queue.empty()) continue;

    if (config_.scheduler.policy != SchedulerPolicy::kAffinity) {
      victim = &instance;  // legacy first-fit: first idle instance wins
      break;
    }
    const bool preferred =
        DecideAutoscale(config_.scheduler,
                        BuildAutoscaleSignal(instance.library)) ==
        AutoscaleAction::kEvict;
    if (victim == nullptr || (preferred && !victim_preferred) ||
        (preferred == victim_preferred && instance.served < victim->served)) {
      victim = &instance;
      victim_preferred = preferred;
    }
  }
  if (victim != nullptr) {
    InstanceInfo& instance = *victim;
    instance.state = InstanceState::kDraining;
    affinity_.Remove(instance.library, instance.worker);
    SyncAffinityGauge();
    m_.libraries_evicted->Add();
    m_.autoscale_evicts->Add();
    VLOG_INFO("manager") << "evicting empty library " << instance.library
                         << "#" << instance.id << " from worker "
                         << instance.worker << " for " << for_library;
    (void)SendTo(instance.worker, RemoveLibraryMsg{instance.id});
    return true;
  }
  return false;
}

void Manager::DispatchTask(RunningTask& running) {
  const double now = Now();
  running.transfer_wait_s = now - running.staged_at;
  running.task.trace = telemetry_->tracer.EmitLinked(
      running.task.trace, telemetry::Phase::kTransfer, "task",
      "worker-" + std::to_string(running.worker), running.task.spec.id,
      running.staged_at, now);
  ExecuteTaskMsg msg;
  msg.task = running.task.spec;  // copy: a retry reuses the original
  msg.trace = running.task.trace;
  for (const auto& decl : running.task.inline_decls) {
    auto payload = manager_store_.Get(decl.id);
    if (!payload.ok()) {
      // Fully unwind the placement before resolving: leaving the task in
      // running_tasks_ and the worker's running set would let a later
      // worker death requeue this already-failed task and double-resolve
      // its future (stealing another waiter's FinishOne).
      const TaskId id = running.task.spec.id;
      auto worker_it = workers_.find(running.worker);
      if (worker_it != workers_.end()) {
        worker_it->second.running_tasks.erase(id);
        Status released = worker_it->second.alloc.Release(running.claimed);
        if (!released.ok()) {
          VLOG_ERROR("manager") << "release: " << released.ToString();
        }
      }
      running.task.future->Resolve(payload.status());
      FinishOne();
      running_tasks_.erase(id);  // `running` is dangling past this point
      return;
    }
    msg.task.inline_files.emplace_back(decl, std::move(*payload));
  }
  (void)SendTo(running.worker, msg);
}

void Manager::DispatchInstall(InstanceInfo& instance) {
  auto lib_it = libraries_.find(instance.library);
  if (lib_it == libraries_.end()) return;
  instance.state = InstanceState::kInstalling;
  instance.trace = telemetry_->tracer.EmitLinked(
      instance.trace, telemetry::Phase::kDispatch, "library",
      "worker-" + std::to_string(instance.worker), instance.id, Now(), Now());
  InstallLibraryMsg msg{lib_it->second.spec, instance.id, instance.trace};
  (void)SendTo(instance.worker, msg);
}

void Manager::FeedInstance(InstanceInfo& instance) {
  if (instance.state != InstanceState::kReady) return;
  auto lib_it = libraries_.find(instance.library);
  if (lib_it == libraries_.end()) return;
  auto& queue = lib_it->second.queue;
  // Each round folds up to max_batch calls into one frame; loop in case the
  // instance has more free slots than one batch covers.
  while (!queue.empty() && instance.slots_in_use < instance.slots) {
    if (DispatchCallsTo(instance, queue) == 0) return;
  }
}

void Manager::SyncAffinityGauge() {
  std::size_t warm = 0;
  for (const auto& [library, workers] : affinity_.table())
    for (const auto& [worker, count] : workers) warm += count;
  m_.affinity_warm_instances->Set(static_cast<double>(warm));
}

}  // namespace vinelet::core
