// Worker-side registry of unpacked environments.
//
// L2's defining behaviour: an environment tarball is unpacked into the
// worker's local disk *once* and every subsequent task or library on that
// worker reuses the expanded directory (paper §3.2: "a context process on a
// worker will reuse a copy of the tarball ... if it is available in the
// worker's cache").  The registry keys expanded directories by the tarball's
// content id and guarantees single unpacking even under concurrent callers.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/content_id.hpp"
#include "poncho/packer.hpp"

namespace vinelet::core {

class UnpackRegistry {
 public:
  /// Returns the expanded directory for `tarball`, unpacking at most once
  /// per content id; concurrent callers for the same id block until the
  /// first finishes.  `unpacked_now` reports whether *this* call did the
  /// work (i.e. paid the cold cost).
  Result<std::shared_ptr<const poncho::UnpackedDir>> GetOrUnpack(
      const hash::ContentId& id, const Blob& tarball, bool* unpacked_now);

  /// Peeks without unpacking; kNotFound when absent.
  Result<std::shared_ptr<const poncho::UnpackedDir>> Peek(
      const hash::ContentId& id) const;

  bool Contains(const hash::ContentId& id) const;
  void Remove(const hash::ContentId& id);
  std::size_t size() const;

 private:
  struct Slot {
    bool ready = false;
    Status error;
    std::shared_ptr<const poncho::UnpackedDir> dir;
  };

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unordered_map<hash::ContentId, std::shared_ptr<Slot>> slots_;
};

}  // namespace vinelet::core
