#include "core/factory.hpp"

namespace vinelet::core {

Status Factory::Start() {
  for (std::size_t i = 0; i < config_.initial_workers; ++i) {
    auto spawned = SpawnWorker();
    if (!spawned.ok()) return spawned.status();
  }
  return Status::Ok();
}

void Factory::Stop() {
  std::map<WorkerId, std::unique_ptr<Worker>> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& [_, worker] : workers) worker->Stop();
}

Result<WorkerId> Factory::SpawnWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerConfig config;
  config.id = next_id_++;
  config.resources = config_.worker_resources;
  config.cache_capacity_bytes = config_.cache_capacity_bytes;
  config.registry = config_.registry;
  config.telemetry = config_.telemetry;
  config.fault = config_.fault;
  config.ref_results_min_bytes = config_.ref_results_min_bytes;
  auto worker = std::make_unique<Worker>(network_, config);
  VINELET_RETURN_IF_ERROR(worker->Start());
  const WorkerId id = config.id;
  workers_.emplace(id, std::move(worker));
  return id;
}

Status Factory::KillWorker(WorkerId id) {
  std::unique_ptr<Worker> worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(id);
    if (it == workers_.end())
      return NotFoundError("no such worker: " + std::to_string(id));
    worker = std::move(it->second);
    workers_.erase(it);
  }
  worker->Kill();
  return Status::Ok();
}

Status Factory::StopWorker(WorkerId id) {
  std::unique_ptr<Worker> worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(id);
    if (it == workers_.end())
      return NotFoundError("no such worker: " + std::to_string(id));
    worker = std::move(it->second);
    workers_.erase(it);
  }
  worker->Stop();
  return Status::Ok();
}

std::vector<WorkerId> Factory::WorkerIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerId> ids;
  ids.reserve(workers_.size());
  for (const auto& [id, _] : workers_) ids.push_back(id);
  return ids;
}

Worker* Factory::GetWorker(WorkerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

std::size_t Factory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

}  // namespace vinelet::core
