#include "core/protocol.hpp"

#include "serde/archive.hpp"

namespace vinelet::core {
namespace {

using serde::ArchiveReader;
using serde::ArchiveWriter;

enum class Tag : std::uint8_t {
  kPutFile = 1,
  kPushFile,
  kExecuteTask,
  kInstallLibrary,
  kRemoveLibrary,
  kRunInvocation,
  kShutdown,
  kHello,
  kFileReady,
  kFileFailed,
  kTaskDone,
  kLibraryReady,
  kLibraryRemoved,
  kInvocationDone,
  kGoodbye,
  kPutChunk,
  kStatusRequest,
  kStatusReply,
  kRunInvocationBatch,
  kFetchBlob,
  kBlobData,
  kDropBlob,
  kCancelFetch,
};

/// Route trees are bounded by the worker count in practice; the decoder
/// additionally caps recursion so a malformed frame cannot exhaust the stack.
constexpr std::size_t kMaxRouteDepth = 512;

// --- field-group encoders -------------------------------------------------

void WriteContentId(ArchiveWriter& w, const hash::ContentId& id) {
  w.WriteBytes(std::span<const std::uint8_t>(id.digest().data(),
                                             id.digest().size()));
}

Result<hash::ContentId> ReadContentId(ArchiveReader& r) {
  auto bytes = r.ReadBytes();
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != hash::Sha256::kDigestSize)
    return DataLossError("bad content-id length");
  hash::Sha256::Digest digest;
  std::copy(bytes->begin(), bytes->end(), digest.begin());
  return hash::ContentId::FromDigest(digest);
}

void WriteFileDecl(ArchiveWriter& w, const storage::FileDecl& decl) {
  w.WriteString(decl.name);
  WriteContentId(w, decl.id);
  w.WriteU64(decl.size);
  w.WriteU8(static_cast<std::uint8_t>(decl.kind));
  w.WriteBool(decl.cache);
  w.WriteBool(decl.peer_transfer);
  w.WriteBool(decl.unpack);
}

Result<storage::FileDecl> ReadFileDecl(ArchiveReader& r) {
  storage::FileDecl decl;
  auto name = r.ReadString();
  if (!name.ok()) return name.status();
  decl.name = std::move(*name);
  auto id = ReadContentId(r);
  if (!id.ok()) return id.status();
  decl.id = *id;
  auto size = r.ReadU64();
  if (!size.ok()) return size.status();
  decl.size = *size;
  auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<std::uint8_t>(storage::FileKind::kLibraryScript))
    return DataLossError("bad file kind");
  decl.kind = static_cast<storage::FileKind>(*kind);
  auto cache = r.ReadBool();
  if (!cache.ok()) return cache.status();
  decl.cache = *cache;
  auto peer = r.ReadBool();
  if (!peer.ok()) return peer.status();
  decl.peer_transfer = *peer;
  auto unpack = r.ReadBool();
  if (!unpack.ok()) return unpack.status();
  decl.unpack = *unpack;
  return decl;
}

void WriteDecls(ArchiveWriter& w, const std::vector<storage::FileDecl>& decls) {
  w.WriteU64(decls.size());
  for (const auto& decl : decls) WriteFileDecl(w, decl);
}

Result<std::vector<storage::FileDecl>> ReadDecls(ArchiveReader& r) {
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) return DataLossError("decl count exceeds payload");
  std::vector<storage::FileDecl> decls;
  decls.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto decl = ReadFileDecl(r);
    if (!decl.ok()) return decl.status();
    decls.push_back(std::move(*decl));
  }
  return decls;
}

void WriteResources(ArchiveWriter& w, const Resources& res) {
  w.WriteU32(res.cores);
  w.WriteU64(res.memory_mb);
  w.WriteU64(res.disk_mb);
}

Result<Resources> ReadResources(ArchiveReader& r) {
  Resources res;
  auto cores = r.ReadU32();
  if (!cores.ok()) return cores.status();
  res.cores = *cores;
  auto mem = r.ReadU64();
  if (!mem.ok()) return mem.status();
  res.memory_mb = *mem;
  auto disk = r.ReadU64();
  if (!disk.ok()) return disk.status();
  res.disk_mb = *disk;
  return res;
}

void WriteTiming(ArchiveWriter& w, const TimingBreakdown& t) {
  w.WriteF64(t.transfer_s);
  w.WriteF64(t.worker_s);
  w.WriteF64(t.deserialize_s);
  w.WriteF64(t.context_s);
  w.WriteF64(t.exec_s);
}

Result<TimingBreakdown> ReadTiming(ArchiveReader& r) {
  TimingBreakdown t;
  for (double* field : {&t.transfer_s, &t.worker_s, &t.deserialize_s,
                        &t.context_s, &t.exec_s}) {
    auto v = r.ReadF64();
    if (!v.ok()) return v.status();
    *field = *v;
  }
  return t;
}

void WriteTrace(ArchiveWriter& w, const telemetry::TraceContext& trace) {
  w.WriteU64(trace.trace_id);
  w.WriteU64(trace.parent_span_id);
}

Result<telemetry::TraceContext> ReadTrace(ArchiveReader& r) {
  telemetry::TraceContext trace;
  auto trace_id = r.ReadU64();
  if (!trace_id.ok()) return trace_id.status();
  trace.trace_id = *trace_id;
  auto parent = r.ReadU64();
  if (!parent.ok()) return parent.status();
  trace.parent_span_id = *parent;
  return trace;
}

void WriteBlob(ArchiveWriter& w, const Blob& blob) { w.WriteBytes(blob.span()); }

void WriteBlobRef(ArchiveWriter& w, const BlobRef& ref) {
  WriteContentId(w, ref.id);
  w.WriteU64(ref.size);
  w.WriteU64(ref.owner);
}

Result<BlobRef> ReadBlobRef(ArchiveReader& r) {
  BlobRef ref;
  auto id = ReadContentId(r);
  if (!id.ok()) return id.status();
  ref.id = *id;
  auto size = r.ReadU64();
  if (!size.ok()) return size.status();
  ref.size = *size;
  auto owner = r.ReadU64();
  if (!owner.ok()) return owner.status();
  ref.owner = *owner;
  return ref;
}

void WriteRefArgs(ArchiveWriter& w, const std::vector<RefArg>& refs) {
  w.WriteU64(refs.size());
  for (const auto& ref : refs) {
    w.WriteU32(ref.arg_index);
    WriteBlobRef(w, ref.ref);
    w.WriteU64(ref.source);
  }
}

Result<std::vector<RefArg>> ReadRefArgs(ArchiveReader& r) {
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (*count > r.remaining())
    return DataLossError("ref-arg count exceeds payload");
  std::vector<RefArg> refs;
  refs.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    RefArg arg;
    auto index = r.ReadU32();
    if (!index.ok()) return index.status();
    arg.arg_index = *index;
    auto ref = ReadBlobRef(r);
    if (!ref.ok()) return ref.status();
    arg.ref = *ref;
    auto source = r.ReadU64();
    if (!source.ok()) return source.status();
    arg.source = *source;
    refs.push_back(arg);
  }
  return refs;
}

Result<Blob> ReadBlob(ArchiveReader& r) { return r.ReadBlob(); }

/// Bulk fields (PutFile payload, PutChunk chunk) are prefixed with an
/// "attached" flag: EncodeFrame detaches them into the frame attachment,
/// EncodeMessage inlines them.
Result<Blob> ReadBulk(ArchiveReader& r, const Blob* attachment) {
  auto attached = r.ReadBool();
  if (!attached.ok()) return attached.status();
  if (*attached) {
    if (attachment == nullptr)
      return DataLossError("bulk payload marked attached but frame has none");
    return *attachment;  // shares the frame's refcounted bytes
  }
  return r.ReadBlob();
}

void WriteRoutes(ArchiveWriter& w, const std::vector<ChunkRoute>& routes) {
  w.WriteU64(routes.size());
  for (const auto& route : routes) {
    w.WriteU64(route.dest);
    WriteRoutes(w, route.children);
  }
}

Result<std::vector<ChunkRoute>> ReadRoutes(ArchiveReader& r,
                                           std::size_t depth) {
  if (depth > kMaxRouteDepth) return DataLossError("chunk route too deep");
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (*count > r.remaining())
    return DataLossError("route count exceeds payload");
  std::vector<ChunkRoute> routes;
  routes.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    ChunkRoute route;
    auto dest = r.ReadU64();
    if (!dest.ok()) return dest.status();
    route.dest = *dest;
    auto children = ReadRoutes(r, depth + 1);
    if (!children.ok()) return children.status();
    route.children = std::move(*children);
    routes.push_back(std::move(route));
  }
  return routes;
}

// --- message encoders -------------------------------------------------------

struct Encoder {
  ArchiveWriter w;
  /// When set, bulk fields are diverted here instead of being copied into
  /// the header (EncodeFrame's zero-copy path).
  Blob* attachment_out = nullptr;

  void WriteBulk(const Blob& blob) {
    const bool attach = attachment_out != nullptr && !blob.empty();
    w.WriteBool(attach);
    if (attach) {
      *attachment_out = blob;  // borrow: shares the refcounted payload
    } else {
      WriteBlob(w, blob);
    }
  }

  void operator()(const PutFileMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kPutFile));
    WriteFileDecl(w, m.decl);
    WriteTrace(w, m.trace);
    WriteBulk(m.payload);
  }
  void operator()(const PutChunkMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kPutChunk));
    WriteFileDecl(w, m.decl);
    w.WriteU64(m.chunk_index);
    w.WriteU64(m.num_chunks);
    w.WriteU64(m.chunk_bytes);
    WriteRoutes(w, m.children);
    WriteTrace(w, m.trace);
    WriteBulk(m.chunk);
  }
  void operator()(const PushFileMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kPushFile));
    WriteFileDecl(w, m.decl);
    w.WriteU64(m.dest);
    WriteTrace(w, m.trace);
  }
  void operator()(const ExecuteTaskMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kExecuteTask));
    w.WriteU64(m.task.id);
    w.WriteString(m.task.function_name);
    WriteBlob(w, m.task.args);
    WriteDecls(w, m.task.inputs);
    w.WriteU64(m.task.inline_files.size());
    for (const auto& [decl, payload] : m.task.inline_files) {
      WriteFileDecl(w, decl);
      WriteBlob(w, payload);
    }
    WriteResources(w, m.task.resources);
    WriteTrace(w, m.trace);
  }
  void operator()(const InstallLibraryMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kInstallLibrary));
    w.WriteU64(m.instance_id);
    w.WriteString(m.spec.name);
    w.WriteU64(m.spec.function_names.size());
    for (const auto& name : m.spec.function_names) w.WriteString(name);
    w.WriteString(m.spec.setup_name);
    WriteBlob(w, m.spec.setup_args);
    WriteDecls(w, m.spec.inputs);
    WriteResources(w, m.spec.resources);
    w.WriteU32(m.spec.slots);
    w.WriteU8(static_cast<std::uint8_t>(m.spec.exec_mode));
    WriteTrace(w, m.trace);
  }
  void operator()(const RemoveLibraryMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kRemoveLibrary));
    w.WriteU64(m.instance_id);
  }
  void operator()(const RunInvocationMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kRunInvocation));
    w.WriteU64(m.id);
    w.WriteU64(m.instance_id);
    w.WriteString(m.function_name);
    WriteBlob(w, m.args);
    WriteRefArgs(w, m.ref_args);
    WriteTrace(w, m.trace);
  }
  void operator()(const RunInvocationBatchMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kRunInvocationBatch));
    w.WriteU64(m.instance_id);
    w.WriteU64(m.items.size());
    for (const auto& item : m.items) {
      w.WriteU64(item.id);
      w.WriteString(item.function_name);
      WriteBlob(w, item.args);
      WriteRefArgs(w, item.ref_args);
      WriteTrace(w, item.trace);
    }
  }
  void operator()(const ShutdownMsg&) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kShutdown));
  }
  void operator()(const HelloMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kHello));
    WriteResources(w, m.resources);
  }
  void operator()(const FileReadyMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kFileReady));
    WriteContentId(w, m.content_id);
    w.WriteU64(m.size);
  }
  void operator()(const FileFailedMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kFileFailed));
    WriteContentId(w, m.content_id);
    w.WriteString(m.error);
  }
  void operator()(const TaskDoneMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kTaskDone));
    w.WriteU64(m.id);
    w.WriteBool(m.ok);
    WriteBlob(w, m.result);
    w.WriteString(m.error);
    WriteTiming(w, m.timing);
    WriteTrace(w, m.trace);
  }
  void operator()(const LibraryReadyMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kLibraryReady));
    w.WriteU64(m.instance_id);
    WriteTiming(w, m.timing);
    w.WriteU64(m.context_memory_bytes);
  }
  void operator()(const LibraryRemovedMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kLibraryRemoved));
    w.WriteU64(m.instance_id);
  }
  void operator()(const InvocationDoneMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kInvocationDone));
    w.WriteU64(m.id);
    w.WriteBool(m.ok);
    WriteBulk(m.result);
    WriteBlobRef(w, m.ref);
    w.WriteString(m.error);
    WriteTiming(w, m.timing);
    WriteTrace(w, m.trace);
  }
  void operator()(const GoodbyeMsg&) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kGoodbye));
  }
  void operator()(const StatusRequestMsg&) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kStatusRequest));
  }
  void operator()(const StatusReplyMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kStatusReply));
    w.WriteU64(m.inbox_depth);
    w.WriteU64(m.tasks_executed);
    w.WriteU64(m.cache.size());
    for (const auto& entry : m.cache) {
      WriteContentId(w, entry.id);
      w.WriteU64(entry.bytes);
    }
    w.WriteU64(m.assemblies.size());
    for (const auto& assembly : m.assemblies) {
      WriteContentId(w, assembly.id);
      w.WriteU64(assembly.received);
      w.WriteU64(assembly.total);
    }
    w.WriteU64(m.libraries.size());
    for (const auto& slot : m.libraries) {
      w.WriteU64(slot.instance_id);
      w.WriteString(slot.library);
      w.WriteU64(slot.invocations_served);
      w.WriteU64(slot.queued);
    }
    w.WriteU64(m.refs_held);
    w.WriteU64(m.p2p_fetch_bytes);
    w.WriteU64(m.p2p_serve_bytes);
    w.WriteU64(m.relayed_result_bytes);
    w.WriteU64(m.arena_hwm_bytes);
  }
  void operator()(const FetchBlobMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kFetchBlob));
    WriteContentId(w, m.id);
    w.WriteU64(m.tag);
    WriteTrace(w, m.trace);
  }
  void operator()(const BlobDataMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kBlobData));
    WriteContentId(w, m.id);
    w.WriteU64(m.tag);
    w.WriteBool(m.ok);
    w.WriteString(m.error);
    WriteTrace(w, m.trace);
    WriteBulk(m.payload);
  }
  void operator()(const DropBlobMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kDropBlob));
    WriteContentId(w, m.id);
  }
  void operator()(const CancelFetchMsg& m) {
    w.WriteU8(static_cast<std::uint8_t>(Tag::kCancelFetch));
    WriteContentId(w, m.id);
  }
};

// --- message decoders -------------------------------------------------------

Result<Message> DecodePutFile(ArchiveReader& r, const Blob* attachment) {
  PutFileMsg m;
  auto decl = ReadFileDecl(r);
  if (!decl.ok()) return decl.status();
  m.decl = std::move(*decl);
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  auto payload = ReadBulk(r, attachment);
  if (!payload.ok()) return payload.status();
  m.payload = std::move(*payload);
  return Message(std::move(m));
}

Result<Message> DecodePutChunk(ArchiveReader& r, const Blob* attachment) {
  PutChunkMsg m;
  auto decl = ReadFileDecl(r);
  if (!decl.ok()) return decl.status();
  m.decl = std::move(*decl);
  for (std::uint64_t* field : {&m.chunk_index, &m.num_chunks, &m.chunk_bytes}) {
    auto v = r.ReadU64();
    if (!v.ok()) return v.status();
    *field = *v;
  }
  auto children = ReadRoutes(r, 0);
  if (!children.ok()) return children.status();
  m.children = std::move(*children);
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  auto chunk = ReadBulk(r, attachment);
  if (!chunk.ok()) return chunk.status();
  m.chunk = std::move(*chunk);
  return Message(std::move(m));
}

Result<Message> DecodePushFile(ArchiveReader& r) {
  PushFileMsg m;
  auto decl = ReadFileDecl(r);
  if (!decl.ok()) return decl.status();
  m.decl = std::move(*decl);
  auto dest = r.ReadU64();
  if (!dest.ok()) return dest.status();
  m.dest = *dest;
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeExecuteTask(ArchiveReader& r) {
  ExecuteTaskMsg m;
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  m.task.id = *id;
  auto fn = r.ReadString();
  if (!fn.ok()) return fn.status();
  m.task.function_name = std::move(*fn);
  auto args = ReadBlob(r);
  if (!args.ok()) return args.status();
  m.task.args = std::move(*args);
  auto decls = ReadDecls(r);
  if (!decls.ok()) return decls.status();
  m.task.inputs = std::move(*decls);
  auto inline_count = r.ReadU64();
  if (!inline_count.ok()) return inline_count.status();
  if (*inline_count > r.remaining())
    return DataLossError("inline file count exceeds payload");
  for (std::uint64_t i = 0; i < *inline_count; ++i) {
    auto decl = ReadFileDecl(r);
    if (!decl.ok()) return decl.status();
    auto payload = ReadBlob(r);
    if (!payload.ok()) return payload.status();
    m.task.inline_files.emplace_back(std::move(*decl), std::move(*payload));
  }
  auto res = ReadResources(r);
  if (!res.ok()) return res.status();
  m.task.resources = *res;
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeInstallLibrary(ArchiveReader& r) {
  InstallLibraryMsg m;
  auto instance = r.ReadU64();
  if (!instance.ok()) return instance.status();
  m.instance_id = *instance;
  auto name = r.ReadString();
  if (!name.ok()) return name.status();
  m.spec.name = std::move(*name);
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) return DataLossError("function count exceeds payload");
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto fn = r.ReadString();
    if (!fn.ok()) return fn.status();
    m.spec.function_names.push_back(std::move(*fn));
  }
  auto setup = r.ReadString();
  if (!setup.ok()) return setup.status();
  m.spec.setup_name = std::move(*setup);
  auto setup_args = ReadBlob(r);
  if (!setup_args.ok()) return setup_args.status();
  m.spec.setup_args = std::move(*setup_args);
  auto decls = ReadDecls(r);
  if (!decls.ok()) return decls.status();
  m.spec.inputs = std::move(*decls);
  auto res = ReadResources(r);
  if (!res.ok()) return res.status();
  m.spec.resources = *res;
  auto slots = r.ReadU32();
  if (!slots.ok()) return slots.status();
  m.spec.slots = *slots;
  auto mode = r.ReadU8();
  if (!mode.ok()) return mode.status();
  if (*mode > static_cast<std::uint8_t>(ExecMode::kFork))
    return DataLossError("bad exec mode");
  m.spec.exec_mode = static_cast<ExecMode>(*mode);
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeRunInvocation(ArchiveReader& r) {
  RunInvocationMsg m;
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  m.id = *id;
  auto instance = r.ReadU64();
  if (!instance.ok()) return instance.status();
  m.instance_id = *instance;
  auto fn = r.ReadString();
  if (!fn.ok()) return fn.status();
  m.function_name = std::move(*fn);
  auto args = ReadBlob(r);
  if (!args.ok()) return args.status();
  m.args = std::move(*args);
  auto refs = ReadRefArgs(r);
  if (!refs.ok()) return refs.status();
  m.ref_args = std::move(*refs);
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeRunInvocationBatch(ArchiveReader& r) {
  RunInvocationBatchMsg m;
  auto instance = r.ReadU64();
  if (!instance.ok()) return instance.status();
  m.instance_id = *instance;
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  if (*count > r.remaining())
    return DataLossError("batch item count exceeds payload");
  m.items.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    RunInvocationMsg item;
    item.instance_id = m.instance_id;
    auto id = r.ReadU64();
    if (!id.ok()) return id.status();
    item.id = *id;
    auto fn = r.ReadString();
    if (!fn.ok()) return fn.status();
    item.function_name = std::move(*fn);
    auto args = ReadBlob(r);
    if (!args.ok()) return args.status();
    item.args = std::move(*args);
    auto refs = ReadRefArgs(r);
    if (!refs.ok()) return refs.status();
    item.ref_args = std::move(*refs);
    auto trace = ReadTrace(r);
    if (!trace.ok()) return trace.status();
    item.trace = *trace;
    m.items.push_back(std::move(item));
  }
  return Message(std::move(m));
}

Result<Message> DecodeTaskDone(ArchiveReader& r) {
  TaskDoneMsg m;
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  m.id = *id;
  auto ok = r.ReadBool();
  if (!ok.ok()) return ok.status();
  m.ok = *ok;
  auto result = ReadBlob(r);
  if (!result.ok()) return result.status();
  m.result = std::move(*result);
  auto error = r.ReadString();
  if (!error.ok()) return error.status();
  m.error = std::move(*error);
  auto timing = ReadTiming(r);
  if (!timing.ok()) return timing.status();
  m.timing = *timing;
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeInvocationDone(ArchiveReader& r,
                                     const Blob* attachment) {
  InvocationDoneMsg m;
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  m.id = *id;
  auto ok = r.ReadBool();
  if (!ok.ok()) return ok.status();
  m.ok = *ok;
  auto result = ReadBulk(r, attachment);
  if (!result.ok()) return result.status();
  m.result = std::move(*result);
  auto ref = ReadBlobRef(r);
  if (!ref.ok()) return ref.status();
  m.ref = *ref;
  auto error = r.ReadString();
  if (!error.ok()) return error.status();
  m.error = std::move(*error);
  auto timing = ReadTiming(r);
  if (!timing.ok()) return timing.status();
  m.timing = *timing;
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeStatusReply(ArchiveReader& r) {
  StatusReplyMsg m;
  auto inbox = r.ReadU64();
  if (!inbox.ok()) return inbox.status();
  m.inbox_depth = *inbox;
  auto tasks = r.ReadU64();
  if (!tasks.ok()) return tasks.status();
  m.tasks_executed = *tasks;
  auto cache_count = r.ReadU64();
  if (!cache_count.ok()) return cache_count.status();
  if (*cache_count > r.remaining())
    return DataLossError("cache count exceeds payload");
  for (std::uint64_t i = 0; i < *cache_count; ++i) {
    CacheEntryStatus entry;
    auto id = ReadContentId(r);
    if (!id.ok()) return id.status();
    entry.id = *id;
    auto bytes = r.ReadU64();
    if (!bytes.ok()) return bytes.status();
    entry.bytes = *bytes;
    m.cache.push_back(entry);
  }
  auto assembly_count = r.ReadU64();
  if (!assembly_count.ok()) return assembly_count.status();
  if (*assembly_count > r.remaining())
    return DataLossError("assembly count exceeds payload");
  for (std::uint64_t i = 0; i < *assembly_count; ++i) {
    AssemblyStatus assembly;
    auto id = ReadContentId(r);
    if (!id.ok()) return id.status();
    assembly.id = *id;
    for (std::uint64_t* field : {&assembly.received, &assembly.total}) {
      auto v = r.ReadU64();
      if (!v.ok()) return v.status();
      *field = *v;
    }
    m.assemblies.push_back(assembly);
  }
  auto library_count = r.ReadU64();
  if (!library_count.ok()) return library_count.status();
  if (*library_count > r.remaining())
    return DataLossError("library count exceeds payload");
  for (std::uint64_t i = 0; i < *library_count; ++i) {
    LibrarySlotStatus slot;
    auto instance = r.ReadU64();
    if (!instance.ok()) return instance.status();
    slot.instance_id = *instance;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    slot.library = std::move(*name);
    for (std::uint64_t* field : {&slot.invocations_served, &slot.queued}) {
      auto v = r.ReadU64();
      if (!v.ok()) return v.status();
      *field = *v;
    }
    m.libraries.push_back(std::move(slot));
  }
  for (std::uint64_t* field :
       {&m.refs_held, &m.p2p_fetch_bytes, &m.p2p_serve_bytes,
        &m.relayed_result_bytes, &m.arena_hwm_bytes}) {
    auto v = r.ReadU64();
    if (!v.ok()) return v.status();
    *field = *v;
  }
  return Message(std::move(m));
}

Result<Message> DecodeFetchBlob(ArchiveReader& r) {
  FetchBlobMsg m;
  auto id = ReadContentId(r);
  if (!id.ok()) return id.status();
  m.id = *id;
  auto tag = r.ReadU64();
  if (!tag.ok()) return tag.status();
  m.tag = *tag;
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  return Message(std::move(m));
}

Result<Message> DecodeBlobData(ArchiveReader& r, const Blob* attachment) {
  BlobDataMsg m;
  auto id = ReadContentId(r);
  if (!id.ok()) return id.status();
  m.id = *id;
  auto tag = r.ReadU64();
  if (!tag.ok()) return tag.status();
  m.tag = *tag;
  auto ok = r.ReadBool();
  if (!ok.ok()) return ok.status();
  m.ok = *ok;
  auto error = r.ReadString();
  if (!error.ok()) return error.status();
  m.error = std::move(*error);
  auto trace = ReadTrace(r);
  if (!trace.ok()) return trace.status();
  m.trace = *trace;
  auto payload = ReadBulk(r, attachment);
  if (!payload.ok()) return payload.status();
  m.payload = std::move(*payload);
  return Message(std::move(m));
}

Result<Message> DecodeBody(ArchiveReader& r, std::uint8_t tag,
                           const Blob* attachment) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kPutFile:
      return DecodePutFile(r, attachment);
    case Tag::kPutChunk:
      return DecodePutChunk(r, attachment);
    case Tag::kPushFile:
      return DecodePushFile(r);
    case Tag::kExecuteTask:
      return DecodeExecuteTask(r);
    case Tag::kInstallLibrary:
      return DecodeInstallLibrary(r);
    case Tag::kRemoveLibrary: {
      auto id = r.ReadU64();
      if (!id.ok()) return id.status();
      return Message(RemoveLibraryMsg{*id});
    }
    case Tag::kRunInvocation:
      return DecodeRunInvocation(r);
    case Tag::kShutdown:
      return Message(ShutdownMsg{});
    case Tag::kHello: {
      auto res = ReadResources(r);
      if (!res.ok()) return res.status();
      return Message(HelloMsg{*res});
    }
    case Tag::kFileReady: {
      auto id = ReadContentId(r);
      if (!id.ok()) return id.status();
      auto size = r.ReadU64();
      if (!size.ok()) return size.status();
      return Message(FileReadyMsg{*id, *size});
    }
    case Tag::kFileFailed: {
      auto id = ReadContentId(r);
      if (!id.ok()) return id.status();
      auto error = r.ReadString();
      if (!error.ok()) return error.status();
      return Message(FileFailedMsg{*id, std::move(*error)});
    }
    case Tag::kTaskDone:
      return DecodeTaskDone(r);
    case Tag::kLibraryReady: {
      auto id = r.ReadU64();
      if (!id.ok()) return id.status();
      auto timing = ReadTiming(r);
      if (!timing.ok()) return timing.status();
      auto memory = r.ReadU64();
      if (!memory.ok()) return memory.status();
      return Message(LibraryReadyMsg{*id, *timing, *memory});
    }
    case Tag::kLibraryRemoved: {
      auto id = r.ReadU64();
      if (!id.ok()) return id.status();
      return Message(LibraryRemovedMsg{*id});
    }
    case Tag::kInvocationDone:
      return DecodeInvocationDone(r, attachment);
    case Tag::kGoodbye:
      return Message(GoodbyeMsg{});
    case Tag::kStatusRequest:
      return Message(StatusRequestMsg{});
    case Tag::kStatusReply:
      return DecodeStatusReply(r);
    case Tag::kRunInvocationBatch:
      return DecodeRunInvocationBatch(r);
    case Tag::kFetchBlob:
      return DecodeFetchBlob(r);
    case Tag::kBlobData:
      return DecodeBlobData(r, attachment);
    case Tag::kDropBlob: {
      auto id = ReadContentId(r);
      if (!id.ok()) return id.status();
      return Message(DropBlobMsg{*id});
    }
    case Tag::kCancelFetch: {
      auto id = ReadContentId(r);
      if (!id.ok()) return id.status();
      return Message(CancelFetchMsg{*id});
    }
  }
  return DataLossError("unknown message tag " + std::to_string(tag));
}

Result<Message> DecodeImpl(const Blob& blob, const Blob* attachment) {
  ArchiveReader r(blob);
  auto tag = r.ReadU8();
  if (!tag.ok()) return tag.status();
  auto message = DecodeBody(r, *tag, attachment);
  if (!message.ok()) return message.status();
  // A well-formed payload is consumed exactly; leftover bytes mean a
  // corrupt or mismatched frame, not extra data to ignore.
  if (!r.AtEnd())
    return DataLossError("trailing bytes after message tag " +
                         std::to_string(*tag) + ": " +
                         std::to_string(r.remaining()) + " unread");
  return message;
}

}  // namespace

Blob EncodeMessage(const Message& message) {
  Encoder encoder;
  std::visit(encoder, message);
  return std::move(encoder.w).ToBlob();
}

Result<Message> DecodeMessage(const Blob& blob) {
  return DecodeImpl(blob, nullptr);
}

WireFrame EncodeFrame(const Message& message) {
  WireFrame frame;
  Encoder encoder;
  encoder.attachment_out = &frame.attachment;
  std::visit(encoder, message);
  frame.payload = std::move(encoder.w).ToBlob();
  return frame;
}

Result<Message> DecodeFrame(const net::Frame& frame) {
  return DecodeImpl(frame.payload,
                    frame.attachment.empty() ? nullptr : &frame.attachment);
}

}  // namespace vinelet::core
