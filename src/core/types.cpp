#include "core/types.hpp"

namespace vinelet::core {

std::string_view ReuseLevelName(ReuseLevel level) noexcept {
  switch (level) {
    case ReuseLevel::kL1: return "L1";
    case ReuseLevel::kL2: return "L2";
    case ReuseLevel::kL3: return "L3";
  }
  return "?";
}

}  // namespace vinelet::core
