// BlobRef: a content-addressed reference to a result payload that stayed on
// the worker that produced it.
//
// The pass-by-reference data plane (ProxyStore's proxy pattern, DFlow's
// worker-to-worker DAG edges) lets an invocation return a BlobRef instead of
// inline bytes: the manager records placement in its ReplicaTable and
// resolves the future with the ref, and a downstream consumer fetches the
// payload peer-to-peer from the nearest replica — result bytes never transit
// the manager for DAG edges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "hash/content_id.hpp"
#include "serde/value.hpp"

namespace vinelet::core {

/// A pass-by-reference result: identity, size, and a replica hint (the
/// worker that produced it — placement truth lives in the manager's
/// ReplicaTable, the hint only seeds it).
struct BlobRef {
  hash::ContentId id;
  std::uint64_t size = 0;
  WorkerId owner = 0;

  /// A default-constructed ref (all-zero id) means "no ref": the message
  /// carried its result inline.
  bool valid() const noexcept { return !id.IsZero(); }

  friend bool operator==(const BlobRef& a, const BlobRef& b) {
    return a.id == b.id && a.size == b.size && a.owner == b.owner;
  }
};

/// Wraps a ref as a serde::Value so it can ride through the Value-typed
/// future/DAG layer: a dict {"$blobref": <32-byte digest>, "$size": int,
/// "$owner": int}.  Consumers that receive the dict unmodified see a
/// placeholder; the runtime splices the fetched payload in before the
/// function runs.
inline serde::Value WrapRef(const BlobRef& ref) {
  return serde::Value::Dict(
      {{"$blobref", serde::Value(Blob(std::vector<std::uint8_t>(
            ref.id.digest().begin(), ref.id.digest().end())))},
       {"$size", serde::Value(static_cast<std::int64_t>(ref.size))},
       {"$owner", serde::Value(static_cast<std::int64_t>(ref.owner))}});
}

/// Recognizes a WrapRef-shaped dict; nullopt for anything else.
inline std::optional<BlobRef> TryUnwrapRef(const serde::Value& value) {
  if (value.type() != serde::Value::Type::kDict) return std::nullopt;
  const serde::Value& digest = value.Get("$blobref");
  if (digest.type() != serde::Value::Type::kBytes) return std::nullopt;
  const Blob& bytes = digest.AsBytes();
  if (bytes.size() != hash::Sha256::kDigestSize) return std::nullopt;
  hash::Sha256::Digest raw;
  std::copy(bytes.span().begin(), bytes.span().end(), raw.begin());
  BlobRef ref;
  ref.id = hash::ContentId::FromDigest(raw);
  auto size = value.GetInt("$size");
  if (!size.ok()) return std::nullopt;
  ref.size = static_cast<std::uint64_t>(*size);
  auto owner = value.GetInt("$owner");
  if (!owner.ok()) return std::nullopt;
  ref.owner = static_cast<WorkerId>(*owner);
  return ref;
}

}  // namespace vinelet::core
