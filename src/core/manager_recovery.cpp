// Fault handling: call requeue, waiter failure, and full worker-death
// recovery (reschedule, transfer repair, broadcast repair).
#include "core/manager.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace vinelet::core {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Fault handling.
// ---------------------------------------------------------------------------

void Manager::RequeueCall(PendingCall call) {
  auto it = libraries_.find(call.library);
  if (it == libraries_.end()) {
    SettleCallRefs(call);
    call.future->Resolve(NotFoundError("library vanished: " + call.library));
    FinishOne();
    return;
  }
  call.queued_s = Now();
  it->second.queue.push_front(std::move(call));
}

void Manager::FailWaiter(const Waiter& waiter, const Status& status) {
  if (waiter.is_instance) {
    // Discard the staging instance; its queued calls stay in the library
    // queue and redeploy elsewhere on the next scheduling pass.
    auto inst_it = instances_.find(waiter.id);
    if (inst_it == instances_.end()) return;
    auto worker_it = workers_.find(inst_it->second.worker);
    if (worker_it != workers_.end()) {
      worker_it->second.instances.erase(inst_it->second.id);
      Status released =
          worker_it->second.alloc.Release(inst_it->second.claimed);
      if (!released.ok()) {
        VLOG_ERROR("manager") << "release: " << released.ToString();
      }
    }
    instances_.erase(inst_it);
  } else {
    auto task_it = running_tasks_.find(waiter.id);
    if (task_it == running_tasks_.end()) return;
    auto worker_it = workers_.find(task_it->second.worker);
    if (worker_it != workers_.end()) {
      worker_it->second.running_tasks.erase(waiter.id);
      Status released =
          worker_it->second.alloc.Release(task_it->second.claimed);
      if (!released.ok()) {
        VLOG_ERROR("manager") << "release: " << released.ToString();
      }
    }
    task_it->second.task.future->Resolve(status);
    FinishOne();
    running_tasks_.erase(task_it);
  }
}

void Manager::ProcessDeadWorkers() {
  while (!pending_dead_.empty()) {
    const WorkerId worker = *pending_dead_.begin();
    pending_dead_.erase(pending_dead_.begin());
    OnWorkerDead(worker);
  }
}

void Manager::OnWorkerDead(WorkerId worker) {
  auto it = workers_.find(worker);
  if (it == workers_.end()) return;
  VLOG_INFO("manager") << "worker " << worker << " left ("
                       << it->second.running_tasks.size() << " tasks, "
                       << it->second.instances.size() << " instances)";
  telemetry_->flight.Record("worker-dead", "", 0, worker,
                            it->second.running_tasks.size());
  // A status query can't wait on a dead worker; drop its (never-arriving)
  // entry and finalize if it was the last one outstanding.
  if (status_query_.active && status_query_.awaiting.erase(worker) != 0) {
    auto& entries = status_query_.status.workers;
    std::erase_if(entries,
                  [&](const WorkerStatus& w) { return w.id == worker; });
    if (status_query_.awaiting.empty()) FinalizeStatusQuery();
  }

  const std::set<TaskId> dead_tasks = std::move(it->second.running_tasks);
  const std::set<LibraryInstanceId> dead_instances =
      std::move(it->second.instances);
  workers_.erase(it);
  ring_.Remove(worker);

  // Pass-by-reference recovery, part 1: consumers parked mid-fetch on the
  // dead replica would wait forever — cancel exactly the fetches whose
  // dispatch stamped this worker as the source.  The cancelled invocations
  // fail back to the manager, requeue, and re-dispatch against a surviving
  // replica (or fail with kDataLoss below if none is left).
  for (auto& [_, instance] : instances_) {
    if (instance.worker == worker) continue;  // dies with its worker below
    std::set<hash::ContentId> cancel;
    for (const auto& [__, call] : instance.running)
      for (const RefArg& arg : call.ref_args)
        if (arg.source == worker) cancel.insert(arg.ref.id);
    for (const hash::ContentId& id : cancel)
      (void)SendTo(instance.worker, CancelFetchMsg{id});
  }

  replicas_.RemoveWorker(worker);

  // Part 2: refs whose last replica died are gone for good — forget them so
  // the audit sees a consistent table; their not-yet-dispatched consumers
  // fail with kDataLoss at dispatch time.
  for (auto ref_it = refs_.begin(); ref_it != refs_.end();) {
    if (replicas_.ReplicaCount(ref_it->first) == 0) {
      telemetry_->flight.Record("ref-lost", ref_it->first.ShortHex(), 0,
                                ref_it->first.Prefix64(), worker);
      ref_it = refs_.erase(ref_it);
    } else {
      ++ref_it;
    }
  }

  // Part 3: a FetchRef materialization served by the dead worker retries the
  // next holder; out of holders = data loss for its waiters.
  for (auto f_it = manager_fetches_.begin(); f_it != manager_fetches_.end();) {
    if (f_it->second.source != worker || AdvanceManagerFetch(f_it->second)) {
      ++f_it;
      continue;
    }
    for (auto& waiter : f_it->second.waiters)
      waiter->set_value(DataLossError("ref replica died and no other holder "
                                      "survives: " +
                                      f_it->second.ref.id.ShortHex()));
    f_it = manager_fetches_.erase(f_it);
  }
  // Drop every affinity entry pointing at the dead worker — a stale entry
  // here is exactly what the quiescence audit flags as a violation.
  affinity_.RemoveWorker(worker);
  SyncAffinityGauge();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    worker_count_ = workers_.size();
    wait_cv_.notify_all();
  }

  // Transfers touching the dead worker: destinations die with their
  // waiters (requeued below); transfers *sourced* from it restart from a
  // new source.
  std::vector<std::pair<TransferKey, Transfer>> resource;
  for (auto t_it = transfers_.begin(); t_it != transfers_.end();) {
    if (t_it->first.dest == worker) {
      replicas_.EndTransfer(t_it->second.source);
      t_it = transfers_.erase(t_it);
    } else if (!t_it->second.source.from_manager &&
               t_it->second.source.peer == worker) {
      replicas_.EndTransfer(t_it->second.source);
      resource.emplace_back(t_it->first, std::move(t_it->second));
      t_it = transfers_.erase(t_it);
    } else {
      ++t_it;
    }
  }
  for (auto& [key, transfer] : resource) {
    // Restage from the manager (it normally holds every declared payload).
    // When StageFile declines — or the fresh transfer is not found under
    // the key — the remaining waiters must be failed explicitly: silently
    // dropping them leaves their futures unresolved and hangs WaitAll.
    auto waiters = std::move(transfer.waiters);
    const Status lost =
        DataLossError("transfer source died and restage failed: " +
                      transfer.decl.name);
    bool first = true;
    bool staged = false;
    for (const Waiter& waiter : waiters) {
      if (first) {
        first = false;
        staged = StageFile(transfer.decl, key.dest, waiter, transfer.trace);
        if (!staged) FailWaiter(waiter, lost);
        continue;
      }
      auto new_it = staged ? transfers_.find(key) : transfers_.end();
      if (new_it != transfers_.end())
        new_it->second.waiters.push_back(waiter);
      else
        FailWaiter(waiter, lost);
    }
  }

  HandleBroadcastWorkerDeath(worker);

  for (TaskId id : dead_tasks) {
    auto task_it = running_tasks_.find(id);
    if (task_it == running_tasks_.end()) continue;
    PendingTask task = std::move(task_it->second.task);
    running_tasks_.erase(task_it);
    if (++task.attempts < config_.max_attempts) {
      m_.retries->Add();
      task.queued_s = Now();
      task_queue_.push_back(std::move(task));
    } else {
      task.future->Resolve(UnavailableError("worker died repeatedly"));
      FinishOne();
    }
  }

  for (LibraryInstanceId id : dead_instances) {
    auto inst_it = instances_.find(id);
    if (inst_it == instances_.end()) continue;
    InstanceInfo instance = std::move(inst_it->second);
    instances_.erase(inst_it);
    // A draining instance was counted active at LibraryReady and its
    // LibraryRemovedMsg (the usual decrement point) will never arrive from
    // a dead worker — decrement here for both states or the gauge drifts.
    if (instance.state == InstanceState::kReady ||
        instance.state == InstanceState::kDraining)
      m_.libraries_active->Set(
          std::max(0.0, m_.libraries_active->Value() - 1));
    m_.retained_context_bytes->Set(
        std::max(0.0, m_.retained_context_bytes->Value() -
                          static_cast<double>(instance.context_memory)));
    for (auto& [_, call] : instance.running) {
      if (++call.attempts < config_.max_attempts) {
        m_.retries->Add();
        RequeueCall(std::move(call));
      } else {
        SettleCallRefs(call);
        call.future->Resolve(UnavailableError("worker died repeatedly"));
        FinishOne();
      }
    }
  }
}

}  // namespace vinelet::core
