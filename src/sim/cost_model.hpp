// Cost model: the paper's measured constants, factored per reuse level.
//
// Calibration sources (all from the paper):
//  * Table 2 — 1,000 trivial functions: remote-task ~0.19 s/invocation of
//    manager+roundtrip work vs remote-invocation ~2.5 ms; ~20 s per-worker
//    setup in both modes.
//  * Table 5 — LNNI breakdown: 1.0 s context transfer (572 MB tarball over
//    10 GbE), 15.4 s tarball unpack, 0.33-0.40 s per-invocation
//    deserialization at L2, 2.73 s in-memory context setup (load weights +
//    build model), ~0.5 ms L3 invocation overhead, ~2 s of per-invocation
//    context rebuild that L2 repeats inside exec (5.05-5.47 s vs 3.08 s).
//  * §4.2 — environment: 144 packages, 572 MB packed, 3.1 GB unpacked;
//    LNNI invocations get 2 cores/4 GB (16 slots per worker), ExaMol 4
//    cores/8 GB (8 slots).
//
// The manager dispatch/retrieve costs are the paper's implicit scaling
// story: the single-threaded manager needs ~70 ms of work per stateless
// task (serialize invocation to files, create the wrapper task, schedule)
// but only ~2.5 ms per library invocation, which is why L1/L2 barely speed
// up with more workers (Q3) while L3 saturates at 50.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace vinelet::sim {

/// Manager-side serial work per execution, by level.
struct ManagerCosts {
  double dispatch_s = 0.0;  // package + deploy one task/invocation
  double retrieve_s = 0.0;  // fetch + record one result
};

/// Per-invocation and per-context costs for one function class.
/// All CPU times are at baseline machine speed (group 1, EPYC 7532) and are
/// divided by the worker's speed factor.
struct WorkloadCosts {
  // ---- context shape --------------------------------------------------
  double env_packed_bytes = 572.0 * 1024 * 1024;
  double env_unpacked_bytes = 3.1 * 1024 * 1024 * 1024;
  double unpack_cpu_s = 15.4;         // cold tarball expansion
  double context_setup_cpu_s = 2.73;  // L3 library in-memory setup
  double context_rebuild_cpu_s = 2.0; // rebuilt per invocation at L1/L2
  double deserialize_s = 0.33;        // per-invocation object reconstruction (L1/L2)
  double invocation_overhead_s = 0.001;  // L3: load arguments only

  // ---- data movement per invocation ------------------------------------
  // L1 pulls dependencies + data through the shared FS on every execution:
  // ~600 MB of environment/weight pages at the seek-bound per-stream rate
  // (~15 s per invocation -> Table 4's 21.6 s L1 mean), with aggregate
  // demand riding near the Panasas' 84 Gb/s ceiling, which produces Fig 7a's
  // spread and the Q3 finding that extra workers barely help L1.
  double l1_fs_bytes = 600.0 * 1024 * 1024;
  /// Per-invocation spread of the FS read volume (lognormal multiplier,
  /// unit mean): page-cache luck and input-size variation.  This is the
  /// source of L1's heavy tail (Table 4: std 34.78, max 289.72).
  double l1_fs_bytes_sigma = 0.45;
  double l1_fs_ops = 2500;  // metadata ops (import storms)
  /// Latency-bound portion of the shared-FS access: per-file round trips
  /// during cold imports that no amount of bandwidth hides (cf. the
  /// "metadata storms" literature the paper cites).  Dominant for the
  /// chemistry stack (ExaMol), negligible for LNNI's large sequential
  /// weight reads.
  double l1_fs_latency_s = 0.0;
  double l2_local_bytes = 150.0 * 1024 * 1024;  // local-SSD reads (weights +
                                                // uncached library pages)

  // ---- compute ----------------------------------------------------------
  double exec_cpu_s = 3.08;        // useful work per invocation
  double exec_noise_sigma = 0.12;  // lognormal interference
  double straggler_prob = 0.003;   // rare slow invocations (Fig 7 tails)
  double straggler_factor = 3.5;

  // Interference from co-located invocations on the same worker (memory
  // bandwidth, page cache, GC...): phase time is multiplied by
  // 1 + beta * (active-1)/(slots-1).  Context reconstruction (imports,
  // weight loading) contends much harder than the compute kernel — this is
  // what stretches the cluster-scale L1/L2 means (Table 4) beyond the
  // uncontended single-invocation numbers (Table 5).
  double contention_beta_context = 1.2;
  double contention_beta_exec = 0.35;

  // ---- manager costs per level -------------------------------------------
  ManagerCosts manager_l1{0.070, 0.004};
  ManagerCosts manager_l2{0.031, 0.004};
  ManagerCosts manager_l3{0.0025, 0.001};

  std::uint32_t cores_per_invocation = 2;

  const ManagerCosts& ManagerFor(core::ReuseLevel level) const {
    switch (level) {
      case core::ReuseLevel::kL1: return manager_l1;
      case core::ReuseLevel::kL2: return manager_l2;
      case core::ReuseLevel::kL3: return manager_l3;
    }
    return manager_l3;
  }
};

/// Cut-through (chunked pipelined) transfer arithmetic shared by the DES
/// engine and the Fig-3 analytic sweeps: a relay hop completes when the last
/// chunk has both reached the source (`source_done_s`) and crossed the link
/// (one chunk-time after that), or — if the hop itself is the bottleneck —
/// one whole blob-time after the hop started.
double ChunkedHopFinishS(double source_done_s, double start_s,
                         double blob_seconds, double chunk_seconds);

/// LNNI (ResNet50 inference, §4.1.1): `inferences` per invocation.
/// 16 inferences take ~3.08 s at baseline (Table 5).
WorkloadCosts LnniCosts(int inferences = 16);

/// Table 2's trivial addition function: negligible exec, minimal context.
WorkloadCosts TrivialFunctionCosts();

/// ExaMol function classes (§4.1.2): PM7 simulation, model training,
/// inference — quantum-chem environment, compute-heavy.
WorkloadCosts ExamolSimulateCosts();
WorkloadCosts ExamolTrainCosts();
WorkloadCosts ExamolInferCosts();

}  // namespace vinelet::sim
